"""Overload control: bounded queues, shedding, deadlines, brownout.

Three contracts pinned here (see ``docs/overload.md``):

1. **Bounded queues** — whatever the trace, the waiting queue never
   exceeds its per-tenant or global caps, and every offered query is
   accounted for exactly once (completed + aborted + shed == offered).
2. **Determinism** — shed, deadline and brownout decisions are a pure
   function of (config, trace seed): same-seed reruns produce
   byte-identical reports and overload event logs.
3. **The PR 7 invariant survives** — an armed-but-idle overload
   controller leaves the single-tenant serve path bit-identical to the
   batch engine.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.datasets import load_dataset
from repro.bench.harness import make_engine
from repro.algorithms.pagerank import PageRankProgram
from repro.graph.builder import build_directed
from repro.safs.page import SAFSFile
from repro.serve import (
    GraphService,
    OverloadConfig,
    ServiceConfig,
    TenantSpec,
    TenantTraffic,
    generate_trace,
)
from repro.serve.admission import AdmissionController
from repro.serve.overload import (
    OverloadController,
    SHED_POLICIES,
    STATE_BROWNOUT,
    STATE_HEALTHY,
    STATE_OVERLOADED,
    STATE_RECOVERING,
)
from repro.serve.traffic import Arrival


def _image():
    rng = np.random.default_rng(0)
    n, m = 120, 600
    edges = rng.integers(0, n, size=(m, 2), dtype=np.int64)
    return build_directed(edges, n, name="prop-overload")


IMAGE = _image()


def _report_bytes(report):
    return json.dumps(report.to_dict(), sort_keys=True)


@st.composite
def overload_runs(draw):
    """A saturating two-tenant run with small queue caps."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    policy = draw(st.sampled_from(["fifo", "fair", "deadline"]))
    shed_policy = draw(st.sampled_from(SHED_POLICIES))
    tenant_cap = draw(st.integers(min_value=1, max_value=4))
    global_cap = draw(st.integers(min_value=2, max_value=6))
    enforce = draw(st.booleans())
    tenants = [
        TenantSpec(
            name="a",
            weight=2.0,
            max_concurrent=2,
            deadline_s=0.01 if enforce else None,
        ),
        TenantSpec(name="b", max_concurrent=1, queue_cap=1),
    ]
    traffics = [
        TenantTraffic(
            tenant="a",
            rate_qps=6000.0,
            burst_factor=4.0,
            burst_fraction=0.2,
            burst_period_s=0.002,
        ),
        TenantTraffic(tenant="b", rate_qps=3000.0, apps=("bfs", "wcc")),
    ]
    trace = generate_trace(traffics, 0.004, seed=seed)
    config = ServiceConfig(
        policy=policy,
        pr_iterations=3,
        overload=OverloadConfig(
            tenant_queue_cap=tenant_cap,
            global_queue_cap=global_cap,
            shed_policy=shed_policy,
            enforce_deadlines=enforce,
        ),
    )
    return tenants, trace, config


class TestBoundedQueues:
    @settings(max_examples=10, deadline=None)
    @given(overload_runs())
    def test_queues_never_exceed_caps_and_accounting_balances(self, run):
        tenants, trace, config = run
        service = GraphService(IMAGE, tenants, config)
        report = service.serve(trace)
        overload = report.overload
        assert overload["peak_queue_depth"] <= config.overload.global_queue_cap
        caps = {"a": config.overload.tenant_queue_cap, "b": 1}
        for name, peak in overload["peak_tenant_depth"].items():
            assert peak <= caps[name]
        # Conservation: every arrival ran to completion, aborted, or was
        # refused (queue-cap shed or queued-deadline drop) — exactly once.
        assert report.completed + report.aborted + report.shed == report.offered
        assert len(report.records) + len(report.sheds) == report.offered


class TestDeterminism:
    @settings(max_examples=6, deadline=None)
    @given(overload_runs())
    def test_same_seed_reruns_are_byte_identical(self, run):
        tenants, trace, config = run
        one = GraphService(IMAGE, tenants, config).serve(trace)
        two = GraphService(IMAGE, tenants, config).serve(trace)
        assert _report_bytes(one) == _report_bytes(two)
        # The decision log specifically — sheds, deadline verdicts and
        # state transitions in order — is what the bench digests.
        assert one.overload["events"] == two.overload["events"]

    @pytest.mark.parametrize("shed_policy", SHED_POLICIES)
    def test_each_shed_policy_is_deterministic_under_brownout(self, shed_policy):
        tenants = [
            TenantSpec(name="a", max_concurrent=2, deadline_s=0.01),
            TenantSpec(name="b", max_concurrent=1, degradable=False),
        ]
        traffics = [
            TenantTraffic(tenant="a", rate_qps=8000.0),
            TenantTraffic(tenant="b", rate_qps=4000.0, apps=("bfs",)),
        ]
        trace = generate_trace(traffics, 0.004, seed=7)
        config = ServiceConfig(
            policy="fair",
            pr_iterations=3,
            overload=OverloadConfig(
                tenant_queue_cap=2,
                global_queue_cap=4,
                shed_policy=shed_policy,
                enforce_deadlines=True,
                brownout=True,
                window_s=0.002,
                sample_period_s=0.0002,
                wait_budget_s=0.002,
            ),
        )
        one = GraphService(IMAGE, tenants, config).serve(trace)
        two = GraphService(IMAGE, tenants, config).serve(trace)
        assert _report_bytes(one) == _report_bytes(two)
        assert one.shed > 0  # the run actually exercised shedding


class TestBatchIdentityWithOverloadArmed:
    def test_armed_but_idle_controller_changes_nothing(self):
        """PR 7's acceptance invariant survives the overload layer: with
        generous caps and no pressure, a single query at t=0 replays the
        batch engine bit for bit."""
        image = load_dataset("twitter-sim")
        SAFSFile._next_id = 0
        engine = make_engine(
            image, cache_bytes=1 << 20, num_threads=32, range_shift=8
        )
        program = PageRankProgram(image.num_vertices)
        batch = engine.run(program, max_iterations=5)

        service = GraphService(
            image,
            [TenantSpec(name="solo", max_concurrent=1, deadline_s=10.0)],
            ServiceConfig(
                policy="fifo",
                pr_iterations=5,
                overload=OverloadConfig(
                    enforce_deadlines=True, brownout=True
                ),
            ),
        )
        report = service.serve(
            [Arrival(time=0.0, tenant="solo", app="pr", index=0)]
        )
        assert report.completed == 1 and report.shed == 0
        record = report.records[0]
        assert record.result.runtime == batch.runtime
        assert record.result.cpu_busy == batch.cpu_busy
        assert record.result.counters == batch.counters
        assert not record.degraded
        assert report.overload["state"] == STATE_HEALTHY


class TestDeadlineEnforcement:
    def test_expired_and_infeasible_queries_are_cut_short(self):
        tenants = [TenantSpec(name="a", max_concurrent=1, deadline_s=0.0005)]
        traffics = [TenantTraffic(tenant="a", rate_qps=8000.0)]
        trace = generate_trace(traffics, 0.004, seed=3)
        config = ServiceConfig(
            policy="fifo",
            pr_iterations=5,
            overload=OverloadConfig(
                tenant_queue_cap=8,
                global_queue_cap=24,
                enforce_deadlines=True,
            ),
        )
        report = GraphService(IMAGE, tenants, config).serve(trace)
        kinds = {event["kind"] for event in report.overload["events"]}
        # A 0.5ms deadline against a growing backlog: queued queries
        # expire before starting, and running jobs are cancelled at a
        # barrier once the estimate says they cannot land.
        assert "deadline-expired" in kinds
        assert "deadline-abort" in kinds
        assert report.deadline_aborts > 0
        # Every running cancel still produced a record with a partial
        # result (the IterationAborted surface), never a silent drop.
        aborted = [r for r in report.records if not r.ok]
        assert len(aborted) >= report.deadline_aborts
        for record in aborted:
            assert record.result.iterations >= 0
            assert record.finish_time >= record.start_time
        assert report.completed + report.aborted + report.shed == report.offered

    def test_deadline_drops_without_abort_flag_leave_running_jobs_alone(self):
        tenants = [TenantSpec(name="a", max_concurrent=1, deadline_s=0.0005)]
        traffics = [TenantTraffic(tenant="a", rate_qps=8000.0)]
        trace = generate_trace(traffics, 0.004, seed=3)
        config = ServiceConfig(
            policy="fifo",
            pr_iterations=5,
            overload=OverloadConfig(
                enforce_deadlines=True, deadline_abort_running=False
            ),
        )
        report = GraphService(IMAGE, tenants, config).serve(trace)
        kinds = {event["kind"] for event in report.overload["events"]}
        assert "deadline-abort" not in kinds
        assert report.deadline_aborts == 0
        # With running jobs never cancelled, each admitted 5-iteration
        # PageRank hogs the engine — so *queued* queries blow their
        # 0.5ms deadline and are dropped without ever running.
        assert "deadline-expired" in kinds
        assert any(s.reason == "deadline-expired" for s in report.sheds)


class TestBrownoutDegradation:
    @pytest.fixture(scope="class")
    def report(self):
        tenants = [
            TenantSpec(name="a", weight=2.0, max_concurrent=2),
            TenantSpec(name="b", max_concurrent=1, degradable=False),
        ]
        traffics = [
            TenantTraffic(tenant="a", rate_qps=12_000.0),
            TenantTraffic(tenant="b", rate_qps=6000.0, apps=("pr",)),
        ]
        trace = generate_trace(traffics, 0.006, seed=5)
        config = ServiceConfig(
            policy="fair",
            pr_iterations=5,
            overload=OverloadConfig(
                tenant_queue_cap=12,
                global_queue_cap=24,
                brownout=True,
                window_s=0.002,
                sample_period_s=0.0002,
                wait_budget_s=0.002,
            ),
        )
        return GraphService(IMAGE, tenants, config).serve(trace)

    def test_brownout_enters_and_degrades_only_degradable_tenants(self, report):
        states = {
            event["detail"]
            for event in report.overload["events"]
            if event["kind"] == "state"
        }
        assert any(s.endswith("->brownout") for s in states)
        assert report.overload["brownout_seconds"] > 0.0
        assert report.overload["degraded_jobs"]["a"] > 0
        assert report.overload["degraded_jobs"]["b"] == 0  # degradable=False
        assert report.tenants["a"].degraded == report.overload["degraded_jobs"]["a"]

    def test_degraded_jobs_run_fewer_iterations(self, report):
        degraded = [r for r in report.records if r.degraded and r.ok]
        assert degraded
        for record in degraded:
            assert record.result.iterations <= 2  # brownout_pr_iterations


class TestControllerUnits:
    class _Waiting:
        def __init__(self, time, index):
            self.arrival = Arrival(time=time, tenant="t", app="pr", index=index)

    def _controller(self, shed_policy):
        return OverloadController(
            OverloadConfig(shed_policy=shed_policy),
            {"t": TenantSpec(name="t")},
        )

    def test_choose_victim_per_policy(self):
        oldest = self._Waiting(0.001, 0)
        middle = self._Waiting(0.002, 1)
        newest = self._Waiting(0.003, 2)
        queue = [oldest, middle, newest]
        # The scheduler would serve `middle` last under this key.
        order_key = {0: 0.0, 1: 9.0, 2: 1.0}
        key = lambda w: order_key[w.arrival.index]
        assert self._controller("reject-newest").choose_victim(queue, key) is newest
        assert self._controller("reject-oldest").choose_victim(queue, key) is oldest
        assert self._controller("by-priority").choose_victim(queue, key) is middle

    def test_deadline_estimator_rules(self):
        ctl = self._controller("reject-newest")
        # Rule 1: deadline already passed.
        assert ctl.deadline_unreachable(
            now=2.0, start=0.0, deadline=1.0, iterations=3,
            max_iterations=5, frontier_size=10,
        )
        # No progress signal yet: never abort blind.
        assert ctl.deadline_unreachable(
            now=0.5, start=0.5, deadline=1.0, iterations=0,
            max_iterations=5, frontier_size=10,
        ) is None
        # Rule 2: capped job, remaining iterations overshoot.
        assert ctl.deadline_unreachable(
            now=0.6, start=0.0, deadline=1.0, iterations=3,
            max_iterations=10, frontier_size=10,
        )
        # Capped job on track: no verdict.
        assert ctl.deadline_unreachable(
            now=0.3, start=0.0, deadline=1.0, iterations=3,
            max_iterations=5, frontier_size=10,
        ) is None
        # Rule 3: uncapped, non-empty frontier, one more round overshoots.
        assert ctl.deadline_unreachable(
            now=0.9, start=0.0, deadline=1.0, iterations=3,
            max_iterations=None, frontier_size=1,
        )
        # Uncapped but drained frontier: about to converge, let it.
        assert ctl.deadline_unreachable(
            now=0.9, start=0.0, deadline=1.0, iterations=3,
            max_iterations=None, frontier_size=0,
        ) is None

    def test_state_machine_walks_the_full_cycle_with_hysteresis(self):
        cfg = OverloadConfig(
            brownout=True,
            enter_samples=2,
            exit_samples=2,
            sample_period_s=0.001,
            window_s=1.0,  # wide window: no samples age out mid-test
        )
        ctl = OverloadController(cfg, {"t": TenantSpec(name="t")})
        t = [0.0]

        def feed(depth, wait):
            t[0] += cfg.sample_period_s
            ctl.observe(t[0], queue_depth=depth, mean_wait=wait, health_fraction=0.0)

        # One hot sample is not enough (hysteresis).
        feed(24, 0.0)
        assert ctl.state == STATE_HEALTHY
        feed(24, 0.0)
        assert ctl.state == STATE_OVERLOADED
        # Escalate to brownout on sustained extreme pressure.
        feed(24, 0.05)
        feed(24, 0.05)
        assert ctl.state == STATE_BROWNOUT
        # Cool off -> recovering -> healthy (double exit streak).
        for _ in range(2):
            feed(0, 0.0)
        assert ctl.state == STATE_RECOVERING
        for _ in range(4):
            feed(0, 0.0)
        assert ctl.state == STATE_HEALTHY
        assert ctl.transitions == 4
        assert ctl.brownout_seconds > 0.0
        details = [e.detail for e in ctl.events if e.kind == "state"]
        assert details == [
            "healthy->overloaded",
            "overloaded->brownout",
            "brownout->recovering",
            "recovering->healthy",
        ]

    def test_finish_closes_open_brownout_interval(self):
        cfg = OverloadConfig(
            brownout=True, enter_samples=1, sample_period_s=0.001, window_s=1.0
        )
        ctl = OverloadController(cfg, {"t": TenantSpec(name="t")})
        # Streaks reset at each transition, so extreme pressure still
        # escalates one state per sample: healthy -> overloaded -> brownout.
        ctl.observe(0.001, queue_depth=48, mean_wait=0.1, health_fraction=1.0)
        assert ctl.state == STATE_OVERLOADED
        ctl.observe(0.002, queue_depth=48, mean_wait=0.1, health_fraction=1.0)
        assert ctl.state == STATE_BROWNOUT
        ctl.finish(0.012)
        assert ctl.brownout_seconds == pytest.approx(0.010)


class TestValidation:
    def test_overload_config_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="tenant_queue_cap"):
            OverloadConfig(tenant_queue_cap=0)
        with pytest.raises(ValueError, match="shed policy"):
            OverloadConfig(shed_policy="coin-flip")
        with pytest.raises(ValueError, match="overload_exit"):
            OverloadConfig(overload_enter=0.3, overload_exit=0.5)
        with pytest.raises(ValueError, match="brownout_enter"):
            OverloadConfig(overload_enter=0.9, brownout_enter=0.8)
        with pytest.raises(ValueError, match="hysteresis"):
            OverloadConfig(enter_samples=0)

    def test_service_config_rejects_nonpositive_iteration_knobs(self):
        with pytest.raises(ValueError, match="pr_iterations"):
            ServiceConfig(pr_iterations=0)
        with pytest.raises(ValueError, match="kcore_k"):
            ServiceConfig(kcore_k=0)

    def test_tenant_queue_cap_validated(self):
        with pytest.raises(ValueError, match="queue_cap"):
            TenantSpec(name="t", queue_cap=0)


class TestAdmissionUnknownTenant:
    def test_release_and_spec_name_the_stranger(self):
        controller = AdmissionController(
            {"acme": TenantSpec(name="acme"), "globex": TenantSpec(name="globex")}
        )
        for method in (
            controller.release,
            controller.spec,
            controller.can_admit,
            controller.note_quota_wait,
        ):
            with pytest.raises(ValueError, match="unknown tenant 'intruder'"):
                method("intruder")
        try:
            controller.release("intruder")
        except ValueError as exc:
            # The message lists who *is* registered, for debuggability.
            assert "acme" in str(exc) and "globex" in str(exc)

    def test_release_without_running_job_still_rejected(self):
        controller = AdmissionController({"acme": TenantSpec(name="acme")})
        with pytest.raises(ValueError, match="no running job"):
            controller.release("acme")
