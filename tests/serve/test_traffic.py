"""The open-loop traffic generator: replayability, rates, bursts."""

import numpy as np
import pytest

from repro.serve.traffic import Arrival, TenantTraffic, generate_trace

TWO_TENANTS = [
    TenantTraffic(tenant="acme", rate_qps=200.0, apps=("pr", "bfs", "wcc")),
    TenantTraffic(tenant="globex", rate_qps=80.0, apps=("bfs", "wcc")),
]


class TestReplayability:
    def test_same_seed_same_trace(self):
        one = generate_trace(TWO_TENANTS, 2.0, seed=7)
        two = generate_trace(TWO_TENANTS, 2.0, seed=7)
        assert one == two  # dataclass equality: times, tenants, apps, indices

    def test_different_seeds_differ(self):
        one = generate_trace(TWO_TENANTS, 2.0, seed=7)
        two = generate_trace(TWO_TENANTS, 2.0, seed=8)
        assert one != two

    def test_adding_a_tenant_never_perturbs_existing_arrivals(self):
        # Per-tenant rng streams: acme's arrival times are a pure
        # function of (its traffic, its index, the seed).
        alone = generate_trace(TWO_TENANTS[:1], 2.0, seed=7)
        merged = generate_trace(TWO_TENANTS, 2.0, seed=7)
        acme_alone = [a.time for a in alone]
        acme_merged = [a.time for a in merged if a.tenant == "acme"]
        assert acme_merged == acme_alone


class TestTraceShape:
    def test_sorted_with_dense_indices(self):
        trace = generate_trace(TWO_TENANTS, 2.0, seed=3)
        times = [a.time for a in trace]
        assert times == sorted(times)
        assert [a.index for a in trace] == list(range(len(trace)))
        assert all(0.0 <= a.time < 2.0 for a in trace)

    def test_apps_come_from_each_tenants_mix(self):
        trace = generate_trace(TWO_TENANTS, 2.0, seed=3)
        for arrival in trace:
            if arrival.tenant == "acme":
                assert arrival.app in ("pr", "bfs", "wcc")
            else:
                assert arrival.app in ("bfs", "wcc")

    def test_mean_rate_is_close_over_a_long_window(self):
        traffic = TenantTraffic(tenant="t", rate_qps=100.0)
        trace = generate_trace([traffic], 50.0, seed=1)
        observed = len(trace) / 50.0
        assert observed == pytest.approx(100.0, rel=0.1)

    def test_zipf_default_weights_skew_toward_the_first_app(self):
        traffic = TenantTraffic(tenant="t", rate_qps=200.0)
        trace = generate_trace([traffic], 20.0, seed=5)
        counts = {app: 0 for app in traffic.apps}
        for arrival in trace:
            counts[arrival.app] += 1
        assert counts["pr"] > counts["bfs"] > counts["wcc"]


class TestBursts:
    BURSTY = TenantTraffic(
        tenant="b", rate_qps=100.0, burst_factor=5.0, burst_fraction=0.1,
        burst_period_s=0.1,
    )

    def test_burst_mean_rate_is_preserved(self):
        trace = generate_trace([self.BURSTY], 50.0, seed=2)
        assert len(trace) / 50.0 == pytest.approx(100.0, rel=0.1)

    def test_on_windows_are_denser_than_off_windows(self):
        trace = generate_trace([self.BURSTY], 50.0, seed=2)
        period, frac = self.BURSTY.burst_period_s, self.BURSTY.burst_fraction
        on = sum(1 for a in trace if (a.time % period) < frac * period)
        off = len(trace) - on
        on_rate = on / (50.0 * frac)
        off_rate = off / (50.0 * (1.0 - frac))
        # ON runs at 5x base; OFF at (1 - 0.5)/0.9 ~ 0.56x base.
        assert on_rate > 3 * off_rate

    def test_rate_at_integrates_to_the_mean(self):
        times = np.linspace(0.0, 0.1, 10_001)[:-1]
        mean = np.mean([self.BURSTY.rate_at(t) for t in times])
        assert mean == pytest.approx(100.0, rel=0.01)


class TestValidation:
    def test_bad_rate(self):
        with pytest.raises(ValueError):
            TenantTraffic(tenant="t", rate_qps=0.0)

    def test_burst_off_rate_must_stay_non_negative(self):
        with pytest.raises(ValueError):
            TenantTraffic(
                tenant="t", rate_qps=10.0, burst_factor=4.0, burst_fraction=0.5
            )

    def test_duplicate_tenants_rejected(self):
        traffic = TenantTraffic(tenant="t", rate_qps=10.0)
        with pytest.raises(ValueError):
            generate_trace([traffic, traffic], 1.0, seed=0)

    def test_weights_must_match_apps(self):
        with pytest.raises(ValueError):
            TenantTraffic(
                tenant="t", rate_qps=10.0, apps=("pr",), app_weights=(0.5, 0.5)
            )
