"""Adaptive tenant cache sizing: the ghost-LRU driven rebalancer.

Unit-level policy semantics (capacity moves toward the best marginal
ghost-hit rate, floors are never crossed, decisions are deterministic)
plus the service-level wiring: a skewed two-tenant run shifts capacity
to the hot tenant, gauges land in the stats series, and the run stays
byte-identical across same-seed replays (``docs/io_sharing.md``).
"""

import pytest

from repro.bench.datasets import load_dataset
from repro.safs.page import Page
from repro.safs.page_cache import PageCache, PageCacheConfig
from repro.serve import (
    CacheRebalanceConfig,
    CacheRebalancer,
    GraphService,
    ServiceConfig,
    TenantSpec,
    TenantTraffic,
    generate_trace,
)

PAGE = 4096


@pytest.fixture(scope="module")
def image():
    return load_dataset("twitter-sim")


def small_cache():
    # 8 pages, associativity 4 -> 2 sets of 4.
    return PageCache(PageCacheConfig(capacity_bytes=8 * PAGE, associativity=4))


def thrash(cache, file_id, pages):
    """Insert ``pages`` distinct pages then re-probe the early ones:
    evicted keys land on the ghost list and the probes score ghost
    hits — the 'would have hit with more capacity' signal."""
    for page_no in range(pages):
        cache.lookup(file_id, page_no)
        cache.insert(Page(file_id, page_no, b""))
    for page_no in range(pages):
        cache.lookup(file_id, page_no)


class TestRebalancerUnit:
    def test_needs_two_partitions(self):
        with pytest.raises(ValueError):
            CacheRebalancer({"only": small_cache()})

    def test_capacity_moves_toward_ghost_hits(self):
        hot, cold = small_cache(), small_cache()
        rebalancer = CacheRebalancer(
            {"hot": hot, "cold": cold},
            CacheRebalanceConfig(interval_s=0.01),
        )
        thrash(hot, 0, 24)
        cold.lookup(1, 0)  # active but never ghost-hitting
        rebalancer.note_time(0.01)
        assert rebalancer.moves == 1
        assert hot._set_cap == 5 and cold._set_cap == 3
        assert rebalancer.pages_moved == cold.config.num_sets
        assert rebalancer.log[0]["donor"] == "cold"
        assert rebalancer.log[0]["receiver"] == "hot"

    def test_floor_is_never_crossed(self):
        hot, cold = small_cache(), small_cache()
        rebalancer = CacheRebalancer(
            {"hot": hot, "cold": cold},
            CacheRebalanceConfig(interval_s=0.01, floor_fraction=0.5),
        )
        floor = rebalancer._floor["cold"]
        for window in range(1, 20):
            thrash(hot, 0, 24)
            rebalancer.note_time(window * 0.01)
        assert cold._set_cap >= floor
        # Stalls once the donor bottoms out: total capacity conserved.
        assert hot._set_cap + cold._set_cap == 8

    def test_no_move_without_benefit(self):
        a, b = small_cache(), small_cache()
        rebalancer = CacheRebalancer(
            {"a": a, "b": b}, CacheRebalanceConfig(interval_s=0.01)
        )
        # Fits in capacity: lookups but zero ghost hits.
        for page_no in range(4):
            a.lookup(0, page_no)
            a.insert(Page(0, page_no, b""))
        rebalancer.note_time(0.01)
        assert rebalancer.moves == 0

    def test_shrink_evictions_feed_ghost(self):
        a, b = small_cache(), small_cache()
        rebalancer = CacheRebalancer(
            {"a": a, "b": b}, CacheRebalanceConfig(interval_s=0.01)
        )
        for page_no in range(8):
            b.insert(Page(0, page_no, b""))
        thrash(a, 1, 24)
        rebalancer.note_time(0.01)
        assert rebalancer.moves == 1
        assert rebalancer.evictions > 0
        assert len(b) <= b.set_capacity_pages

    def test_decisions_are_deterministic(self):
        def run():
            hot, cold = small_cache(), small_cache()
            rebalancer = CacheRebalancer(
                {"hot": hot, "cold": cold},
                CacheRebalanceConfig(interval_s=0.01),
            )
            for window in range(1, 6):
                thrash(hot, 0, 24)
                thrash(cold, 1, 6)
                rebalancer.note_time(window * 0.01)
            return rebalancer.log

        assert run() == run()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CacheRebalanceConfig(interval_s=0.0)
        with pytest.raises(ValueError):
            CacheRebalanceConfig(floor_fraction=0.0)
        with pytest.raises(ValueError):
            CacheRebalanceConfig(step_sets=0)


def skewed_service(image, **config_kw):
    tenants = [
        TenantSpec(name="hot", max_concurrent=2, cache_bytes=1 << 18),
        TenantSpec(name="cold", max_concurrent=2, cache_bytes=1 << 18),
    ]
    traffics = [
        TenantTraffic(tenant="hot", rate_qps=100.0, apps=("pr", "wcc")),
        TenantTraffic(tenant="cold", rate_qps=10.0, apps=("bfs",)),
    ]
    service = GraphService(
        image,
        tenants,
        ServiceConfig(
            policy="fair",
            cache_rebalance=True,
            cache_rebalance_interval_s=0.005,
            **config_kw,
        ),
    )
    trace = generate_trace(traffics, 0.1, seed=11)
    return service, trace


class TestServiceRebalance:
    def test_needs_two_partitions(self, image):
        with pytest.raises(ValueError):
            GraphService(
                image,
                [TenantSpec(name="solo", max_concurrent=1)],
                ServiceConfig(cache_rebalance=True),
            )

    def test_hot_tenant_gains_capacity(self, image):
        service, trace = skewed_service(image)
        report = service.serve(trace)
        summary = report.sharing["rebalancer"]
        assert summary["moves"] > 0
        assert summary["pages_moved"] > 0
        caps = summary["set_capacities"]
        assert caps["hot"] > caps["cold"]
        assert caps["cold"] >= summary["floors"]["cold"]
        assert service.stats.get("serve.cache_rebalances") == summary["moves"]

    def test_share_gauges_are_sampled(self, image):
        service, trace = skewed_service(image)
        service.serve(trace)
        for name in ("hot", "cold"):
            series = service.stats.series(f"serve.cache_share.{name}")
            assert series, f"no cache_share samples for {name}"
            times = [t for t, _ in series]
            assert times == sorted(times)
        # Shares always sum to 1 across the two partitions.
        hot = dict(service.stats.series("serve.cache_share.hot"))
        cold = dict(service.stats.series("serve.cache_share.cold"))
        for t in hot:
            if t in cold:
                assert hot[t] + cold[t] == pytest.approx(1.0)

    def test_same_seed_runs_identical(self, image):
        service_a, trace_a = skewed_service(image)
        report_a = service_a.serve(trace_a)
        service_b, trace_b = skewed_service(image)
        report_b = service_b.serve(trace_b)
        assert service_a.rebalancer.log == service_b.rebalancer.log
        assert report_a.to_dict() == report_b.to_dict()
        assert service_a.stats.snapshot() == service_b.stats.snapshot()
