"""The serving path replays the batch engine bit for bit.

A single-tenant service run drives each query through the exact code
path ``GraphEngine.run`` uses (the job generator *is* the batch loop),
so its simulated counter stream must be bit-identical to the equivalent
batch runs — the acceptance invariant of the serving layer.
"""

import numpy as np
import pytest

from repro.algorithms.pagerank import PageRankProgram
from repro.bench.datasets import load_dataset
from repro.bench.harness import make_engine
from repro.graph.builder import build_undirected
from repro.safs.page import SAFSFile
from repro.serve import (
    GraphService,
    ServiceConfig,
    TenantSpec,
    TenantTraffic,
    generate_trace,
)
from repro.serve.queries import QueryFactory
from repro.serve.service import JobRecord, ServiceReport
from repro.serve.traffic import Arrival


def batch_sequence(image, count):
    """``count`` sequential PageRank(5) runs on one fresh batch stack."""
    SAFSFile._next_id = 0
    engine = make_engine(image, cache_bytes=1 << 20, num_threads=32, range_shift=8)
    results = []
    programs = []
    for _ in range(count):
        program = PageRankProgram(image.num_vertices)
        results.append(engine.run(program, max_iterations=5))
        programs.append(program)
    return results, programs


class TestSingleTenantBitIdentity:
    def test_one_query_at_time_zero_is_the_batch_run(self):
        image = load_dataset("twitter-sim")
        (batch,), (program,) = batch_sequence(image, 1)
        service = GraphService(
            image,
            [TenantSpec(name="solo", max_concurrent=1)],
            ServiceConfig(policy="fifo", pr_iterations=5),
        )
        report = service.serve(
            [Arrival(time=0.0, tenant="solo", app="pr", index=0)]
        )
        assert report.completed == 1 and report.aborted == 0
        record = report.records[0]
        # Full identity, runtime included: same start of time, same
        # operations in the same order.
        assert record.result.runtime == batch.runtime
        assert record.result.cpu_busy == batch.cpu_busy
        assert record.result.counters == batch.counters
        assert record.result.iterations == batch.iterations
        assert np.array_equal(record.values, program.rank + program.pending)

    def test_sequential_queries_match_sequential_batch_runs(self):
        image = load_dataset("twitter-sim")
        results, _ = batch_sequence(image, 2)
        service = GraphService(
            image,
            [TenantSpec(name="solo", max_concurrent=1)],
            ServiceConfig(policy="fifo", pr_iterations=5),
        )
        report = service.serve(
            [
                Arrival(time=0.0, tenant="solo", app="pr", index=0),
                Arrival(time=0.5, tenant="solo", app="pr", index=1),
            ]
        )
        assert report.completed == 2
        for record, batch in zip(report.records, results):
            # The counter stream (and cpu busy) is bit-identical; only
            # absolute-clock quantities like runtime shift with the
            # arrival offset.
            assert record.result.counters == batch.counters
            assert record.result.cpu_busy == batch.cpu_busy
            assert record.result.iterations == batch.iterations


class TestReportShape:
    @pytest.fixture(scope="class")
    def report(self):
        image = load_dataset("twitter-sim")
        traffics = [
            TenantTraffic(tenant="acme", rate_qps=100.0),
            TenantTraffic(tenant="globex", rate_qps=50.0, apps=("bfs", "wcc")),
        ]
        trace = generate_trace(traffics, 0.1, seed=11)
        service = GraphService(
            image,
            [
                TenantSpec(name="acme", weight=2.0, max_concurrent=3),
                TenantSpec(name="globex", max_concurrent=2),
            ],
            ServiceConfig(policy="fair"),
        )
        return service.serve(trace), trace

    def test_every_arrival_is_accounted_for(self, report):
        report, trace = report
        assert report.completed + report.aborted == len(trace) == report.offered
        assert len(report.records) == len(trace)

    def test_duration_is_the_last_finish(self, report):
        report, _ = report
        assert report.duration_s == max(r.finish_time for r in report.records)

    def test_causality_per_record(self, report):
        report, _ = report
        for record in report.records:
            assert record.start_time >= record.arrival_time
            assert record.finish_time >= record.start_time
            assert record.latency >= record.queue_wait >= 0.0

    def test_to_dict_is_json_ready(self, report):
        import json

        report, _ = report
        payload = report.to_dict()
        json.dumps(payload)
        assert set(payload["tenants"]) == {"acme", "globex"}
        for row in payload["tenants"].values():
            assert row["latency_p99_s"] >= row["latency_p50_s"] >= 0.0


class TestQueryFactory:
    def test_unknown_app_rejected(self):
        image = load_dataset("twitter-sim")
        factory = QueryFactory(image)
        with pytest.raises(ValueError, match="unsupported app"):
            factory.build("sssp")

    def test_kcore_needs_an_undirected_image(self):
        image = load_dataset("twitter-sim")
        assert "kcore" not in QueryFactory(image).supported_apps()
        rng = np.random.default_rng(0)
        edges = rng.integers(0, 50, size=(200, 2), dtype=np.int64)
        undirected = build_undirected(edges, 50, name="kcore-test")
        factory = QueryFactory(image, undirected_image=undirected)
        assert "kcore" in factory.supported_apps()
        query = factory.build("kcore")
        assert query.image is undirected

    def test_service_validates_tenants(self):
        image = load_dataset("twitter-sim")
        with pytest.raises(ValueError, match="unique"):
            GraphService(
                image, [TenantSpec(name="a"), TenantSpec(name="a")]
            )
        with pytest.raises(ValueError, match="at least one tenant"):
            GraphService(image, [])
