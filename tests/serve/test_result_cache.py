"""The cross-query result cache: repeats answered at admission.

Unit semantics of :class:`ResultCache` (TTL expiry on probe,
invalidation hooks, scope isolation) plus the service-level contract:
a repeat query is served at ``result_cache_cost_s`` without touching
the engine, its values equal the producing run's bit for bit, private
scopes never leak across tenants, ``off`` tenants opt out, and the
fingerprint folds in the *effective* parameters so degraded runs can
never masquerade as full-fidelity answers (``docs/io_sharing.md``).
"""

import numpy as np
import pytest

from repro.bench.datasets import load_dataset
from repro.serve import (
    GraphService,
    ResultCache,
    ResultCacheConfig,
    ServiceConfig,
    TenantSpec,
    image_digest,
)
from repro.serve.queries import QueryFactory
from repro.serve.results import RESULT_SCOPE_SHARED
from repro.serve.traffic import Arrival


@pytest.fixture(scope="module")
def image():
    return load_dataset("twitter-sim")


class TestResultCacheUnit:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.lookup("", "fp", now=0.0) is None
        cache.insert("", "fp", values=[1.0], iterations=3, app="pr",
                     now=0.0, source_index=0)
        entry = cache.lookup("", "fp", now=1.0)
        assert entry is not None and entry.values == [1.0]
        assert (cache.hits, cache.misses, cache.insertions) == (1, 1, 1)

    def test_ttl_expires_on_probe(self):
        cache = ResultCache(ResultCacheConfig(ttl_s=1.0))
        cache.insert("", "fp", values=[1.0], iterations=3, app="pr",
                     now=0.0, source_index=0)
        assert cache.lookup("", "fp", now=0.5) is not None
        assert cache.lookup("", "fp", now=2.0) is None
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_scopes_are_isolated(self):
        cache = ResultCache()
        cache.insert("acme", "fp", values=[1.0], iterations=3, app="pr",
                     now=0.0, source_index=0)
        assert cache.lookup(RESULT_SCOPE_SHARED, "fp", now=0.0) is None
        assert cache.lookup("globex", "fp", now=0.0) is None
        assert cache.lookup("acme", "fp", now=0.0) is not None

    def test_invalidate_all_and_by_predicate(self):
        cache = ResultCache()
        for i, app in enumerate(["pr", "wcc"]):
            cache.insert("", f"fp{i}", values=[i], iterations=1, app=app,
                         now=0.0, source_index=i)
        assert cache.invalidate(lambda e: e.app == "pr") == 1
        assert len(cache) == 1
        assert cache.invalidate() == 1
        assert len(cache) == 0
        assert cache.invalidations == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ResultCacheConfig(ttl_s=0.0)
        with pytest.raises(ValueError):
            ResultCacheConfig(hit_cost_s=-1.0)


class TestFingerprint:
    def test_effective_params_fold_in(self, image):
        factory = QueryFactory(image, pr_iterations=5)
        full = factory.fingerprint("pr")
        degraded = factory.fingerprint("pr", pr_iterations=3)
        coarse = factory.fingerprint("pr", pr_tolerance_factor=4.0)
        assert full != degraded
        assert full != coarse
        assert factory.fingerprint("pr") == full

    def test_apps_and_images_differ(self, image):
        factory = QueryFactory(image, pr_iterations=5)
        assert factory.fingerprint("pr") != factory.fingerprint("wcc")
        assert image_digest(image) in factory.fingerprint("pr")

    def test_unknown_app_rejected(self, image):
        factory = QueryFactory(image, pr_iterations=5)
        with pytest.raises(ValueError):
            factory.fingerprint("nonsense")


def serve_repeats(image, arrivals, tenants, **config_kw):
    service = GraphService(
        image,
        tenants,
        ServiceConfig(
            policy="fifo", pr_iterations=5, result_cache=True, **config_kw
        ),
    )
    return service, service.serve(arrivals)


class TestServiceResultCache:
    def test_repeat_served_from_cache_at_hit_cost(self, image):
        tenants = [TenantSpec(name="solo", max_concurrent=1)]
        arrivals = [
            Arrival(time=0.0, tenant="solo", app="pr", index=0),
            Arrival(time=0.05, tenant="solo", app="pr", index=1),
        ]
        service, report = serve_repeats(image, arrivals, tenants)
        assert report.completed == 2
        first, second = sorted(report.records, key=lambda r: r.index)
        assert not first.result_cached
        assert second.result_cached
        assert second.latency == pytest.approx(
            service.config.result_cache_cost_s
        )
        np.testing.assert_array_equal(
            np.asarray(second.values), np.asarray(first.values)
        )
        # Cached answers never touch the I/O stack.
        assert second.bytes_read == 0.0
        assert report.sharing["result_cache"]["hits"] == 1
        assert report.tenants["solo"].result_cache_hits == 1

    def test_shared_scope_crosses_tenants(self, image):
        tenants = [
            TenantSpec(name="a", max_concurrent=1),
            TenantSpec(name="b", max_concurrent=1),
        ]
        arrivals = [
            Arrival(time=0.0, tenant="a", app="pr", index=0),
            Arrival(time=0.05, tenant="b", app="pr", index=1),
        ]
        _, report = serve_repeats(image, arrivals, tenants)
        by_index = sorted(report.records, key=lambda r: r.index)
        assert by_index[1].result_cached

    def test_private_scope_is_isolated(self, image):
        tenants = [
            TenantSpec(name="a", max_concurrent=1, result_cache="private"),
            TenantSpec(name="b", max_concurrent=1, result_cache="private"),
        ]
        arrivals = [
            Arrival(time=0.0, tenant="a", app="pr", index=0),
            Arrival(time=0.05, tenant="b", app="pr", index=1),
            Arrival(time=0.1, tenant="a", app="pr", index=2),
        ]
        _, report = serve_repeats(image, arrivals, tenants)
        by_index = sorted(report.records, key=lambda r: r.index)
        assert not by_index[1].result_cached  # b never saw a's deposit
        assert by_index[2].result_cached      # a's own repeat hits

    def test_off_policy_opts_out(self, image):
        tenants = [
            TenantSpec(name="solo", max_concurrent=1, result_cache="off")
        ]
        arrivals = [
            Arrival(time=0.0, tenant="solo", app="pr", index=0),
            Arrival(time=0.05, tenant="solo", app="pr", index=1),
        ]
        _, report = serve_repeats(image, arrivals, tenants)
        assert not any(r.result_cached for r in report.records)

    def test_ttl_expiry_forces_rerun(self, image):
        tenants = [TenantSpec(name="solo", max_concurrent=1)]
        arrivals = [
            Arrival(time=0.0, tenant="solo", app="pr", index=0),
            Arrival(time=0.2, tenant="solo", app="pr", index=1),
        ]
        service, report = serve_repeats(
            image, arrivals, tenants, result_cache_ttl_s=0.05
        )
        assert not any(r.result_cached for r in report.records)
        assert service.result_cache.expirations == 1

    def test_disabled_cache_never_hits(self, image):
        service = GraphService(
            image,
            [TenantSpec(name="solo", max_concurrent=1)],
            ServiceConfig(policy="fifo", pr_iterations=5),
        )
        report = service.serve(
            [
                Arrival(time=0.0, tenant="solo", app="pr", index=0),
                Arrival(time=0.05, tenant="solo", app="pr", index=1),
            ]
        )
        assert service.result_cache is None
        assert not any(r.result_cached for r in report.records)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(result_cache_ttl_s=-1.0)
        with pytest.raises(ValueError):
            ServiceConfig(result_cache_cost_s=-1.0)
        with pytest.raises(ValueError):
            TenantSpec(name="x", result_cache="sometimes")
