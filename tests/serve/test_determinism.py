"""Serving is a pure function of (config, trace seed): two runs agree
byte for byte — span traces, histograms, reports."""

import numpy as np

from repro.bench.datasets import load_dataset
from repro.obs import Observer, to_jsonl
from repro.obs import registry as reg
from repro.serve import (
    GraphService,
    ServiceConfig,
    TenantSpec,
    TenantTraffic,
    generate_trace,
)

TENANTS = [
    TenantSpec(name="acme", weight=2.0, max_concurrent=3),
    TenantSpec(name="globex", max_concurrent=2, cache_bytes=1 << 18),
]
TRAFFICS = [
    TenantTraffic(
        tenant="acme", rate_qps=120.0, burst_factor=4.0, burst_fraction=0.2
    ),
    TenantTraffic(tenant="globex", rate_qps=60.0, apps=("bfs", "wcc")),
]


def _one_run(image, seed):
    trace = generate_trace(TRAFFICS, 0.1, seed=seed)
    observer = Observer()
    service = GraphService(
        image, TENANTS, ServiceConfig(policy="fair"), observer=observer
    )
    report = service.serve(trace)
    histograms = {
        name: hist.summary()
        for name, hist in service.stats.histograms().items()
        if name.startswith("serve.")
    }
    return to_jsonl(observer), histograms, report.to_dict()


class TestServeDeterminism:
    def test_same_seed_byte_identical_spans_and_histograms(self):
        image = load_dataset("twitter-sim")
        spans_one, hists_one, report_one = _one_run(image, seed=11)
        spans_two, hists_two, report_two = _one_run(image, seed=11)
        assert spans_one == spans_two  # byte-identical JSONL
        assert hists_one == hists_two
        assert report_one == report_two
        # Per-tenant histogram families actually recorded.
        for tenant in ("acme", "globex"):
            assert f"{reg.HIST_SERVE_QUERY_SECONDS}.{tenant}" in hists_one
            assert f"{reg.HIST_SERVE_QUEUE_WAIT_SECONDS}.{tenant}" in hists_one

    def test_different_seeds_differ(self):
        image = load_dataset("twitter-sim")
        spans_one, _, report_one = _one_run(image, seed=11)
        spans_two, _, report_two = _one_run(image, seed=12)
        assert report_one != report_two
        assert spans_one != spans_two
