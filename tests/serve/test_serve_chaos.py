"""Chaos regression suite: faults mid-service never corrupt a query.

The service inherits the fault layer's contract (``docs/fault_model.md``)
job by job: under recoverable chaos every query completes with exactly
the values a clean run produces (faults move simulated time, never
data); under unrecoverable loss a query aborts cleanly with
partial-progress stats — never a wrong answer, never a hang — while the
service itself keeps draining the trace.
"""

import numpy as np
import pytest

from repro.bench.datasets import load_dataset
from repro.bench.harness import make_engine
from repro.algorithms.pagerank import PageRankProgram
from repro.safs.page import SAFSFile
from repro.serve import (
    GraphService,
    ServiceConfig,
    TenantSpec,
    TenantTraffic,
    generate_trace,
)
from repro.serve.queries import QueryFactory
from repro.serve.traffic import Arrival
from repro.sim.faults import (
    DeviceFailure,
    FaultPlan,
    FaultPolicy,
    StuckQueue,
    TransientErrors,
)

#: Recoverable chaos mid-service: flaky reads, a stuck queue and one
#: whole-SSD death, all survivable under CHAOS_POLICY.
CHAOS_PLAN = FaultPlan(
    [
        TransientErrors(device=3, start=0.0, end=10.0, probability=0.15),
        StuckQueue(device=7, start=0.0005, end=0.012),
        DeviceFailure(device=11, at=0.002),
    ],
    seed=42,
)
CHAOS_POLICY = FaultPolicy(
    max_retries=12, retry_backoff=200e-6, request_timeout=0.002
)

#: Nothing recovers from every device failing for good.
TOTAL_LOSS_PLAN = FaultPlan(
    [DeviceFailure(device=d, at=0.0005) for d in range(15)], seed=42
)

TENANTS = [
    TenantSpec(name="acme", weight=2.0, max_concurrent=3),
    TenantSpec(name="globex", max_concurrent=2),
]
TRAFFICS = [
    TenantTraffic(tenant="acme", rate_qps=120.0),
    TenantTraffic(tenant="globex", rate_qps=60.0, apps=("bfs", "wcc")),
]


@pytest.fixture(scope="module")
def image():
    return load_dataset("twitter-sim")


@pytest.fixture(scope="module")
def clean_values(image):
    """Reference outputs per app from fresh single-job runs."""
    values = {}
    for app in ("pr", "bfs", "wcc"):
        factory = QueryFactory(image, pr_iterations=5)
        query = factory.build(app)
        SAFSFile._next_id = 0
        engine = make_engine(image, cache_bytes=1 << 20)
        engine.run(
            query.program,
            initial_active=query.initial_active,
            max_iterations=query.max_iterations,
        )
        values[app] = query.values()
    return values


class TestRecoverableChaos:
    def test_every_query_completes_with_clean_values(self, image, clean_values):
        trace = generate_trace(TRAFFICS, 0.15, seed=11)
        service = GraphService(
            image,
            TENANTS,
            ServiceConfig(policy="fair"),
            fault_plan=CHAOS_PLAN,
            fault_policy=CHAOS_POLICY,
        )
        report = service.serve(trace)
        assert report.completed + report.aborted == len(trace)
        assert report.completed > 0
        for record in report.records:
            if record.ok:
                # Recoverable faults may stretch simulated time but can
                # never change a completed query's answer.
                assert np.array_equal(record.values, clean_values[record.app])
            else:
                assert record.abort_reason
                assert record.result.iterations >= 0
                assert record.result.counters

    def test_single_tenant_chaos_counters_match_batch(self, image):
        SAFSFile._next_id = 0
        engine = make_engine(
            image,
            cache_bytes=1 << 20,
            fault_plan=CHAOS_PLAN,
            fault_policy=CHAOS_POLICY,
        )
        batch = engine.run(PageRankProgram(image.num_vertices), max_iterations=5)
        service = GraphService(
            image,
            [TenantSpec(name="solo", max_concurrent=1)],
            ServiceConfig(policy="fifo", pr_iterations=5),
            fault_plan=CHAOS_PLAN,
            fault_policy=CHAOS_POLICY,
        )
        report = service.serve(
            [Arrival(time=0.0, tenant="solo", app="pr", index=0)]
        )
        record = report.records[0]
        assert record.ok
        # Same fault plan, same clock origin: the chaos run's counter
        # stream is bit-identical to the batch engine's.
        assert record.result.counters == batch.counters
        assert record.result.runtime == batch.runtime
        assert record.result.cpu_busy == batch.cpu_busy


class TestUnrecoverableLoss:
    def test_jobs_abort_cleanly_and_the_service_drains(self, image):
        trace = generate_trace(TRAFFICS, 0.1, seed=3)
        service = GraphService(
            image,
            TENANTS,
            ServiceConfig(policy="fair"),
            fault_plan=TOTAL_LOSS_PLAN,
            fault_policy=CHAOS_POLICY,
        )
        report = service.serve(trace)
        # The service never hangs: every arrival gets a terminal record.
        assert len(report.records) == len(trace)
        assert report.aborted > 0
        for record in report.records:
            if not record.ok:
                assert record.abort_reason
                assert record.values is None
                assert record.finish_time >= record.start_time
        # Tenant abort counts reconcile with the records.
        for name, tenant_report in report.tenants.items():
            assert tenant_report.aborts == sum(
                1 for r in report.records if r.tenant == name and not r.ok
            )
