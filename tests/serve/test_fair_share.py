"""Property tests: fair-share admission never starves, never over-admits,
and tenant busy-time attribution tiles device time exactly."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import build_directed
from repro.serve import (
    GraphService,
    ServiceConfig,
    TenantSpec,
    TenantTraffic,
    generate_trace,
)


def _image():
    rng = np.random.default_rng(0)
    n, m = 120, 600
    edges = rng.integers(0, n, size=(m, 2), dtype=np.int64)
    return build_directed(edges, n, name="prop-serve")


IMAGE = _image()
STARVATION_BOUND = 0.002


@st.composite
def serve_runs(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    policy = draw(st.sampled_from(["fifo", "fair", "deadline"]))
    num_tenants = draw(st.integers(min_value=1, max_value=3))
    tenants, traffics = [], []
    for i in range(num_tenants):
        name = f"t{i}"
        tenants.append(
            TenantSpec(
                name=name,
                weight=draw(st.sampled_from([0.5, 1.0, 2.0])),
                max_concurrent=draw(st.integers(min_value=1, max_value=3)),
                deadline_s=draw(st.sampled_from([None, 0.002, 0.01])),
            )
        )
        bursty = draw(st.booleans())
        traffics.append(
            TenantTraffic(
                tenant=name,
                rate_qps=draw(st.sampled_from([500.0, 1500.0, 3000.0])),
                apps=draw(
                    st.sampled_from([("pr",), ("pr", "bfs"), ("bfs", "wcc")])
                ),
                burst_factor=3.0 if bursty else 1.0,
                burst_fraction=0.2 if bursty else 0.0,
                burst_period_s=0.002,
            )
        )
    trace = generate_trace(traffics, 0.004, seed=seed)
    return tenants, traffics, trace, policy


def _run(tenants, trace, policy):
    service = GraphService(
        IMAGE,
        tenants,
        ServiceConfig(
            policy=policy,
            cache_bytes=1 << 16,
            num_threads=4,
            range_shift=4,
            starvation_bound_s=STARVATION_BOUND,
        ),
    )
    return service, service.serve(trace)


class TestFairShareProperties:
    @given(run=serve_runs())
    @settings(max_examples=12, deadline=None)
    def test_quotas_are_never_exceeded(self, run):
        tenants, _, trace, policy = run
        service, report = _run(tenants, trace, policy)
        for spec in tenants:
            # Peak concurrency ever granted, not just the final count.
            assert service.admission.peak[spec.name] <= spec.max_concurrent
        assert report.completed + report.aborted == len(trace)

    @given(run=serve_runs())
    @settings(max_examples=12, deadline=None)
    def test_device_busy_time_tiles_exactly_across_tenants(self, run):
        tenants, _, trace, policy = run
        service, _ = _run(tenants, trace, policy)
        accountant = service.accountant
        devices = list(service.safs.array.ssds) + list(service.safs.array.spares)
        for ssd in devices:
            # Replaying the attributed charges in order reproduces the
            # device's own float accumulation bit for bit: the split is
            # a true partition of device time, not an approximation.
            assert accountant.replay_busy(ssd.device_index) == ssd.busy_time

    @given(run=serve_runs())
    @settings(max_examples=12, deadline=None)
    def test_no_query_waits_unboundedly(self, run):
        tenants, _, trace, policy = run
        _, report = _run(tenants, trace, policy)
        if not report.records:
            return
        longest_job = max(r.finish_time - r.start_time for r in report.records)
        for record in report.records:
            # Backlog: same-tenant queries in flight when this one
            # arrived — each must drain through the tenant's own quota.
            backlog = sum(
                1
                for other in report.records
                if other.tenant == record.tenant
                and other.arrival_time < record.arrival_time
                and other.finish_time > record.arrival_time
            )
            bound = STARVATION_BOUND + (backlog + 1) * longest_job
            assert record.queue_wait <= bound

    @given(run=serve_runs())
    @settings(max_examples=12, deadline=None)
    def test_quota_waits_cover_every_delayed_start(self, run):
        tenants, _, trace, policy = run
        _, report = _run(tenants, trace, policy)
        delayed = sum(1 for r in report.records if r.queue_wait > 0.0)
        # Every delayed start was counted as a quota wait (the converse
        # need not hold: a blocked arrival can still start on time).
        assert report.quota_waits >= delayed
