"""Cross-query I/O sharing at the service level.

The overlapping-tenant shape: two partitioned tenants issuing the same
pr/wcc repeats, so their cache partitions miss on the same extents while
fetches are still outstanding.  Pinned invariants
(``docs/io_sharing.md``): dedup fires and strictly reduces bytes read
off the array, it never changes a single output value, the page
conservation law holds exactly (clean and under chaos), per-job
``JobRecord`` attribution tiles the global counters, per-tenant opt-out
works, and same-seed runs are byte-identical.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.datasets import load_dataset
from repro.serve import (
    GraphService,
    ServiceConfig,
    TenantSpec,
    TenantTraffic,
    generate_trace,
)
from repro.sim.faults import (
    DeviceFailure,
    FaultPlan,
    FaultPolicy,
    StuckQueue,
    TransientErrors,
)

CHAOS_PLAN = FaultPlan(
    [
        TransientErrors(device=3, start=0.0, end=10.0, probability=0.15),
        StuckQueue(device=7, start=0.0005, end=0.012),
        DeviceFailure(device=11, at=0.002),
    ],
    seed=42,
)
CHAOS_POLICY = FaultPolicy(
    max_retries=12, retry_backoff=200e-6, request_timeout=0.002
)


@pytest.fixture(scope="module")
def image():
    return load_dataset("twitter-sim")


def overlap_tenants(**overrides):
    return [
        TenantSpec(
            name="ridge", max_concurrent=2, cache_bytes=1 << 18, **overrides
        ),
        TenantSpec(
            name="vale", max_concurrent=2, cache_bytes=1 << 18, **overrides
        ),
    ]


def overlap_trace(duration=0.1, seed=11):
    traffics = [
        TenantTraffic(tenant="ridge", rate_qps=60.0, apps=("pr", "wcc")),
        TenantTraffic(tenant="vale", rate_qps=60.0, apps=("pr", "wcc")),
    ]
    return generate_trace(traffics, duration, seed=seed)


def run_overlap(image, share_reads, tenants=None, chaos=False, **kw):
    service = GraphService(
        image,
        tenants if tenants is not None else overlap_tenants(),
        ServiceConfig(policy="fair", share_reads=share_reads, **kw),
        fault_plan=CHAOS_PLAN if chaos else None,
        fault_policy=CHAOS_POLICY if chaos else None,
    )
    report = service.serve(overlap_trace())
    return service, report


def assert_conservation(stats):
    assert stats.get("io.pages_requested") == (
        stats.get("cache.hits")
        + stats.get("io.pages_fetched")
        + stats.get("safs.dedup_pages")
    )


class TestDedupEffect:
    def test_overlapping_mix_dedups_and_reduces_bytes(self, image):
        _, base = run_overlap(image, share_reads=False)
        service, shared = run_overlap(image, share_reads=True)
        stats = service.stats
        assert stats.get("safs.dedup_pages") > 0
        assert stats.get("safs.dedup_waits") > 0
        assert shared.sharing is not None
        assert shared.sharing["dedup_pages"] == stats.get("safs.dedup_pages")
        base_bytes = sum(r.bytes_read for r in base.records)
        shared_bytes = sum(r.bytes_read for r in shared.records)
        assert shared_bytes < base_bytes

    def test_dedup_never_changes_outputs(self, image):
        _, base = run_overlap(image, share_reads=False)
        _, shared = run_overlap(image, share_reads=True)
        assert base.completed == shared.completed
        by_index = {r.index: r for r in base.records}
        for record in shared.records:
            twin = by_index[record.index]
            assert record.ok == twin.ok
            if record.ok:
                np.testing.assert_array_equal(
                    np.asarray(record.values), np.asarray(twin.values)
                )

    def test_conservation_law_exact(self, image):
        service, _ = run_overlap(image, share_reads=True)
        assert_conservation(service.stats)

    def test_sharing_off_reports_no_sharing(self, image):
        service, report = run_overlap(image, share_reads=False)
        assert report.sharing is None
        assert service.stats.get("safs.dedup_pages") == 0


class TestAttribution:
    def test_job_records_tile_global_counters(self, image):
        service, report = run_overlap(image, share_reads=True)
        stats = service.stats
        assert sum(r.bytes_read for r in report.records) == pytest.approx(
            stats.get("array.bytes_read")
        )
        assert sum(r.dedup_pages for r in report.records) == pytest.approx(
            stats.get("safs.dedup_pages")
        )
        assert sum(r.dedup_waits for r in report.records) == pytest.approx(
            stats.get("safs.dedup_waits")
        )

    def test_some_job_carries_dedup(self, image):
        _, report = run_overlap(image, share_reads=True)
        assert any(r.dedup_pages > 0 for r in report.records)


class TestPartitionHitRates:
    def test_hit_rate_is_partition_local(self, image):
        service, _ = run_overlap(image, share_reads=True)
        for name, partition in service.cache_partitions.items():
            assert partition.lookups > 0
            assert partition.hit_rate() == pytest.approx(
                partition.hits / partition.lookups
            )
        # Local tallies, not the shared counters: the partitions'
        # lookups sum to strictly less than a collector-wide total
        # would (the shared cache and both partitions all add there).
        rates = {
            name: p.hit_rate() for name, p in service.cache_partitions.items()
        }
        assert all(0.0 <= rate <= 1.0 for rate in rates.values())

    def test_timeline_samples_cache_hit_rate_gauges(self, image):
        from repro.obs.timeline import TimelineConfig, TimelineSampler

        timeline = TimelineSampler(TimelineConfig(interval_s=0.005))
        service = GraphService(
            image,
            overlap_tenants(),
            ServiceConfig(policy="fair", share_reads=True),
            timeline=timeline,
        )
        service.serve(overlap_trace())
        for name in ("ridge", "vale"):
            assert service.stats.series(f"serve.cache_hit_rate.{name}")
            assert service.stats.series(f"serve.cache_share.{name}")


class TestTenantOptOut:
    def test_share_false_tenants_never_dedup(self, image):
        service, _ = run_overlap(
            image, share_reads=True, tenants=overlap_tenants(share_reads=False)
        )
        assert service.stats.get("safs.dedup_pages") == 0

    def test_mixed_opt_out_only_sharing_tenants_attach(self, image):
        tenants = [
            TenantSpec(name="ridge", max_concurrent=2, cache_bytes=1 << 18),
            TenantSpec(
                name="vale",
                max_concurrent=2,
                cache_bytes=1 << 18,
                share_reads=False,
            ),
        ]
        _, report = run_overlap(image, share_reads=True, tenants=tenants)
        for record in report.records:
            if record.tenant == "vale":
                assert record.dedup_pages == 0


class TestChaos:
    def test_waiters_survive_chaos_and_conserve(self, image):
        service, report = run_overlap(image, share_reads=True, chaos=True)
        # No hang, every arrival accounted, conservation exact even with
        # aborted dispatches in the stream.
        assert report.completed + report.aborted == report.offered
        assert_conservation(service.stats)

    def test_chaos_outputs_match_clean_outputs(self, image):
        _, clean = run_overlap(image, share_reads=True)
        _, chaos = run_overlap(image, share_reads=True, chaos=True)
        clean_by_index = {r.index: r for r in clean.records if r.ok}
        for record in chaos.records:
            if not record.ok:
                continue
            twin = clean_by_index.get(record.index)
            if twin is None or record.result_cached:
                continue
            np.testing.assert_array_equal(
                np.asarray(record.values), np.asarray(twin.values)
            )


class TestDeterminism:
    def test_same_seed_reports_byte_identical(self, image):
        service_a, a = run_overlap(image, share_reads=True)
        service_b, b = run_overlap(image, share_reads=True)
        assert a.to_dict() == b.to_dict()
        assert service_a.stats.snapshot() == service_b.stats.snapshot()

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=1, max_value=50))
    def test_dedup_never_changes_outputs_property(self, image, seed):
        def run(share):
            service = GraphService(
                image,
                overlap_tenants(),
                ServiceConfig(policy="fair", share_reads=share),
            )
            return service.serve(
                generate_trace(
                    [
                        TenantTraffic(
                            tenant="ridge", rate_qps=60.0, apps=("pr", "wcc")
                        ),
                        TenantTraffic(
                            tenant="vale", rate_qps=60.0, apps=("pr", "wcc")
                        ),
                    ],
                    0.05,
                    seed=seed,
                )
            )

        base, shared = run(False), run(True)
        assert base.completed == shared.completed
        by_index = {r.index: r for r in base.records}
        for record in shared.records:
            twin = by_index[record.index]
            assert record.ok == twin.ok
            if record.ok:
                np.testing.assert_array_equal(
                    np.asarray(record.values), np.asarray(twin.values)
                )
