"""End-to-end query tracing: the issue's acceptance criteria.

One adversarial serve run — queue-cap shedding, brownout degradation
and running-job deadline cancellation all firing — must yield, per
query id, a complete admission→outcome critical path from
:func:`repro.obs.query_path`:

- a **shed** query: queued, then shed, and *nothing else* — it never
  became a job, so no engine spans carry its id;
- a **brownout-degraded** query: queued → admitted (``degraded``) →
  iteration barriers and I/O → completed, every engine span tagged;
- a **deadline-cancelled** query: queued → admitted → barriers →
  deadline-abort → aborted, with the abort's iteration recorded.

The burn-rate events the same run produces must be consistent with the
:class:`ServiceReport` event log (time-ordered, inside the run, valid
``repro.slo/v1`` document), and a *batch* run armed with the same
observer type must carry no query records at all — the serving-layer
tagging is invisible outside the service.
"""

import numpy as np
import pytest

from repro.bench.datasets import load_dataset
from repro.bench.harness import make_engine, run_algorithm
from repro.graph.builder import build_directed
from repro.obs import (
    Observer,
    TimelineSampler,
    arm,
    build_slo_report,
    query_path,
    to_jsonl,
    validate_slo_report,
)
from repro.serve import (
    GraphService,
    OverloadConfig,
    ServiceConfig,
    TenantSpec,
    TenantTraffic,
    generate_trace,
)


def _image():
    rng = np.random.default_rng(0)
    edges = rng.integers(0, 120, size=(600, 2), dtype=np.int64)
    return build_directed(edges, 120, name="trace-accept")


#: Tight deadline + brownout + small per-tenant queue cap: one run in
#: which sheds, degraded admissions and running-job deadline aborts all
#: occur (pinned below — the fixture fails loudly if the mix drifts).
def _traced_run():
    tenants = [
        TenantSpec(
            name="acme",
            weight=2.0,
            max_concurrent=2,
            deadline_s=0.001,
            slo_latency_s=0.003,
            slo_availability=0.95,
        ),
        TenantSpec(name="globex", max_concurrent=1, queue_cap=2, degradable=False),
    ]
    traffics = [
        TenantTraffic(tenant="acme", rate_qps=12_000.0),
        TenantTraffic(tenant="globex", rate_qps=6000.0, apps=("bfs", "wcc")),
    ]
    trace = generate_trace(traffics, 0.008, seed=5)
    config = ServiceConfig(
        policy="fair",
        pr_iterations=5,
        overload=OverloadConfig(
            tenant_queue_cap=12,
            global_queue_cap=24,
            enforce_deadlines=True,
            brownout=True,
            window_s=0.002,
            sample_period_s=0.0002,
            wait_budget_s=0.001,
        ),
    )
    observer = Observer()
    timeline = TimelineSampler()
    service = GraphService(
        _image(), tenants, config, observer=observer, timeline=timeline
    )
    report = service.serve(trace)
    return service, observer, timeline, report


@pytest.fixture(scope="module")
def run():
    return _traced_run()


def _events(path):
    return [r["event"] for r in path if r["type"] == "query"]


class TestQueryPaths:
    def test_run_produces_all_three_outcome_classes(self, run):
        _, _, _, report = run
        assert report.shed > 0
        assert report.deadline_aborts > 0
        assert any(r.degraded and r.ok for r in report.records)

    def test_shed_query_path_is_queued_then_shed(self, run):
        _, observer, _, report = run
        shed = report.sheds[0]
        path = query_path(observer, shed.index)
        assert _events(path) == ["queued", "shed"]
        # A shed query never became a job: no engine spans carry it.
        assert all(r["type"] == "query" for r in path)
        shed_record = path[-1]
        assert shed_record["reason"] == shed.reason
        assert shed_record["time"] == shed.shed_time
        assert shed_record["age"] == pytest.approx(shed.age)

    def test_degraded_query_path_runs_admission_to_completion(self, run):
        _, observer, _, report = run
        record = next(r for r in report.records if r.degraded and r.ok)
        path = query_path(observer, record.index)
        events = _events(path)
        assert events[0] == "queued"
        assert "admitted" in events and events[-1] == "completed"
        admitted = next(r for r in path if r.get("event") == "admitted")
        assert admitted["degraded"] is True
        assert admitted["queue_wait"] == pytest.approx(record.queue_wait)
        # The engine spans its steps produced are tagged and joined in.
        types = {r["type"] for r in path}
        assert "iteration" in types and "io" in types
        barriers = [r for r in path if r.get("event") == "barrier"]
        assert barriers  # at least one iteration barrier crossed
        completed = path[-1]
        assert completed["latency"] == pytest.approx(record.latency)
        assert completed["iterations"] == record.iterations

    def test_deadline_cancelled_query_path_ends_in_abort(self, run):
        _, observer, _, report = run
        record = next(
            r
            for r in report.records
            if not r.ok and r.abort_reason and "deadline" in r.abort_reason
        )
        path = query_path(observer, record.index)
        events = _events(path)
        assert events[0] == "queued"
        assert "admitted" in events
        assert "deadline-abort" in events
        assert events[-1] == "aborted"
        assert events.index("admitted") < events.index("deadline-abort")
        abort = next(r for r in path if r.get("event") == "deadline-abort")
        assert abort["iteration"] <= record.iterations
        aborted = path[-1]
        assert aborted["reason"] == record.abort_reason

    def test_every_path_is_time_ordered_and_single_query(self, run):
        _, observer, _, report = run
        for record in report.records[:10]:
            qid = record.index
            path = query_path(observer, qid)
            lifecycle = [r for r in path if r["type"] == "query"]
            times = [r["time"] for r in lifecycle]
            assert times == sorted(times)
            assert all(r["query"] == qid for r in path)


class TestBurnEventsAgainstServiceLog:
    def test_slo_events_interleave_with_overload_events(self, run):
        service, _, timeline, report = run
        assert report.slo is not None and report.slo["events"]
        duration = report.duration_s
        for event in report.slo["events"]:
            assert 0.0 <= event["time"] <= duration
            assert event["tenant"] == "acme"  # the only declaring tenant
        doc = build_slo_report(report, service.slo, timeline, label="accept")
        assert validate_slo_report(doc) == []

    def test_burn_reflects_actual_badness(self, run):
        _, _, _, report = run
        row = report.slo["tenants"]["acme"]["availability"]
        bad = sum(1 for s in report.sheds if s.tenant == "acme") + sum(
            1 for r in report.records if r.tenant == "acme" and not r.ok
        )
        good = sum(1 for r in report.records if r.tenant == "acme" and r.ok)
        assert row["bad"] == bad
        assert row["good"] == good


class TestBatchRunsStayUntagged:
    def test_batch_trace_carries_no_query_records(self):
        engine = make_engine(load_dataset("page-sim"))
        observer = arm(engine)
        run_algorithm(engine, "pr", max_iterations=5)
        assert observer.query_spans == []
        assert '"query"' not in to_jsonl(observer)
