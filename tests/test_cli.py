"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro import cli
from repro.graph.io_edge_list import load_edges_npz, save_edges_text


class TestGenerate:
    def test_writes_npz(self, tmp_path, capsys):
        out = tmp_path / "tw.npz"
        rc = cli.main(["generate", "--dataset", "twitter-sim", "--out", str(out)])
        assert rc == 0
        edges, num_vertices = load_edges_npz(out)
        assert num_vertices == 8192
        assert edges.shape[1] == 2
        assert "twitter-sim" in capsys.readouterr().out

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["generate", "--dataset", "nope", "--out", "x.npz"])


class TestRun:
    def test_run_on_edge_file(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        rng = np.random.default_rng(0)
        edges = rng.integers(0, 64, size=(256, 2))
        save_edges_text(path, edges, 64)
        rc = cli.main(
            [
                "run",
                "--algorithm",
                "bfs",
                "--edges",
                str(path),
                "--threads",
                "4",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "runtime_s" in out
        assert "bfs" in out

    def test_run_in_memory_mode(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        rng = np.random.default_rng(1)
        save_edges_text(path, rng.integers(0, 32, size=(128, 2)), 32)
        rc = cli.main(
            [
                "run",
                "--algorithm",
                "wcc",
                "--edges",
                str(path),
                "--mode",
                "in-memory",
                "--threads",
                "2",
            ]
        )
        assert rc == 0
        assert "in-memory" in capsys.readouterr().out

    def test_run_with_trace(self, tmp_path, capsys):
        graph = tmp_path / "g.txt"
        trace = tmp_path / "trace.csv"
        rng = np.random.default_rng(2)
        save_edges_text(graph, rng.integers(0, 32, size=(128, 2)), 32)
        rc = cli.main(
            [
                "run",
                "--algorithm",
                "bfs",
                "--edges",
                str(graph),
                "--threads",
                "2",
                "--trace",
                str(trace),
            ]
        )
        assert rc == 0
        assert trace.exists()
        assert trace.read_text().startswith("iteration,")

    def test_run_without_input_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["run", "--algorithm", "bfs"])


class TestRobustnessFlags:
    def _graph(self, tmp_path, seed=3, vertices=64):
        path = tmp_path / "g.txt"
        rng = np.random.default_rng(seed)
        save_edges_text(path, rng.integers(0, vertices, size=(256, 2)), vertices)
        return path

    def test_checkpoint_then_resume(self, tmp_path, capsys):
        graph = self._graph(tmp_path)
        ckpt = tmp_path / "ckpts"
        base = [
            "run", "--algorithm", "pr", "--edges", str(graph),
            "--threads", "4", "--checkpoint-dir", str(ckpt),
        ]
        rc = cli.main(base + ["--max-iterations", "4"])
        assert rc == 0
        assert any(p.name.startswith("ckpt_iter_") for p in ckpt.iterdir())
        rc = cli.main(base + ["--resume", "--max-iterations", "30"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "resuming from the iteration-4 checkpoint" in out

    def test_resume_needs_checkpoint_dir(self, tmp_path):
        graph = self._graph(tmp_path)
        with pytest.raises(SystemExit):
            cli.main(
                ["run", "--algorithm", "pr", "--edges", str(graph), "--resume"]
            )

    def test_fault_seed_runs_chaos(self, tmp_path, capsys):
        graph = self._graph(tmp_path)
        rc = cli.main(
            [
                "run", "--algorithm", "bfs", "--edges", str(graph),
                "--threads", "4", "--fault-seed", "7", "--parity",
            ]
        )
        assert rc == 0
        assert "runtime_s" in capsys.readouterr().out

    def test_fault_seed_needs_semi_external(self, tmp_path):
        graph = self._graph(tmp_path)
        with pytest.raises(SystemExit):
            cli.main(
                [
                    "run", "--algorithm", "bfs", "--edges", str(graph),
                    "--mode", "in-memory", "--fault-seed", "7",
                ]
            )

    def test_parity_needs_semi_external(self, tmp_path):
        graph = self._graph(tmp_path)
        with pytest.raises(SystemExit):
            cli.main(
                [
                    "run", "--algorithm", "bfs", "--edges", str(graph),
                    "--mode", "in-memory", "--parity",
                ]
            )


class TestSpanTracing:
    def _graph(self, tmp_path, seed=11, vertices=64):
        path = tmp_path / "g.txt"
        rng = np.random.default_rng(seed)
        save_edges_text(path, rng.integers(0, vertices, size=(256, 2)), vertices)
        return path

    def test_run_writes_span_and_chrome_traces(self, tmp_path, capsys):
        import json

        graph = self._graph(tmp_path)
        spans = tmp_path / "run.jsonl"
        chrome = tmp_path / "run.trace.json"
        rc = cli.main(
            [
                "run", "--algorithm", "bfs", "--edges", str(graph),
                "--threads", "4",
                "--trace-spans", str(spans),
                "--trace-chrome", str(chrome),
            ]
        )
        assert rc == 0
        records = [json.loads(line) for line in spans.read_text().splitlines()]
        assert {r["type"] for r in records} >= {"iteration", "io", "device"}
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]

    def test_trace_spans_needs_semi_external(self, tmp_path):
        graph = self._graph(tmp_path)
        with pytest.raises(SystemExit):
            cli.main(
                [
                    "run", "--algorithm", "bfs", "--edges", str(graph),
                    "--mode", "in-memory", "--trace-spans", "x.jsonl",
                ]
            )

    def test_abort_still_writes_partial_traces(self, tmp_path, capsys, monkeypatch):
        # Force a mid-run abort after some real iterations: the CLI must
        # salvage the partial per-iteration CSV and the span traces.
        from repro.core.engine import IterationAborted
        from repro.sim.faults import UnrecoverableIOError

        real = cli.run_algorithm

        def aborting(engine, app, **kwargs):
            result = real(engine, app, max_iterations=2)
            raise IterationAborted(
                2, UnrecoverableIOError(0, result.runtime, "injected"), result
            )

        monkeypatch.setattr(cli, "run_algorithm", aborting)
        graph = self._graph(tmp_path)
        trace = tmp_path / "trace.csv"
        spans = tmp_path / "trace.jsonl"
        rc = cli.main(
            [
                "run", "--algorithm", "pr", "--edges", str(graph),
                "--threads", "4",
                "--trace", str(trace), "--trace-spans", str(spans),
            ]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "aborted" in err and "partial" in err
        assert trace.read_text().startswith("iteration,")
        assert len(trace.read_text().splitlines()) == 3  # header + 2 rows
        assert spans.exists() and spans.read_text()


class TestProfile:
    def test_profile_writes_valid_document(self, tmp_path, capsys):
        import json

        from repro.obs.report import PROFILE_SCHEMA, validate_profile

        out = tmp_path / "profile.json"
        rc = cli.main(
            [
                "profile", "--algorithm", "pr", "--dataset", "page-sim",
                "--max-iterations", "3", "--out", str(out),
            ]
        )
        assert rc == 0
        profile = json.loads(out.read_text())
        assert profile["schema"] == PROFILE_SCHEMA
        assert validate_profile(profile) == []
        assert len(profile["iterations"]) == 3
        out_text = capsys.readouterr().out
        assert "totals:" in out_text


class TestSlo:
    def test_slo_writes_valid_document_and_timeline(self, tmp_path, capsys):
        import json

        from repro.obs.slo import SLO_SCHEMA, validate_slo_report

        out = tmp_path / "slo.json"
        timeline = tmp_path / "timeline.md"
        rc = cli.main(
            [
                "slo", "--dataset", "page-sim", "--duration", "0.02",
                "--seed", "11", "--overload",
                "--tenant",
                "name=acme,rate=400,quota=2,"
                "slo-latency=0.02,slo-target=0.9,slo-availability=0.9",
                "--out", str(out), "--timeline", str(timeline),
            ]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == SLO_SCHEMA
        assert validate_slo_report(doc) == []
        assert "acme" in doc["slo"]["tenants"]
        assert doc["timeline"]
        assert timeline.read_text().startswith("| window |")
        out_text = capsys.readouterr().out
        assert "latency" in out_text and "availability" in out_text

    def test_slo_requires_a_declared_objective(self, tmp_path):
        with pytest.raises(SystemExit, match="declaring an objective"):
            cli.main(
                [
                    "slo", "--dataset", "page-sim", "--duration", "0.01",
                    "--tenant", "name=acme,rate=200,quota=2",
                    "--out", str(tmp_path / "slo.json"),
                ]
            )


class TestGraphFormat:
    def _graph(self, tmp_path, seed=5, vertices=64):
        path = tmp_path / "g.txt"
        rng = np.random.default_rng(seed)
        save_edges_text(path, rng.integers(0, vertices, size=(256, 2)), vertices)
        return path

    def test_run_with_format_v2(self, tmp_path, capsys):
        graph = self._graph(tmp_path)
        rc = cli.main(
            [
                "run", "--algorithm", "pr", "--edges", str(graph),
                "--threads", "4", "--graph-format", "v2",
                "--max-iterations", "5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "format" in out and "v2" in out
        assert "compression" in out

    def test_run_defaults_to_v1(self, tmp_path, capsys):
        graph = self._graph(tmp_path)
        rc = cli.main(
            [
                "run", "--algorithm", "bfs", "--edges", str(graph),
                "--threads", "4",
            ]
        )
        assert rc == 0
        assert "v1" in capsys.readouterr().out

    def test_unknown_format_rejected(self, tmp_path):
        graph = self._graph(tmp_path)
        with pytest.raises(SystemExit):
            cli.main(
                [
                    "run", "--algorithm", "bfs", "--edges", str(graph),
                    "--graph-format", "v3",
                ]
            )

    def test_generate_records_format_run_honours_it(self, tmp_path, capsys):
        from repro.graph.io_edge_list import stored_graph_format

        out = tmp_path / "tw.npz"
        rc = cli.main(
            [
                "generate", "--dataset", "twitter-sim", "--out", str(out),
                "--graph-format", "v2",
            ]
        )
        assert rc == 0
        assert "v2" in capsys.readouterr().out
        assert stored_graph_format(out) == "v2"
        rc = cli.main(
            [
                "run", "--algorithm", "bfs", "--edges", str(out),
                "--threads", "4",
            ]
        )
        assert rc == 0
        assert "v2" in capsys.readouterr().out

    def test_generate_without_format_stays_loadable(self, tmp_path):
        from repro.graph.io_edge_list import stored_graph_format

        out = tmp_path / "tw.npz"
        rc = cli.main(["generate", "--dataset", "twitter-sim", "--out", str(out)])
        assert rc == 0
        assert stored_graph_format(out) == "v1"


class TestGraphStats:
    def test_stats_on_dataset(self, capsys):
        rc = cli.main(["graph", "stats", "--dataset", "twitter-sim"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "degree distribution" in out
        assert "v1_MB" in out and "v2_MB" in out
        assert "compression" in out

    def test_stats_on_edge_file(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        rng = np.random.default_rng(9)
        save_edges_text(path, rng.integers(0, 64, size=(256, 2)), 64)
        rc = cli.main(["graph", "stats", "--edges", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "p50" in out and "p99" in out

    def test_stats_without_input_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["graph", "stats"])


class TestBench:
    def test_table1(self, capsys):
        rc = cli.main(["bench", "--experiment", "table1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "twitter-sim" in out
        assert "page-sim" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["bench", "--experiment", "fig99"])
