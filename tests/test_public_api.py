"""The public API surface: every exported name resolves and is documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro.sim",
    "repro.safs",
    "repro.graph",
    "repro.core",
    "repro.algorithms",
    "repro.baselines",
    "repro.bench",
    "repro.obs",
    "repro.serve",
]


@pytest.mark.parametrize("package_name", PACKAGES)
class TestPublicSurface:
    def test_all_exports_resolve(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), f"{package_name} has no __all__"
        for name in package.__all__:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_package_documented(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__ and len(package.__doc__) > 40

    def test_exported_callables_documented(self, package_name):
        package = importlib.import_module(package_name)
        undocumented = []
        for name in package.__all__:
            obj = getattr(package, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, f"{package_name}: {undocumented}"


class TestCrossPackageConsistency:
    def test_no_export_name_collisions_hide_different_objects(self):
        # A name exported by two packages must be the same object (e.g.
        # EdgeType re-exports) or live in clearly different domains.
        seen = {}
        collisions = []
        for package_name in PACKAGES:
            package = importlib.import_module(package_name)
            for name in package.__all__:
                obj = getattr(package, name)
                if name in seen and seen[name][1] is not obj:
                    collisions.append((name, seen[name][0], package_name))
                seen[name] = (package_name, obj)
        assert not collisions, collisions

    def test_top_level_modules_importable(self):
        for module in (
            "repro.cli",
            "repro.core.tracing",
            "repro.graph.construction",
            "repro.graph.validation",
            "repro.graph.transform",
            "repro.sim.numa",
            "repro.sim.calibration",
            "repro.safs.write_path",
            "repro.obs.registry",
            "repro.obs.spans",
            "repro.obs.report",
            "repro.bench.experiments",
            "repro.bench.extra_experiments",
            "repro.algorithms.louvain",
            "repro.algorithms.scc",
            "repro.algorithms.bc_full",
        ):
            importlib.import_module(module)


class TestPackaging:
    def test_version_matches_pyproject(self):
        import pathlib
        import re

        import repro

        pyproject = (
            pathlib.Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
        ).read_text()
        declared = re.search(r'^version = "([^"]+)"', pyproject, re.M).group(1)
        assert repro.__version__ == declared

    def test_console_script_target_exists(self):
        from repro.cli import main

        assert callable(main)
