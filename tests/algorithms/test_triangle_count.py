"""Triangle counting against networkx, in both modes."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.triangle_count import TriangleCountProgram, triangle_count
from repro.core.config import ExecutionMode
from repro.graph.builder import build_directed, build_undirected

from tests.conftest import engine_for


@pytest.mark.parametrize("mode", list(ExecutionMode))
class TestTriangleCorrectness:
    def test_er_directed(self, er_image, er_ugraph, mode):
        counts, result = triangle_count(engine_for(er_image, mode=mode))
        expected = nx.triangles(er_ugraph)
        for v in range(er_image.num_vertices):
            assert counts[v] == expected[v]

    def test_er_undirected(self, er_uimage, er_ugraph, mode):
        counts, _ = triangle_count(engine_for(er_uimage, mode=mode))
        expected = nx.triangles(er_ugraph)
        for v in range(er_uimage.num_vertices):
            assert counts[v] == expected[v]


class TestTriangleEdgeCases:
    def test_single_triangle(self):
        image = build_undirected(np.array([[0, 1], [1, 2], [0, 2]]), 3, name="tri")
        counts, _ = triangle_count(engine_for(image, range_shift=1))
        assert counts.tolist() == [1, 1, 1]

    def test_no_triangles_in_a_star(self):
        edges = np.array([[0, i] for i in range(1, 6)])
        image = build_undirected(edges, 6, name="star")
        counts, _ = triangle_count(engine_for(image, range_shift=1))
        assert counts.sum() == 0

    def test_reciprocal_directed_edges_count_once(self):
        # Directed triangle with every edge reciprocated is still one
        # triangle of the undirected projection.
        edges = np.array(
            [[0, 1], [1, 0], [1, 2], [2, 1], [0, 2], [2, 0]]
        )
        image = build_directed(edges, 3, name="recip")
        counts, _ = triangle_count(engine_for(image, range_shift=1))
        assert counts.tolist() == [1, 1, 1]

    def test_total_triangles_property(self, er_image, er_ugraph):
        engine = engine_for(er_image)
        program = TriangleCountProgram(er_image.num_vertices, True)
        engine.run(program)
        total = sum(nx.triangles(er_ugraph).values()) // 3
        assert program.total_triangles == total

    def test_transient_buffers_drained(self, er_image):
        engine = engine_for(er_image)
        program = TriangleCountProgram(er_image.num_vertices, True)
        engine.run(program)
        assert not program._own_parts
        assert not program._neighborhood
        assert not program._nbr_parts
        assert not program._outstanding

    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=15, deadline=None)
    def test_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 40))
        edges = rng.integers(0, n, size=(3 * n, 2), dtype=np.int64)
        image = build_directed(edges, n, name=f"triprop{seed}")
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from((int(u), int(v)) for u, v in edges if u != v)
        counts, _ = triangle_count(engine_for(image, num_threads=2, range_shift=3))
        expected = nx.triangles(graph)
        assert all(counts[v] == expected[v] for v in range(n))
