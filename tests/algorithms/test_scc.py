"""Tests for strongly connected components by coloring."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.scc import UNASSIGNED, scc
from repro.core.config import ExecutionMode
from repro.graph.builder import build_directed, build_undirected

from tests.conftest import engine_for


def grouping(labels):
    groups = {}
    for v, c in enumerate(labels):
        groups.setdefault(int(c), set()).add(v)
    return {frozenset(g) for g in groups.values()}


@pytest.mark.parametrize("mode", list(ExecutionMode))
class TestSCCCorrectness:
    def test_er_graph(self, er_image, er_digraph, mode):
        labels, result = scc(engine_for(er_image, mode=mode))
        expected = {frozenset(c) for c in nx.strongly_connected_components(er_digraph)}
        assert grouping(labels) == expected
        assert (labels != UNASSIGNED).all()

    def test_rmat_graph(self, rmat_image, rmat_digraph, mode):
        labels, _ = scc(engine_for(rmat_image, mode=mode))
        expected = {
            frozenset(c) for c in nx.strongly_connected_components(rmat_digraph)
        }
        assert grouping(labels) == expected


class TestSCCEdgeCases:
    def test_directed_cycle_is_one_scc(self):
        edges = np.array([[0, 1], [1, 2], [2, 0]])
        image = build_directed(edges, 3, name="cyc")
        labels, _ = scc(engine_for(image, range_shift=1))
        assert len(set(labels.tolist())) == 1

    def test_dag_is_all_singletons(self):
        edges = np.array([[0, 1], [1, 2], [0, 2]])
        image = build_directed(edges, 3, name="dag")
        labels, _ = scc(engine_for(image, range_shift=1))
        assert len(set(labels.tolist())) == 3

    def test_two_cycles_with_bridge(self):
        edges = np.array(
            [[0, 1], [1, 0], [2, 3], [3, 2], [1, 2]]
        )
        image = build_directed(edges, 4, name="2cyc")
        labels, _ = scc(engine_for(image, range_shift=1))
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_label_is_component_maximum(self, er_image, er_digraph):
        labels, _ = scc(engine_for(er_image))
        for component in nx.strongly_connected_components(er_digraph):
            assert all(labels[v] == max(component) for v in component)

    def test_isolated_vertices(self):
        image = build_directed(np.zeros((0, 2), dtype=np.int64), 5, name="iso")
        labels, _ = scc(engine_for(image, range_shift=1))
        assert labels.tolist() == [0, 1, 2, 3, 4]

    def test_undirected_rejected(self):
        image = build_undirected(np.array([[0, 1]]), 2)
        with pytest.raises(ValueError):
            scc(engine_for(image, range_shift=1))

    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=15, deadline=None)
    def test_random_digraphs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 60))
        edges = rng.integers(0, n, size=(3 * n, 2), dtype=np.int64)
        image = build_directed(edges, n, name=f"sccprop{seed}")
        digraph = nx.DiGraph()
        digraph.add_nodes_from(range(n))
        digraph.add_edges_from(map(tuple, edges.tolist()))
        labels, _ = scc(engine_for(image, num_threads=2, range_shift=3))
        expected = {
            frozenset(c) for c in nx.strongly_connected_components(digraph)
        }
        assert grouping(labels) == expected
