"""Tests for weighted PageRank against a direct fixpoint reference."""

import numpy as np
import pytest

from repro.algorithms.weighted_pagerank import (
    WeightedPageRankProgram,
    weighted_pagerank,
)
from repro.core.config import ExecutionMode
from repro.graph.builder import _dedup, build_directed

from tests.conftest import engine_for


@pytest.fixture(scope="module")
def weighted_image():
    rng = np.random.default_rng(12)
    edges = rng.integers(0, 120, size=(700, 2), dtype=np.int64)
    weights = rng.uniform(0.1, 3.0, size=len(edges)).astype(np.float32)
    return build_directed(edges, 120, name="wpr", weights=weights)


def reference(image, damping=0.85, sweeps=300):
    n = image.num_vertices
    indptr = image.out_csr.indptr
    indices = image.out_csr.indices
    weights = np.frombuffer(image.attr_bytes[list(image.attr_bytes)[0]], dtype="<f4")
    rank = np.full(n, 1.0 - damping)
    for _ in range(sweeps):
        updated = np.full(n, 1.0 - damping)
        for v in range(n):
            w = weights[indptr[v] : indptr[v + 1]].astype(np.float64)
            total = w.sum()
            if total > 0:
                updated[indices[indptr[v] : indptr[v + 1]]] += (
                    damping * rank[v] * w / total
                )
        rank = updated
    return rank


@pytest.mark.parametrize("mode", list(ExecutionMode))
class TestWeightedPageRank:
    def test_converges_to_reference(self, weighted_image, mode):
        ranks, result = weighted_pagerank(
            engine_for(weighted_image, mode=mode),
            max_iterations=120,
            tolerance=1e-11,
        )
        expected = reference(weighted_image)
        assert np.abs(ranks - expected).max() < 1e-4


class TestWeightedPageRankBehaviour:
    def test_heavily_weighted_target_ranks_higher(self):
        # 0 -> 1 with weight 9, 0 -> 2 with weight 1.
        edges = np.array([[0, 1], [0, 2]])
        weights = np.array([9.0, 1.0], dtype=np.float32)
        image = build_directed(edges, 3, name="wpr-skew", weights=weights)
        ranks, _ = weighted_pagerank(
            engine_for(image, range_shift=1), max_iterations=20, tolerance=1e-12
        )
        assert ranks[1] > ranks[2]

    def test_uniform_weights_match_unweighted(self):
        rng = np.random.default_rng(3)
        edges = rng.integers(0, 50, size=(250, 2), dtype=np.int64)
        deduped, _ = _dedup(np.asarray(edges), None)
        ones = np.ones(len(edges), dtype=np.float32)
        weighted = build_directed(edges, 50, name="wpr-u", weights=ones)
        plain = build_directed(edges, 50, name="wpr-p")
        from repro.algorithms.pagerank import pagerank

        w_ranks, _ = weighted_pagerank(
            engine_for(weighted, range_shift=3), max_iterations=80, tolerance=1e-11
        )
        p_ranks, _ = pagerank(
            engine_for(plain, range_shift=3), max_iterations=80, tolerance=1e-11
        )
        assert np.abs(w_ranks - p_ranks).max() < 1e-6

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            WeightedPageRankProgram(4, damping=1.0)
        with pytest.raises(ValueError):
            WeightedPageRankProgram(4, tolerance=0.0)

    def test_unweighted_image_rejected(self, er_image):
        with pytest.raises(ValueError):
            weighted_pagerank(engine_for(er_image), max_iterations=2)
