"""Tests for full and sampled betweenness centrality."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.bc_full import (
    betweenness_centrality_full,
    betweenness_centrality_sampled,
)
from repro.graph.builder import build_directed

from tests.conftest import engine_for


@pytest.fixture(scope="module")
def small_image():
    rng = np.random.default_rng(8)
    edges = rng.integers(0, 40, size=(160, 2), dtype=np.int64)
    return build_directed(edges, 40, name="bcf")


@pytest.fixture(scope="module")
def small_digraph(small_image):
    from repro.graph.io_edge_list import image_to_networkx

    return image_to_networkx(small_image)


class TestFullBC:
    def test_matches_networkx(self, small_image, small_digraph):
        totals, result = betweenness_centrality_full(engine_for(small_image, range_shift=3))
        expected = nx.betweenness_centrality(small_digraph, normalized=False)
        for v in range(small_image.num_vertices):
            assert totals[v] == pytest.approx(expected[v]), v
        assert result.runtime > 0

    def test_path_graph(self):
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        image = build_directed(edges, 4, name="bcf-path")
        totals, _ = betweenness_centrality_full(engine_for(image, range_shift=1))
        # Vertex 1 lies on paths 0->2, 0->3; vertex 2 on 0->3, 1->3.
        assert totals.tolist() == [0.0, 2.0, 2.0, 0.0]


class TestSampledBC:
    def test_all_sources_equals_exact(self, small_image, small_digraph):
        n = small_image.num_vertices
        sampled, _ = betweenness_centrality_sampled(
            engine_for(small_image, range_shift=3), num_sources=n
        )
        expected = nx.betweenness_centrality(small_digraph, normalized=False)
        for v in range(n):
            assert sampled[v] == pytest.approx(expected[v]), v

    def test_estimate_correlates_with_exact(self, small_image, small_digraph):
        sampled, _ = betweenness_centrality_sampled(
            engine_for(small_image, range_shift=3), num_sources=20, seed=3
        )
        expected = nx.betweenness_centrality(small_digraph, normalized=False)
        exact = np.asarray([expected[v] for v in range(small_image.num_vertices)])
        # Spearman-ish check: the top exact vertex ranks highly in the sample.
        top = int(np.argmax(exact))
        assert sampled[top] >= np.percentile(sampled, 75)

    def test_deterministic_for_seed(self, small_image):
        a, _ = betweenness_centrality_sampled(
            engine_for(small_image, range_shift=3), num_sources=5, seed=7
        )
        b, _ = betweenness_centrality_sampled(
            engine_for(small_image, range_shift=3), num_sources=5, seed=7
        )
        assert np.array_equal(a, b)

    def test_invalid_sample_size(self, small_image):
        with pytest.raises(ValueError):
            betweenness_centrality_sampled(engine_for(small_image), num_sources=0)
        with pytest.raises(ValueError):
            betweenness_centrality_sampled(engine_for(small_image), num_sources=999)
