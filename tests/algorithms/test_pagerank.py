"""PageRank correctness against a power-iteration reference."""

import numpy as np
import pytest

from repro.algorithms.pagerank import PageRankProgram, pagerank
from repro.core.config import ExecutionMode

from tests.conftest import engine_for


def accumulative_reference(image, damping=0.85, sweeps=200):
    """Fixpoint of rank = (1-d) + d * sum_in rank/out_deg (no dangling
    redistribution), the formulation the delta program converges to."""
    n = image.num_vertices
    out_deg = image.out_csr.degrees()
    rank = np.full(n, 1.0 - damping)
    for _ in range(sweeps):
        incoming = np.full(n, 1.0 - damping)
        for v in range(n):
            if out_deg[v]:
                incoming[image.out_csr.neighbors(v)] += (
                    damping * rank[v] / out_deg[v]
                )
        rank = incoming
    return rank


@pytest.fixture(scope="module")
def er_reference(er_image):
    return accumulative_reference(er_image)


@pytest.mark.parametrize("mode", list(ExecutionMode))
class TestPageRankCorrectness:
    def test_converges_to_reference(self, er_image, er_reference, mode):
        ranks, result = pagerank(
            engine_for(er_image, mode=mode), max_iterations=80, tolerance=1e-10
        )
        assert np.abs(ranks - er_reference).max() < 1e-4

    def test_iteration_cap_respected(self, er_image, mode):
        _, result = pagerank(engine_for(er_image, mode=mode), max_iterations=5)
        assert result.iterations <= 5


class TestPageRankBehaviour:
    def test_active_set_shrinks(self, er_image):
        # The paper: as PageRank proceeds, fewer vertices stay active.
        engine = engine_for(er_image)
        program = PageRankProgram(er_image.num_vertices, tolerance=1e-4)
        engine.run(program, max_iterations=30)
        # After convergence the un-propagated mass is a sliver of the total.
        assert program.pending.sum() < 0.02 * program.rank.sum()

    def test_ranks_positive_and_bounded(self, er_image):
        ranks, _ = pagerank(engine_for(er_image), max_iterations=40)
        assert (ranks >= 1.0 - 0.85 - 1e-12).all()
        assert ranks.sum() < er_image.num_vertices * 10

    def test_high_in_degree_ranks_higher_than_isolated(self, rmat_image):
        ranks, _ = pagerank(engine_for(rmat_image), max_iterations=40)
        in_deg = rmat_image.in_csr.degrees()
        hub = int(np.argmax(in_deg))
        isolated = int(np.argmin(in_deg))
        assert ranks[hub] > ranks[isolated]

    def test_invalid_params(self, er_image):
        with pytest.raises(ValueError):
            PageRankProgram(10, damping=1.5)
        with pytest.raises(ValueError):
            PageRankProgram(10, tolerance=0.0)

    def test_deterministic(self, er_image):
        a, ra = pagerank(engine_for(er_image), max_iterations=10)
        b, rb = pagerank(engine_for(er_image), max_iterations=10)
        assert np.array_equal(a, b)
        assert ra.runtime == rb.runtime
