"""Tests for multi-level Louvain community detection."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.communities import modularity
from repro.algorithms.louvain import (
    LouvainMoveProgram,
    LouvainResult,
    _aggregate,
    louvain,
)
from repro.core.config import ExecutionMode
from repro.graph.builder import build_directed, build_undirected
from repro.graph.types import EdgeType

from tests.conftest import engine_for


def ring_of_cliques(num_cliques=8, size=6):
    edges, n = [], num_cliques * size
    for c in range(num_cliques):
        base = c * size
        for i in range(size):
            for j in range(i + 1, size):
                edges.append([base + i, base + j])
        edges.append([base, ((c + 1) % num_cliques) * size])
    return build_undirected(np.asarray(edges), n, name="ring"), np.asarray(edges)


def factory(image):
    return engine_for(image, range_shift=3)


class TestLouvain:
    def test_ring_of_cliques_exact(self):
        image, edges = ring_of_cliques()
        result = louvain(factory, image)
        # The known optimum: one community per clique, Q = 0.8125.
        assert len(set(result.communities.tolist())) == 8
        assert result.modularity == pytest.approx(0.8125)
        for c in range(8):
            members = result.communities[c * 6 : (c + 1) * 6]
            assert len(set(members.tolist())) == 1

    def test_matches_networkx_quality_on_random_graph(self):
        rng = np.random.default_rng(3)
        edges = rng.integers(0, 100, size=(500, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        image = build_undirected(edges, 100, name="lr")
        result = louvain(factory, image)
        graph = nx.Graph()
        graph.add_nodes_from(range(100))
        graph.add_edges_from(map(tuple, edges.tolist()))
        reference = nx.community.modularity(
            graph, nx.community.louvain_communities(graph, seed=1)
        )
        # Louvain is order-dependent; demand comparable quality.
        assert result.modularity >= reference - 0.05

    def test_modularity_consistent_with_scorer(self):
        image, _ = ring_of_cliques(4, 5)
        result = louvain(factory, image)
        assert result.modularity == pytest.approx(
            modularity(image, result.communities)
        )

    def test_in_memory_mode_agrees(self):
        image, _ = ring_of_cliques(4, 5)
        sem = louvain(factory, image)
        mem = louvain(
            lambda im: engine_for(im, mode=ExecutionMode.IN_MEMORY, range_shift=3),
            image,
        )
        assert np.array_equal(sem.communities, mem.communities)

    def test_levels_reported(self):
        image, _ = ring_of_cliques()
        result = louvain(factory, image)
        assert result.levels >= 1
        assert result.level_sizes[0] == 8
        assert result.run is not None and result.run.runtime > 0

    def test_directed_rejected(self):
        image = build_directed(np.array([[0, 1]]), 2)
        with pytest.raises(ValueError):
            LouvainMoveProgram(image)

    def test_invalid_parameters(self):
        image, _ = ring_of_cliques(3, 4)
        with pytest.raises(ValueError):
            LouvainMoveProgram(image, max_sweeps=0)
        with pytest.raises(ValueError):
            louvain(factory, image, max_levels=0)

    def test_isolated_vertices_keep_singleton_communities(self):
        image = build_undirected(np.array([[0, 1]]), 4, name="lv-iso")
        result = louvain(factory, image)
        assert result.communities[2] != result.communities[0]
        assert result.communities[3] != result.communities[0]


class TestAggregate:
    def test_preserves_total_weight(self):
        image, _ = ring_of_cliques(4, 4)
        labels = np.arange(image.num_vertices) // 4  # one community per clique
        coarse, dense = _aggregate(image, labels)
        program_fine = LouvainMoveProgram(image)
        program_coarse = LouvainMoveProgram(coarse)
        assert program_coarse.total_weight == pytest.approx(
            program_fine.total_weight
        )

    def test_coarse_vertex_count(self):
        image, _ = ring_of_cliques(4, 4)
        labels = np.arange(image.num_vertices) // 4
        coarse, dense = _aggregate(image, labels)
        assert coarse.num_vertices == 4
        assert dense.tolist() == labels.tolist()

    def test_inter_community_weight(self):
        # Two triangles joined by one edge: coarse graph = 2 vertices,
        # one unit edge between them, self-loops of weight 6 each.
        edges = np.asarray(
            [[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5], [0, 3]]
        )
        image = build_undirected(edges, 6, name="2tri")
        labels = np.asarray([0, 0, 0, 1, 1, 1])
        coarse, _ = _aggregate(image, labels)
        program = LouvainMoveProgram(coarse)
        # degree = self-loop (2 * 3 internal) + 1 external = 7 per side.
        assert program.degree.tolist() == [7.0, 7.0]
