"""Tests for the extension algorithms: communities, core decomposition,
clustering coefficients."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.clustering import clustering_coefficients, undirected_degrees
from repro.algorithms.communities import (
    LabelPropagationProgram,
    label_propagation,
    modularity,
)
from repro.algorithms.core_decomposition import core_decomposition
from repro.core.config import ExecutionMode
from repro.graph.builder import build_directed, build_undirected

from tests.conftest import engine_for


def two_cliques(size=8, bridge=True):
    edges = []
    for base in (0, size):
        for i in range(size):
            for j in range(i + 1, size):
                edges.append([base + i, base + j])
    if bridge:
        edges.append([0, size])
    return build_undirected(np.asarray(edges), 2 * size, name="cliques")


class TestLabelPropagation:
    def test_two_cliques_found(self):
        image = two_cliques()
        labels, result = label_propagation(engine_for(image, range_shift=2))
        assert len(set(labels[:8].tolist())) == 1
        assert len(set(labels[8:].tolist())) == 1
        assert labels[0] != labels[8]

    def test_modes_agree(self):
        image = two_cliques()
        sem, _ = label_propagation(engine_for(image, range_shift=2))
        mem, _ = label_propagation(
            engine_for(image, mode=ExecutionMode.IN_MEMORY, range_shift=2)
        )
        assert np.array_equal(sem, mem)

    def test_respects_round_cap(self, er_uimage):
        _, result = label_propagation(engine_for(er_uimage), max_rounds=3)
        assert result.iterations <= 3

    def test_directed_graph_supported(self, er_image):
        labels, _ = label_propagation(engine_for(er_image), max_rounds=5)
        assert labels.size == er_image.num_vertices

    def test_num_communities(self):
        image = two_cliques(bridge=False)
        engine = engine_for(image, range_shift=2)
        program = LabelPropagationProgram(image.num_vertices, image.directed)
        engine.run(program, max_iterations=program.max_rounds)
        assert program.num_communities() == 2

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            LabelPropagationProgram(4, False, max_rounds=0)


class TestModularity:
    def test_perfect_split_beats_random(self):
        image = two_cliques()
        perfect = np.concatenate([np.zeros(8), np.ones(8)])
        rng = np.random.default_rng(0)
        scrambled = rng.integers(0, 2, size=16)
        assert modularity(image, perfect) > modularity(image, scrambled)

    def test_matches_networkx(self):
        image = two_cliques()
        labels = np.concatenate([np.zeros(8, dtype=int), np.ones(8, dtype=int)])
        graph = nx.Graph()
        graph.add_nodes_from(range(16))
        for v in range(16):
            for u in image.out_csr.neighbors(v):
                graph.add_edge(v, int(u))
        expected = nx.community.modularity(
            graph, [set(range(8)), set(range(8, 16))]
        )
        assert modularity(image, labels) == pytest.approx(expected)

    def test_single_community_modularity_zero(self):
        image = two_cliques(bridge=False)
        labels = np.zeros(16, dtype=int)
        # One community holding everything: Q = 1 - 1 = 0.
        assert modularity(image, labels) == pytest.approx(0.0)

    def test_empty_graph(self):
        image = build_undirected(np.zeros((0, 2), dtype=np.int64), 3)
        assert modularity(image, np.zeros(3)) == 0.0

    def test_wrong_length_rejected(self):
        image = two_cliques()
        with pytest.raises(ValueError):
            modularity(image, np.zeros(3))


class TestCoreDecomposition:
    def test_matches_networkx(self, er_uimage, er_ugraph):
        core, result = core_decomposition(engine_for(er_uimage))
        graph = er_ugraph.copy()
        graph.remove_edges_from(nx.selfloop_edges(graph))
        expected = nx.core_number(graph)
        assert all(core[v] == expected[v] for v in range(er_uimage.num_vertices))
        assert result.runtime > 0

    def test_clique_core(self):
        image = two_cliques(size=6, bridge=False)
        core, _ = core_decomposition(engine_for(image, range_shift=2))
        assert (core == 5).all()

    def test_isolated_vertices_have_core_zero(self):
        image = build_undirected(np.array([[0, 1]]), 4, name="iso")
        core, _ = core_decomposition(engine_for(image, range_shift=1))
        assert core.tolist() == [1, 1, 0, 0]

    def test_directed_rejected(self, er_image):
        with pytest.raises(ValueError):
            core_decomposition(engine_for(er_image))

    @given(seed=st.integers(min_value=0, max_value=3000))
    @settings(max_examples=10, deadline=None)
    def test_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 30))
        raw = rng.integers(0, n, size=(3 * n, 2), dtype=np.int64)
        edges = raw[raw[:, 0] != raw[:, 1]]
        if len(edges) == 0:
            return
        image = build_undirected(edges, n, name=f"coreprop{seed}")
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(map(tuple, edges.tolist()))
        core, _ = core_decomposition(engine_for(image, num_threads=2, range_shift=3))
        expected = nx.core_number(graph)
        assert all(core[v] == expected[v] for v in range(n))


class TestClusteringCoefficients:
    def test_matches_networkx_undirected(self, er_uimage, er_ugraph):
        coeffs, avg, _ = clustering_coefficients(engine_for(er_uimage))
        expected = nx.clustering(er_ugraph)
        for v in range(er_uimage.num_vertices):
            assert coeffs[v] == pytest.approx(expected[v])
        assert avg == pytest.approx(nx.average_clustering(er_ugraph))

    def test_matches_networkx_directed_projection(self, er_image, er_ugraph):
        coeffs, _, _ = clustering_coefficients(engine_for(er_image))
        expected = nx.clustering(er_ugraph)
        for v in range(er_image.num_vertices):
            assert coeffs[v] == pytest.approx(expected[v])

    def test_triangle_free_graph_is_zero(self):
        edges = np.array([[0, i] for i in range(1, 6)])
        image = build_undirected(edges, 6, name="cc-star")
        coeffs, avg, _ = clustering_coefficients(engine_for(image, range_shift=2))
        assert avg == 0.0
        assert (coeffs == 0).all()

    def test_clique_is_one(self):
        image = two_cliques(size=5, bridge=False)
        coeffs, avg, _ = clustering_coefficients(engine_for(image, range_shift=2))
        assert avg == pytest.approx(1.0)

    def test_undirected_degrees(self, er_image, er_ugraph):
        degrees = undirected_degrees(er_image)
        for v in range(er_image.num_vertices):
            assert degrees[v] == er_ugraph.degree(v) - (
                1 if er_ugraph.has_edge(v, v) else 0
            )
