"""Scan statistics against brute force, in both modes."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.scan_statistics import ScanStatisticsProgram, scan_statistics
from repro.core.config import ExecutionMode, ScheduleOrder
from repro.graph.builder import build_directed, build_undirected

from tests.conftest import engine_for


def brute_force(graph):
    best, best_vertex = -1, -1
    for v in graph.nodes():
        neighborhood = set(graph.neighbors(v)) - {v}
        among = sum(
            1
            for a in neighborhood
            for b in graph.neighbors(a)
            if b in neighborhood and b > a
        )
        statistic = len(neighborhood) + among
        if statistic > best:
            best, best_vertex = statistic, v
    return best, best_vertex


@pytest.mark.parametrize("mode", list(ExecutionMode))
class TestScanCorrectness:
    def test_er_directed(self, er_image, er_ugraph, mode):
        max_scan, argmax, result = scan_statistics(
            engine_for(er_image, mode=mode, schedule_order=ScheduleOrder.CUSTOM)
        )
        expected, _ = brute_force(er_ugraph)
        assert max_scan == expected

    def test_er_undirected(self, er_uimage, er_ugraph, mode):
        max_scan, _, _ = scan_statistics(
            engine_for(er_uimage, mode=mode, schedule_order=ScheduleOrder.CUSTOM)
        )
        expected, _ = brute_force(er_ugraph)
        assert max_scan == expected


class TestScanBehaviour:
    def test_pruning_skips_vertices_on_skewed_graphs(self, rmat_image, rmat_digraph):
        engine = engine_for(rmat_image, schedule_order=ScheduleOrder.CUSTOM)
        max_scan, argmax, result = scan_statistics(engine)
        expected, _ = brute_force(rmat_digraph.to_undirected())
        assert max_scan == expected
        # The paper's optimisation: most vertices never compute.
        assert engine.program.pruned > 0 if hasattr(engine, "program") else True

    def test_pruned_count_exposed(self, rmat_image):
        engine = engine_for(rmat_image, schedule_order=ScheduleOrder.CUSTOM)
        image = engine.image
        program = ScanStatisticsProgram(image.num_vertices, image.directed)
        degrees = image.out_csr.degrees() + image.in_csr.degrees()
        program.attach_degrees(degrees.astype(np.int64))
        engine.run(program)
        assert program.pruned > 0
        assert program.pruned + np.count_nonzero(program.scan >= 0) == (
            image.num_vertices
        )

    def test_argmax_achieves_max(self, er_image, er_ugraph):
        max_scan, argmax, _ = scan_statistics(
            engine_for(er_image, schedule_order=ScheduleOrder.CUSTOM)
        )
        neighborhood = set(er_ugraph.neighbors(argmax)) - {argmax}
        among = sum(
            1
            for a in neighborhood
            for b in er_ugraph.neighbors(a)
            if b in neighborhood and b > a
        )
        assert len(neighborhood) + among == max_scan

    def test_star_graph(self):
        edges = np.array([[0, i] for i in range(1, 8)])
        image = build_undirected(edges, 8, name="ss-star")
        max_scan, argmax, _ = scan_statistics(engine_for(image, range_shift=2))
        assert max_scan == 7
        assert argmax == 0

    def test_helper_forces_custom_order(self, er_image):
        engine = engine_for(er_image)  # BY_ID config
        max_scan, _, _ = scan_statistics(engine)
        assert engine.config.schedule_order is ScheduleOrder.CUSTOM

    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=12, deadline=None)
    def test_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 30))
        edges = rng.integers(0, n, size=(2 * n, 2), dtype=np.int64)
        image = build_directed(edges, n, name=f"ssprop{seed}")
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from((int(u), int(v)) for u, v in edges if u != v)
        max_scan, _, _ = scan_statistics(engine_for(image, num_threads=2, range_shift=3))
        expected, _ = brute_force(graph)
        assert max_scan == expected
