"""WCC correctness against networkx, in both modes, plus properties."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.wcc import WCCProgram, wcc
from repro.core.config import ExecutionMode
from repro.graph.builder import build_directed

from tests.conftest import engine_for


def grouping(labels):
    groups = {}
    for v, c in enumerate(labels):
        groups.setdefault(int(c), set()).add(v)
    return {frozenset(g) for g in groups.values()}


@pytest.mark.parametrize("mode", list(ExecutionMode))
class TestWCCCorrectness:
    def test_er_graph(self, er_image, er_digraph, mode):
        labels, result = wcc(engine_for(er_image, mode=mode))
        expected = {frozenset(c) for c in nx.weakly_connected_components(er_digraph)}
        assert grouping(labels) == expected

    def test_rmat_graph(self, rmat_image, rmat_digraph, mode):
        labels, _ = wcc(engine_for(rmat_image, mode=mode))
        expected = {frozenset(c) for c in nx.weakly_connected_components(rmat_digraph)}
        assert grouping(labels) == expected

    def test_two_disjoint_cliques(self, mode):
        edges = []
        for block in (0, 5):
            for i in range(5):
                for j in range(5):
                    if i != j:
                        edges.append([block + i, block + j])
        image = build_directed(np.asarray(edges), 10, name="cliques")
        labels, _ = wcc(engine_for(image, mode=mode, range_shift=2))
        assert labels[:5].tolist() == [0] * 5
        assert labels[5:].tolist() == [5] * 5


class TestWCCBehaviour:
    def test_labels_are_component_minima(self, er_image, er_digraph):
        labels, _ = wcc(engine_for(er_image))
        for component in nx.weakly_connected_components(er_digraph):
            expected = min(component)
            for v in component:
                assert labels[v] == expected

    def test_num_components_helper(self, er_image, er_digraph):
        engine = engine_for(er_image)
        program = WCCProgram(er_image.num_vertices)
        engine.run(program)
        assert program.num_components() == nx.number_weakly_connected_components(
            er_digraph
        )

    def test_direction_ignored(self):
        # 0 -> 1 and 2 -> 1: all weakly connected despite no directed path.
        image = build_directed(np.array([[0, 1], [2, 1]]), 3, name="v")
        labels, _ = wcc(engine_for(image, range_shift=1))
        assert labels.tolist() == [0, 0, 0]

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=2, max_value=50),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_digraphs_match_networkx(self, seed, n):
        rng = np.random.default_rng(seed)
        m = max(1, n)
        edges = rng.integers(0, n, size=(m, 2), dtype=np.int64)
        image = build_directed(edges, n, name=f"wccprop{seed}")
        digraph = nx.DiGraph()
        digraph.add_nodes_from(range(n))
        digraph.add_edges_from(map(tuple, edges.tolist()))
        labels, _ = wcc(engine_for(image, num_threads=2, range_shift=3))
        expected = {frozenset(c) for c in nx.weakly_connected_components(digraph)}
        assert grouping(labels) == expected
