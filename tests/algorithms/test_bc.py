"""Betweenness centrality against a hand-rolled Brandes reference."""

import collections

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.bc import betweenness_centrality, merge_results
from repro.core.config import ExecutionMode
from repro.graph.builder import build_directed

from tests.conftest import engine_for


def brandes_single_source(image, source):
    """Exact single-source dependency scores (Brandes 2001)."""
    n = image.num_vertices
    out = image.out_csr
    dist = {source: 0}
    sigma = collections.defaultdict(float)
    sigma[source] = 1.0
    order = [source]
    frontier = [source]
    while frontier:
        nxt = []
        for v in frontier:
            for w in out.neighbors(v):
                w = int(w)
                if w not in dist:
                    dist[w] = dist[v] + 1
                    nxt.append(w)
                    order.append(w)
        for w in nxt:
            total = 0.0
            for p in image.in_csr.neighbors(w):
                p = int(p)
                if dist.get(p) == dist[w] - 1:
                    total += sigma[p]
            sigma[w] = total
        frontier = nxt
    delta = np.zeros(n)
    for w in reversed(order):
        for x in out.neighbors(w):
            x = int(x)
            if dist.get(x) == dist[w] + 1:
                delta[w] += sigma[w] / sigma[x] * (1.0 + delta[x])
    delta[source] = 0.0  # endpoints are excluded from betweenness
    return delta


@pytest.mark.parametrize("mode", list(ExecutionMode))
class TestBCCorrectness:
    def test_er_graph(self, er_image, mode):
        deltas, result = betweenness_centrality(engine_for(er_image, mode=mode), 0)
        expected = brandes_single_source(er_image, 0)
        assert np.allclose(deltas, expected)
        assert result.runtime > 0

    def test_rmat_hub_source(self, rmat_image, mode):
        source = int(np.argmax(rmat_image.out_csr.degrees()))
        deltas, _ = betweenness_centrality(engine_for(rmat_image, mode=mode), source)
        expected = brandes_single_source(rmat_image, source)
        assert np.allclose(deltas, expected)


class TestBCEdgeCases:
    def test_isolated_source(self):
        image = build_directed(np.array([[1, 2]]), 3, name="bc-iso")
        deltas, result = betweenness_centrality(engine_for(image, range_shift=1), 0)
        assert deltas.tolist() == [0.0, 0.0, 0.0]

    def test_path_graph(self):
        # 0 -> 1 -> 2 -> 3: delta(1) = 2, delta(2) = 1 from source 0.
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        image = build_directed(edges, 4, name="bc-path")
        deltas, _ = betweenness_centrality(engine_for(image, range_shift=1), 0)
        assert deltas.tolist() == [0.0, 2.0, 1.0, 0.0]

    def test_diamond_splits_dependency(self):
        # 0 -> {1, 2} -> 3: each middle vertex carries half of 3's weight.
        edges = np.array([[0, 1], [0, 2], [1, 3], [2, 3]])
        image = build_directed(edges, 4, name="bc-diamond")
        deltas, _ = betweenness_centrality(engine_for(image, range_shift=1), 0)
        assert deltas[1] == pytest.approx(0.5)
        assert deltas[2] == pytest.approx(0.5)
        assert deltas[3] == pytest.approx(0.0)

    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=20, deadline=None)
    def test_random_digraphs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 40))
        edges = rng.integers(0, n, size=(2 * n, 2), dtype=np.int64)
        image = build_directed(edges, n, name=f"bcprop{seed}")
        source = int(rng.integers(0, n))
        deltas, _ = betweenness_centrality(
            engine_for(image, num_threads=2, range_shift=3), source
        )
        assert np.allclose(deltas, brandes_single_source(image, source))


class TestMergeResults:
    def test_addition(self, er_image):
        _, first = betweenness_centrality(engine_for(er_image), 0)
        merged = merge_results(first, first)
        assert merged.runtime == pytest.approx(2 * first.runtime)
        assert merged.bytes_read == pytest.approx(2 * first.bytes_read)
        assert merged.iterations == 2 * first.iterations
        assert merged.cpu_utilization == pytest.approx(first.cpu_utilization)
