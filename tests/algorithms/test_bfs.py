"""BFS correctness against networkx, in both modes, plus properties."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.bfs import bfs, bfs_direction_optimizing
from repro.core.config import ExecutionMode
from repro.graph.builder import build_directed

from tests.conftest import engine_for


def reference_levels(digraph, source, n):
    levels = np.full(n, -1, dtype=np.int64)
    for v, d in nx.single_source_shortest_path_length(digraph, source).items():
        levels[v] = d
    return levels


@pytest.mark.parametrize("mode", list(ExecutionMode))
class TestBFSCorrectness:
    def test_er_graph(self, er_image, er_digraph, mode):
        levels, result = bfs(engine_for(er_image, mode=mode), source=0)
        expected = reference_levels(er_digraph, 0, er_image.num_vertices)
        assert np.array_equal(levels, expected)
        assert result.iterations >= 1

    def test_rmat_graph(self, rmat_image, rmat_digraph, mode):
        source = int(np.argmax(rmat_image.out_csr.degrees()))
        levels, _ = bfs(engine_for(rmat_image, mode=mode), source=source)
        expected = reference_levels(rmat_digraph, source, rmat_image.num_vertices)
        assert np.array_equal(levels, expected)

    def test_isolated_source(self, mode):
        image = build_directed(np.array([[1, 2]]), 4, name="iso")
        levels, result = bfs(engine_for(image, mode=mode, range_shift=1), source=0)
        assert levels.tolist() == [0, -1, -1, -1]

    def test_unreachable_vertices_stay_minus_one(self, er_image, er_digraph, mode):
        levels, _ = bfs(engine_for(er_image, mode=mode), source=0)
        reachable = set(nx.descendants(er_digraph, 0)) | {0}
        for v in range(er_image.num_vertices):
            assert (levels[v] >= 0) == (v in reachable)


class TestDirectionOptimizing:
    def test_matches_plain_bfs(self, rmat_image):
        source = int(np.argmax(rmat_image.out_csr.degrees()))
        plain, _ = bfs(engine_for(rmat_image), source=source)
        opt, _ = bfs_direction_optimizing(engine_for(rmat_image), source=source)
        assert np.array_equal(plain, opt)

    def test_reads_more_bytes_in_sem(self, rmat_image):
        # §5.2's argument: direction-optimizing BFS reads both directions,
        # increasing SSD traffic even when it traverses fewer edges.
        source = int(np.argmax(rmat_image.out_csr.degrees()))
        _, plain = bfs(engine_for(rmat_image, cache_kib=32), source=source)
        _, opt = bfs_direction_optimizing(
            engine_for(rmat_image, cache_kib=32), source=source
        )
        assert opt.bytes_read > plain.bytes_read

    def test_invalid_fraction(self, rmat_image):
        with pytest.raises(ValueError):
            bfs_direction_optimizing(engine_for(rmat_image), 0, bottom_up_fraction=0.0)


class TestBFSProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=2, max_value=60),
        density=st.floats(min_value=0.5, max_value=4.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_levels_match_networkx_on_random_digraphs(self, seed, n, density):
        rng = np.random.default_rng(seed)
        m = max(1, int(n * density))
        edges = rng.integers(0, n, size=(m, 2), dtype=np.int64)
        image = build_directed(edges, n, name=f"prop{seed}")
        digraph = nx.DiGraph()
        digraph.add_nodes_from(range(n))
        digraph.add_edges_from(map(tuple, edges.tolist()))
        source = int(rng.integers(0, n))
        levels, _ = bfs(engine_for(image, num_threads=2, range_shift=3), source=source)
        assert np.array_equal(levels, reference_levels(digraph, source, n))

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_level_monotonicity(self, seed, rmat_image):
        # Every edge spans at most one level forward from a visited vertex.
        rng = np.random.default_rng(seed)
        source = int(rng.integers(0, rmat_image.num_vertices))
        levels, _ = bfs(engine_for(rmat_image), source=source)
        indptr = rmat_image.out_csr.indptr
        indices = rmat_image.out_csr.indices
        for v in range(rmat_image.num_vertices):
            if levels[v] < 0:
                continue
            for w in indices[indptr[v] : indptr[v + 1]]:
                assert levels[w] != -1
                assert levels[w] <= levels[v] + 1
