"""Tests for the extension algorithms: k-core, SSSP, diameter."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.diameter import estimate_diameter
from repro.algorithms.kcore import KCoreProgram, kcore
from repro.algorithms.sssp import sssp
from repro.core.config import ExecutionMode
from repro.graph.builder import _dedup, build_directed, build_undirected

from tests.conftest import engine_for


class TestKCore:
    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_matches_networkx(self, er_uimage, er_ugraph, k):
        alive, _ = kcore(engine_for(er_uimage), k)
        graph = er_ugraph.copy()
        graph.remove_edges_from(nx.selfloop_edges(graph))
        expected = set(nx.k_core(graph, k).nodes())
        assert set(np.nonzero(alive)[0].tolist()) == expected

    def test_k1_keeps_non_isolated(self):
        image = build_undirected(np.array([[0, 1]]), 4, name="kc")
        alive, _ = kcore(engine_for(image, range_shift=1), 1)
        assert alive.tolist() == [True, True, False, False]

    def test_too_large_k_empties_graph(self, er_uimage):
        alive, _ = kcore(engine_for(er_uimage), 10_000)
        assert alive.sum() == 0

    def test_directed_rejected(self, er_image):
        with pytest.raises(ValueError):
            kcore(engine_for(er_image), 2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KCoreProgram(4, 0, np.zeros(4))

    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=15, deadline=None)
    def test_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 40))
        raw = rng.integers(0, n, size=(2 * n, 2), dtype=np.int64)
        edges = raw[raw[:, 0] != raw[:, 1]]
        if len(edges) == 0:
            return
        image = build_undirected(edges, n, name=f"kcprop{seed}")
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(map(tuple, edges.tolist()))
        k = int(rng.integers(1, 5))
        alive, _ = kcore(engine_for(image, num_threads=2, range_shift=3), k)
        assert set(np.nonzero(alive)[0].tolist()) == set(nx.k_core(graph, k).nodes())


class TestSSSP:
    @pytest.fixture(scope="class")
    def weighted(self, er_edges):
        edges, n = er_edges
        rng = np.random.default_rng(11)
        weights = rng.uniform(0.5, 2.0, size=len(edges)).astype(np.float32)
        image = build_directed(edges, n, name="er-w", weights=weights)
        graph = nx.DiGraph()
        graph.add_nodes_from(range(n))
        dedges, dweights = _dedup(np.asarray(edges, dtype=np.int64), weights)
        for (u, v), w in zip(dedges.tolist(), dweights):
            graph.add_edge(u, v, weight=float(np.float32(w)))
        return image, graph

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_matches_dijkstra(self, weighted, mode):
        image, graph = weighted
        dists, result = sssp(engine_for(image, mode=mode), source=0)
        expected = nx.single_source_dijkstra_path_length(graph, 0)
        for v in range(image.num_vertices):
            ref = expected.get(v, np.inf)
            if np.isinf(ref):
                assert np.isinf(dists[v])
            else:
                assert dists[v] == pytest.approx(ref, abs=1e-4)

    def test_source_distance_zero(self, weighted):
        image, _ = weighted
        dists, _ = sssp(engine_for(image), source=5)
        assert dists[5] == 0.0

    def test_attr_reads_show_up_in_io(self, weighted):
        image, _ = weighted
        _, result = sssp(engine_for(image, cache_kib=16), source=0)
        assert result.bytes_read > 0

    def test_unweighted_image_rejected(self, er_image):
        with pytest.raises(ValueError):
            sssp(engine_for(er_image), source=0)


class TestDiameter:
    def test_path_graph(self):
        edges = np.stack([np.arange(9), np.arange(1, 10)], axis=1)
        image = build_directed(edges, 10, name="dia-path")
        # The double sweep finds the exact diameter of a path.
        assert estimate_diameter(image, num_sweeps=4, seed=0) == 9

    def test_lower_bound_property(self, er_image, er_ugraph):
        estimate = estimate_diameter(er_image, num_sweeps=6, seed=1)
        # Estimate never exceeds the true diameter of the largest component.
        biggest = max(nx.connected_components(er_ugraph), key=len)
        true = nx.diameter(er_ugraph.subgraph(biggest))
        assert 0 < estimate <= true

    def test_undirected_image(self, er_uimage):
        assert estimate_diameter(er_uimage, num_sweeps=4) > 0

    def test_invalid_sweeps(self, er_image):
        with pytest.raises(ValueError):
            estimate_diameter(er_image, num_sweeps=0)
