"""Tests for the benchmark harness and reporting helpers."""

import math

import numpy as np
import pytest

from repro.bench.harness import (
    BASELINE_ENGINES,
    PAPER_APPS,
    collect_metrics,
    default_source,
    make_engine,
    result_row,
    run_algorithm,
    run_baseline,
    write_metrics_json,
)
from repro.bench.reporting import format_table, format_value, human_bytes
from repro.core.config import ExecutionMode
from repro.graph.builder import build_directed
from repro.graph.generators import rmat_graph


@pytest.fixture(scope="module")
def small_image():
    edges, n = rmat_graph(scale=8, edge_factor=6, seed=4)
    return build_directed(edges, n, name="harness")


class TestMakeEngine:
    def test_semi_external_wiring(self, small_image):
        engine = make_engine(small_image, cache_bytes=1 << 16, page_size=4096)
        assert engine.safs is not None
        assert engine.safs.cache.config.capacity_bytes == 1 << 16
        assert engine.stats is engine.safs.stats

    def test_in_memory_has_no_safs(self, small_image):
        engine = make_engine(small_image, mode=ExecutionMode.IN_MEMORY)
        assert engine.safs is None

    def test_config_overrides_forwarded(self, small_image):
        engine = make_engine(small_image, merge_in_engine=False)
        assert not engine.config.merge_in_engine


class TestRunAlgorithm:
    @pytest.mark.parametrize("app", PAPER_APPS)
    def test_every_paper_app_runs(self, small_image, app):
        engine = make_engine(small_image, cache_bytes=1 << 18, range_shift=5)
        result = run_algorithm(engine, app)
        assert result.runtime > 0
        assert result.iterations >= 1

    def test_unknown_app(self, small_image):
        with pytest.raises(ValueError):
            run_algorithm(make_engine(small_image), "dijkstra")

    def test_default_source_is_largest_hub(self, small_image):
        source = default_source(small_image)
        degrees = small_image.out_csr.degrees()
        assert degrees[source] == degrees.max()


class TestRunBaseline:
    def test_known_systems(self, small_image):
        for system in BASELINE_ENGINES:
            if system == "graphchi":
                report = run_baseline(system, small_image, "pr")
            else:
                report = run_baseline(system, small_image, "bfs")
            assert report.runtime > 0

    def test_unknown_system(self, small_image):
        with pytest.raises(ValueError):
            run_baseline("neo4j", small_image, "bfs")


class TestResultRow:
    def test_row_fields(self, small_image):
        engine = make_engine(small_image, range_shift=5)
        result = run_algorithm(engine, "bfs")
        row = result_row("FG-1G", "bfs", result)
        assert row["system"] == "FG-1G"
        assert row["runtime_s"] == result.runtime
        assert row["read_MB"] == result.bytes_read / 1e6


class TestCollectMetrics:
    def test_snapshot_shape_and_label(self, small_image):
        from repro.sim.stats import METRICS_SCHEMA

        engine = make_engine(small_image)
        run_algorithm(engine, "pr", max_iterations=3)
        metrics = collect_metrics(engine, label="pr@harness")
        assert metrics["schema"] == METRICS_SCHEMA
        assert metrics["label"] == "pr@harness"
        assert metrics["counters"]["io.requests_issued"] > 0
        # Disarmed run: histograms/series only fill when tracing is armed.
        assert metrics["histograms"] == {}

    def test_armed_run_fills_histograms(self, small_image):
        from repro.obs import arm, registry

        engine = make_engine(small_image)
        arm(engine)
        run_algorithm(engine, "pr", max_iterations=3)
        metrics = collect_metrics(engine)
        assert registry.HIST_IO_MERGE_RUN_LENGTH in metrics["histograms"]
        assert registry.GAUGE_FRONTIER_SIZE in metrics["series"]

    def test_write_metrics_json_is_deterministic(self, small_image, tmp_path):
        import json

        engine = make_engine(small_image)
        run_algorithm(engine, "pr", max_iterations=3)
        sections = {"suite": collect_metrics(engine, label="suite")}
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_metrics_json(a, sections)
        write_metrics_json(b, json.loads(a.read_text()))
        assert a.read_text() == b.read_text()
        assert json.loads(a.read_text())["suite"]["label"] == "suite"


class TestReporting:
    def test_format_value(self):
        assert format_value(0.0) == "0"
        assert format_value(1234.5) == "1,234"  # banker-rounds to even
        assert format_value(3.14159) == "3.14"
        assert format_value(0.01) == "0.0100"
        assert format_value(1e-7) == "1.000e-07"
        assert format_value("label") == "label"

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        table = format_table(rows, title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="T")

    def test_format_table_missing_cells(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        table = format_table(rows, columns=["a", "b"])
        assert "3" in table

    def test_human_bytes(self):
        assert human_bytes(512) == "512B"
        assert human_bytes(1536) == "1.5KiB"
        assert human_bytes(5 * 1 << 20) == "5.0MiB"
        assert human_bytes(2.5 * (1 << 40)) == "2.5TiB"
