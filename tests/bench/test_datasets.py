"""Tests for the dataset registry and cache scaling."""

import pytest

from repro.bench.datasets import (
    CACHE_SCALE,
    DATASETS,
    load_dataset,
    scaled_cache_bytes,
)


class TestScaledCache:
    def test_one_gib(self):
        assert scaled_cache_bytes(1.0) == (1 << 30) // CACHE_SCALE

    def test_ratios_preserved(self):
        assert scaled_cache_bytes(32.0) == 32 * scaled_cache_bytes(1.0)

    def test_floor(self):
        # Tiny paper caches still get a workable number of pages.
        assert scaled_cache_bytes(0.0001) >= 1 << 14

    def test_invalid(self):
        with pytest.raises(ValueError):
            scaled_cache_bytes(0)


class TestRegistry:
    def test_three_paper_datasets(self):
        assert set(DATASETS) == {"twitter-sim", "subdomain-sim", "page-sim"}

    def test_paper_metadata_matches_table1(self):
        twitter = DATASETS["twitter-sim"]
        assert twitter.paper_vertices == "42M"
        assert twitter.paper_edges == "1.5B"
        assert twitter.paper_diameter == 23
        page = DATASETS["page-sim"]
        assert page.paper_size == "1.1TB"
        assert page.paper_diameter == 650

    def test_load_is_memoised(self):
        a = load_dataset("twitter-sim")
        b = load_dataset("twitter-sim")
        assert a is b

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("facebook")

    def test_edge_ratios(self):
        twitter = load_dataset("twitter-sim")
        ratio = twitter.num_edges / twitter.num_vertices
        assert 25 <= ratio <= 40  # paper: ~36 before dedup
        subdomain = load_dataset("subdomain-sim")
        ratio = subdomain.num_edges / subdomain.num_vertices
        assert 15 <= ratio <= 25  # paper: ~22

    def test_page_graph_is_largest(self):
        sizes = {
            name: load_dataset(name).storage_bytes() for name in DATASETS
        }
        assert sizes["page-sim"] == max(sizes.values())
