"""Meta-tests: the experiment registry, bench files and docs stay in sync."""

import pathlib

import pytest

from repro import cli

REPO = pathlib.Path(__file__).resolve().parents[2]
BENCHMARKS = REPO / "benchmarks"


class TestRegistryCompleteness:
    def test_every_cli_experiment_has_a_bench_file(self):
        # Extra experiments share bench_extra_ablations/bench_sec56 files.
        shared = {
            "ablations": "bench_ablations.py",
            "sec56": "bench_sec56_clusters.py",
            "turbograph": "bench_extra_ablations.py",
            "cache-policy": "bench_extra_ablations.py",
            "stragglers": "bench_extra_ablations.py",
            "partitioning": "bench_extra_ablations.py",
        }
        for name in cli.EXPERIMENTS:
            if name in shared:
                assert (BENCHMARKS / shared[name]).exists(), name
                continue
            matches = list(BENCHMARKS.glob(f"bench_{name}_*.py"))
            assert matches, f"no benchmark file regenerates {name!r}"

    def test_all_paper_experiments_registered(self):
        # Every table/figure of the paper's evaluation section.
        paper = {"table1", "table2", "fig8", "fig9", "fig10", "fig11",
                 "fig12", "fig13", "fig14"}
        assert paper <= set(cli.EXPERIMENTS)

    def test_design_md_indexes_every_bench_file(self):
        design = (REPO / "DESIGN.md").read_text()
        for bench in sorted(BENCHMARKS.glob("bench_*.py")):
            assert bench.name in design, f"DESIGN.md does not index {bench.name}"

    def test_experiments_md_covers_every_paper_item(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for heading in (
            "Table 1", "Figure 8", "Figure 9", "Figure 10", "Figure 11",
            "Figure 12", "Figure 13", "Figure 14", "Table 2", "§5.6",
        ):
            assert heading in text, f"EXPERIMENTS.md lacks {heading}"

    def test_readme_mentions_every_example(self):
        readme = (REPO / "README.md").read_text()
        for example in sorted((REPO / "examples").glob("*.py")):
            assert example.name in readme, f"README does not list {example.name}"
