"""Shared fixtures: small graphs and engine factories."""

import networkx as nx
import numpy as np
import pytest

from repro.core.config import EngineConfig, ExecutionMode
from repro.core.engine import GraphEngine
from repro.graph.builder import build_directed, build_undirected
from repro.graph.generators import erdos_renyi_graph, rmat_graph


@pytest.fixture(scope="session")
def er_edges():
    """A 300-vertex random digraph and its edge list."""
    return erdos_renyi_graph(300, 1500, seed=5)


@pytest.fixture(scope="session")
def er_image(er_edges):
    edges, n = er_edges
    return build_directed(edges, n, name="er")


@pytest.fixture(scope="session")
def er_digraph(er_edges):
    edges, n = er_edges
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    g.add_edges_from(map(tuple, edges.tolist()))
    return g


@pytest.fixture(scope="session")
def er_ugraph(er_edges):
    edges, n = er_edges
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from((int(u), int(v)) for u, v in edges if u != v)
    return g


@pytest.fixture(scope="session")
def er_uimage(er_edges):
    edges, n = er_edges
    simple = np.asarray([[u, v] for u, v in edges.tolist() if u != v])
    return build_undirected(simple, n, name="er-u")


@pytest.fixture(scope="session")
def rmat_image():
    edges, n = rmat_graph(scale=9, edge_factor=8, seed=3)
    return build_directed(edges, n, name="rmat")


@pytest.fixture(scope="session")
def rmat_digraph(rmat_image):
    from repro.graph.io_edge_list import image_to_networkx

    return image_to_networkx(rmat_image)


def engine_for(image, mode=ExecutionMode.SEMI_EXTERNAL, cache_kib=None, **overrides):
    """A small-footprint engine for tests (4 threads, small ranges).

    ``cache_kib`` bounds the SAFS page cache; ``None`` keeps the default
    (large enough to hold every test graph).
    """
    defaults = dict(mode=mode, num_threads=4, range_shift=5)
    defaults.update(overrides)
    safs = None
    if cache_kib is not None and mode is ExecutionMode.SEMI_EXTERNAL:
        from repro.safs.filesystem import SAFS, SAFSConfig

        safs = SAFS(config=SAFSConfig(cache_bytes=cache_kib * 1024))
    return GraphEngine(image, safs=safs, config=EngineConfig(**defaults))


@pytest.fixture()
def make_engine():
    return engine_for
