"""Unit and property tests for the on-SSD edge-list format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.format import (
    EDGE_BYTES,
    HEADER_BYTES,
    adjacency_from_edges,
    edge_list_size,
    parse_edge_list,
    serialize_adjacency,
    serialize_attributes,
)


class TestEdgeListSize:
    def test_header_only(self):
        assert edge_list_size(0) == HEADER_BYTES

    def test_scales_with_degree(self):
        assert edge_list_size(10) == HEADER_BYTES + 10 * EDGE_BYTES

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            edge_list_size(-1)


class TestSerializeParse:
    def test_single_vertex_roundtrip(self):
        indptr = np.array([0, 3])
        indices = np.array([5, 7, 9], dtype=np.uint32)
        data, offsets = serialize_adjacency(indptr, indices)
        assert offsets.tolist() == [0, HEADER_BYTES + 3 * EDGE_BYTES]
        vid, neighbors = parse_edge_list(memoryview(data), 0)
        assert vid == 0
        assert neighbors.tolist() == [5, 7, 9]

    def test_multi_vertex_roundtrip(self):
        indptr = np.array([0, 2, 2, 5])
        indices = np.array([1, 2, 0, 1, 2], dtype=np.uint32)
        data, offsets = serialize_adjacency(indptr, indices)
        view = memoryview(data)
        for v, expected in enumerate([[1, 2], [], [0, 1, 2]]):
            vid, neighbors = parse_edge_list(view, int(offsets[v]))
            assert vid == v
            assert neighbors.tolist() == expected

    def test_empty_graph(self):
        data, offsets = serialize_adjacency(np.array([0]), np.array([], dtype=np.uint32))
        assert data == b""
        assert offsets.tolist() == [0]

    def test_all_isolated(self):
        data, offsets = serialize_adjacency(np.array([0, 0, 0]), np.array([], dtype=np.uint32))
        assert len(data) == 2 * HEADER_BYTES
        vid, neighbors = parse_edge_list(memoryview(data), int(offsets[1]))
        assert vid == 1
        assert neighbors.size == 0

    def test_bad_indptr_rejected(self):
        with pytest.raises(ValueError):
            serialize_adjacency(np.array([1, 2]), np.array([1], dtype=np.uint32))
        with pytest.raises(ValueError):
            serialize_adjacency(np.array([0, 2, 1]), np.array([1, 2], dtype=np.uint32))

    def test_parse_truncated_rejected(self):
        data, _ = serialize_adjacency(np.array([0, 3]), np.array([1, 2, 3], dtype=np.uint32))
        with pytest.raises(ValueError):
            parse_edge_list(memoryview(data)[: HEADER_BYTES + 4], 0)
        with pytest.raises(ValueError):
            parse_edge_list(memoryview(b"x"), 0)

    @given(
        degrees=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=30)
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, degrees):
        rng = np.random.default_rng(0)
        indptr = np.zeros(len(degrees) + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = rng.integers(0, 1000, size=int(indptr[-1])).astype(np.uint32)
        data, offsets = serialize_adjacency(indptr, indices)
        assert len(data) == offsets[-1]
        view = memoryview(data)
        for v, degree in enumerate(degrees):
            vid, neighbors = parse_edge_list(view, int(offsets[v]))
            assert vid == v
            assert neighbors.tolist() == indices[indptr[v] : indptr[v + 1]].tolist()


class TestAttributes:
    def test_roundtrip(self):
        indptr = np.array([0, 2, 3])
        attrs = np.array([1.5, 2.5, 3.5], dtype=np.float32)
        data, offsets = serialize_attributes(indptr, attrs)
        assert offsets.tolist() == [0, 8, 12]
        back = np.frombuffer(data, dtype="<f4")
        assert back.tolist() == attrs.tolist()

    def test_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            serialize_attributes(np.array([0, 2]), np.array([1.0], dtype=np.float32))


class TestAdjacencyFromEdges:
    def test_basic(self):
        edges = np.array([[0, 1], [0, 2], [2, 0]])
        indptr, indices = adjacency_from_edges(edges, 3)
        assert indptr.tolist() == [0, 2, 2, 3]
        assert indices.tolist() == [1, 2, 0]

    def test_neighbors_sorted(self):
        edges = np.array([[0, 9], [0, 1], [0, 5]])
        _, indices = adjacency_from_edges(edges, 10)
        assert indices.tolist() == [1, 5, 9]

    def test_empty(self):
        indptr, indices = adjacency_from_edges(np.zeros((0, 2)), 4)
        assert indptr.tolist() == [0, 0, 0, 0, 0]
        assert indices.size == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            adjacency_from_edges(np.array([[0, 5]]), 3)
        with pytest.raises(ValueError):
            adjacency_from_edges(np.array([[-1, 0]]), 3)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            adjacency_from_edges(np.array([[0, 1, 2]]), 3)
