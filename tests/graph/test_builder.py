"""Unit tests for graph image construction."""

import numpy as np
import pytest

from repro.graph.builder import build_directed, build_undirected
from repro.graph.format import parse_edge_list
from repro.graph.types import EdgeType
from repro.safs.filesystem import SAFS, SAFSConfig
from repro.sim.ssd_array import SSDArray, SSDArrayConfig


def small_directed():
    #   0 -> 1, 0 -> 2, 1 -> 2, 3 -> 0
    edges = np.array([[0, 1], [0, 2], [1, 2], [3, 0]])
    return build_directed(edges, 4)


class TestBuildDirected:
    def test_counts(self):
        image = small_directed()
        assert image.num_vertices == 4
        assert image.num_edges == 4
        assert image.directed

    def test_out_adjacency(self):
        image = small_directed()
        assert image.out_csr.neighbors(0).tolist() == [1, 2]
        assert image.out_csr.neighbors(1).tolist() == [2]
        assert image.out_csr.neighbors(2).tolist() == []
        assert image.out_csr.neighbors(3).tolist() == [0]

    def test_in_adjacency_is_reverse(self):
        image = small_directed()
        assert image.in_csr.neighbors(0).tolist() == [3]
        assert image.in_csr.neighbors(2).tolist() == [0, 1]

    def test_duplicates_dropped(self):
        edges = np.array([[0, 1], [0, 1], [1, 0]])
        image = build_directed(edges, 2)
        assert image.num_edges == 2

    def test_serialized_files_parse_back(self):
        image = small_directed()
        view = memoryview(image.out_bytes)
        offset, _size = image.out_index.locate(0)
        vid, neighbors = parse_edge_list(view, offset)
        assert vid == 0
        assert neighbors.tolist() == [1, 2]
        offset, _size = image.in_index.locate(2)
        vid, neighbors = parse_edge_list(memoryview(image.in_bytes), offset)
        assert vid == 2
        assert neighbors.tolist() == [0, 1]

    def test_index_sizes_match_files(self):
        image = small_directed()
        assert image.out_index.file_size == len(image.out_bytes)
        assert image.in_index.file_size == len(image.in_bytes)

    def test_storage_and_memory_accounting(self):
        image = small_directed()
        assert image.storage_bytes() == len(image.out_bytes) + len(image.in_bytes)
        assert image.index_memory_bytes() > 0

    def test_csr_and_index_accessors(self):
        image = small_directed()
        assert image.csr(EdgeType.OUT) is image.out_csr
        assert image.csr(EdgeType.IN) is image.in_csr
        assert image.index(EdgeType.OUT) is image.out_index
        with pytest.raises(ValueError):
            image.csr(EdgeType.BOTH)
        with pytest.raises(ValueError):
            image.index(EdgeType.BOTH)
        with pytest.raises(ValueError):
            image.file_bytes(EdgeType.BOTH)


class TestBuildUndirected:
    def test_symmetric_adjacency(self):
        edges = np.array([[0, 1], [1, 2]])
        image = build_undirected(edges, 3)
        assert not image.directed
        assert image.num_edges == 2
        assert image.out_csr.neighbors(0).tolist() == [1]
        assert image.out_csr.neighbors(1).tolist() == [0, 2]
        assert image.in_csr is image.out_csr

    def test_reverse_duplicates_collapse(self):
        edges = np.array([[0, 1], [1, 0]])
        image = build_undirected(edges, 2)
        assert image.num_edges == 1

    def test_self_loop_stored_once(self):
        edges = np.array([[0, 0], [0, 1]])
        image = build_undirected(edges, 2)
        assert image.out_csr.neighbors(0).tolist() == [0, 1]
        assert image.num_edges == 2

    def test_single_file(self):
        edges = np.array([[0, 1]])
        image = build_undirected(edges, 2)
        assert image.out_bytes == image.in_bytes
        assert image.storage_bytes() == len(image.out_bytes)


class TestWeights:
    def test_directed_weights_follow_csr_order(self):
        edges = np.array([[0, 2], [0, 1], [1, 0]])
        weights = np.array([2.0, 1.0, 3.0], dtype=np.float32)
        image = build_directed(edges, 3, weights=weights)
        attrs = np.frombuffer(image.attr_bytes[EdgeType.OUT], dtype="<f4")
        # CSR order for vertex 0 is [1, 2] -> weights [1.0, 2.0], then 1->0.
        assert attrs.tolist() == [1.0, 2.0, 3.0]
        assert image.attr_offsets[EdgeType.OUT].tolist() == [0, 8, 12, 12]


class TestAttachToSAFS:
    def make_safs(self):
        return SAFS(
            SSDArray(SSDArrayConfig(num_ssds=2, stripe_pages=2)),
            SAFSConfig(cache_bytes=16 * 4096),
        )

    def test_directed_creates_two_files(self):
        safs = self.make_safs()
        image = small_directed()
        image.attach_to_safs(safs)
        assert safs.open_file("graph.out-edges").size == len(image.out_bytes)
        assert safs.open_file("graph.in-edges").size == len(image.in_bytes)

    def test_undirected_creates_one_file(self):
        safs = self.make_safs()
        image = build_undirected(np.array([[0, 1]]), 2)
        image.attach_to_safs(safs)
        assert safs.file_names() == ["graph.out-edges"]

    def test_attrs_create_extra_file(self):
        safs = self.make_safs()
        image = build_directed(
            np.array([[0, 1]]), 2, weights=np.array([1.0], dtype=np.float32)
        )
        image.attach_to_safs(safs)
        assert "graph.out-attrs" in safs.file_names()
