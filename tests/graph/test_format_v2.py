"""Unit and property tests for edge-list format v2 (delta + group varint)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.format import (
    EDGE_BYTES,
    HEADER_BYTES,
    VALUES_PER_TAG,
    decode_lists_v2,
    parse_edge_list,
    parse_edge_list_v2,
    serialize_adjacency,
    serialize_adjacency_v2,
    v2_edge_list_sizes,
)
from repro.graph.index import LARGE_SIZE, GraphIndexV2, build_index_v2


def _csr(neighbor_lists):
    """Build (indptr, indices) from explicit per-vertex neighbor lists."""
    degrees = [len(lst) for lst in neighbor_lists]
    indptr = np.zeros(len(degrees) + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    flat = [n for lst in neighbor_lists for n in lst]
    return indptr, np.asarray(flat, dtype=np.uint32)


def _roundtrip(neighbor_lists):
    indptr, indices = _csr(neighbor_lists)
    data, offsets = serialize_adjacency_v2(indptr, indices)
    assert len(data) == offsets[-1]
    assert v2_edge_list_sizes(indptr, indices).tolist() == np.diff(offsets).tolist()
    view = memoryview(data)
    for v, expected in enumerate(neighbor_lists):
        vid, neighbors = parse_edge_list_v2(view, int(offsets[v]))
        assert vid == v
        assert neighbors.tolist() == list(expected)
    degrees = np.diff(indptr)
    decoded = decode_lists_v2(
        np.frombuffer(data, dtype=np.uint8), offsets[:-1], degrees
    )
    assert decoded.tolist() == indices.tolist()
    return data, offsets


class TestRoundtrip:
    def test_degree_zero(self):
        data, offsets = _roundtrip([[]])
        assert len(data) == HEADER_BYTES

    def test_degree_one(self):
        _roundtrip([[42]])

    def test_trailing_empty_lists(self):
        # A trailing degree-0 vertex starts exactly at the file end; the
        # batched decoder must not index past the buffer.
        _roundtrip([[1, 2, 3], [], []])

    def test_max_u32_ids(self):
        _roundtrip([[0xFFFFFFFF], [0, 0xFFFFFFFF], [0xFFFFFFFE, 0xFFFFFFFF]])

    def test_duplicates(self):
        # Duplicate neighbors are legal (multigraph edges): delta 0.
        _roundtrip([[7, 7, 7], [1, 1, 2, 2]])

    def test_all_byte_length_classes(self):
        # First values spanning 1/2/3/4-byte varint classes.
        _roundtrip([[0x12], [0x1234], [0x123456], [0x12345678]])

    def test_mixed_lengths_within_one_tag_byte(self):
        # Four values of different byte lengths share one tag byte.
        _roundtrip([[1, 0x300, 0x40000, 0x5000000 + 0x40301]])

    def test_empty_graph(self):
        data, offsets = serialize_adjacency_v2(
            np.array([0]), np.array([], dtype=np.uint32)
        )
        assert data == b""
        assert offsets.tolist() == [0]

    def test_unsorted_neighbors_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            serialize_adjacency_v2(
                np.array([0, 2]), np.array([5, 3], dtype=np.uint32)
            )

    def test_bad_indptr_rejected(self):
        with pytest.raises(ValueError):
            serialize_adjacency_v2(np.array([1, 2]), np.array([1], dtype=np.uint32))

    def test_truncated_rejected(self):
        data, _ = _roundtrip([[1, 1000, 100000]])
        for cut in (1, HEADER_BYTES, HEADER_BYTES + 1, len(data) - 1):
            with pytest.raises(ValueError):
                parse_edge_list_v2(memoryview(data)[:cut], 0)

    @given(
        lists=st.lists(
            st.lists(
                st.integers(min_value=0, max_value=0xFFFFFFFF),
                min_size=0,
                max_size=25,
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, lists):
        _roundtrip([sorted(lst) for lst in lists])

    @given(
        degrees=st.lists(
            st.integers(min_value=0, max_value=60), min_size=1, max_size=20
        ),
        seed=st.integers(min_value=0, max_value=2**16),
        span=st.sampled_from([50, 5000, 0xFFFFFFFF]),
    )
    @settings(max_examples=60, deadline=None)
    def test_skewed_random_csr_matches_v1(self, degrees, seed, span):
        # v1 and v2 must agree list-for-list on arbitrary sorted CSRs,
        # including id ranges that force every varint length class.
        rng = np.random.default_rng(seed)
        indptr = np.zeros(len(degrees) + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = rng.integers(
            0, span + 1, size=int(indptr[-1]), dtype=np.int64
        ).astype(np.uint32)
        for v in range(len(degrees)):
            indices[indptr[v] : indptr[v + 1]].sort()
        v1_data, v1_offsets = serialize_adjacency(indptr, indices)
        v2_data, v2_offsets = serialize_adjacency_v2(indptr, indices)
        v1_view, v2_view = memoryview(v1_data), memoryview(v2_data)
        for v in range(len(degrees)):
            vid1, n1 = parse_edge_list(v1_view, int(v1_offsets[v]))
            vid2, n2 = parse_edge_list_v2(v2_view, int(v2_offsets[v]))
            assert vid1 == vid2 == v
            assert n1.tolist() == n2.tolist()

    def test_power_law_compresses(self):
        # Sorted power-law neighbor lists have small deltas: v2 must beat
        # v1 on size, not just round-trip.
        rng = np.random.default_rng(7)
        degrees = np.minimum((rng.pareto(1.2, size=200) * 4).astype(np.int64), 500)
        indptr = np.zeros(degrees.size + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = rng.integers(0, 200, size=int(indptr[-1])).astype(np.uint32)
        for v in range(degrees.size):
            indices[indptr[v] : indptr[v + 1]].sort()
        v1_size = HEADER_BYTES * degrees.size + EDGE_BYTES * int(degrees.sum())
        _, offsets = serialize_adjacency_v2(indptr, indices)
        assert int(offsets[-1]) < v1_size


class TestSizes:
    def test_header_only_for_isolated(self):
        indptr, indices = _csr([[], []])
        assert v2_edge_list_sizes(indptr, indices).tolist() == [
            HEADER_BYTES,
            HEADER_BYTES,
        ]

    def test_tag_byte_rounding(self):
        for degree in range(1, 10):
            indptr, indices = _csr([list(range(degree))])
            expected_tags = (degree + VALUES_PER_TAG - 1) // VALUES_PER_TAG
            size = int(v2_edge_list_sizes(indptr, indices)[0])
            # Deltas here are all 1-byte, so payload == degree bytes.
            assert size == HEADER_BYTES + expected_tags + degree


class TestGraphIndexV2:
    def _build(self, lists, checkpoint_interval=4):
        indptr, indices = _csr(lists)
        data, offsets = serialize_adjacency_v2(indptr, indices)
        degrees = np.diff(indptr).astype(np.int64)
        index = GraphIndexV2(
            degrees, np.diff(offsets), checkpoint_interval=checkpoint_interval
        )
        return index, data, offsets

    def test_locate_matches_offsets(self):
        lists = [sorted([3, 900, 70000, 0xFFFFFFFF][: i % 5]) for i in range(23)]
        index, _, offsets = self._build(lists)
        for v in range(len(lists)):
            offset, size = index.locate(v)
            assert offset == offsets[v]
            assert size == offsets[v + 1] - offsets[v]

    def test_locate_many_matches_locate(self):
        lists = [list(range(i % 7)) for i in range(40)]
        index, _, _ = self._build(lists)
        vertices = np.array([0, 39, 7, 7, 20])
        offsets, sizes = index.locate_many(vertices)
        for v, off, size in zip(vertices, offsets, sizes):
            assert (off, size) == index.locate(int(v))

    def test_build_index_v2(self):
        lists = [[1, 2], [], [5]]
        indptr, indices = _csr(lists)
        data, offsets = serialize_adjacency_v2(indptr, indices)
        index = build_index_v2(np.diff(indptr), offsets)
        assert index.file_size == len(data)
        with pytest.raises(ValueError):
            build_index_v2(np.diff(indptr), offsets + 1)

    def test_large_list_spills(self):
        # One list bigger than the u16 size-word ceiling must spill to the
        # side table and still locate exactly.
        big = sorted(
            np.random.default_rng(3)
            .integers(0, 2**32, size=30000, dtype=np.int64)
            .tolist()
        )
        lists = [[1, 2], big, [9]]
        index, data, offsets = self._build(lists)
        assert int(np.diff(offsets)[1]) > LARGE_SIZE
        for v in range(3):
            offset, size = index.locate(v)
            assert offset == offsets[v]
            assert size == offsets[v + 1] - offsets[v]
        assert index.memory_bytes() > 0
