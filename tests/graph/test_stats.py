"""Tests for graph statistics utilities — and through them, for the
structural properties the dataset stand-ins must carry."""

import numpy as np
import pytest

from repro.graph.builder import build_directed
from repro.graph.generators import erdos_renyi_graph, page_sim, twitter_sim
from repro.graph.stats import (
    DegreeStats,
    degree_histogram,
    degree_stats,
    id_locality,
)
from repro.graph.types import EdgeType


@pytest.fixture(scope="module")
def skewed_image():
    edges, n = twitter_sim(scale=12, seed=5)
    return build_directed(edges, n, name="skew")


@pytest.fixture(scope="module")
def flat_image():
    edges, n = erdos_renyi_graph(4096, 4096 * 16, seed=5)
    return build_directed(edges, n, name="flat")


class TestDegreeStats:
    def test_basic_fields(self, skewed_image):
        stats = degree_stats(skewed_image)
        assert stats.mean > 0
        assert stats.maximum >= stats.median
        assert 0 <= stats.gini <= 1
        assert 0 <= stats.top1pct_edge_share <= 1

    def test_rmat_more_skewed_than_er(self, skewed_image, flat_image):
        rmat = degree_stats(skewed_image)
        er = degree_stats(flat_image)
        assert rmat.gini > er.gini
        assert rmat.top1pct_edge_share > er.top1pct_edge_share
        assert rmat.maximum > er.maximum

    def test_powerlaw_alpha_in_plausible_band(self, skewed_image):
        stats = degree_stats(skewed_image)
        assert stats.powerlaw_alpha is not None
        # Natural graphs: alpha typically 1.5-3.5.
        assert 1.2 < stats.powerlaw_alpha < 4.0

    def test_in_direction(self, skewed_image):
        stats = degree_stats(skewed_image, EdgeType.IN)
        assert stats.mean == pytest.approx(degree_stats(skewed_image).mean)

    def test_empty_graph_rejected(self):
        image = build_directed(np.zeros((0, 2), dtype=np.int64), 0, name="none")
        with pytest.raises(ValueError):
            degree_stats(image)

    def test_degenerate_alpha_none(self):
        image = build_directed(np.array([[0, 1]]), 8, name="deg")
        assert degree_stats(image).powerlaw_alpha is None


class TestIdLocality:
    def test_page_sim_has_high_locality(self):
        edges, n = page_sim(num_vertices=1 << 13)
        page = build_directed(edges, n, name="pg")
        edges, n = twitter_sim(scale=12, seed=1)
        twitter = build_directed(edges, n, name="tw")
        assert id_locality(page, window=64) > 0.6
        assert id_locality(page, window=64) > 2 * id_locality(twitter, window=64)

    def test_window_monotone(self, skewed_image):
        assert id_locality(skewed_image, 16) <= id_locality(skewed_image, 256)

    def test_empty(self):
        image = build_directed(np.zeros((0, 2), dtype=np.int64), 4, name="e")
        assert id_locality(image) == 0.0

    def test_invalid_window(self, skewed_image):
        with pytest.raises(ValueError):
            id_locality(skewed_image, 0)


class TestDegreeHistogram:
    def test_counts_sum_to_vertices(self, skewed_image):
        values, counts = degree_histogram(skewed_image)
        assert counts.sum() == skewed_image.num_vertices

    def test_weighted_sum_is_edge_count(self, skewed_image):
        values, counts = degree_histogram(skewed_image)
        assert (values * counts).sum() == skewed_image.out_csr.num_edges
