"""Tests for the image integrity checker."""

import numpy as np
import pytest

from repro.graph.builder import build_directed, build_undirected
from repro.graph.validation import ValidationReport, validate_image


class TestCleanImages:
    def test_directed_image_validates(self, er_image):
        report = validate_image(er_image)
        assert report.ok, report.errors[:3]
        assert report.vertices_checked == 2 * er_image.num_vertices
        assert report.edges_checked == 2 * er_image.out_csr.num_edges

    def test_undirected_image_validates(self, er_uimage):
        report = validate_image(er_uimage)
        assert report.ok

    def test_rmat_image_validates(self, rmat_image):
        assert validate_image(rmat_image).ok

    def test_empty_graph_validates(self):
        image = build_directed(np.zeros((0, 2), dtype=np.int64), 4, name="v-empty")
        assert validate_image(image).ok

    def test_transpose_check_optional(self, er_image):
        report = validate_image(er_image, check_transpose=False)
        assert report.ok


class TestCorruptionDetection:
    def test_flipped_header_vertex_id(self):
        image = build_directed(np.array([[0, 1], [1, 2]]), 3, name="v-c1")
        data = bytearray(image.out_bytes)
        data[0] = 99  # vertex 0's on-disk id
        image.out_bytes = bytes(data)
        report = validate_image(image)
        assert not report.ok
        assert any("holds header of vertex" in e for e in report.errors)

    def test_corrupted_degree(self):
        image = build_directed(np.array([[0, 1], [0, 2]]), 3, name="v-c2")
        data = bytearray(image.out_bytes)
        data[4] = 1  # vertex 0 claims degree 1 instead of 2
        image.out_bytes = bytes(data)
        report = validate_image(image)
        assert not report.ok

    def test_truncated_file(self):
        image = build_directed(np.array([[0, 1], [1, 2]]), 3, name="v-c3")
        image.out_bytes = image.out_bytes[:-4]
        report = validate_image(image)
        assert not report.ok
        assert any("bytes" in e for e in report.errors)

    def test_unsorted_neighbors_detected(self):
        image = build_directed(np.array([[0, 1], [0, 2]]), 3, name="v-c4")
        data = bytearray(image.out_bytes)
        # Swap vertex 0's two neighbor words (offsets 8..12 and 12..16).
        data[8:12], data[12:16] = data[12:16], data[8:12]
        image.out_bytes = bytes(data)
        report = validate_image(image)
        assert not report.ok
        assert any("not sorted" in e or "differ" in e for e in report.errors)

    def test_report_repr(self):
        report = ValidationReport()
        assert "ok" in repr(report)
        report.add("boom")
        assert "1 errors" in repr(report)
