"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.graph.builder import build_directed
from repro.graph.generators import (
    erdos_renyi_graph,
    page_sim,
    rmat_graph,
    subdomain_sim,
    twitter_sim,
    web_graph,
)


class TestRMAT:
    def test_shape(self):
        edges, n = rmat_graph(scale=8, edge_factor=4, seed=0)
        assert n == 256
        assert edges.shape == (4 * 256, 2)
        assert edges.min() >= 0
        assert edges.max() < n

    def test_deterministic(self):
        a, _ = rmat_graph(scale=6, edge_factor=3, seed=42)
        b, _ = rmat_graph(scale=6, edge_factor=3, seed=42)
        assert np.array_equal(a, b)

    def test_seed_changes_output(self):
        a, _ = rmat_graph(scale=6, edge_factor=3, seed=1)
        b, _ = rmat_graph(scale=6, edge_factor=3, seed=2)
        assert not np.array_equal(a, b)

    def test_degree_skew(self):
        # R-MAT graphs are skewed: the hottest vertex collects far more
        # than the average degree.
        edges, n = rmat_graph(scale=12, edge_factor=16, seed=0)
        out_deg = np.bincount(edges[:, 0], minlength=n)
        assert out_deg.max() > 10 * out_deg.mean()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            rmat_graph(scale=0, edge_factor=1)
        with pytest.raises(ValueError):
            rmat_graph(scale=4, edge_factor=0)
        with pytest.raises(ValueError):
            rmat_graph(scale=4, edge_factor=1, a=0.9, b=0.3, c=0.1)


class TestErdosRenyi:
    def test_shape_and_range(self):
        edges, n = erdos_renyi_graph(100, 500, seed=0)
        assert n == 100
        assert edges.shape == (500, 2)
        assert edges.min() >= 0 and edges.max() < 100

    def test_invalid(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(0, 5)
        with pytest.raises(ValueError):
            erdos_renyi_graph(5, -1)


class TestWebGraph:
    def test_locality_profile(self):
        edges, n = web_graph(4096, edge_factor=8, domain_size=64, locality=0.9, seed=0)
        assert edges.min() >= 0 and edges.max() < n
        src_dom = edges[:, 0] // 64
        dst_dom = edges[:, 1] // 64
        same = np.mean(src_dom == dst_dom)
        assert same > 0.6  # most links stay in the domain

    def test_low_locality(self):
        edges, _ = web_graph(4096, edge_factor=8, domain_size=64, locality=0.0, seed=0)
        src_dom = edges[:, 0] // 64
        dst_dom = edges[:, 1] // 64
        assert np.mean(src_dom == dst_dom) < 0.4

    def test_invalid(self):
        with pytest.raises(ValueError):
            web_graph(10, edge_factor=2, domain_size=64)
        with pytest.raises(ValueError):
            web_graph(1000, edge_factor=2, locality=1.5)


class TestDatasetStandIns:
    def test_twitter_sim_ratio(self):
        edges, n = twitter_sim(scale=10)
        assert len(edges) / n == 36

    def test_subdomain_sim_ratio(self):
        edges, n = subdomain_sim(scale=10)
        assert len(edges) / n == 22

    def test_page_sim_ratio_and_locality(self):
        edges, n = page_sim(num_vertices=4096)
        # Raw sampling over-draws (the home-page funnel deduplicates
        # away); the *distinct* edge ratio is what Table 1 checks.
        assert len(edges) / n == pytest.approx(52, rel=0.05)

    def test_standins_build(self):
        for gen in (lambda: twitter_sim(scale=8), lambda: subdomain_sim(scale=8)):
            edges, n = gen()
            image = build_directed(edges, n)
            assert image.num_vertices == n
            assert 0 < image.num_edges <= len(edges)
