"""Unit and property tests for the compact graph index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.format import EDGE_BYTES, HEADER_BYTES, serialize_adjacency
from repro.graph.index import CHECKPOINT_INTERVAL, LARGE_DEGREE, GraphIndex, build_index


class TestDegrees:
    def test_small_degrees(self):
        index = GraphIndex(np.array([0, 3, 254]))
        assert index.degree(0) == 0
        assert index.degree(1) == 3
        assert index.degree(2) == 254
        assert index.num_large_vertices() == 0

    def test_large_degrees_spill_to_hash(self):
        index = GraphIndex(np.array([255, 10_000, 5]))
        assert index.degree(0) == 255
        assert index.degree(1) == 10_000
        assert index.degree(2) == 5
        assert index.num_large_vertices() == 2

    def test_degrees_array_roundtrip(self):
        degrees = np.array([0, 255, 300, 12, 254, 1000])
        index = GraphIndex(degrees)
        assert index.degrees_array().tolist() == degrees.tolist()

    def test_degrees_of_vectorised(self):
        degrees = np.array([1, 300, 7, 255])
        index = GraphIndex(degrees)
        got = index.degrees_of(np.array([3, 0, 1]))
        assert got.tolist() == [255, 1, 300]

    def test_out_of_range(self):
        index = GraphIndex(np.array([1, 2]))
        with pytest.raises(IndexError):
            index.degree(2)
        with pytest.raises(IndexError):
            index.degree(-1)
        with pytest.raises(IndexError):
            index.locate_many(np.array([5]))

    def test_invalid_input(self):
        with pytest.raises(ValueError):
            GraphIndex(np.array([-1]))
        with pytest.raises(ValueError):
            GraphIndex(np.array([[1, 2]]))
        with pytest.raises(ValueError):
            GraphIndex(np.array([1]), checkpoint_interval=0)


class TestLocate:
    def test_locations_match_serializer(self):
        rng = np.random.default_rng(7)
        degrees = rng.integers(0, 400, size=100)
        indptr = np.zeros(101, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = rng.integers(0, 100, size=int(indptr[-1])).astype(np.uint32)
        _, offsets = serialize_adjacency(indptr, indices)
        index = build_index(degrees, offsets)
        for v in range(100):
            offset, size = index.locate(v)
            assert offset == offsets[v]
            assert size == HEADER_BYTES + degrees[v] * EDGE_BYTES

    def test_locate_many_matches_locate(self):
        rng = np.random.default_rng(3)
        degrees = rng.integers(0, 300, size=200)
        index = GraphIndex(degrees)
        vertices = rng.integers(0, 200, size=50)
        offsets, sizes = index.locate_many(vertices)
        for v, off, size in zip(vertices, offsets, sizes):
            assert (off, size) == index.locate(int(v))

    def test_file_size(self):
        degrees = np.array([2, 0, 3])
        index = GraphIndex(degrees)
        assert index.file_size == 3 * HEADER_BYTES + 5 * EDGE_BYTES
        assert index.num_edges == 5

    def test_build_index_detects_layout_mismatch(self):
        with pytest.raises(ValueError):
            build_index(np.array([2]), np.array([0, 999]))

    @given(
        degrees=st.lists(
            st.integers(min_value=0, max_value=600), min_size=1, max_size=150
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_locate_property(self, degrees):
        degrees = np.asarray(degrees)
        index = GraphIndex(degrees)
        sizes = HEADER_BYTES + degrees * EDGE_BYTES
        expected = np.zeros(len(degrees) + 1, dtype=np.int64)
        np.cumsum(sizes, out=expected[1:])
        for v in range(len(degrees)):
            offset, size = index.locate(v)
            assert offset == expected[v]
            assert size == sizes[v]


class TestMemoryFootprint:
    def test_roughly_1_25_bytes_per_vertex(self):
        # Power-law-free graph with no large vertices: 1 byte degree +
        # 8/32 bytes of checkpoint = 1.25 bytes per vertex.
        n = 32_000
        index = GraphIndex(np.full(n, 10))
        per_vertex = index.memory_bytes() / n
        assert 1.2 <= per_vertex <= 1.4

    def test_large_vertices_add_hash_entries(self):
        small = GraphIndex(np.full(1000, 10))
        degrees = np.full(1000, 10)
        degrees[::100] = 1000
        big = GraphIndex(degrees)
        assert big.memory_bytes() > small.memory_bytes()

    def test_checkpoint_interval_default(self):
        assert CHECKPOINT_INTERVAL == 32
        assert LARGE_DEGREE == 255
