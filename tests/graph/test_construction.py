"""Tests for the external-memory construction pipeline."""

import numpy as np
import pytest

from repro.graph.builder import build_directed
from repro.graph.construction import (
    RAW_EDGE_BYTES,
    ConstructionConfig,
    GraphConstructor,
    init_time,
)
from repro.sim.ssd_array import SSDArray, SSDArrayConfig


@pytest.fixture()
def edges():
    rng = np.random.default_rng(4)
    return rng.integers(0, 2000, size=(20_000, 2), dtype=np.int64)


class TestNumRuns:
    def test_fits_in_memory(self):
        builder = GraphConstructor(config=ConstructionConfig(sort_memory_bytes=1 << 30))
        assert builder.num_runs(1000) == 1

    def test_spills_into_runs(self):
        builder = GraphConstructor(
            config=ConstructionConfig(sort_memory_bytes=100 * RAW_EDGE_BYTES)
        )
        assert builder.num_runs(1000) == 10

    def test_invalid_memory(self):
        with pytest.raises(ValueError):
            GraphConstructor(config=ConstructionConfig(sort_memory_bytes=0))


class TestBuild:
    def test_image_identical_to_direct_builder(self, edges):
        report = GraphConstructor().build(edges, 2000, name="c")
        direct = build_directed(edges, 2000, name="c2")
        assert report.image.out_bytes == direct.out_bytes
        assert report.image.in_bytes == direct.in_bytes

    def test_accounting_positive(self, edges):
        report = GraphConstructor().build(edges, 2000)
        assert report.seconds > 0
        assert report.bytes_read > 0
        assert report.bytes_written >= report.image.storage_bytes()
        assert report.flash_pages_programmed > 0

    def test_more_runs_means_more_time(self, edges):
        small = GraphConstructor(
            config=ConstructionConfig(sort_memory_bytes=1000 * RAW_EDGE_BYTES)
        ).build(edges, 2000)
        big = GraphConstructor(
            config=ConstructionConfig(sort_memory_bytes=1 << 30)
        ).build(edges, 2000)
        assert small.num_runs > big.num_runs
        assert small.seconds > big.seconds

    def test_construction_amortised_over_algorithms(self, edges):
        # §3.5.2's point: one construction serves every algorithm — the
        # image carries no algorithm-specific state.
        report = GraphConstructor().build(edges, 2000)
        from repro.algorithms.bfs import bfs
        from repro.algorithms.wcc import wcc
        from tests.conftest import engine_for

        engine = engine_for(report.image)
        bfs(engine, 0)
        wcc(engine)  # same engine, same image, no rebuild


class TestInitTime:
    def test_scales_with_graph_size(self, edges):
        small = build_directed(edges[:1000], 2000, name="s")
        large = build_directed(edges, 2000, name="l")
        assert init_time(small) < init_time(large)

    def test_scales_with_array_speed(self, edges):
        image = build_directed(edges, 2000)
        slow = SSDArray(SSDArrayConfig(num_ssds=1))
        fast = SSDArray(SSDArrayConfig(num_ssds=15))
        assert init_time(image, slow) > init_time(image, fast)

    def test_roughly_constant_across_algorithms(self, edges):
        # The paper's Table 2: init is ~30s for every application because
        # it is a property of the graph, not the algorithm.
        image = build_directed(edges, 2000)
        assert init_time(image) == init_time(image)
