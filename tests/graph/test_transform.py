"""Tests for graph transformations."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.builder import build_directed, build_undirected
from repro.graph.transform import (
    edge_array,
    largest_wcc,
    reverse,
    subgraph,
    to_undirected,
)


@pytest.fixture()
def small():
    edges = np.array([[0, 1], [1, 2], [2, 0], [3, 4]])
    return build_directed(edges, 5, name="t")


class TestEdgeArray:
    def test_directed_roundtrip(self, small):
        edges = edge_array(small)
        assert sorted(map(tuple, edges.tolist())) == [
            (0, 1), (1, 2), (2, 0), (3, 4),
        ]

    def test_undirected_each_edge_once(self):
        image = build_undirected(np.array([[0, 1], [1, 2]]), 3)
        edges = edge_array(image)
        assert sorted(map(tuple, edges.tolist())) == [(0, 1), (1, 2)]

    def test_rebuild_identical(self, small):
        rebuilt = build_directed(edge_array(small), 5)
        assert rebuilt.out_bytes == small.out_bytes


class TestReverse:
    def test_edges_flipped(self, small):
        rev = reverse(small)
        assert sorted(map(tuple, edge_array(rev).tolist())) == [
            (0, 2), (1, 0), (2, 1), (4, 3),
        ]

    def test_double_reverse_is_identity(self, small):
        assert reverse(reverse(small)).out_bytes == small.out_bytes

    def test_in_out_swap(self, small):
        rev = reverse(small)
        assert np.array_equal(rev.in_csr.indptr, small.out_csr.indptr)

    def test_undirected_rejected(self):
        image = build_undirected(np.array([[0, 1]]), 2)
        with pytest.raises(ValueError):
            reverse(image)


class TestToUndirected:
    def test_projection(self, small):
        und = to_undirected(small)
        assert not und.directed
        assert und.num_edges == 4
        assert sorted(und.out_csr.neighbors(0).tolist()) == [1, 2]

    def test_reciprocal_edges_collapse(self):
        image = build_directed(np.array([[0, 1], [1, 0]]), 2)
        und = to_undirected(image)
        assert und.num_edges == 1

    def test_already_undirected_passthrough(self):
        image = build_undirected(np.array([[0, 1]]), 2)
        assert to_undirected(image) is image


class TestSubgraph:
    def test_induced_edges_only(self, small):
        sub, ids = subgraph(small, np.array([0, 1, 2]))
        assert ids.tolist() == [0, 1, 2]
        assert sorted(map(tuple, edge_array(sub).tolist())) == [
            (0, 1), (1, 2), (2, 0),
        ]

    def test_renumbering(self, small):
        sub, ids = subgraph(small, np.array([3, 4]))
        assert ids.tolist() == [3, 4]
        assert edge_array(sub).tolist() == [[0, 1]]

    def test_duplicates_collapse(self, small):
        sub, ids = subgraph(small, np.array([1, 1, 0]))
        assert ids.tolist() == [0, 1]

    def test_out_of_range_rejected(self, small):
        with pytest.raises(ValueError):
            subgraph(small, np.array([99]))
        with pytest.raises(ValueError):
            subgraph(small, np.array([], dtype=np.int64))

    def test_undirected_subgraph(self):
        image = build_undirected(np.array([[0, 1], [1, 2], [3, 4]]), 5)
        sub, ids = subgraph(image, np.array([0, 1, 2]))
        assert not sub.directed
        assert sub.num_edges == 2


class TestLargestWCC:
    def test_extracts_biggest_component(self, small):
        sub, ids = largest_wcc(small)
        assert sorted(ids.tolist()) == [0, 1, 2]
        assert sub.num_vertices == 3

    def test_matches_networkx(self, er_image, er_digraph):
        sub, ids = largest_wcc(er_image)
        biggest = max(nx.weakly_connected_components(er_digraph), key=len)
        assert set(ids.tolist()) == biggest

    def test_connected_graph_is_identity_sized(self):
        image = build_directed(np.array([[0, 1], [1, 2], [2, 0]]), 3)
        sub, ids = largest_wcc(image)
        assert sub.num_vertices == 3


class TestTransformProperties:
    def test_subgraph_matches_networkx(self, er_image, er_digraph):
        import networkx as nx

        rng = np.random.default_rng(5)
        chosen = rng.choice(er_image.num_vertices, size=40, replace=False)
        sub, ids = subgraph(er_image, chosen)
        expected = er_digraph.subgraph(ids.tolist())
        got = {(int(ids[u]), int(ids[v])) for u, v in edge_array(sub)}
        assert got == set(expected.edges())

    def test_reverse_preserves_degree_multiset(self, er_image):
        rev = reverse(er_image)
        assert sorted(rev.out_csr.degrees().tolist()) == sorted(
            er_image.in_csr.degrees().tolist()
        )

    def test_to_undirected_matches_networkx(self, er_image, er_ugraph):
        und = to_undirected(er_image)
        got = {tuple(sorted(e)) for e in edge_array(und).tolist()}
        expected = {
            tuple(sorted(e)) for e in er_ugraph.edges() if e[0] != e[1]
        }
        # er_ugraph was built without self-loops; the image keeps them.
        loops = {
            (v, v)
            for v in range(er_image.num_vertices)
            if v in er_image.out_csr.neighbors(v)
        }
        assert got == expected | loops
