"""Unit tests for PageVertex views."""

import numpy as np
import pytest

from repro.graph.format import serialize_adjacency
from repro.graph.page_vertex import PageVertex
from repro.graph.types import EdgeType


def serialized_vertex(neighbors):
    indptr = np.array([0, len(neighbors)])
    data, _ = serialize_adjacency(indptr, np.asarray(neighbors, dtype=np.uint32))
    return memoryview(data)


class TestPageVertex:
    def test_parse_from_bytes(self):
        view = PageVertex(serialized_vertex([3, 5, 8]), EdgeType.OUT)
        assert view.vertex_id == 0
        assert view.num_edges == 3
        assert view.read_edges().tolist() == [3, 5, 8]
        assert view.edge_type is EdgeType.OUT

    def test_from_arrays(self):
        view = PageVertex.from_arrays(7, np.array([1, 2]), EdgeType.IN)
        assert view.vertex_id == 7
        assert view.read_edges().tolist() == [1, 2]
        assert view.edge_type is EdgeType.IN

    def test_empty_edge_list(self):
        view = PageVertex(serialized_vertex([]))
        assert view.num_edges == 0
        assert view.read_edges().size == 0

    def test_attrs(self):
        attrs = np.array([0.5, 1.5], dtype=np.float32)
        view = PageVertex.from_arrays(0, np.array([1, 2]), attrs=attrs)
        assert view.has_attrs
        assert view.read_edge_attrs().tolist() == [0.5, 1.5]

    def test_missing_attrs_raise(self):
        view = PageVertex(serialized_vertex([1]))
        assert not view.has_attrs
        with pytest.raises(ValueError):
            view.read_edge_attrs()

    def test_repr(self):
        view = PageVertex.from_arrays(4, np.array([9]))
        assert "id=4" in repr(view)


class TestEdgeType:
    def test_directions(self):
        assert EdgeType.OUT.directions() == (EdgeType.OUT,)
        assert EdgeType.IN.directions() == (EdgeType.IN,)
        assert EdgeType.BOTH.directions() == (EdgeType.OUT, EdgeType.IN)
