"""Unit tests for edge-list persistence and networkx bridges."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.builder import build_directed, build_undirected
from repro.graph.io_edge_list import (
    edges_from_networkx,
    image_to_networkx,
    load_edges_npz,
    load_edges_text,
    save_edges_npz,
    save_edges_text,
)


@pytest.fixture()
def edges():
    return np.array([[0, 1], [1, 2], [2, 0], [3, 1]])


class TestTextRoundtrip:
    def test_roundtrip(self, tmp_path, edges):
        path = tmp_path / "graph.txt"
        save_edges_text(path, edges, 5)
        loaded, n = load_edges_text(path)
        assert n == 5
        assert np.array_equal(loaded, edges)

    def test_headerless_infers_vertices(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 7\n")
        loaded, n = load_edges_text(path)
        assert n == 8
        assert loaded.tolist() == [[0, 1], [1, 7]]

    def test_blank_lines_and_comments_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# a comment\n\n0 1\n")
        loaded, n = load_edges_text(path)
        assert loaded.tolist() == [[0, 1]]

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2\n")
        with pytest.raises(ValueError):
            load_edges_text(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("")
        loaded, n = load_edges_text(path)
        assert loaded.shape == (0, 2)
        assert n == 0


class TestNpzRoundtrip:
    def test_roundtrip(self, tmp_path, edges):
        path = tmp_path / "graph.npz"
        save_edges_npz(path, edges, 4)
        loaded, n = load_edges_npz(path)
        assert n == 4
        assert np.array_equal(loaded, edges)


class TestNetworkxBridges:
    def test_edges_from_networkx(self):
        g = nx.DiGraph([(0, 1), (1, 2)])
        edges, n = edges_from_networkx(g)
        assert n == 3
        assert sorted(map(tuple, edges.tolist())) == [(0, 1), (1, 2)]

    def test_relabels_sparse_ids(self):
        g = nx.DiGraph([(10, 20)])
        edges, n = edges_from_networkx(g)
        assert n == 2
        assert edges.tolist() == [[0, 1]]

    def test_image_to_networkx_directed(self, edges):
        image = build_directed(edges, 4)
        g = image_to_networkx(image)
        assert isinstance(g, nx.DiGraph)
        assert g.number_of_nodes() == 4
        assert sorted(g.edges()) == sorted(map(tuple, edges.tolist()))

    def test_image_to_networkx_undirected(self):
        image = build_undirected(np.array([[0, 1], [1, 2]]), 3)
        g = image_to_networkx(image)
        assert not g.is_directed()
        assert g.number_of_edges() == 2

    def test_full_roundtrip_through_image(self, edges):
        image = build_directed(edges, 4)
        g = image_to_networkx(image)
        back, n = edges_from_networkx(g)
        assert n == 4
        assert sorted(map(tuple, back.tolist())) == sorted(map(tuple, edges.tolist()))
