"""The device model must measure out to its own spec."""

import pytest

from repro.sim.calibration import (
    expected_envelope,
    measured_envelope,
    profile_random_reads,
)
from repro.sim.ssd_array import SSDArray, SSDArrayConfig


@pytest.fixture(scope="module")
def profile():
    return profile_random_reads(requests_per_point=1000)


class TestProfile:
    def test_iops_decreases_with_request_size(self, profile):
        iops = [p.iops for p in profile]
        assert iops == sorted(iops, reverse=True)

    def test_bandwidth_increases_with_request_size(self, profile):
        bandwidth = [p.bandwidth for p in profile]
        assert bandwidth == sorted(bandwidth)

    def test_latency_grows_under_queueing(self, profile):
        # Mean completion of a burst sits far above a single request's
        # pipelined latency (80us): queueing dominates.
        assert profile[0].mean_latency > 5e-4


class TestEnvelope:
    def test_measured_matches_configured_spec(self, profile):
        measured = measured_envelope(profile)
        expected = expected_envelope()
        # ~900K IOPS aggregate for random 4KB reads (§5).
        assert measured["random_4k_iops"] == pytest.approx(
            expected["random_4k_iops"], rel=0.02
        )
        # Large merged requests approach aggregate sequential bandwidth.
        assert measured["sequential_bandwidth"] >= 0.9 * expected[
            "sequential_bandwidth"
        ]
        # The §3 ratio: sequential only 2-3x faster than random 4KB.
        assert 1.9 <= measured["seq_to_random_ratio"] <= 3.0

    def test_custom_array(self):
        array = SSDArray(SSDArrayConfig(num_ssds=4))
        points = profile_random_reads(array, request_pages_sweep=(1, 64),
                                      requests_per_point=500)
        measured = measured_envelope(points)
        expected = expected_envelope(SSDArrayConfig(num_ssds=4))
        assert measured["random_4k_iops"] == pytest.approx(
            expected["random_4k_iops"], rel=0.05
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            profile_random_reads(requests_per_point=0)
        with pytest.raises(ValueError):
            profile_random_reads(request_pages_sweep=(0,))
        with pytest.raises(ValueError):
            measured_envelope([])
