"""Property tests on the discrete-event substrate's physical sanity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.ssd import SSD, SSDConfig
from repro.sim.ssd_array import SSDArray, SSDArrayConfig


class TestSSDPhysics:
    @given(
        arrivals=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_fifo_completions_monotone(self, arrivals):
        # A FIFO device completes requests in submission order.
        ssd = SSD()
        completions = [ssd.submit(t, 1) for t in sorted(arrivals)]
        assert completions == sorted(completions)

    @given(
        requests=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                st.integers(min_value=1, max_value=64),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_completion_never_before_arrival_plus_service(self, requests):
        ssd = SSD()
        for arrival, pages in sorted(requests):
            done = ssd.submit(arrival, pages)
            floor = arrival + ssd.service_time(pages) + ssd.config.read_latency
            assert done >= floor - 1e-15

    @given(
        pages=st.integers(min_value=1, max_value=512),
        extra=st.integers(min_value=1, max_value=512),
    )
    @settings(max_examples=50, deadline=None)
    def test_service_time_superadditive_in_pages(self, pages, extra):
        # One merged request is never slower than two separate ones — the
        # physical basis for conservative merging being safe.
        ssd = SSD()
        merged = ssd.service_time(pages + extra)
        split = ssd.service_time(pages) + ssd.service_time(extra)
        assert merged < split

    @given(
        later=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_busy_time_independent_of_gaps(self, later):
        busy = []
        for gap in (0.0, later):
            ssd = SSD()
            ssd.submit(0.0, 4)
            ssd.submit(gap, 4)
            busy.append(ssd.busy_time)
        assert busy[0] == pytest.approx(busy[1])


class TestArrayPhysics:
    @given(
        num_ssds=st.integers(min_value=1, max_value=16),
        stripe=st.integers(min_value=1, max_value=32),
        first=st.integers(min_value=0, max_value=1000),
        pages=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_split_extent_preserves_pages(self, num_ssds, stripe, first, pages):
        array = SSDArray(SSDArrayConfig(num_ssds=num_ssds, stripe_pages=stripe))
        runs = array.split_extent(first, pages)
        assert sum(count for _, count in runs) == pages
        page = first
        for device, count in runs:
            assert device == array.device_for_page(page)
            page += count

    @given(pages=st.integers(min_value=1, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_wider_array_never_slower(self, pages):
        narrow = SSDArray(SSDArrayConfig(num_ssds=2, stripe_pages=4))
        wide = SSDArray(SSDArrayConfig(num_ssds=8, stripe_pages=4))
        assert wide.submit(0.0, 0, pages) <= narrow.submit(0.0, 0, pages) + 1e-12
