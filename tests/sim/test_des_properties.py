"""Property tests on the discrete-event substrate's physical sanity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.safs.filesystem import SAFS, SAFSConfig
from repro.safs.io_request import IORequest, merge_requests
from repro.safs.page import SAFSFile
from repro.sim.faults import (
    DeviceFailure,
    FaultPlan,
    FaultPolicy,
    LatencySpike,
    StuckQueue,
    TransientErrors,
)
from repro.sim.ssd import SSD, SSDConfig
from repro.sim.ssd_array import SSDArray, SSDArrayConfig


class TestSSDPhysics:
    @given(
        arrivals=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_fifo_completions_monotone(self, arrivals):
        # A FIFO device completes requests in submission order.
        ssd = SSD()
        completions = [ssd.submit(t, 1) for t in sorted(arrivals)]
        assert completions == sorted(completions)

    @given(
        requests=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                st.integers(min_value=1, max_value=64),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_completion_never_before_arrival_plus_service(self, requests):
        ssd = SSD()
        for arrival, pages in sorted(requests):
            done = ssd.submit(arrival, pages)
            floor = arrival + ssd.service_time(pages) + ssd.config.read_latency
            assert done >= floor - 1e-15

    @given(
        pages=st.integers(min_value=1, max_value=512),
        extra=st.integers(min_value=1, max_value=512),
    )
    @settings(max_examples=50, deadline=None)
    def test_service_time_superadditive_in_pages(self, pages, extra):
        # One merged request is never slower than two separate ones — the
        # physical basis for conservative merging being safe.
        ssd = SSD()
        merged = ssd.service_time(pages + extra)
        split = ssd.service_time(pages) + ssd.service_time(extra)
        assert merged < split

    @given(
        later=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_busy_time_independent_of_gaps(self, later):
        busy = []
        for gap in (0.0, later):
            ssd = SSD()
            ssd.submit(0.0, 4)
            ssd.submit(gap, 4)
            busy.append(ssd.busy_time)
        assert busy[0] == pytest.approx(busy[1])


class TestArrayPhysics:
    @given(
        num_ssds=st.integers(min_value=1, max_value=16),
        stripe=st.integers(min_value=1, max_value=32),
        first=st.integers(min_value=0, max_value=1000),
        pages=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_split_extent_preserves_pages(self, num_ssds, stripe, first, pages):
        array = SSDArray(SSDArrayConfig(num_ssds=num_ssds, stripe_pages=stripe))
        runs = array.split_extent(first, pages)
        assert sum(count for _, count in runs) == pages
        page = first
        for device, count in runs:
            assert device == array.device_for_page(page)
            page += count

    @given(pages=st.integers(min_value=1, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_wider_array_never_slower(self, pages):
        narrow = SSDArray(SSDArrayConfig(num_ssds=2, stripe_pages=4))
        wide = SSDArray(SSDArrayConfig(num_ssds=8, stripe_pages=4))
        assert wide.submit(0.0, 0, pages) <= narrow.submit(0.0, 0, pages) + 1e-12


@st.composite
def fault_plans(draw, max_device=3):
    """An arbitrary seeded fault plan over devices ``0..max_device``."""
    events = []
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        kind = draw(st.sampled_from(["spike", "stall", "flaky", "dead"]))
        device = draw(st.integers(min_value=0, max_value=max_device))
        start = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        duration = draw(
            st.floats(min_value=1e-3, max_value=1.0, allow_nan=False)
        )
        if kind == "spike":
            factor = draw(
                st.floats(min_value=1.0, max_value=8.0, allow_nan=False)
            )
            events.append(
                LatencySpike(
                    device=device, start=start, end=start + duration, factor=factor
                )
            )
        elif kind == "stall":
            events.append(
                StuckQueue(device=device, start=start, end=start + duration)
            )
        elif kind == "flaky":
            probability = draw(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
            )
            events.append(
                TransientErrors(
                    device=device,
                    start=start,
                    end=start + duration,
                    probability=probability,
                )
            )
        else:
            events.append(DeviceFailure(device=device, at=start))
    return FaultPlan(events, seed=draw(st.integers(min_value=0, max_value=2**32)))


_fault_requests = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
        st.integers(min_value=1, max_value=32),
    ),
    min_size=1,
    max_size=40,
)


class TestFaultPhysics:
    """Invariants of the fault layer under arbitrary seeded plans."""

    @given(plan=fault_plans(), requests=_fault_requests)
    @settings(max_examples=60, deadline=None)
    def test_busy_time_is_sum_of_charged_service(self, plan, requests):
        # Whatever mix of faults fires, the device's busy time equals the
        # service charged to the attempts it accepted — failed attempts
        # are charged once, dead rejections never.  This is the invariant
        # that makes retried requests unable to double-charge busy time.
        ssd = SSD(fault_plan=plan, device_index=0)
        outcomes = [ssd.submit_request(t, p) for t, p in sorted(requests)]
        assert ssd.busy_time == sum(o.service for o in outcomes)
        assert all(o.service == 0.0 for o in outcomes if o.error == "dead")

    @given(
        probability=st.floats(min_value=0.05, max_value=0.6, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**32),
        num_pages=st.integers(min_value=1, max_value=24),
    )
    @settings(max_examples=30, deadline=None)
    def test_scheduler_retries_never_double_charge(
        self, probability, seed, num_pages
    ):
        # End to end through SAFS: with only transient errors in play,
        # every retry re-reads one page, so the faulty run's device busy
        # time exceeds the clean run's by exactly one page-read service
        # per transient error — no more, no less.
        plan = FaultPlan(
            [TransientErrors(device=0, start=0.0, end=1e6, probability=probability)],
            seed=seed,
        )

        def run(fault_plan):
            SAFSFile._next_id = 0
            array = SSDArray(
                SSDArrayConfig(num_ssds=1, stripe_pages=1),
                fault_plan=fault_plan,
            )
            safs = SAFS(
                array,
                SAFSConfig(page_size=4096, cache_bytes=1 << 22),
                stats=array.stats,
                fault_policy=FaultPolicy(max_retries=60, retry_backoff=1e-4),
            )
            file = safs.create_file("data", bytes(4096 * num_pages))
            for page in range(num_pages):
                merged = merge_requests(
                    [IORequest(file, page * 4096, 4096)], safs.page_size
                )
                safs.submit_merged(merged, 0.0)
            return array.busy_time(), safs.stats.get("faults.transient_errors")

        clean_busy, _ = run(None)
        faulty_busy, errors = run(plan)
        service = SSD().service_time(1)
        assert faulty_busy == pytest.approx(clean_busy + errors * service)

    @given(plan=fault_plans(), requests=_fault_requests)
    @settings(max_examples=60, deadline=None)
    def test_serviced_completions_stay_ordered(self, plan, requests):
        # Faults may delay completions but never reorder them: a FIFO
        # device under stalls, spikes and flaky reads still completes the
        # attempts it services in submission order.  (Dead rejections are
        # not serviced and are excluded.)
        ssd = SSD(fault_plan=plan, device_index=0)
        serviced = [
            o.time
            for t, p in sorted(requests)
            for o in (ssd.submit_request(t, p),)
            if o.error != "dead"
        ]
        assert serviced == sorted(serviced)

    @given(plan=fault_plans(), requests=_fault_requests)
    @settings(max_examples=60, deadline=None)
    def test_replay_is_bit_identical(self, plan, requests):
        # The same (seed, plan) against the same submissions replays bit
        # for bit: outcomes, busy time and counters all match.
        def run():
            ssd = SSD(fault_plan=plan, device_index=0)
            outcomes = [ssd.submit_request(t, p) for t, p in sorted(requests)]
            return outcomes, ssd.busy_time, ssd.stats.snapshot()

        assert run() == run()
