"""Unit tests for the stats collector."""

from repro.sim.stats import StatsCollector


class TestStatsCollector:
    def test_default_is_zero(self):
        stats = StatsCollector()
        assert stats.get("anything") == 0.0
        assert stats.get("anything", 7.0) == 7.0

    def test_add_accumulates(self):
        stats = StatsCollector()
        stats.add("io.requests")
        stats.add("io.requests", 2)
        assert stats.get("io.requests") == 3

    def test_set_overwrites(self):
        stats = StatsCollector()
        stats.add("mem.peak", 10)
        stats.set("mem.peak", 5)
        assert stats.get("mem.peak") == 5

    def test_max_keeps_largest(self):
        stats = StatsCollector()
        stats.max("mem.peak", 10)
        stats.max("mem.peak", 3)
        stats.max("mem.peak", 12)
        assert stats.get("mem.peak") == 12

    def test_names_sorted(self):
        stats = StatsCollector()
        stats.add("b")
        stats.add("a")
        assert list(stats.names()) == ["a", "b"]

    def test_snapshot_is_a_copy(self):
        stats = StatsCollector()
        stats.add("x", 1)
        snap = stats.snapshot()
        stats.add("x", 1)
        assert snap["x"] == 1
        assert stats.get("x") == 2

    def test_merge(self):
        a = StatsCollector()
        b = StatsCollector()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b.snapshot())
        assert a.get("x") == 3
        assert a.get("y") == 3

    def test_diff(self):
        stats = StatsCollector()
        stats.add("x", 1)
        base = stats.snapshot()
        stats.add("x", 4)
        stats.add("y", 2)
        delta = stats.diff(base)
        assert delta == {"x": 4, "y": 2}

    def test_diff_omits_unchanged(self):
        stats = StatsCollector()
        stats.add("x", 1)
        assert stats.diff(stats.snapshot()) == {}

    def test_reset_and_contains(self):
        stats = StatsCollector()
        stats.add("x")
        assert "x" in stats
        stats.reset()
        assert "x" not in stats
