"""Unit tests for the virtual clock and event queue."""

import pytest

from repro.sim.clock import EventQueue, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(5.0).now == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)

    def test_advance_moves_forward(self):
        clock = VirtualClock()
        assert clock.advance(1.5) == 1.5
        assert clock.advance(0.5) == 2.0

    def test_advance_rejects_negative_delta(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)

    def test_advance_zero_is_allowed(self):
        clock = VirtualClock(3.0)
        assert clock.advance(0.0) == 3.0

    def test_advance_to_never_rewinds(self):
        clock = VirtualClock(10.0)
        assert clock.advance_to(5.0) == 10.0
        assert clock.advance_to(12.0) == 12.0

    def test_reset(self):
        clock = VirtualClock(9.0)
        clock.reset()
        assert clock.now == 0.0
        with pytest.raises(ValueError):
            clock.reset(-2.0)

    def test_repr_mentions_time(self):
        assert "now=" in repr(VirtualClock(1.0))


class TestEventQueue:
    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_orders_by_time(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop() for _ in range(3)] == [(1.0, "a"), (2.0, "b"), (3.0, "c")]

    def test_ties_broken_by_insertion_order(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        q.push(1.0, "third")
        assert [payload for _, payload in q.drain()] == ["first", "second", "third"]

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, "x")

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(4.0, "x")
        q.push(2.0, "y")
        assert q.peek_time() == 2.0
        q.pop()
        assert q.peek_time() == 4.0

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        assert len(q) == 0
        q.push(0.0, "x")
        assert q
        assert len(q) == 1

    def test_unorderable_payloads_do_not_break_ties(self):
        q = EventQueue()
        q.push(1.0, {"a": 1})
        q.push(1.0, {"b": 2})
        times = [t for t, _ in q.drain()]
        assert times == [1.0, 1.0]
