"""Unit tests for the single-device SSD service model."""

import pytest

from repro.sim.ssd import FLASH_PAGE_SIZE, SSD, SSDConfig
from repro.sim.stats import StatsCollector


class TestSSDConfig:
    def test_default_random_to_sequential_ratio_matches_paper(self):
        # The paper motivates SEM by SSD random 4KB throughput being only
        # 2-3x below sequential throughput (§3).
        cfg = SSDConfig()
        ratio = cfg.seq_bandwidth / cfg.random_bandwidth
        assert 2.0 <= ratio <= 3.0

    def test_fixed_overhead_positive(self):
        assert SSDConfig().fixed_overhead > 0.0

    def test_inconsistent_config_rejected(self):
        cfg = SSDConfig(max_iops=1e9, seq_bandwidth=1e6)
        with pytest.raises(ValueError):
            _ = cfg.fixed_overhead

    def test_one_page_service_time_matches_iops(self):
        ssd = SSD(SSDConfig(max_iops=50_000.0))
        assert ssd.service_time(1) == pytest.approx(1.0 / 50_000.0)


class TestSSDSubmit:
    def test_sequential_requests_queue_fifo(self):
        ssd = SSD()
        t1 = ssd.submit(0.0, 1)
        t2 = ssd.submit(0.0, 1)
        service = ssd.service_time(1)
        latency = ssd.config.read_latency
        assert t1 == pytest.approx(service + latency)
        assert t2 == pytest.approx(2 * service + latency)

    def test_idle_device_starts_at_arrival(self):
        ssd = SSD()
        done = ssd.submit(1.0, 1)
        assert done == pytest.approx(1.0 + ssd.service_time(1) + ssd.config.read_latency)

    def test_large_request_approaches_seq_bandwidth(self):
        cfg = SSDConfig()
        ssd = SSD(cfg)
        pages = 10_000
        done = ssd.submit(0.0, pages)
        effective_bw = pages * FLASH_PAGE_SIZE / (done - cfg.read_latency)
        assert effective_bw > 0.95 * cfg.seq_bandwidth

    def test_random_read_rate_capped_at_iops(self):
        cfg = SSDConfig(max_iops=10_000.0)
        ssd = SSD(cfg)
        last = 0.0
        for _ in range(100):
            last = ssd.submit(0.0, 1)
        achieved_iops = 100 / (last - cfg.read_latency)
        assert achieved_iops == pytest.approx(10_000.0)

    def test_zero_pages_rejected(self):
        with pytest.raises(ValueError):
            SSD().submit(0.0, 0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            SSD().submit(-1.0, 1)

    def test_stats_accumulate(self):
        stats = StatsCollector()
        ssd = SSD(stats=stats)
        ssd.submit(0.0, 3)
        ssd.submit(0.0, 2)
        assert stats.get("ssd.requests") == 2
        assert stats.get("ssd.pages_read") == 5
        assert stats.get("ssd.bytes_read") == 5 * FLASH_PAGE_SIZE

    def test_busy_time_tracks_service_only(self):
        ssd = SSD()
        ssd.submit(0.0, 1)
        ssd.submit(100.0, 1)
        assert ssd.busy_time == pytest.approx(2 * ssd.service_time(1))

    def test_reset_clears_queue(self):
        ssd = SSD()
        ssd.submit(0.0, 10)
        ssd.reset()
        assert ssd.busy_until == 0.0
        assert ssd.busy_time == 0.0

    def test_reset_clears_every_mutable_field(self):
        """Regression: reset() once left the attempt ordinal and stall
        total behind, so a reused device replayed fault plans differently
        from a fresh one.  Every non-configuration attribute must return
        to its construction value."""
        ssd = SSD()
        for i in range(5):
            ssd.submit(i * 1e-4, 3)
        ssd.reset()
        pristine = {
            k: v
            for k, v in vars(SSD(config=ssd.config, stats=ssd.stats)).items()
        }
        assert vars(ssd) == pristine
