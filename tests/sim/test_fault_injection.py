"""Chaos tests for the deterministic fault-injection layer.

Covers the fault taxonomy point by point (latency spikes, stuck queues,
transient read errors, whole-SSD failures), the SAFS recovery machinery
(retry with backoff, per-attempt timeouts, degraded-mode rerouting), and
the determinism guarantee: the same (seed, plan) replays bit for bit.
"""

import math

import pytest

from repro.safs.filesystem import SAFS, SAFSConfig
from repro.safs.io_request import IORequest, merge_requests
from repro.safs.page import SAFSFile
from repro.sim.faults import (
    DeviceFailure,
    FaultPlan,
    FaultPolicy,
    LatencySpike,
    StuckQueue,
    TransientErrors,
    UnrecoverableIOError,
    fault_coin,
)
from repro.sim.ssd import SSD
from repro.sim.ssd_array import SSDArray, SSDArrayConfig


def _faulty_safs(plan, policy=None, num_ssds=4, stripe_pages=2, cache_bytes=1 << 20):
    SAFSFile._next_id = 0
    array = SSDArray(
        SSDArrayConfig(num_ssds=num_ssds, stripe_pages=stripe_pages),
        fault_plan=plan,
    )
    return SAFS(
        array,
        SAFSConfig(page_size=4096, cache_bytes=cache_bytes),
        stats=array.stats,
        fault_policy=policy,
    )


class TestFaultPlanQueries:
    def test_dead_window(self):
        plan = FaultPlan([DeviceFailure(device=2, at=1.0, until=2.0)])
        assert not plan.is_dead(2, 0.5)
        assert plan.is_dead(2, 1.0)
        assert plan.is_dead(2, 1.999)
        assert not plan.is_dead(2, 2.0)
        assert not plan.is_dead(1, 1.5)
        assert plan.dead_until(2, 1.5) == 2.0

    def test_permanent_failure(self):
        plan = FaultPlan([DeviceFailure(device=0, at=0.25)])
        assert plan.is_dead(0, 1e9)

    def test_stall_release(self):
        plan = FaultPlan([StuckQueue(device=1, start=1.0, end=3.0)])
        assert plan.stall_release(1, 0.5) == 0.5
        assert plan.stall_release(1, 2.0) == 3.0
        assert plan.stall_release(1, 3.0) == 3.0
        assert plan.stall_release(0, 2.0) == 2.0

    def test_spike_factors_stack(self):
        plan = FaultPlan(
            [
                LatencySpike(device=0, start=0.0, end=2.0, factor=2.0),
                LatencySpike(device=0, start=1.0, end=3.0, factor=3.0),
            ]
        )
        assert plan.service_factor(0, 0.5) == 2.0
        assert plan.service_factor(0, 1.5) == 6.0
        assert plan.service_factor(0, 2.5) == 3.0
        assert plan.service_factor(0, 3.5) == 1.0

    def test_read_error_deterministic(self):
        plan = FaultPlan(
            [TransientErrors(device=0, start=0.0, end=1.0, probability=0.5)],
            seed=7,
        )
        draws = [plan.read_error(0, i, 0.5) for i in range(200)]
        assert draws == [plan.read_error(0, i, 0.5) for i in range(200)]
        assert any(draws) and not all(draws)
        # Outside the window nothing fails.
        assert not any(plan.read_error(0, i, 2.0) for i in range(200))

    def test_coin_is_uniform_ish_and_seed_sensitive(self):
        draws = [fault_coin(1, 0, i) for i in range(1000)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert abs(sum(draws) / len(draws) - 0.5) < 0.05
        assert draws != [fault_coin(2, 0, i) for i in range(1000)]

    def test_devices_listed(self):
        plan = FaultPlan(
            [
                DeviceFailure(device=3, at=1.0),
                StuckQueue(device=1, start=0.0, end=1.0),
            ]
        )
        assert plan.devices() == (1, 3)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            LatencySpike(device=0, start=1.0, end=1.0, factor=2.0)
        with pytest.raises(ValueError):
            LatencySpike(device=0, start=0.0, end=1.0, factor=0.0)
        with pytest.raises(ValueError):
            TransientErrors(device=0, start=0.0, end=1.0, probability=1.5)
        with pytest.raises(ValueError):
            StuckQueue(device=0, start=2.0, end=1.0)
        with pytest.raises(ValueError):
            DeviceFailure(device=0, at=2.0, until=2.0)
        with pytest.raises(TypeError):
            FaultPlan(["not a fault"])

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            FaultPolicy(retry_backoff=-1.0)
        with pytest.raises(ValueError):
            FaultPolicy(request_timeout=0.0)
        assert FaultPolicy(retry_backoff=1e-3).backoff(3) == 4e-3


class TestSSDFaults:
    def test_dead_device_rejects_without_service(self):
        plan = FaultPlan([DeviceFailure(device=0, at=0.0)])
        ssd = SSD(fault_plan=plan, device_index=0)
        outcome = ssd.submit_request(0.5, 4)
        assert not outcome.ok and outcome.error == "dead"
        assert outcome.service == 0.0 and outcome.time == 0.5
        assert ssd.busy_time == 0.0
        assert ssd.stats.get("faults.dead_requests") == 1

    def test_stuck_queue_delays_start(self):
        plan = FaultPlan([StuckQueue(device=0, start=0.0, end=0.01)])
        faulty = SSD(fault_plan=plan, device_index=0)
        clean = SSD()
        done_faulty = faulty.submit_request(0.001, 1)
        done_clean = clean.submit_request(0.01, 1)
        assert done_faulty.ok
        assert done_faulty.time == done_clean.time
        assert faulty.stall_time == pytest.approx(0.009)
        assert faulty.stats.get("faults.stalled_requests") == 1

    def test_latency_spike_inflates_service(self):
        plan = FaultPlan([LatencySpike(device=0, start=0.0, end=1.0, factor=3.0)])
        faulty = SSD(fault_plan=plan, device_index=0)
        clean = SSD()
        f = faulty.submit_request(0.0, 8)
        c = clean.submit_request(0.0, 8)
        assert f.ok and f.service == pytest.approx(3.0 * c.service)
        assert faulty.stats.get("faults.spiked_requests") == 1

    def test_transient_error_charges_service(self):
        plan = FaultPlan(
            [TransientErrors(device=0, start=0.0, end=1.0, probability=1.0)]
        )
        ssd = SSD(fault_plan=plan, device_index=0)
        outcome = ssd.submit_request(0.0, 2)
        assert not outcome.ok and outcome.error == "transient"
        # The device did the work: the attempt occupies the queue and the
        # failure is only detected at completion time.
        assert outcome.service == ssd.service_time(2)
        assert outcome.time == ssd.busy_until + ssd.config.read_latency
        assert ssd.busy_time == outcome.service

    def test_submit_raises_on_fault(self):
        plan = FaultPlan([DeviceFailure(device=0, at=0.0)])
        ssd = SSD(fault_plan=plan, device_index=0)
        with pytest.raises(RuntimeError, match="submit_request"):
            ssd.submit(0.0, 1)

    def test_no_plan_is_bit_identical_to_legacy(self):
        plain = SSD()
        wrapped = SSD(fault_plan=None)
        seq = [(0.0, 1), (0.0001, 7), (0.01, 3), (0.010001, 64)]
        for arrival, pages in seq:
            assert plain.submit(arrival, pages) == wrapped.submit_request(arrival, pages).time
        assert plain.busy_time == wrapped.busy_time
        assert plain.busy_until == wrapped.busy_until

    def test_reset_clears_all_fault_state(self):
        """Regression: reset() must clear *every* mutable field — a stale
        attempt ordinal or stall total would make a reset device replay a
        fault plan differently from a fresh one."""
        plan = FaultPlan(
            [
                TransientErrors(device=0, start=0.0, end=1.0, probability=0.5),
                StuckQueue(device=0, start=0.0, end=0.001),
            ],
            seed=3,
        )
        used = SSD(fault_plan=plan, device_index=0)
        for i in range(20):
            used.submit_request(i * 1e-5, 1 + i % 4)
        used.reset()
        fresh = SSD(fault_plan=plan, device_index=0, stats=used.stats)
        mutable = lambda ssd: {
            k: v
            for k, v in vars(ssd).items()
            if k not in ("config", "stats", "name", "fault_plan", "device_index")
        }
        assert mutable(used) == mutable(fresh)
        replay = [(i * 1e-5, 1 + i % 4) for i in range(20)]
        used_outcomes = [used.submit_request(t, p) for t, p in replay]
        fresh_outcomes = [fresh.submit_request(t, p) for t, p in replay]
        assert [
            (o.time, o.ok, o.error, o.service) for o in used_outcomes
        ] == [(o.time, o.ok, o.error, o.service) for o in fresh_outcomes]

    def test_array_reset_restores_fault_replay(self):
        plan = FaultPlan(
            [TransientErrors(device=0, start=0.0, end=1.0, probability=0.3)],
            seed=11,
        )
        array = SSDArray(
            SSDArrayConfig(num_ssds=2, stripe_pages=2), fault_plan=plan
        )
        first = [array.submit_run(i % 2, i * 1e-5, 1) for i in range(30)]
        array.reset()
        second = [array.submit_run(i % 2, i * 1e-5, 1) for i in range(30)]
        assert [(o.time, o.ok, o.error) for o in first] == [
            (o.time, o.ok, o.error) for o in second
        ]


class TestArrayDegradedMode:
    def test_reroute_target_skips_dead_devices(self):
        plan = FaultPlan(
            [
                DeviceFailure(device=1, at=0.0),
                DeviceFailure(device=2, at=0.0, until=5.0),
            ]
        )
        array = SSDArray(SSDArrayConfig(num_ssds=4), fault_plan=plan)
        assert array.reroute_target(1, 1.0) == 3
        assert array.reroute_target(1, 6.0) == 2
        all_dead = FaultPlan([DeviceFailure(device=d, at=0.0) for d in range(3)])
        array = SSDArray(SSDArrayConfig(num_ssds=3), fault_plan=all_dead)
        assert array.reroute_target(0, 1.0) is None


def _read_all(safs, file, chunk=4096 * 3):
    """Issue merged reads covering the file; returns total CPU spent."""
    requests = [
        IORequest(file, off, min(chunk, file.size - off))
        for off in range(0, file.size, chunk)
    ]
    merged = merge_requests(requests, safs.page_size)
    completions, cpu = safs.submit_merged(merged, 0.0)
    return completions, cpu


class TestSAFSRecovery:
    def test_transient_errors_recovered_by_retry(self):
        plan = FaultPlan(
            [TransientErrors(device=1, start=0.0, end=10.0, probability=0.5)],
            seed=9,
        )
        safs = _faulty_safs(plan, FaultPolicy(max_retries=10, retry_backoff=1e-4))
        file = safs.create_file("data", bytes(4096 * 64))
        completions, _ = _read_all(safs, file)
        assert len(completions) == 22
        assert safs.stats.get("faults.transient_errors") > 0
        assert safs.stats.get("faults.retries") == safs.stats.get(
            "faults.transient_errors"
        )

    def test_retry_backoff_charged_in_simulated_time(self):
        plan = FaultPlan(
            [TransientErrors(device=0, start=0.0, end=10.0, probability=1.0)],
            seed=1,
        )
        # One device, probability 1 in [0, 10): every attempt before t=10
        # fails; the 2^k backoff walks the retries past the window edge
        # and the read finally succeeds in simulated time > 10.
        safs = _faulty_safs(
            plan,
            FaultPolicy(max_retries=30, retry_backoff=0.7),
            num_ssds=1,
        )
        file = safs.create_file("data", bytes(4096))
        completions, _ = _read_all(safs, file)
        assert completions[0].completion_time > 10.0
        assert safs.stats.get("faults.retries") >= 4

    def test_dead_device_rerouted(self):
        plan = FaultPlan([DeviceFailure(device=2, at=0.0)])
        safs = _faulty_safs(plan)
        file = safs.create_file("data", bytes(4096 * 64))
        completions, _ = _read_all(safs, file)
        assert len(completions) == 22
        assert safs.stats.get("faults.rerouted_requests") > 0
        assert safs.stats.get("faults.rerouted_pages") > 0
        # The dead device never serviced anything.
        assert safs.array.ssds[2].busy_time == 0.0

    def test_reroute_disabled_aborts(self):
        plan = FaultPlan([DeviceFailure(device=2, at=0.0)])
        safs = _faulty_safs(
            plan, FaultPolicy(max_retries=2, retry_backoff=1e-4, reroute_on_dead=False)
        )
        file = safs.create_file("data", bytes(4096 * 64))
        with pytest.raises(UnrecoverableIOError, match="dead"):
            _read_all(safs, file)

    def test_timeout_detected_and_retried(self):
        # The stuck queue holds the first arrivals past the timeout; the
        # retries land after the window and succeed.
        plan = FaultPlan([StuckQueue(device=0, start=0.0, end=0.05)])
        safs = _faulty_safs(
            plan,
            FaultPolicy(max_retries=10, retry_backoff=1e-3, request_timeout=0.01),
            num_ssds=1,
        )
        file = safs.create_file("data", bytes(4096 * 2))
        completions, _ = _read_all(safs, file)
        assert safs.stats.get("faults.timeouts") > 0
        assert all(c.completion_time > 0.05 for c in completions)

    def test_unrecoverable_raises_not_hangs(self):
        plan = FaultPlan(
            [TransientErrors(device=0, start=0.0, end=math.inf, probability=1.0)],
            seed=2,
        )
        safs = _faulty_safs(
            plan, FaultPolicy(max_retries=3, retry_backoff=1e-4), num_ssds=1
        )
        file = safs.create_file("data", bytes(4096))
        with pytest.raises(UnrecoverableIOError, match="transient"):
            _read_all(safs, file)
        # Retries were attempted before giving up.
        assert safs.stats.get("faults.retries") == 3

    def test_aborted_dispatch_rolls_back_cache(self):
        # Device 1 (pages 2-3) dies with reroute disabled.  Warming page 1
        # splits the next dispatch into two miss runs: pages [0] on the
        # healthy device 0 — fetched and cached — then pages [2, 3] on the
        # dead device, which aborts the dispatch and must roll page 0 back
        # out of the cache.
        plan = FaultPlan([DeviceFailure(device=1, at=0.0)])
        safs = _faulty_safs(
            plan,
            FaultPolicy(max_retries=1, retry_backoff=1e-4, reroute_on_dead=False),
            num_ssds=4,
            stripe_pages=2,
        )
        file = safs.create_file("data", bytes(4096 * 16))
        warm = merge_requests([IORequest(file, 4096, 4096)], safs.page_size)
        safs.submit_merged(warm, 0.0)
        assert len(safs.cache) == 1
        doomed = merge_requests([IORequest(file, 0, 4096 * 4)], safs.page_size)
        with pytest.raises(UnrecoverableIOError):
            safs.submit_merged(doomed, 0.0)
        assert len(safs.cache) == 1
        assert safs.cache.lookup(file.file_id, 1) is not None
        assert safs.cache.lookup(file.file_id, 0) is None
        assert safs.stats.get("faults.invalidated_pages") == 1
        assert safs.stats.get("cache.invalidations") == 1

    def test_replay_is_bit_identical(self):
        plan = FaultPlan(
            [
                TransientErrors(device=0, start=0.0, end=10.0, probability=0.3),
                LatencySpike(device=1, start=0.0, end=1.0, factor=5.0),
                StuckQueue(device=2, start=0.0, end=0.002),
                DeviceFailure(device=3, at=0.001),
            ],
            seed=17,
        )
        policy = FaultPolicy(max_retries=8, retry_backoff=2e-4, request_timeout=0.5)

        def run():
            safs = _faulty_safs(plan, policy)
            file = safs.create_file("data", bytes(4096 * 96))
            completions, cpu = _read_all(safs, file)
            return (
                [c.completion_time for c in completions],
                cpu,
                safs.stats.snapshot(),
            )

        assert run() == run()

    def test_fault_free_plan_changes_nothing(self):
        """An empty FaultPlan must be observationally identical to None:
        the fault machinery only reshapes behaviour when faults fire."""

        def run(plan):
            safs = _faulty_safs(plan)
            file = safs.create_file("data", bytes(4096 * 64))
            completions, cpu = _read_all(safs, file)
            return [c.completion_time for c in completions], cpu, safs.stats.snapshot()

        assert run(None) == run(FaultPlan())
