"""Tests for the NUMA topology model and its engine integration."""

import numpy as np
import pytest

from repro.algorithms.pagerank import pagerank
from repro.algorithms.wcc import wcc
from repro.sim.numa import NumaTopology

from tests.conftest import engine_for


class TestTopology:
    def test_paper_machine(self):
        topo = NumaTopology(num_sockets=4, num_threads=32)
        assert topo.socket_populations().tolist() == [8, 8, 8, 8]

    def test_blocked_layout(self):
        topo = NumaTopology(num_sockets=2, num_threads=8)
        assert [topo.socket_of(w) for w in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_remote_detection(self):
        topo = NumaTopology(num_sockets=2, num_threads=4)
        assert not topo.is_remote(0, 1)
        assert topo.is_remote(0, 2)

    def test_remote_factor(self):
        topo = NumaTopology(num_sockets=2, num_threads=4, remote_penalty=0.5)
        assert topo.remote_factor(0, 1) == 1.0
        assert topo.remote_factor(0, 3) == 1.5

    def test_single_socket_never_remote(self):
        topo = NumaTopology(num_sockets=1, num_threads=8)
        assert not any(topo.is_remote(0, w) for w in range(8))

    def test_more_threads_than_even_split(self):
        topo = NumaTopology(num_sockets=3, num_threads=8)
        assert topo.socket_populations().sum() == 8
        assert topo.socket_of(7) <= 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            NumaTopology(num_sockets=0)
        with pytest.raises(ValueError):
            NumaTopology(num_threads=0)
        with pytest.raises(ValueError):
            NumaTopology(remote_penalty=-1)
        with pytest.raises(ValueError):
            NumaTopology(num_threads=4).socket_of(4)


class TestEngineIntegration:
    def test_single_socket_faster_on_message_heavy_workload(self, rmat_image):
        # Cross-socket message delivery pays the QPI penalty: a (fictional)
        # single-socket machine with the same cores runs WCC faster.
        _, one = wcc(engine_for(rmat_image, num_threads=8, num_sockets=1))
        _, four = wcc(engine_for(rmat_image, num_threads=8, num_sockets=4))
        assert one.runtime < four.runtime

    def test_results_identical_across_socket_counts(self, rmat_image):
        a, _ = wcc(engine_for(rmat_image, num_threads=8, num_sockets=1))
        b, _ = wcc(engine_for(rmat_image, num_threads=8, num_sockets=4))
        assert np.array_equal(a, b)

    def test_remote_steals_counted(self, rmat_image):
        _, result = pagerank(
            engine_for(
                rmat_image,
                num_threads=8,
                num_sockets=4,
                range_shift=9,  # skewed partitions force stealing
                max_running_vertices=16,
            ),
            max_iterations=3,
        )
        assert result.counters.get("engine.stolen_vertices", 0) > 0
        assert result.counters.get("numa.remote_steals", 0) > 0

    def test_sockets_clamped_to_threads(self, rmat_image):
        engine = engine_for(rmat_image, num_threads=2, num_sockets=8)
        assert engine.numa.num_sockets == 2

    def test_invalid_socket_config(self, rmat_image):
        with pytest.raises(ValueError):
            engine_for(rmat_image, num_sockets=0)
