"""Tests for rotating-parity striping, reconstruction and rebuild.

The issue's contract: a single lost page (whole-device death or silent
rot) reconstructs **exactly** from the row's survivors at real DES cost,
double faults are reported loudly and never silently wrong, and the
background scrubber re-materialises a dead device onto a hot spare while
the engine keeps running — with every scrub and peer read visible in the
counters (no free I/O).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.faults import DeviceFailure, FaultPlan
from repro.sim.parity import (
    ParityConfig,
    ParityLayout,
    RebuildState,
    reconstruct_block,
    xor_parity,
)
from repro.sim.ssd_array import SSDArray, SSDArrayConfig
from repro.sim.stats import StatsCollector


class TestParityLayout:
    def test_needs_three_devices(self):
        with pytest.raises(ValueError):
            ParityLayout(2, 4)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=3, max_value=16),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=200),
    )
    def test_each_device_holds_one_unit_per_row(self, n, stripe, row):
        """Every parity row places exactly one stripe unit — data or
        parity — on every device, so capacity is uniform."""
        layout = ParityLayout(n, stripe)
        pdev = layout.parity_device(row)
        data_devices = [
            layout.device_for_page((row * layout.data_per_row + slot) * stripe)
            for slot in range(layout.data_per_row)
        ]
        assert pdev not in data_devices
        assert sorted(data_devices + [pdev]) == list(range(n))

    def test_parity_run_ids_are_negative_and_distinct_per_row(self):
        layout = ParityLayout(4, 4)
        seen = set()
        for row in range(8):
            first, n = layout.parity_run(row, 0, layout.stripe_pages)
            ids = range(first, first + n)
            assert all(i < 0 for i in ids)
            assert seen.isdisjoint(ids)
            seen.update(ids)

    def test_peers_cover_the_row(self):
        layout = ParityLayout(5, 4)
        first_page = 3 * 4 + 1  # unit 3, offset 1
        peers = layout.peers(first_page, 2)
        # N - 2 data peers plus the parity unit.
        assert len(peers) == 4
        devices = [d for d, _, _ in peers]
        assert len(set(devices)) == len(devices)
        assert layout.device_for_page(first_page) not in devices
        # Exactly one parity read, at negative ids.
        assert sum(1 for _, f, _ in peers if f < 0) == 1

    def test_peers_reject_runs_spanning_units(self):
        layout = ParityLayout(4, 4)
        with pytest.raises(ValueError):
            layout.peers(2, 4)  # crosses the unit boundary at page 4

    def test_rows_for_pages(self):
        layout = ParityLayout(4, 2)  # 3 data units of 2 pages per row
        assert layout.rows_for_pages(0) == 0
        assert layout.rows_for_pages(1) == 1
        assert layout.rows_for_pages(6) == 1
        assert layout.rows_for_pages(7) == 2


class TestXorAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=64),
        st.data(),
    )
    def test_single_loss_reconstructs_exactly(self, blocks, length, draw):
        """Losing any one data block of a row recovers bit for bit."""
        rng = np.random.default_rng(draw.draw(st.integers(0, 2**32 - 1)))
        data = [
            rng.integers(0, 256, size=length, dtype=np.uint8).tobytes()
            for _ in range(blocks)
        ]
        parity = xor_parity(data)
        lost = draw.draw(st.integers(min_value=0, max_value=blocks - 1))
        survivors = [b for i, b in enumerate(data) if i != lost]
        assert reconstruct_block(survivors, parity) == data[lost]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            xor_parity([b"ab", b"abc"])


class TestRebuildState:
    def make(self, **kw):
        defaults = dict(
            device=2,
            spare=4,
            start_time=1.0,
            total_pages=100,
            rate_pages_per_s=10.0,
            stripe_pages=4,
            peer_reads_per_page=3,
        )
        defaults.update(kw)
        return RebuildState(**defaults)

    def test_progress_is_pure_function_of_time(self):
        rebuild = self.make()
        assert rebuild.pages_rebuilt(0.5) == 0
        assert rebuild.pages_rebuilt(2.0) == 10
        assert rebuild.pages_rebuilt(2.0) == 10  # re-observation is free
        assert rebuild.pages_rebuilt(1e9) == 100
        assert rebuild.complete(11.0)

    def test_rows_serve_only_when_fully_rebuilt(self):
        rebuild = self.make()
        # 10 pages rebuilt at t=2 -> 2 whole rows of 4 pages.
        assert rebuild.rows_rebuilt(2.0) == 2
        assert rebuild.row_covered(1, 2.0)
        assert not rebuild.row_covered(2, 2.0)

    def test_charge_is_telescoping(self):
        """Many small charges equal one lump charge exactly — the
        property that keeps checkpoint resume counter-identical."""
        piecewise, lump = StatsCollector(), StatsCollector()
        a, b = self.make(), self.make()
        for t in (1.3, 2.7, 2.7, 5.0, 8.0, 20.0):
            a.charge(piecewise, t)
        b.charge(lump, 20.0)
        assert piecewise.snapshot() == lump.snapshot()
        assert piecewise.get("scrub.pages_written") == 100
        assert piecewise.get("scrub.pages_read") == 300

    def test_export_restore_round_trip(self):
        rebuild = self.make()
        rebuild.charge(StatsCollector(), 3.0)
        twin = RebuildState.from_state(rebuild.export_state())
        assert twin.export_state() == rebuild.export_state()
        assert twin.pages_rebuilt(7.0) == rebuild.pages_rebuilt(7.0)


def _parity_array(plan=None, num_ssds=4, stripe_pages=2, hot_spares=1):
    array = SSDArray(
        SSDArrayConfig(num_ssds=num_ssds, stripe_pages=stripe_pages),
        fault_plan=plan,
        parity=ParityConfig(hot_spares=hot_spares),
    )
    array.note_capacity(240)
    return array


class TestDegradedArray:
    def test_reconstruction_charges_peer_queues(self):
        """Degraded reads are never free: every surviving peer's queue is
        charged, and the reconstruction completes no earlier than its
        slowest peer read."""
        plan = FaultPlan([DeviceFailure(device=1, at=0.0)])
        array = _parity_array(plan)
        victim_run = next(
            (d, f, n) for d, f, n in array.split_extent_runs(0, 240) if d == 1
        )
        busy_before = array.busy_time()
        outcome = array.reconstruct_run(1, victim_run[1], victim_run[2], 0.001)
        assert outcome.ok
        assert outcome.time > 0.001
        assert array.busy_time() > busy_before
        assert array.stats.get("parity.reconstructions") == 1
        assert array.stats.get("parity.peer_reads") == array.config.num_ssds - 1
        assert array.stats.get("parity.pages_reconstructed") == victim_run[2]

    def test_double_fault_is_reported_never_wrong(self):
        plan = FaultPlan(
            [DeviceFailure(device=1, at=0.0), DeviceFailure(device=2, at=0.0)]
        )
        array = _parity_array(plan)
        victim_run = next(
            (d, f, n) for d, f, n in array.split_extent_runs(0, 240) if d == 1
        )
        outcome = array.reconstruct_run(1, victim_run[1], victim_run[2], 0.001)
        assert not outcome.ok
        assert outcome.error == "double_fault"
        assert array.stats.get("parity.double_faults") == 1

    def test_rebuild_allocates_one_spare_and_is_idempotent(self):
        array = _parity_array(FaultPlan([DeviceFailure(device=0, at=0.0)]))
        first = array.start_rebuild(0, 0.001)
        assert first is not None
        assert array.start_rebuild(0, 5.0) is first
        assert array.stats.get("scrub.rebuilds_started") == 1
        # A second dead device finds no spare left.
        assert array.start_rebuild(2, 0.002) is None

    def test_rebuilt_rows_serve_from_the_spare(self):
        array = _parity_array(FaultPlan([DeviceFailure(device=0, at=0.0)]))
        rebuild = array.start_rebuild(0, 0.0)
        assert array.serving_device(0, 0, 1e-9) == 0  # nothing rebuilt yet
        done = rebuild.total_pages / rebuild.rate_pages_per_s
        assert array.serving_device(0, 0, done * 2) == rebuild.spare
        # Observing progress charged the scrub I/O.
        assert array.stats.get("scrub.pages_written") == rebuild.total_pages

    def test_no_parity_means_no_rebuild(self):
        array = SSDArray(
            SSDArrayConfig(num_ssds=4, stripe_pages=2),
            fault_plan=FaultPlan([DeviceFailure(device=0, at=0.0)]),
        )
        array.note_capacity(240)
        assert array.start_rebuild(0, 0.001) is None
        assert array.serving_device(0, 0, 1.0) == 0

    def test_layout_only_with_parity_config(self):
        """Without parity the array keeps the historical round-robin
        placement — the golden counter stream depends on it."""
        plain = SSDArray(SSDArrayConfig(num_ssds=4, stripe_pages=2))
        assert plain.layout is None
        assert [plain.device_for_page(p) for p in range(8)] == [
            0, 0, 1, 1, 2, 2, 3, 3,
        ]

    def test_export_restore_round_trip(self):
        plan = FaultPlan([DeviceFailure(device=0, at=1.0)])
        array = _parity_array(plan)
        array.submit(0.0, 0, 16)
        array.start_rebuild(0, 1.001)
        state = array.export_state()
        twin = _parity_array(plan)
        twin.restore_state(state)
        assert twin.export_state() == state
        assert twin.busy_time() == array.busy_time()
