"""Unit tests for the striped SSD array."""

import pytest

from repro.sim.ssd import FLASH_PAGE_SIZE, SSDConfig
from repro.sim.ssd_array import SSDArray, SSDArrayConfig
from repro.sim.stats import StatsCollector


def small_array(num_ssds=4, stripe_pages=2):
    return SSDArray(SSDArrayConfig(num_ssds=num_ssds, stripe_pages=stripe_pages))


class TestGeometry:
    def test_default_matches_paper_chassis(self):
        cfg = SSDArrayConfig()
        assert cfg.num_ssds == 15
        # ~900K aggregate IOPS (§5).
        assert cfg.max_iops == pytest.approx(900_000.0)

    def test_device_for_page_round_robin_by_stripe(self):
        array = small_array(num_ssds=3, stripe_pages=2)
        owners = [array.device_for_page(p) for p in range(8)]
        assert owners == [0, 0, 1, 1, 2, 2, 0, 0]

    def test_device_for_negative_page_rejected(self):
        with pytest.raises(ValueError):
            small_array().device_for_page(-1)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            SSDArray(SSDArrayConfig(num_ssds=0))
        with pytest.raises(ValueError):
            SSDArray(SSDArrayConfig(stripe_pages=0))


class TestSplitExtent:
    def test_within_one_stripe(self):
        array = small_array(num_ssds=3, stripe_pages=4)
        assert array.split_extent(1, 2) == [(0, 2)]

    def test_crossing_one_boundary(self):
        array = small_array(num_ssds=3, stripe_pages=4)
        assert array.split_extent(2, 4) == [(0, 2), (1, 2)]

    def test_spanning_many_stripes(self):
        array = small_array(num_ssds=2, stripe_pages=2)
        runs = array.split_extent(0, 7)
        assert runs == [(0, 2), (1, 2), (0, 2), (1, 1)]
        assert sum(pages for _, pages in runs) == 7

    def test_empty_extent_rejected(self):
        with pytest.raises(ValueError):
            small_array().split_extent(0, 0)

    def test_runs_cover_extent_exactly(self):
        array = small_array(num_ssds=5, stripe_pages=3)
        for start in range(10):
            for length in range(1, 20):
                runs = array.split_extent(start, length)
                assert sum(pages for _, pages in runs) == length
                page = start
                for device, pages in runs:
                    assert array.device_for_page(page) == device
                    page += pages


class TestSubmit:
    def test_parallel_devices_beat_single_device(self):
        stripe = 1
        array = small_array(num_ssds=4, stripe_pages=stripe)
        single = SSDArray(SSDArrayConfig(num_ssds=1, stripe_pages=stripe))
        # 4 pages across 4 devices complete faster than on one device.
        parallel_done = array.submit(0.0, 0, 4)
        serial_done = single.submit(0.0, 0, 4)
        assert parallel_done < serial_done

    def test_completion_is_max_of_subrequests(self):
        array = small_array(num_ssds=2, stripe_pages=1)
        done = array.submit(0.0, 0, 2)
        ssd = array.ssds[0]
        # Each device serviced one page starting at t=0.
        assert done == pytest.approx(ssd.service_time(1) + ssd.config.read_latency)

    def test_stats_aggregate(self):
        stats = StatsCollector()
        array = SSDArray(SSDArrayConfig(num_ssds=2, stripe_pages=1), stats)
        array.submit(0.0, 0, 3)
        assert stats.get("array.requests") == 1
        assert stats.get("array.pages_read") == 3
        assert stats.get("array.bytes_read") == 3 * FLASH_PAGE_SIZE
        # Sub-requests recorded at device level: pages 0,2 -> ssd0, page 1 -> ssd1.
        assert stats.get("ssd.requests") == 3

    def test_utilization_bounds(self):
        array = small_array()
        array.submit(0.0, 0, 8)
        wall = array.drain_time()
        util = array.utilization(wall)
        assert 0.0 < util <= 1.0
        assert array.utilization(0.0) == 0.0

    def test_reset(self):
        array = small_array()
        array.submit(0.0, 0, 8)
        array.reset()
        assert array.drain_time() == 0.0
        assert array.busy_time() == 0.0


class TestThroughputShape:
    def test_aggregate_iops_scales_with_devices(self):
        cfg = SSDConfig(max_iops=1000.0)
        one = SSDArray(SSDArrayConfig(num_ssds=1, stripe_pages=1, ssd_config=cfg))
        four = SSDArray(SSDArrayConfig(num_ssds=4, stripe_pages=1, ssd_config=cfg))
        # Issue 400 independent one-page reads spread over the address space.
        for page in range(400):
            one.submit(0.0, page, 1)
            four.submit(0.0, page, 1)
        speedup = one.drain_time() / four.drain_time()
        assert speedup == pytest.approx(4.0, rel=0.05)
