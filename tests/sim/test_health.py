"""Tests for the device health monitor and quarantine-aware rerouting.

Includes the regression test the issue calls out: ``reroute_target``
must skip devices that are dead *or* benched by the health monitor —
rerouting onto a quarantined device would defeat the quarantine.
"""

import math

import pytest

from repro.sim.faults import DeviceFailure, FaultPlan
from repro.sim.health import HealthMonitor, HealthPolicy
from repro.sim.ssd_array import SSDArray, SSDArrayConfig

POLICY = HealthPolicy(
    error_budget=3, window=0.010, quarantine=0.050, max_quarantines=3
)


def monitor(num_devices=4, policy=POLICY):
    return HealthMonitor(policy, num_devices)


class TestHealthPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            HealthPolicy(error_budget=0)
        with pytest.raises(ValueError):
            HealthPolicy(window=0.0)
        with pytest.raises(ValueError):
            HealthPolicy(quarantine=-1.0)
        with pytest.raises(ValueError):
            HealthPolicy(max_quarantines=0)


class TestErrorBudget:
    def test_budget_trips_quarantine(self):
        mon = monitor()
        assert mon.record_error(0, 0.001) is None
        assert mon.record_error(0, 0.002) is None
        assert mon.record_error(0, 0.003) == "quarantined"
        assert mon.is_quarantined(0, 0.004)
        assert mon.quarantine_release(0) == pytest.approx(0.003 + 0.050)
        assert not mon.is_quarantined(0, 0.060)

    def test_errors_outside_window_are_forgotten(self):
        mon = monitor()
        mon.record_error(0, 0.001)
        mon.record_error(0, 0.002)
        # 10ms later the first two have aged out: no trip.
        assert mon.record_error(0, 0.020) is None
        assert not mon.is_quarantined(0, 0.021)

    def test_budgets_are_per_device(self):
        mon = monitor()
        mon.record_error(0, 0.001)
        mon.record_error(1, 0.001)
        mon.record_error(0, 0.002)
        mon.record_error(1, 0.002)
        assert mon.record_error(0, 0.003) == "quarantined"
        assert not mon.is_quarantined(1, 0.003)

    def test_repeat_offender_is_declared_failed(self):
        mon = monitor()
        changes = []
        t = 0.0
        for _ in range(9):
            t += 0.001
            change = mon.record_error(0, t)
            if change:
                changes.append(change)
        assert changes == ["quarantined", "quarantined", "failed"]
        assert mon.is_failed(0)
        assert mon.trips(0) == 3
        # Failure is permanent and further errors are ignored.
        assert mon.record_error(0, t + 1.0) is None
        assert mon.avoid(0, t + 100.0)

    def test_out_of_range_devices_are_safe(self):
        """Hot spares live past ``num_devices``: the monitor must never
        bench them or crash on their indices."""
        mon = monitor(num_devices=2)
        assert mon.record_error(7, 0.001) is None
        assert not mon.is_quarantined(7, 0.001)
        assert not mon.is_failed(7)
        assert not mon.avoid(7, 0.001)
        assert mon.trips(7) == 0
        assert mon.quarantine_release(7) == -math.inf


class TestStateRoundTrip:
    def test_export_restore(self):
        mon = monitor()
        for t in (0.001, 0.002, 0.003, 0.004):
            mon.record_error(1, t)
        mon.record_error(2, 0.005)
        twin = monitor()
        twin.restore_state(mon.export_state())
        assert twin.export_state() == mon.export_state()
        assert twin.is_quarantined(1, 0.010) == mon.is_quarantined(1, 0.010)

    def test_restore_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            monitor(num_devices=4).restore_state(monitor(num_devices=2).export_state())

    def test_reset(self):
        mon = monitor()
        for t in (0.001, 0.002, 0.003):
            mon.record_error(0, t)
        mon.reset()
        assert not mon.is_quarantined(0, 0.004)
        assert mon.trips(0) == 0


class TestRerouteRegression:
    """``SSDArray.reroute_target`` must skip unusable devices."""

    def test_skips_dead_devices(self):
        plan = FaultPlan([DeviceFailure(device=1, at=0.0)])
        array = SSDArray(SSDArrayConfig(num_ssds=4), fault_plan=plan)
        # Device 0 unavailable: the ring's next device is 1, but 1 is
        # dead — the reroute must land on 2.
        assert array.reroute_target(0, 0.001) == 2

    def test_skips_quarantined_devices(self):
        array = SSDArray(SSDArrayConfig(num_ssds=4))
        array.health = monitor()
        for t in (0.001, 0.002, 0.003):
            array.health.record_error(1, t)
        assert array.health.is_quarantined(1, 0.004)
        assert array.reroute_target(0, 0.004) == 2
        # After the quarantine lifts, device 1 serves again.
        assert array.reroute_target(0, 0.060) == 1

    def test_skips_failed_devices(self):
        array = SSDArray(SSDArrayConfig(num_ssds=4))
        array.health = monitor()
        t = 0.0
        while not array.health.is_failed(1):
            t += 0.001
            array.health.record_error(1, t)
        assert array.reroute_target(0, t + 1.0) == 2

    def test_no_survivor_returns_none(self):
        plan = FaultPlan([DeviceFailure(device=d, at=0.0) for d in range(4)])
        array = SSDArray(SSDArrayConfig(num_ssds=4), fault_plan=plan)
        assert array.reroute_target(0, 0.001) is None

    def test_combined_dead_and_quarantined(self):
        plan = FaultPlan([DeviceFailure(device=1, at=0.0)])
        array = SSDArray(SSDArrayConfig(num_ssds=4), fault_plan=plan)
        array.health = monitor()
        for t in (0.001, 0.002, 0.003):
            array.health.record_error(2, t)
        # 1 dead, 2 quarantined: only 3 can stand in for 0.
        assert array.reroute_target(0, 0.004) == 3
