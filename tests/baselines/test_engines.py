"""Tests for the four comparator engines and the paper's ordering claims."""

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.pagerank import pagerank
from repro.algorithms.wcc import wcc
from repro.baselines import (
    GaloisEngine,
    GraphChiEngine,
    PowerGraphEngine,
    XStreamEngine,
)
from repro.baselines.galois import direction_optimizing_trace
from repro.baselines.powergraph import PowerGraphCostModel
from repro.core.config import ExecutionMode

from tests.conftest import engine_for


@pytest.fixture(scope="module")
def big_image():
    """A Twitter-profile graph big enough that per-edge work dominates
    per-iteration overheads (needed for the ordering claims)."""
    from repro.graph.builder import build_directed
    from repro.graph.generators import twitter_sim

    edges, n = twitter_sim(scale=12)
    return build_directed(edges, n, name="tw12")


@pytest.fixture(scope="module")
def fg_results(big_image):
    """FlashGraph reference numbers on the Twitter-profile graph."""
    source = int(np.argmax(big_image.out_csr.degrees()))
    out = {}
    _, out["bfs_sem"] = bfs(
        engine_for(big_image, num_threads=32, range_shift=7), source
    )
    _, out["bfs_mem"] = bfs(
        engine_for(
            big_image, mode=ExecutionMode.IN_MEMORY, num_threads=32, range_shift=7
        ),
        source,
    )
    _, out["pr_sem"] = pagerank(
        engine_for(big_image, num_threads=32, range_shift=7), max_iterations=30
    )
    _, out["pr_mem"] = pagerank(
        engine_for(
            big_image, mode=ExecutionMode.IN_MEMORY, num_threads=32, range_shift=7
        ),
        max_iterations=30,
    )
    _, out["wcc_mem"] = wcc(
        engine_for(
            big_image, mode=ExecutionMode.IN_MEMORY, num_threads=32, range_shift=7
        )
    )
    out["source"] = source
    return out


class TestGraphChi:
    def test_no_bfs(self, rmat_image):
        with pytest.raises(ValueError):
            GraphChiEngine(rmat_image).run("bfs")

    def test_unknown_algorithm(self, rmat_image):
        with pytest.raises(ValueError):
            GraphChiEngine(rmat_image).run("mystery")

    def test_reads_whole_graph_every_iteration(self, rmat_image):
        report = GraphChiEngine(rmat_image).run("wcc")
        assert report.bytes_read >= report.iterations * rmat_image.storage_bytes()

    def test_writes_happen(self, rmat_image):
        report = GraphChiEngine(rmat_image).run("pagerank")
        assert report.bytes_written > 0

    def test_memory_model_scales_with_shards(self, rmat_image):
        from repro.baselines.graphchi import GraphChiCostModel

        few = GraphChiEngine(rmat_image, GraphChiCostModel(num_shards=2))
        many = GraphChiEngine(rmat_image, GraphChiCostModel(num_shards=16))
        assert few.memory_bytes() > many.memory_bytes()


class TestXStream:
    def test_supports_bfs_but_scans_everything(self, rmat_image):
        source = int(np.argmax(rmat_image.out_csr.degrees()))
        report = XStreamEngine(rmat_image).run("bfs", source)
        # Every iteration streams at least the full edge array.
        edge_bytes = rmat_image.out_csr.num_edges * 8
        assert report.bytes_read >= report.iterations * edge_bytes

    def test_triangle_semi_streaming(self, rmat_image):
        report = XStreamEngine(rmat_image).run("triangle_count")
        assert report.details["triangles"] >= 0
        assert report.bytes_read > 0

    def test_unknown_algorithm(self, rmat_image):
        with pytest.raises(ValueError):
            XStreamEngine(rmat_image).run("nope")


class TestPowerGraph:
    def test_single_machine_has_no_replication(self, rmat_image):
        engine = PowerGraphEngine(rmat_image)
        assert engine.replication_factor == 1.0
        report = engine.run("pagerank")
        assert report.details["network_bytes"] == 0.0

    def test_distributed_replication_measured(self, rmat_image):
        engine = PowerGraphEngine(
            rmat_image, PowerGraphCostModel(num_machines=8)
        )
        assert 1.0 < engine.replication_factor <= 8.0

    def test_distributed_pays_network(self, rmat_image):
        local = PowerGraphEngine(rmat_image).run("wcc")
        distributed = PowerGraphEngine(
            rmat_image, PowerGraphCostModel(num_machines=8)
        ).run("wcc")
        assert distributed.details["network_bytes"] > 0

    def test_invalid_machines(self, rmat_image):
        with pytest.raises(ValueError):
            PowerGraphEngine(rmat_image, PowerGraphCostModel(num_machines=0))


class TestGalois:
    def test_direction_optimizing_levels_correct(self, rmat_image, rmat_digraph):
        import networkx as nx

        source = int(np.argmax(rmat_image.out_csr.degrees()))
        levels, trace = direction_optimizing_trace(rmat_image, source, 0.05)
        expected = nx.single_source_shortest_path_length(rmat_digraph, source)
        got = {v: int(l) for v, l in enumerate(levels) if l >= 0}
        assert got == dict(expected)

    def test_direction_optimizing_examines_fewer_edges(self, rmat_image):
        from repro.baselines.common import bfs_trace

        source = int(np.argmax(rmat_image.out_csr.degrees()))
        _, top_down = bfs_trace(rmat_image, source)
        _, dir_opt = direction_optimizing_trace(rmat_image, source, 0.05)
        assert dir_opt.total_edges < top_down.total_edges

    def test_scan_statistics_supported(self, er_image):
        report = GaloisEngine(er_image).run("scan_statistics")
        assert report.runtime > 0


class TestPaperOrderings:
    """The qualitative results of Figures 10 and 11."""

    def test_galois_wins_traversal(self, big_image, fg_results):
        galois = GaloisEngine(big_image).run("bfs", fg_results["source"])
        assert galois.runtime < fg_results["bfs_mem"].runtime

    def test_fg_mem_wins_pagerank_over_galois(self, big_image, fg_results):
        galois = GaloisEngine(big_image).run("pagerank")
        assert fg_results["pr_mem"].runtime < galois.runtime

    def test_fg_mem_wins_wcc_over_galois(self, big_image, fg_results):
        galois = GaloisEngine(big_image).run("wcc")
        assert fg_results["wcc_mem"].runtime < galois.runtime

    def test_fg_sem_beats_powergraph(self, big_image, fg_results):
        pg = PowerGraphEngine(big_image)
        assert fg_results["bfs_sem"].runtime < pg.run("bfs", fg_results["source"]).runtime
        assert fg_results["pr_sem"].runtime < pg.run("pagerank").runtime

    def test_fg_sem_beats_external_engines_by_a_lot(self, big_image, fg_results):
        source = fg_results["source"]
        xs_bfs = XStreamEngine(big_image).run("bfs", source)
        assert xs_bfs.runtime > 10 * fg_results["bfs_sem"].runtime
        gc_pr = GraphChiEngine(big_image).run("pagerank")
        assert gc_pr.runtime > 5 * fg_results["pr_sem"].runtime

    def test_fg_sem_reads_fewer_bytes_than_streamers(self, big_image, fg_results):
        source = fg_results["source"]
        xs = XStreamEngine(big_image).run("bfs", source)
        assert fg_results["bfs_sem"].bytes_read < xs.bytes_read
