"""Tests for the extra comparators: PEGASUS, TurboGraph, Pregel, Trinity."""

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.pagerank import pagerank
from repro.baselines import (
    PegasusEngine,
    PregelEngine,
    TrinityEngine,
    TurboGraphEngine,
)
from repro.baselines.cluster import ClusterCostModel
from repro.baselines.common import wcc_trace
from repro.baselines.pegasus import PegasusCostModel

from tests.conftest import engine_for


class TestPegasusNumerics:
    def test_gimv_pagerank_matches_engine(self, er_image, make_engine):
        peg = PegasusEngine(er_image)
        ranks, iterations = peg.gimv_pagerank(max_iterations=200)
        reference, _ = pagerank(
            make_engine(er_image), max_iterations=150, tolerance=1e-13
        )
        assert np.abs(ranks - reference).max() < 1e-6
        assert iterations <= 200

    def test_gimv_wcc_matches_trace(self, er_image):
        peg = PegasusEngine(er_image)
        labels, _ = peg.gimv_wcc()
        reference, _ = wcc_trace(er_image)
        assert np.array_equal(labels, reference)


class TestPegasusTiming:
    def test_job_latency_floor(self, rmat_image):
        report = PegasusEngine(rmat_image).run("pagerank", max_iterations=5)
        # Hadoop's per-job latency alone dwarfs everything at this scale.
        assert report.runtime >= report.iterations * PegasusCostModel().job_latency

    def test_traversals_pay_full_scans(self, rmat_image):
        source = int(np.argmax(rmat_image.out_csr.degrees()))
        report = PegasusEngine(rmat_image).run("bfs", source)
        per_iter = rmat_image.out_csr.num_edges * PegasusCostModel().bytes_per_edge
        assert report.bytes_read >= report.iterations * per_iter

    def test_unsupported(self, rmat_image):
        with pytest.raises(ValueError):
            PegasusEngine(rmat_image).run("triangle_count")

    def test_orders_of_magnitude_slower_than_flashgraph(self, rmat_image):
        source = int(np.argmax(rmat_image.out_csr.degrees()))
        _, fg = bfs(engine_for(rmat_image, num_threads=32), source)
        report = PegasusEngine(rmat_image).run("bfs", source)
        assert report.runtime > 100 * fg.runtime


class TestTurboGraph:
    def test_large_blocks_read_more_bytes(self, rmat_image):
        source = int(np.argmax(rmat_image.out_csr.degrees()))
        _, fg = bfs(engine_for(rmat_image, num_threads=32, cache_kib=64), source)
        report = TurboGraphEngine(rmat_image).run("bfs", source)
        assert report.bytes_read > fg.bytes_read
        assert report.details["block_size"] > 4096  # far coarser than a flash page

    def test_results_equivalent_iterations(self, rmat_image):
        source = int(np.argmax(rmat_image.out_csr.degrees()))
        levels, fg = bfs(engine_for(rmat_image, num_threads=32), source)
        report = TurboGraphEngine(rmat_image).run("bfs", source)
        assert report.iterations == fg.iterations

    def test_unsupported(self, rmat_image):
        with pytest.raises(ValueError):
            TurboGraphEngine(rmat_image).run("scan_statistics")


class TestClusterEngines:
    def test_pregel_defaults(self, rmat_image):
        engine = PregelEngine(rmat_image)
        assert engine.cost.num_machines == 300
        source = int(np.argmax(rmat_image.out_csr.degrees()))
        report = engine.run("bfs", source)
        assert report.details["num_machines"] == 300.0
        assert report.details["network_bytes"] > 0

    def test_trinity_fewer_machines_better_network(self, rmat_image):
        pregel = PregelEngine(rmat_image)
        trinity = TrinityEngine(rmat_image)
        assert trinity.cost.num_machines < pregel.cost.num_machines
        assert trinity.cost.bytes_per_message < pregel.cost.bytes_per_message

    def test_barrier_dominates_traversals(self, rmat_image):
        source = int(np.argmax(rmat_image.out_csr.degrees()))
        report = PregelEngine(rmat_image).run("bfs", source)
        floor = report.iterations * PregelEngine.default_cost_model().barrier_latency
        assert report.runtime >= floor

    def test_flashgraph_beats_clusters_on_this_workload(self, rmat_image):
        # §5.6's headline: one SEM machine beats published cluster numbers.
        source = int(np.argmax(rmat_image.out_csr.degrees()))
        _, fg = bfs(engine_for(rmat_image, num_threads=32), source)
        for engine in (PregelEngine(rmat_image), TrinityEngine(rmat_image)):
            report = engine.run("bfs", source)
            assert fg.runtime < report.runtime, engine.name

    def test_invalid_machines(self, rmat_image):
        with pytest.raises(ValueError):
            PregelEngine(rmat_image, ClusterCostModel(num_machines=0))

    def test_unsupported(self, rmat_image):
        with pytest.raises(ValueError):
            TrinityEngine(rmat_image).run("scan_statistics")
