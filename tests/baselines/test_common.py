"""Tests for the shared workload traces (reference dynamics)."""

import networkx as nx
import numpy as np
import pytest

from repro.baselines.common import (
    BaselineReport,
    IterationStats,
    WorkloadTrace,
    bc_trace,
    bfs_trace,
    pagerank_trace,
    scan_trace,
    triangle_trace,
    wcc_trace,
)


class TestBFSTrace:
    def test_levels_match_networkx(self, rmat_image, rmat_digraph):
        source = int(np.argmax(rmat_image.out_csr.degrees()))
        levels, trace = bfs_trace(rmat_image, source)
        expected = nx.single_source_shortest_path_length(rmat_digraph, source)
        got = {v: int(l) for v, l in enumerate(levels) if l >= 0}
        assert got == dict(expected)

    def test_iterations_equal_levels(self, rmat_image):
        source = int(np.argmax(rmat_image.out_csr.degrees()))
        levels, trace = bfs_trace(rmat_image, source)
        assert trace.num_iterations == int(levels.max()) + 1

    def test_first_iteration_is_the_source(self, er_image):
        _, trace = bfs_trace(er_image, 0)
        assert trace.iterations[0].active_vertices == 1

    def test_edges_equal_frontier_out_degrees(self, er_image):
        levels, trace = bfs_trace(er_image, 0)
        out_deg = er_image.out_csr.degrees()
        for level, stats in enumerate(trace.iterations):
            members = np.nonzero(levels == level)[0]
            assert stats.active_vertices == members.size
            assert stats.edges_traversed == int(out_deg[members].sum())


class TestPageRankTrace:
    def test_active_set_shrinks(self, er_image):
        _, trace = pagerank_trace(er_image, max_iterations=30)
        first = trace.iterations[0].active_vertices
        last = trace.iterations[-1].active_vertices
        assert first == er_image.num_vertices
        assert last < first

    def test_matches_engine_pagerank(self, er_image, make_engine):
        from repro.algorithms.pagerank import pagerank

        reference, _ = pagerank_trace(er_image, max_iterations=40, tolerance=1e-10)
        ranks, _ = pagerank(
            make_engine(er_image), max_iterations=40, tolerance=1e-10
        )
        assert np.abs(ranks - reference).max() < 1e-9


class TestWCCTrace:
    def test_components_match_networkx(self, er_image, er_digraph):
        labels, trace = wcc_trace(er_image)
        expected = {frozenset(c) for c in nx.weakly_connected_components(er_digraph)}
        groups = {}
        for v, c in enumerate(labels):
            groups.setdefault(int(c), set()).add(v)
        assert {frozenset(s) for s in groups.values()} == expected

    def test_first_iteration_all_active(self, er_image):
        _, trace = wcc_trace(er_image)
        assert trace.iterations[0].active_vertices == er_image.num_vertices


class TestTriangleAndScanTraces:
    def test_triangle_total_matches_networkx(self, er_image, er_ugraph):
        total, trace = triangle_trace(er_image)
        assert total == sum(nx.triangles(er_ugraph).values()) // 3
        assert trace.total_edges > 0

    def test_scan_matches_brute_force(self, er_image, er_ugraph):
        best, _ = scan_trace(er_image)
        expected = 0
        for v in er_ugraph.nodes():
            nb = set(er_ugraph.neighbors(v)) - {v}
            among = sum(
                1 for a in nb for b in er_ugraph.neighbors(a) if b in nb and b > a
            )
            expected = max(expected, len(nb) + among)
        assert best == expected


class TestBCTrace:
    def test_has_forward_and_backward_phases(self, er_image):
        levels, trace = bc_trace(er_image, 0)
        max_level = int(levels.max())
        # forward levels + backward passes over levels > 0
        assert trace.num_iterations == (max_level + 1) + max_level


class TestDataclasses:
    def test_trace_totals(self):
        trace = WorkloadTrace("x", [IterationStats(2, 10), IterationStats(1, 5)])
        assert trace.total_edges == 15
        assert trace.total_active == 3
        assert trace.num_iterations == 2

    def test_report_fields(self):
        report = BaselineReport("sys", "alg", 1.0, 2, 3.0, 4.0, 5.0)
        assert report.system == "sys"
        assert report.details == {}
