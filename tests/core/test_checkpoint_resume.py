"""Crash-resume chaos tests for iteration-barrier checkpointing.

The tentpole contract under test:

- arming checkpoints changes **nothing** — results, counters and clocks
  of an armed run are bit-identical to an unarmed one;
- a run killed at *any* iteration boundary (the matrix covers every one,
  for PageRank, WCC and BFS on twitter-sim) and resumed from its
  checkpoint finishes bit-identical to the uninterrupted golden run —
  results, every DES counter, and the simulated runtime;
- with parity striping a whole-SSD death mid-run self-heals: the run
  completes with zero data loss and the reconstruction I/O is visibly
  charged (degraded reads are never free);
- without parity the same death degrades to PR 2's clean
  :class:`IterationAborted` — and the latest checkpoint still rescues
  the work.
"""

import numpy as np
import pytest

from repro.algorithms.bfs import BFSProgram
from repro.algorithms.pagerank import PageRankProgram
from repro.algorithms.wcc import WCCProgram
from repro.bench.datasets import load_dataset, scaled_cache_bytes
from repro.bench.harness import default_source
from repro.core.checkpoint import CheckpointError, CheckpointManager, CHECKPOINT_VERSION
from repro.core.config import EngineConfig, ExecutionMode
from repro.core.engine import GraphEngine, IterationAborted
from repro.safs.filesystem import SAFS, SAFSConfig
from repro.safs.page import SAFSFile
from repro.sim.faults import DeviceFailure, FaultPlan, FaultPolicy, TransientErrors
from repro.sim.health import HealthPolicy
from repro.sim.parity import ParityConfig
from repro.sim.ssd_array import SSDArray, SSDArrayConfig


def make_engine(plan=None, policy=None, health=None, parity=None):
    """A twitter-sim engine (same idiom as the golden-result tests:
    file ids pinned because page-cache set hashing keys on them)."""
    image = load_dataset("twitter-sim")
    SAFSFile._next_id = 0
    array = SSDArray(SSDArrayConfig(), fault_plan=plan, parity=parity)
    safs = SAFS(
        array,
        SAFSConfig(page_size=4096, cache_bytes=scaled_cache_bytes(1.0)),
        stats=array.stats,
        fault_policy=policy,
        health_policy=health,
    )
    return GraphEngine(
        image,
        safs=safs,
        config=EngineConfig(
            mode=ExecutionMode.SEMI_EXTERNAL, num_threads=32, range_shift=8
        ),
    )


#: (program factory, engine.run kwargs) per application.  PageRank is
#: capped so the every-boundary matrix stays cheap; WCC and BFS converge
#: on their own.
def _apps():
    image = load_dataset("twitter-sim")
    n = image.num_vertices
    source = default_source(image)
    return {
        "pr": (
            lambda: PageRankProgram(n),
            dict(max_iterations=8),
            lambda p: p.rank + p.pending,
        ),
        "wcc": (lambda: WCCProgram(n), dict(), lambda p: p.component.copy()),
        "bfs": (
            lambda: BFSProgram(n),
            dict(initial_active=np.asarray([source])),
            lambda p: p.level.copy(),
        ),
    }


def _run(app, engine, manager=None, every=1, resume=None):
    factory, kwargs, extract = _apps()[app]
    program = factory()
    if manager is not None:
        engine.enable_checkpoints(manager, every=every)
    if resume is not None:
        engine.resume_from(resume)
    result = engine.run(program, **kwargs)
    return extract(program), result, engine.safs.stats.snapshot()


@pytest.fixture(scope="module")
def goldens():
    """Uninterrupted fault-free reference runs per application."""
    return {app: _run(app, make_engine()) for app in _apps()}


class TestCheckpointManager:
    def test_save_load_round_trip(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        state = {
            "version": CHECKPOINT_VERSION,
            "iteration": 3,
            "payload": np.arange(5),
        }
        path = manager.save(state)
        assert path.name == "ckpt_iter_00000003.pkl"
        loaded = manager.load(3)
        assert loaded["iteration"] == 3
        assert np.array_equal(loaded["payload"], np.arange(5))

    def test_latest_and_iterations(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        assert manager.latest() is None
        for i in (5, 1, 9):
            manager.save({"version": CHECKPOINT_VERSION, "iteration": i})
        assert manager.iterations() == [1, 5, 9]
        assert manager.latest() == manager.path_for(9)

    def test_version_mismatch_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        with pytest.raises(CheckpointError):
            manager.save({"version": 999, "iteration": 0})
        manager.save({"version": CHECKPOINT_VERSION, "iteration": 0})
        # Simulate a future-format file.
        import pickle

        manager.path_for(1).write_bytes(
            pickle.dumps({"version": CHECKPOINT_VERSION + 1, "iteration": 1})
        )
        with pytest.raises(CheckpointError):
            manager.load(1)

    def test_missing_checkpoint_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointManager(tmp_path).load(7)

    def test_no_temp_file_debris(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save({"version": CHECKPOINT_VERSION, "iteration": 0})
        assert [p.name for p in tmp_path.iterdir()] == ["ckpt_iter_00000000.pkl"]


class TestArmedRunsAreFree:
    def test_checkpointing_never_perturbs_the_run(self, tmp_path, goldens):
        """The golden-counter invariant: saving checkpoints must not add
        a single counter tick or move any clock."""
        state, result, counters = goldens["pr"]
        manager = CheckpointManager(tmp_path)
        armed_state, armed_result, armed_counters = _run(
            "pr", make_engine(), manager=manager
        )
        assert np.array_equal(state, armed_state)
        assert armed_counters == counters
        assert armed_result.runtime == result.runtime
        assert manager.iterations() == list(range(1, result.iterations + 1))


class TestCrashResumeMatrix:
    @pytest.mark.parametrize("app", ["pr", "wcc", "bfs"])
    def test_resume_from_every_boundary_is_bit_identical(
        self, app, tmp_path, goldens
    ):
        """Kill the run at every iteration boundary via --max-iterations,
        resume from the checkpoint, and demand a bit-identical finish:
        results, counters, simulated runtime."""
        golden_state, golden_result, golden_counters = goldens[app]
        manager = CheckpointManager(tmp_path / app)
        _run(app, make_engine(), manager=manager)
        boundaries = manager.iterations()
        assert boundaries, "the run must have saved checkpoints"
        for boundary in boundaries[:-1]:
            state, result, counters = _run(
                app, make_engine(), resume=manager.load(boundary)
            )
            assert np.array_equal(state, golden_state), (app, boundary)
            assert counters == golden_counters, (app, boundary)
            assert result.runtime == golden_result.runtime, (app, boundary)
            assert result.iterations == golden_result.iterations

    def test_interrupting_via_max_iterations_then_resuming(self, tmp_path, goldens):
        """The --max-iterations stop is itself a clean interruption: a
        capped run's checkpoint resumes to the same fixpoint."""
        golden_state, golden_result, golden_counters = goldens["pr"]
        manager = CheckpointManager(tmp_path)
        engine = make_engine()
        engine.enable_checkpoints(manager, every=1)
        program = PageRankProgram(engine.image.num_vertices)
        engine.run(program, max_iterations=3)
        state, result, counters = _run(
            "pr", make_engine(), resume=manager.load(3)
        )
        assert np.array_equal(state, golden_state)
        assert counters == golden_counters
        assert result.runtime == golden_result.runtime


class TestResumeValidation:
    def _checkpointed_state(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        _run("pr", make_engine(), manager=manager)
        return manager

    def test_wrong_program_class_rejected(self, tmp_path):
        manager = self._checkpointed_state(tmp_path)
        engine = make_engine()
        engine.resume_from(manager.load(1))
        with pytest.raises(CheckpointError):
            engine.run(WCCProgram(engine.image.num_vertices))

    def test_wrong_thread_count_rejected(self, tmp_path):
        manager = self._checkpointed_state(tmp_path)
        image = load_dataset("twitter-sim")
        SAFSFile._next_id = 0
        array = SSDArray(SSDArrayConfig())
        safs = SAFS(
            array,
            SAFSConfig(page_size=4096, cache_bytes=scaled_cache_bytes(1.0)),
            stats=array.stats,
        )
        engine = GraphEngine(
            image,
            safs=safs,
            config=EngineConfig(
                mode=ExecutionMode.SEMI_EXTERNAL, num_threads=16, range_shift=8
            ),
        )
        engine.resume_from(manager.load(1))
        with pytest.raises(CheckpointError):
            engine.run(PageRankProgram(engine.image.num_vertices))

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            make_engine().resume_from(CheckpointManager(tmp_path))

    def test_bad_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            make_engine().enable_checkpoints(CheckpointManager(tmp_path), every=0)


#: One SSD dies 2ms in — mid-run for every application.
ONE_DEATH = FaultPlan([DeviceFailure(device=11, at=0.002)], seed=42)


class TestParitySelfHealing:
    def test_device_loss_completes_with_zero_data_loss(self, goldens):
        """With parity, a whole-SSD death mid-run reconstructs every lost
        page: results bit-identical, reconstruction I/O visibly charged,
        and the rebuild scrubber engaged."""
        golden_state, golden_result, _ = goldens["pr"]
        clean_engine = make_engine(parity=ParityConfig())
        clean_state, clean_result, _ = _run("pr", clean_engine)
        degraded_engine = make_engine(
            plan=ONE_DEATH, policy=FaultPolicy(), parity=ParityConfig()
        )
        state, result, counters = _run("pr", degraded_engine)
        # Zero data loss: both the parity layout's clean run and the
        # degraded run land on the exact golden fixpoint.
        assert np.array_equal(clean_state, golden_state)
        assert np.array_equal(state, golden_state)
        assert result.iterations == golden_result.iterations
        assert counters.get("parity.reconstructions", 0) > 0
        assert counters.get("parity.double_faults", 0) == 0
        assert counters.get("scrub.rebuilds_started", 0) == 1
        assert counters.get("parity.peer_reads", 0) > 0
        assert counters.get("scrub.pages_read", 0) > 0
        # No free reads: every reconstruction charged its peer queues, so
        # the degraded array worked strictly more device-seconds than the
        # clean one (even though the idle hot spare can let the run
        # *finish* sooner once rebuilt rows serve from it).
        assert (
            degraded_engine.safs.array.busy_time()
            > clean_engine.safs.array.busy_time()
        )

    def test_without_parity_the_same_death_aborts_cleanly(self):
        """Parity disabled and rerouting off: the death degrades to the
        PR 2 behaviour — a clean IterationAborted, never wrong data."""
        engine = make_engine(
            plan=ONE_DEATH, policy=FaultPolicy(reroute_on_dead=False)
        )
        with pytest.raises(IterationAborted) as failure:
            _run("pr", engine)
        assert failure.value.partial.runtime > 0

    def test_checkpoint_rescues_an_aborted_run(self, tmp_path, goldens):
        """Kill a run for real (unrecoverable death), then resume its
        last checkpoint on a repaired array: the finish matches the
        golden results exactly."""
        golden_state, golden_result, _ = goldens["pr"]
        manager = CheckpointManager(tmp_path)
        engine = make_engine(
            plan=ONE_DEATH, policy=FaultPolicy(reroute_on_dead=False)
        )
        with pytest.raises(IterationAborted):
            _run("pr", engine, manager=manager)
        assert manager.latest() is not None
        # The operator swapped the dead SSD: resume on a clean array.
        state, result, _ = _run(
            "pr", make_engine(), resume=manager.load(manager.iterations()[-1])
        )
        assert np.array_equal(state, golden_state)
        assert result.iterations == golden_result.iterations

    def test_resume_under_chaos_is_bit_identical(self, tmp_path):
        """The strongest composition: transient errors + a device death +
        parity + health monitoring, interrupted and resumed — the resumed
        run must match the uninterrupted chaos run bit for bit, counters
        included."""
        chaos = dict(
            plan=FaultPlan(
                [
                    TransientErrors(device=3, start=0.0, end=10.0, probability=0.15),
                    DeviceFailure(device=11, at=0.002),
                ],
                seed=42,
            ),
            policy=FaultPolicy(),
            health=HealthPolicy(),
            parity=ParityConfig(),
        )
        manager = CheckpointManager(tmp_path)
        full_state, full_result, full_counters = _run(
            "pr", make_engine(**chaos), manager=manager
        )
        boundary = manager.iterations()[len(manager.iterations()) // 2]
        state, result, counters = _run(
            "pr", make_engine(**chaos), resume=manager.load(boundary)
        )
        assert np.array_equal(state, full_state)
        assert counters == full_counters
        assert result.runtime == full_result.runtime
