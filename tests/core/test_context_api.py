"""Tests for the GraphContext API surface and the in-memory edge store."""

import numpy as np
import pytest

from repro.core.config import ExecutionMode
from repro.core.memory_mode import InMemoryEdgeStore
from repro.core.vertex_program import VertexProgram
from repro.graph.builder import build_directed
from repro.graph.types import EdgeType

from tests.conftest import engine_for


@pytest.fixture(scope="module")
def image():
    edges = np.array([[0, 1], [0, 2], [1, 2], [2, 0], [3, 0]])
    weights = np.array([1.0, 2.0, 3.0, 4.0, 5.0], dtype=np.float32)
    return build_directed(edges, 4, name="ctx", weights=weights)


class Probe(VertexProgram):
    """Records everything the context hands back."""

    combiner = "sum"

    def __init__(self):
        self.observations = {}
        self.views = []

    def run(self, g, vertex):
        self.observations[vertex] = {
            "out": g.degree(vertex, EdgeType.OUT),
            "in": g.degree(vertex, EdgeType.IN),
            "n": g.num_vertices,
            "iteration": g.iteration,
        }
        g.request_self(vertex, EdgeType.BOTH)

    def run_on_vertex(self, g, vertex, page_vertex):
        self.views.append((vertex, page_vertex.edge_type, page_vertex.num_edges))


class TestGraphContext:
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_degree_and_metadata(self, image, mode):
        engine = engine_for(image, mode=mode, range_shift=1)
        probe = Probe()
        engine.run(probe, max_iterations=1)
        assert probe.observations[0] == {"out": 2, "in": 2, "n": 4, "iteration": 0}
        assert probe.observations[3] == {"out": 1, "in": 0, "n": 4, "iteration": 0}

    def test_both_edge_type_delivers_two_views(self, image):
        engine = engine_for(image, range_shift=1)
        probe = Probe()
        engine.run(probe, max_iterations=1)
        for vertex in range(4):
            types = {t for v, t, _ in probe.views if v == vertex}
            assert types == {EdgeType.OUT, EdgeType.IN}

    def test_degrees_of_vectorised(self, image):
        engine = engine_for(image, range_shift=1)

        class Vectorised(VertexProgram):
            def run(self, g, vertex):
                if vertex == 0:
                    out = g.degrees_of(np.array([0, 1, 2, 3]), EdgeType.OUT)
                    assert out.tolist() == [2, 1, 1, 1]
                    inc = g.degrees_of(np.array([0, 1, 2, 3]), EdgeType.IN)
                    assert inc.tolist() == [2, 1, 2, 0]

        engine.run(Vectorised(), initial_active=np.array([0]), max_iterations=1)

    def test_charge_edges_increases_runtime(self, image):
        class Charger(VertexProgram):
            def __init__(self, extra):
                self.extra = extra

            def run(self, g, vertex):
                g.request_self(vertex, EdgeType.OUT)

            def run_on_vertex(self, g, vertex, page_vertex):
                g.charge_edges(self.extra)

        engine = engine_for(image, range_shift=1)
        cheap = engine.run(Charger(0), max_iterations=1)
        engine = engine_for(image, range_shift=1)
        expensive = engine.run(Charger(100_000), max_iterations=1)
        assert expensive.runtime > cheap.runtime

    def test_iteration_end_requires_notification(self, image):
        calls = []

        class Silent(VertexProgram):
            def run_on_iteration_end(self, g):
                calls.append("end")

        engine = engine_for(image, range_shift=1)
        engine.run(Silent(), max_iterations=1)
        assert calls == []

        class Notifying(Silent):
            def run(self, g, vertex):
                g.notify_iteration_end()

        engine = engine_for(image, range_shift=1)
        engine.run(Notifying(), max_iterations=1)
        assert calls == ["end"]


class TestInMemoryEdgeStore:
    def test_fetch_directions(self, image):
        store = InMemoryEdgeStore(image)
        out = store.fetch(0, EdgeType.OUT)
        assert out.read_edges().tolist() == [1, 2]
        inc = store.fetch(0, EdgeType.IN)
        assert inc.read_edges().tolist() == [2, 3]

    def test_both_rejected(self, image):
        with pytest.raises(ValueError):
            InMemoryEdgeStore(image).fetch(0, EdgeType.BOTH)

    def test_attrs(self, image):
        store = InMemoryEdgeStore(image)
        view = store.fetch(0, EdgeType.OUT, with_attrs=True)
        assert view.read_edge_attrs().tolist() == [1.0, 2.0]

    def test_attrs_missing_direction(self, image):
        store = InMemoryEdgeStore(image)
        with pytest.raises(ValueError):
            store.fetch(0, EdgeType.IN, with_attrs=True)

    def test_memory_accounting(self, image):
        store = InMemoryEdgeStore(image)
        # Both directions' indptr + indices arrays.
        expected = (
            image.out_csr.indptr.nbytes
            + image.out_csr.indices.nbytes
            + image.in_csr.indptr.nbytes
            + image.in_csr.indices.nbytes
        )
        assert store.memory_bytes() == expected
