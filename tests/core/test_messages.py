"""Unit and property tests for the message buffer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import MessageBuffer


class TestSend:
    def test_scalar_broadcast(self):
        buf = MessageBuffer("sum")
        count = buf.send(np.array([1, 2, 3]), 5.0)
        assert count == 3
        assert buf.pending == 3

    def test_array_values(self):
        buf = MessageBuffer("sum")
        buf.send(np.array([1, 2]), np.array([1.0, 2.0]))
        dests, values, counts = buf.deliver()
        assert dests.tolist() == [1, 2]
        assert values.tolist() == [1.0, 2.0]

    def test_empty_send(self):
        buf = MessageBuffer("sum")
        assert buf.send(np.array([], dtype=np.int64), 1.0) == 0

    def test_shape_mismatch_rejected(self):
        buf = MessageBuffer("sum")
        with pytest.raises(ValueError):
            buf.send(np.array([1, 2]), np.array([1.0, 2.0, 3.0]))

    def test_unknown_combiner_rejected(self):
        with pytest.raises(ValueError):
            MessageBuffer("median")

    def test_peak_pending(self):
        buf = MessageBuffer("sum")
        buf.send(np.array([1, 2, 3]), 1.0)
        buf.deliver()
        buf.send(np.array([1]), 1.0)
        assert buf.peak_pending == 3


class TestDeliver:
    def test_sum_combiner(self):
        buf = MessageBuffer("sum")
        buf.send(np.array([1, 2, 1]), np.array([1.0, 2.0, 3.0]))
        dests, values, counts = buf.deliver()
        assert dests.tolist() == [1, 2]
        assert values.tolist() == [4.0, 2.0]
        assert counts.tolist() == [2, 1]

    def test_min_combiner(self):
        buf = MessageBuffer("min")
        buf.send(np.array([5, 5, 7]), np.array([3.0, 1.0, 9.0]))
        dests, values, counts = buf.deliver()
        assert dests.tolist() == [5, 7]
        assert values.tolist() == [1.0, 9.0]

    def test_max_combiner(self):
        buf = MessageBuffer("max")
        buf.send(np.array([0, 0]), np.array([2.0, 8.0]))
        _, values, _counts = buf.deliver()
        assert values.tolist() == [8.0]

    def test_no_combiner_keeps_duplicates(self):
        buf = MessageBuffer(None)
        buf.send(np.array([2, 1, 2]), np.array([1.0, 2.0, 3.0]))
        dests, values, counts = buf.deliver()
        assert dests.tolist() == [1, 2, 2]
        assert sorted(values[1:].tolist()) == [1.0, 3.0]
        assert counts.tolist() == [1, 1, 1]

    def test_deliver_empties(self):
        buf = MessageBuffer("sum")
        buf.send(np.array([1]), 1.0)
        buf.deliver()
        assert buf.pending == 0
        dests, values, counts = buf.deliver()
        assert dests.size == 0 and values.size == 0 and counts.size == 0

    def test_multiple_sends_accumulate(self):
        buf = MessageBuffer("sum")
        buf.send(np.array([1]), 1.0)
        buf.send(np.array([1]), 2.0)
        _, values, _counts = buf.deliver()
        assert values.tolist() == [3.0]

    def test_clear(self):
        buf = MessageBuffer("sum")
        buf.send(np.array([1]), 1.0)
        buf.clear()
        assert buf.pending == 0
        dests, _, _ = buf.deliver()
        assert dests.size == 0


class TestProperties:
    @given(
        sends=st.lists(
            st.tuples(
                st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=10),
                st.floats(min_value=-100, max_value=100, allow_nan=False),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_sum_combiner_conserves_mass(self, sends):
        buf = MessageBuffer("sum")
        total = 0.0
        for dests, value in sends:
            buf.send(np.asarray(dests), value)
            total += value * len(dests)
        _, values, _counts = buf.deliver()
        assert values.sum() == pytest.approx(total, abs=1e-9)

    @given(
        sends=st.lists(
            st.tuples(
                st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=10),
                st.floats(min_value=-100, max_value=100, allow_nan=False),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_min_combiner_matches_reference(self, sends):
        buf = MessageBuffer("min")
        reference = {}
        for dests, value in sends:
            buf.send(np.asarray(dests), value)
            for d in dests:
                reference[d] = min(reference.get(d, np.inf), value)
        dests, values, counts = buf.deliver()
        assert dests.tolist() == sorted(reference)
        for d, v in zip(dests, values):
            assert v == pytest.approx(reference[int(d)])
