"""Unit tests for the vertex scheduler."""

import numpy as np
import pytest

from repro.core.config import EngineConfig, ScheduleOrder
from repro.core.scheduler import VertexScheduler, make_scheduler


class TestByID:
    def test_sorts_ascending(self):
        s = VertexScheduler(ScheduleOrder.BY_ID, alternate=False)
        out = s.schedule(np.array([5, 1, 3]), iteration=0)
        assert out.tolist() == [1, 3, 5]

    def test_alternates_direction(self):
        s = VertexScheduler(ScheduleOrder.BY_ID, alternate=True)
        assert s.schedule(np.array([5, 1, 3]), 0).tolist() == [1, 3, 5]
        assert s.schedule(np.array([5, 1, 3]), 1).tolist() == [5, 3, 1]
        assert s.schedule(np.array([5, 1, 3]), 2).tolist() == [1, 3, 5]

    def test_no_alternation_when_disabled(self):
        s = VertexScheduler(ScheduleOrder.BY_ID, alternate=False)
        assert s.schedule(np.array([5, 1, 3]), 1).tolist() == [1, 3, 5]

    def test_empty(self):
        s = VertexScheduler()
        assert s.schedule(np.array([], dtype=np.int64), 0).size == 0


class TestRandom:
    def test_is_permutation(self):
        s = VertexScheduler(ScheduleOrder.RANDOM)
        ids = np.arange(100)
        out = s.schedule(ids, 0)
        assert sorted(out.tolist()) == ids.tolist()

    def test_not_sorted_with_high_probability(self):
        s = VertexScheduler(ScheduleOrder.RANDOM, seed=1)
        out = s.schedule(np.arange(200), 0)
        assert out.tolist() != sorted(out.tolist())

    def test_seed_reproducible(self):
        a = VertexScheduler(ScheduleOrder.RANDOM, seed=3).schedule(np.arange(50), 0)
        b = VertexScheduler(ScheduleOrder.RANDOM, seed=3).schedule(np.arange(50), 0)
        assert a.tolist() == b.tolist()


class TestCustom:
    def test_custom_order_applied(self):
        order = lambda ids, it: np.sort(ids)[::-1]
        s = VertexScheduler(ScheduleOrder.CUSTOM, custom_order=order)
        assert s.schedule(np.array([1, 5, 3]), 0).tolist() == [5, 3, 1]

    def test_custom_without_function_rejected(self):
        with pytest.raises(ValueError):
            VertexScheduler(ScheduleOrder.CUSTOM)

    def test_custom_must_be_permutation_size(self):
        order = lambda ids, it: ids[:1]
        s = VertexScheduler(ScheduleOrder.CUSTOM, custom_order=order)
        with pytest.raises(ValueError):
            s.schedule(np.array([1, 2, 3]), 0)

    def test_custom_with_duplicates_rejected(self):
        # Regression: a size-only check let this through, silently
        # running vertex 1 twice and vertex 2 never.
        order = lambda ids, it: np.array([1, 1, 3])
        s = VertexScheduler(ScheduleOrder.CUSTOM, custom_order=order)
        with pytest.raises(ValueError, match="permutation"):
            s.schedule(np.array([1, 2, 3]), 0)

    def test_custom_with_foreign_ids_rejected(self):
        order = lambda ids, it: np.array([1, 2, 99])
        s = VertexScheduler(ScheduleOrder.CUSTOM, custom_order=order)
        with pytest.raises(ValueError, match="permutation"):
            s.schedule(np.array([1, 2, 3]), 0)

    def test_custom_true_permutation_accepted(self):
        order = lambda ids, it: np.array([3, 1, 2])
        s = VertexScheduler(ScheduleOrder.CUSTOM, custom_order=order)
        assert s.schedule(np.array([1, 2, 3]), 0).tolist() == [3, 1, 2]


class TestPriority:
    """Async-mode priority ordering (block-bucketed residuals)."""

    def test_hottest_block_first(self):
        s = VertexScheduler(block_shift=2)  # ID blocks of 4
        active = np.array([9, 0, 5, 8, 1, 4])
        priorities = np.array([100.0, 1.0, 1.0, 60.0, 1.0, 1.0])
        out = s.schedule(active, 0, priorities=priorities)
        # Block 8-11 is hottest; cold blocks follow in ascending ID.
        assert out.tolist() == [8, 9, 0, 1, 4, 5]

    def test_within_block_order_stays_ascending(self):
        s = VertexScheduler(block_shift=4)
        active = np.array([3, 1, 2, 0])
        priorities = np.array([50.0, 1.0, 9.0, 2.0])
        out = s.schedule(active, 0, priorities=priorities)
        # One block: the hot resident does not reorder its neighbors.
        assert out.tolist() == [0, 1, 2, 3]

    def test_same_bucket_blocks_keep_id_order(self):
        s = VertexScheduler(block_shift=1)
        active = np.array([6, 0, 2, 4])
        # All priorities within a factor of two: one bucket, pure ID order.
        priorities = np.array([1.9, 1.0, 1.2, 1.7])
        out = s.schedule(active, 0, priorities=priorities)
        assert out.tolist() == [0, 2, 4, 6]

    def test_priority_overrides_configured_order(self):
        s = VertexScheduler(ScheduleOrder.RANDOM, seed=1, block_shift=1)
        active = np.arange(16)
        priorities = np.ones(16)
        out = s.schedule(active, 0, priorities=priorities)
        assert out.tolist() == list(range(16))

    def test_is_permutation(self):
        s = VertexScheduler(block_shift=3)
        active = np.arange(64)
        priorities = np.linspace(0.0, 7.0, 64)[::-1].copy()
        out = s.schedule(active, 0, priorities=priorities)
        assert sorted(out.tolist()) == active.tolist()

    def test_non_finite_priorities_are_clamped(self):
        s = VertexScheduler(block_shift=1)
        out = s.schedule(
            np.array([0, 2]), 0, priorities=np.array([np.inf, 1.0])
        )
        assert sorted(out.tolist()) == [0, 2]

    def test_misaligned_priorities_rejected(self):
        s = VertexScheduler()
        with pytest.raises(ValueError, match="align"):
            s.schedule(np.array([1, 2]), 0, priorities=np.array([1.0]))

    def test_negative_block_shift_rejected(self):
        with pytest.raises(ValueError):
            VertexScheduler(block_shift=-1)

    def test_block_shift_comes_from_config(self):
        cfg = EngineConfig(range_shift=5)
        assert make_scheduler(cfg).block_shift == 5


class TestMakeScheduler:
    def test_from_config(self):
        cfg = EngineConfig(schedule_order=ScheduleOrder.RANDOM)
        s = make_scheduler(cfg)
        assert s.order is ScheduleOrder.RANDOM

    def test_custom_from_config(self):
        cfg = EngineConfig(schedule_order=ScheduleOrder.CUSTOM)
        s = make_scheduler(cfg, custom_order=lambda ids, it: ids)
        assert s.schedule(np.array([2, 1]), 0).tolist() == [2, 1]
