"""Unit tests for the vertex scheduler."""

import numpy as np
import pytest

from repro.core.config import EngineConfig, ScheduleOrder
from repro.core.scheduler import VertexScheduler, make_scheduler


class TestByID:
    def test_sorts_ascending(self):
        s = VertexScheduler(ScheduleOrder.BY_ID, alternate=False)
        out = s.schedule(np.array([5, 1, 3]), iteration=0)
        assert out.tolist() == [1, 3, 5]

    def test_alternates_direction(self):
        s = VertexScheduler(ScheduleOrder.BY_ID, alternate=True)
        assert s.schedule(np.array([5, 1, 3]), 0).tolist() == [1, 3, 5]
        assert s.schedule(np.array([5, 1, 3]), 1).tolist() == [5, 3, 1]
        assert s.schedule(np.array([5, 1, 3]), 2).tolist() == [1, 3, 5]

    def test_no_alternation_when_disabled(self):
        s = VertexScheduler(ScheduleOrder.BY_ID, alternate=False)
        assert s.schedule(np.array([5, 1, 3]), 1).tolist() == [1, 3, 5]

    def test_empty(self):
        s = VertexScheduler()
        assert s.schedule(np.array([], dtype=np.int64), 0).size == 0


class TestRandom:
    def test_is_permutation(self):
        s = VertexScheduler(ScheduleOrder.RANDOM)
        ids = np.arange(100)
        out = s.schedule(ids, 0)
        assert sorted(out.tolist()) == ids.tolist()

    def test_not_sorted_with_high_probability(self):
        s = VertexScheduler(ScheduleOrder.RANDOM, seed=1)
        out = s.schedule(np.arange(200), 0)
        assert out.tolist() != sorted(out.tolist())

    def test_seed_reproducible(self):
        a = VertexScheduler(ScheduleOrder.RANDOM, seed=3).schedule(np.arange(50), 0)
        b = VertexScheduler(ScheduleOrder.RANDOM, seed=3).schedule(np.arange(50), 0)
        assert a.tolist() == b.tolist()


class TestCustom:
    def test_custom_order_applied(self):
        order = lambda ids, it: np.sort(ids)[::-1]
        s = VertexScheduler(ScheduleOrder.CUSTOM, custom_order=order)
        assert s.schedule(np.array([1, 5, 3]), 0).tolist() == [5, 3, 1]

    def test_custom_without_function_rejected(self):
        with pytest.raises(ValueError):
            VertexScheduler(ScheduleOrder.CUSTOM)

    def test_custom_must_be_permutation_size(self):
        order = lambda ids, it: ids[:1]
        s = VertexScheduler(ScheduleOrder.CUSTOM, custom_order=order)
        with pytest.raises(ValueError):
            s.schedule(np.array([1, 2, 3]), 0)


class TestMakeScheduler:
    def test_from_config(self):
        cfg = EngineConfig(schedule_order=ScheduleOrder.RANDOM)
        s = make_scheduler(cfg)
        assert s.order is ScheduleOrder.RANDOM

    def test_custom_from_config(self):
        cfg = EngineConfig(schedule_order=ScheduleOrder.CUSTOM)
        s = make_scheduler(cfg, custom_order=lambda ids, it: ids)
        assert s.schedule(np.array([2, 1]), 0).tolist() == [2, 1]
