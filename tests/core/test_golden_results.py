"""Golden-result regression test for the vectorized hot paths.

The vectorized fast paths (batched vertex execution, array-based request
merging, bulk page-cache operations) are wall-clock optimisations only:
every *simulated* number — runtime, bytes read, cache hit rate, iteration
count — must stay bit-identical to the per-vertex reference.  This test
pins BFS, WCC and PageRank on ``twitter-sim`` against a fixture recorded
before the fast paths existed and asserts **exact** float equality.

Regenerate (only when the simulation itself legitimately changes)::

    PYTHONPATH=src python tests/core/test_golden_results.py --regen
"""

import json
from pathlib import Path

import pytest

from repro.bench.datasets import load_dataset, scaled_cache_bytes
from repro.bench.harness import make_engine, run_algorithm
from repro.safs.page import SAFSFile

FIXTURE = Path(__file__).resolve().parent / "golden_twitter_sim.json"

#: Order matters: the fixture is recorded by running these sequentially.
GOLDEN_APPS = ("bfs", "wcc", "pr")


def _run_app(app: str):
    """One reproducible run: fresh engine, pinned SAFS file ids.

    Page-cache set hashing keys on ``file_id``, so the global file-id
    counter is pinned to make results independent of test ordering.
    """
    image = load_dataset("twitter-sim")
    SAFSFile._next_id = 0
    engine = make_engine(image, cache_bytes=scaled_cache_bytes(1.0))
    return run_algorithm(engine, app)


def compute_golden() -> dict:
    return {
        app: {
            "runtime_s": result.runtime,
            "bytes_read": result.bytes_read,
            "cache_hit_rate": result.cache_hit_rate,
            "iterations": result.iterations,
        }
        for app in GOLDEN_APPS
        for result in (_run_app(app),)
    }


@pytest.mark.parametrize("app", GOLDEN_APPS)
def test_golden_twitter_sim(app):
    expected = json.loads(FIXTURE.read_text())[app]
    result = _run_app(app)
    assert result.runtime == expected["runtime_s"]
    assert result.bytes_read == expected["bytes_read"]
    assert result.cache_hit_rate == expected["cache_hit_rate"]
    assert result.iterations == expected["iterations"]


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        sys.exit("usage: python tests/core/test_golden_results.py --regen")
    FIXTURE.write_text(json.dumps(compute_golden(), indent=2) + "\n")
    print(f"wrote {FIXTURE}")
