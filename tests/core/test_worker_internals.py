"""Unit tests for the engine's worker queue/steal mechanics."""

import numpy as np
import pytest

from repro.core.engine import _Worker


class TestWorkerQueue:
    def test_take_advances(self):
        worker = _Worker(0)
        worker.queue = np.arange(10)
        assert worker.take(4).tolist() == [0, 1, 2, 3]
        assert worker.remaining == 6
        assert worker.take(100).tolist() == [4, 5, 6, 7, 8, 9]
        assert worker.remaining == 0

    def test_take_empty(self):
        worker = _Worker(0)
        assert worker.take(5).size == 0

    def test_steal_from_tail(self):
        worker = _Worker(0)
        worker.queue = np.arange(10)
        worker.take(2)
        stolen = worker.steal_from_tail(3)
        assert stolen.tolist() == [7, 8, 9]
        # The remaining queue excludes both taken and stolen vertices.
        assert worker.take(100).tolist() == [2, 3, 4, 5, 6]

    def test_steal_respects_position(self):
        worker = _Worker(0)
        worker.queue = np.arange(4)
        worker.take(3)
        stolen = worker.steal_from_tail(10)
        assert stolen.tolist() == [3]
        assert worker.remaining == 0

    def test_steal_from_empty(self):
        worker = _Worker(0)
        assert worker.steal_from_tail(5).size == 0

    def test_steal_zero(self):
        worker = _Worker(0)
        worker.queue = np.arange(3)
        assert worker.steal_from_tail(0).size == 0
        assert worker.remaining == 3

    def test_no_vertex_lost_or_duplicated_under_interleaving(self):
        worker = _Worker(0)
        worker.queue = np.arange(100)
        seen = []
        rng = np.random.default_rng(0)
        while worker.remaining:
            if rng.random() < 0.5:
                seen.extend(worker.take(int(rng.integers(1, 8))).tolist())
            else:
                seen.extend(worker.steal_from_tail(int(rng.integers(1, 8))).tolist())
        assert sorted(seen) == list(range(100))
