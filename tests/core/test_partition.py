"""Unit and property tests for 2D partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import RangePartitioner, VertexPart, split_into_parts


class TestRangePartitioner:
    def test_formula(self):
        p = RangePartitioner(num_partitions=4, range_shift=2)
        # (vid >> 2) % 4
        assert p.partition_of(0) == 0
        assert p.partition_of(3) == 0
        assert p.partition_of(4) == 1
        assert p.partition_of(16) == 0
        assert p.partition_of(20) == 1

    def test_range_size(self):
        assert RangePartitioner(4, 3).range_size == 8

    def test_vectorised_matches_scalar(self):
        p = RangePartitioner(num_partitions=5, range_shift=3)
        ids = np.arange(200)
        vec = p.partition_many(ids)
        assert all(vec[i] == p.partition_of(i) for i in range(200))

    def test_split_covers_exactly_once(self):
        p = RangePartitioner(num_partitions=3, range_shift=2)
        ids = np.array([0, 5, 9, 13, 20, 21])
        groups = p.split(ids)
        assert len(groups) == 3
        recombined = sorted(int(v) for g in groups for v in g)
        assert recombined == sorted(ids.tolist())

    def test_invalid(self):
        with pytest.raises(ValueError):
            RangePartitioner(0, 2)
        with pytest.raises(ValueError):
            RangePartitioner(2, -1)
        with pytest.raises(ValueError):
            RangePartitioner(2, 1).partition_of(-1)

    @given(
        ids=st.lists(st.integers(min_value=0, max_value=10_000), max_size=200),
        n=st.integers(min_value=1, max_value=16),
        r=st.integers(min_value=0, max_value=12),
    )
    @settings(max_examples=50, deadline=None)
    def test_split_is_a_partition(self, ids, n, r):
        p = RangePartitioner(n, r)
        ids = np.asarray(ids, dtype=np.int64)
        groups = p.split(ids)
        assert sum(len(g) for g in groups) == len(ids)
        for part_id, group in enumerate(groups):
            for v in group:
                assert p.partition_of(int(v)) == part_id


class TestVerticalParts:
    def test_single_part_for_small_request(self):
        parts = split_into_parts(7, np.array([3, 1, 2]), part_size=10)
        assert len(parts) == 1
        assert parts[0].targets.tolist() == [1, 2, 3]
        assert parts[0].num_parts == 1

    def test_splits_and_sorts(self):
        targets = np.array([9, 1, 5, 3, 7, 2])
        parts = split_into_parts(0, targets, part_size=2)
        assert len(parts) == 3
        assert [p.targets.tolist() for p in parts] == [[1, 2], [3, 5], [7, 9]]
        assert all(p.num_parts == 3 for p in parts)
        assert [p.part_index for p in parts] == [0, 1, 2]

    def test_parts_cover_exactly(self):
        targets = np.arange(23)
        parts = split_into_parts(0, targets, part_size=5)
        covered = np.concatenate([p.targets for p in parts])
        assert sorted(covered.tolist()) == targets.tolist()

    def test_invalid_part_size(self):
        with pytest.raises(ValueError):
            split_into_parts(0, np.array([1]), part_size=0)

    def test_vertex_part_fields(self):
        part = VertexPart(vertex=3, part_index=1, num_parts=2, targets=np.array([5]))
        assert part.vertex == 3
        assert part.part_index == 1
