"""Engine-level chaos tests: real algorithms under seeded fault plans.

The contract under test is the determinism guarantee of the fault layer
(``docs/fault_model.md``): when every injected fault is recoverable, a run
produces **bit-identical** results to a fault-free run — faults may only
move simulated time, never data — and when recovery is impossible the run
raises a clean :class:`IterationAborted` with partial-progress statistics,
never a wrong answer and never a hang.
"""

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.pagerank import PageRankProgram, pagerank
from repro.algorithms.wcc import wcc
from repro.bench.datasets import load_dataset, scaled_cache_bytes
from repro.bench.harness import default_source
from repro.core.config import EngineConfig, ExecutionMode
from repro.core.engine import GraphEngine, IterationAborted
from repro.graph.builder import build_directed
from repro.graph.generators import rmat_graph
from repro.safs.filesystem import SAFS, SAFSConfig
from repro.safs.page import SAFSFile
from repro.sim.faults import (
    DeviceFailure,
    FaultPlan,
    FaultPolicy,
    StuckQueue,
    TransientErrors,
)
from repro.sim.ssd_array import SSDArray, SSDArrayConfig

#: Recoverable chaos: flaky reads on one device, a latency-spiked device,
#: a stuck queue and one whole-SSD failure mid-run — all survivable under
#: CHAOS_POLICY.  The stuck-queue window (11.5ms) is longer than the
#: request timeout (2ms), so recovery exercises the timeout path too.
CHAOS_PLAN = FaultPlan(
    [
        TransientErrors(device=3, start=0.0, end=10.0, probability=0.15),
        StuckQueue(device=7, start=0.0005, end=0.012),
        DeviceFailure(device=11, at=0.002),
    ],
    seed=42,
)
CHAOS_POLICY = FaultPolicy(
    max_retries=12, retry_backoff=200e-6, request_timeout=0.002
)

#: Nothing can recover from every device failing for good.
TOTAL_LOSS_PLAN = FaultPlan(
    [DeviceFailure(device=d, at=0.0005) for d in range(15)], seed=42
)

ALGORITHMS = {
    "pr": lambda engine: pagerank(engine),
    "wcc": lambda engine: wcc(engine),
    "bfs": lambda engine: bfs(engine, default_source(engine.image)),
}


def make_engine(plan=None, policy=None):
    """A twitter-sim engine whose array carries ``plan``.

    File ids are pinned because page-cache set hashing keys on them
    (same idiom as the golden-result tests).
    """
    image = load_dataset("twitter-sim")
    SAFSFile._next_id = 0
    array = SSDArray(SSDArrayConfig(), fault_plan=plan)
    safs = SAFS(
        array,
        SAFSConfig(page_size=4096, cache_bytes=scaled_cache_bytes(1.0)),
        stats=array.stats,
        fault_policy=policy,
    )
    return GraphEngine(
        image,
        safs=safs,
        config=EngineConfig(
            mode=ExecutionMode.SEMI_EXTERNAL, num_threads=32, range_shift=8
        ),
    )


def run_chaos(app, plan=None, policy=None):
    engine = make_engine(plan, policy)
    state, result = ALGORITHMS[app](engine)
    return state, result, engine.safs.stats.snapshot()


@pytest.fixture(scope="module")
def clean_runs():
    """Fault-free reference state/result per algorithm."""
    return {app: run_chaos(app) for app in ALGORITHMS}


@pytest.mark.parametrize("app", sorted(ALGORITHMS))
def test_recoverable_faults_are_invisible_in_results(app, clean_runs):
    """Recoverable chaos must not change a single output bit."""
    clean_state, clean_result, _ = clean_runs[app]
    state, result, stats = run_chaos(app, CHAOS_PLAN, CHAOS_POLICY)
    assert np.array_equal(state, clean_state)
    assert result.iterations == clean_result.iterations
    # The chaos really happened: every fault class fired and recovered.
    assert stats["faults.transient_errors"] > 0
    assert stats["faults.retries"] > 0
    assert stats["faults.stalled_requests"] > 0
    assert stats["faults.dead_requests"] > 0


def test_dead_ssd_mid_run_completes_degraded(clean_runs):
    """Acceptance: one SSD dies mid-run, PageRank still produces correct
    ranks, with nonzero retry and timeout counters."""
    clean_ranks, clean_result, _ = clean_runs["pr"]
    ranks, result, stats = run_chaos("pr", CHAOS_PLAN, CHAOS_POLICY)
    assert np.array_equal(ranks, clean_ranks)
    assert result.iterations == clean_result.iterations
    assert stats["faults.retries"] > 0
    assert stats["faults.timeouts"] > 0
    assert stats["faults.rerouted_requests"] > 0
    assert stats["faults.rerouted_pages"] > 0
    # Simulated time moved: recovery is charged, not free.
    assert result.runtime > clean_result.runtime


def test_replay_is_bit_identical():
    """Same (seed, plan) twice → bit-equal clocks, counters and results."""
    first = run_chaos("pr", CHAOS_PLAN, CHAOS_POLICY)
    second = run_chaos("pr", CHAOS_PLAN, CHAOS_POLICY)
    assert np.array_equal(first[0], second[0])
    assert first[1].runtime == second[1].runtime
    assert first[1].cpu_busy == second[1].cpu_busy
    assert first[2] == second[2]


def test_total_device_loss_aborts_cleanly():
    """An unrecoverable plan raises IterationAborted with partial stats —
    never a wrong answer, never a hang."""
    engine = make_engine(
        TOTAL_LOSS_PLAN, FaultPolicy(max_retries=2, retry_backoff=200e-6)
    )
    with pytest.raises(IterationAborted) as excinfo:
        pagerank(engine)
    aborted = excinfo.value
    assert aborted.iteration == 0
    assert aborted.cause.reason == "dead"
    assert aborted.partial.runtime > 0.0
    assert engine.safs.stats.get("faults.aborted_iterations") == 1
    assert engine.safs.stats.get("faults.retries") > 0
    # The abort left no half-delivered messages behind.
    assert engine._messages.pending == 0


def test_scalar_and_batched_paths_agree_under_faults():
    """PR-1 invariant extended to chaos: the vectorized fast path and the
    per-vertex scalar path traverse the same fault machinery and must
    produce bit-identical simulated numbers under a nonzero plan."""
    edges, num_vertices = rmat_graph(9, edge_factor=8, seed=7)
    image = build_directed(edges, num_vertices, name="tiny")
    plan = FaultPlan(
        [
            TransientErrors(device=0, start=0.0, end=10.0, probability=0.3),
            DeviceFailure(device=2, at=0.0),
        ],
        seed=5,
    )
    policy = FaultPolicy(max_retries=8, retry_backoff=200e-6)

    def run(batched):
        SAFSFile._next_id = 0
        # One-page stripes over four devices so the tiny graph's few
        # pages actually land on the faulty devices.
        array = SSDArray(
            SSDArrayConfig(num_ssds=4, stripe_pages=1), fault_plan=plan
        )
        # A 4-page cache keeps the tiny graph missing every iteration,
        # so the fault windows see a steady stream of device reads.
        safs = SAFS(
            array,
            SAFSConfig(page_size=4096, cache_bytes=1 << 14),
            stats=array.stats,
            fault_policy=policy,
        )
        engine = GraphEngine(
            image,
            safs=safs,
            config=EngineConfig(mode=ExecutionMode.SEMI_EXTERNAL, num_threads=4),
        )
        program = PageRankProgram(image.num_vertices)
        if not batched:
            program.run_batch = None
            program.run_on_vertices = None
            program.run_on_messages = None
        result = engine.run(program, max_iterations=10)
        faults = {
            k: v
            for k, v in engine.safs.stats.snapshot().items()
            if k.startswith("faults.")
        }
        return program.rank + program.pending, result, faults

    fast_state, fast_result, fast_faults = run(batched=True)
    ref_state, ref_result, ref_faults = run(batched=False)
    assert np.array_equal(fast_state, ref_state)
    assert fast_result.runtime == ref_result.runtime
    assert fast_result.cpu_busy == ref_result.cpu_busy
    assert fast_result.bytes_read == ref_result.bytes_read
    assert fast_result.iterations == ref_result.iterations
    assert fast_faults == ref_faults
    assert fast_faults["faults.transient_errors"] > 0
    assert fast_faults["faults.rerouted_requests"] > 0
