"""Format v1 vs v2 through the live engine.

The compressed format may change only what moves over the simulated SSDs:
algorithm state must be bit-identical between formats, bytes_read must
drop, and the decode counters must appear in v2 runs only — a v1 run's
counter stream stays exactly the legacy stream.
"""

import numpy as np
import pytest

from repro.algorithms.pagerank import PageRankProgram
from repro.algorithms.wcc import WCCProgram
from repro.core.config import EngineConfig, ExecutionMode
from repro.core.engine import GraphEngine
from repro.graph.builder import build_directed
from repro.graph.format import FORMAT_V1, FORMAT_V2
from repro.graph.generators import rmat_graph
from repro.obs import registry as reg
from repro.safs.page import SAFSFile

SCALE = 9


def _image(fmt):
    edges, num_vertices = rmat_graph(SCALE, edge_factor=8, seed=7)
    return build_directed(edges, num_vertices, name="tiny", fmt=fmt)


def _make_program(name, image):
    if name == "pr":
        return PageRankProgram(image.num_vertices)
    return WCCProgram(image.num_vertices)


def _state_of(name, program):
    if name == "pr":
        return program.rank + program.pending
    return program.component


def _run(name, fmt, batched=True):
    SAFSFile._next_id = 0
    image = _image(fmt)
    engine = GraphEngine(
        image,
        config=EngineConfig(mode=ExecutionMode.SEMI_EXTERNAL, num_threads=4),
    )
    program = _make_program(name, image)
    if not batched:
        program.run_batch = None
        program.run_on_vertices = None
        program.run_on_messages = None
    result = engine.run(program, max_iterations=8)
    return result, program


@pytest.mark.parametrize("name", ["pr", "wcc"])
def test_v2_identical_results_fewer_bytes(name):
    v1_result, v1_program = _run(name, FORMAT_V1)
    v2_result, v2_program = _run(name, FORMAT_V2)
    assert np.array_equal(_state_of(name, v1_program), _state_of(name, v2_program))
    assert v1_result.iterations == v2_result.iterations
    assert v2_result.bytes_read < v1_result.bytes_read
    assert v2_result.cache_hit_rate >= v1_result.cache_hit_rate


@pytest.mark.parametrize("name", ["pr", "wcc"])
def test_decode_counters_only_under_v2(name):
    v1_result, _ = _run(name, FORMAT_V1)
    v2_result, _ = _run(name, FORMAT_V2)
    assert reg.GRAPH_DECODE_BYTES not in v1_result.counters
    assert reg.GRAPH_COMPRESSION_RATIO not in v1_result.counters
    assert v2_result.counters[reg.GRAPH_DECODE_BYTES] > 0
    assert v2_result.counters[reg.GRAPH_COMPRESSION_RATIO] > 1.0


@pytest.mark.parametrize("name", ["pr", "wcc"])
def test_v2_scalar_equals_batched(name):
    # The batched delivery replays charges (send, run, decode) in the
    # scalar order, so stripping the batch hooks must not move a clock.
    batched_result, batched_program = _run(name, FORMAT_V2, batched=True)
    scalar_result, scalar_program = _run(name, FORMAT_V2, batched=False)
    assert np.array_equal(
        _state_of(name, batched_program), _state_of(name, scalar_program)
    )
    assert batched_result.runtime == scalar_result.runtime
    assert batched_result.bytes_read == scalar_result.bytes_read
    assert (
        batched_result.counters[reg.GRAPH_DECODE_BYTES]
        == scalar_result.counters[reg.GRAPH_DECODE_BYTES]
    )


def test_decode_bytes_equal_compressed_file_bytes_delivered():
    # In PageRank's first iteration every vertex with out-edges requests
    # its own edge list exactly once, so the decoded bytes of a
    # one-iteration run equal the compressed file minus the header-only
    # lists of degree-0 vertices.
    SAFSFile._next_id = 0
    image = _image(FORMAT_V2)
    engine = GraphEngine(
        image,
        config=EngineConfig(mode=ExecutionMode.SEMI_EXTERNAL, num_threads=4),
    )
    result = engine.run(PageRankProgram(image.num_vertices), max_iterations=1)
    degrees = image.out_csr.degrees()
    skipped_headers = 8 * int(np.count_nonzero(degrees == 0))
    assert (
        result.counters[reg.GRAPH_DECODE_BYTES]
        == len(image.out_bytes) - skipped_headers
    )


def test_format_mismatch_on_attach_rejected():
    # Attaching a v2 image to a SAFS that already holds the same file
    # names in v1 layout must fail fast, not decode garbage.
    SAFSFile._next_id = 0
    v1_image = _image(FORMAT_V1)
    engine = GraphEngine(
        v1_image,
        config=EngineConfig(mode=ExecutionMode.SEMI_EXTERNAL, num_threads=4),
    )
    engine.run(_make_program("wcc", v1_image), max_iterations=1)
    v2_image = _image(FORMAT_V2)
    clash = GraphEngine(
        v2_image,
        safs=engine.safs,
        config=EngineConfig(mode=ExecutionMode.SEMI_EXTERNAL, num_threads=4),
    )
    with pytest.raises(ValueError, match="format"):
        clash.run(_make_program("wcc", v2_image), max_iterations=1)
