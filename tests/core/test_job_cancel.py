"""``EngineJob.cancel``: a clean external stop at an iteration barrier.

The serving layer's deadline enforcement cancels running jobs between
``step`` calls; the contract is that a cancel looks exactly like an I/O
abort from above (an :class:`IterationAborted` with a partial result)
without being *counted* as a fault, and leaves the engine reusable.
"""

import pytest

from repro.algorithms.pagerank import PageRankProgram
from repro.bench.datasets import load_dataset
from repro.bench.harness import make_engine
from repro.core.engine import IterationAborted, JobCancelled
from repro.obs import registry as reg
from repro.safs.page import SAFSFile


def fresh_engine():
    image = load_dataset("twitter-sim")
    SAFSFile._next_id = 0
    engine = make_engine(
        image, cache_bytes=1 << 20, num_threads=32, range_shift=8
    )
    return engine, image


class TestJobCancel:
    def test_cancel_returns_partial_result_like_an_io_abort(self):
        engine, image = fresh_engine()
        job = engine.start_job(
            PageRankProgram(image.num_vertices), max_iterations=10
        )
        assert job.step() and job.step()
        before = engine.stats.get(reg.FAULTS_ABORTED_ITERATIONS)
        aborted = job.cancel("deadline unreachable")
        assert isinstance(aborted, IterationAborted)
        assert isinstance(aborted.cause, JobCancelled)
        assert aborted.cause.reason == "deadline unreachable"
        assert aborted.cause.time == pytest.approx(job.clock)
        # Partial progress up to the barrier is reported.
        assert aborted.partial.iterations == 2
        assert aborted.partial.runtime > 0.0
        assert aborted.partial.cpu_busy > 0.0
        assert job.done
        # A cancel is a policy decision, not a fault: the fault counter
        # must not move (unlike a real unrecoverable-I/O abort).
        assert engine.stats.get(reg.FAULTS_ABORTED_ITERATIONS) == before

    def test_cancel_finished_job_is_an_error(self):
        engine, image = fresh_engine()
        job = engine.start_job(
            PageRankProgram(image.num_vertices), max_iterations=2
        )
        while job.step():
            pass
        with pytest.raises(RuntimeError, match="finished"):
            job.cancel("too late")

    def test_cancelled_engine_stays_reusable(self):
        engine, image = fresh_engine()
        job = engine.start_job(
            PageRankProgram(image.num_vertices), max_iterations=10
        )
        job.step()
        job.cancel("make room")
        engine.safs.reset_timing()
        result = engine.run(
            PageRankProgram(image.num_vertices), max_iterations=3
        )
        assert result.iterations == 3

    def test_frontier_size_tracks_the_barrier(self):
        engine, image = fresh_engine()
        job = engine.start_job(
            PageRankProgram(image.num_vertices), max_iterations=5
        )
        # Before the first step the frontier is the full vertex set.
        assert job.frontier_size == image.num_vertices
        job.step()
        assert job.frontier_size > 0
