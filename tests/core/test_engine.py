"""Integration tests for the graph engine itself.

Algorithm *results* are validated in ``tests/algorithms``; here we test
engine mechanics: determinism, modes, merging disciplines, load balancing,
vertical partitioning, accounting, and the message/activation plumbing.
"""

import numpy as np
import pytest

from repro.core.config import EngineConfig, ExecutionMode, ScheduleOrder
from repro.core.engine import GraphEngine
from repro.core.vertex_program import VertexProgram
from repro.graph.builder import build_directed
from repro.graph.types import EdgeType
from repro.algorithms.bfs import BFSProgram, bfs
from repro.algorithms.pagerank import pagerank
from repro.algorithms.triangle_count import triangle_count
from repro.algorithms.wcc import wcc

from tests.conftest import engine_for


class CountingProgram(VertexProgram):
    """Counts entry-point invocations; requests nothing."""

    combiner = "sum"

    def __init__(self):
        self.runs = 0
        self.messages = 0

    def run(self, g, vertex):
        self.runs += 1

    def run_on_message(self, g, vertex, value):
        self.messages += 1


class EchoProgram(VertexProgram):
    """Requests its own list and records what arrives."""

    edge_type = EdgeType.OUT
    combiner = None

    def __init__(self, n):
        self.seen = {}

    def run(self, g, vertex):
        g.request_self(vertex)

    def run_on_vertex(self, g, vertex, page_vertex):
        assert page_vertex.vertex_id == vertex
        self.seen[vertex] = page_vertex.read_edges().tolist()


@pytest.fixture(scope="module")
def chain_image():
    # 0 -> 1 -> 2 -> ... -> 19
    edges = np.stack([np.arange(19), np.arange(1, 20)], axis=1)
    return build_directed(edges, 20, name="chain")


class TestBasics:
    def test_every_active_vertex_runs_once(self, er_image):
        engine = engine_for(er_image)
        program = CountingProgram()
        result = engine.run(program, max_iterations=1)
        assert program.runs == er_image.num_vertices
        assert result.iterations == 1

    def test_initial_active_subset(self, er_image):
        engine = engine_for(er_image)
        program = CountingProgram()
        engine.run(program, initial_active=np.array([3, 7, 3]), max_iterations=1)
        assert program.runs == 2  # duplicates collapse

    def test_terminates_with_no_activity(self, er_image):
        engine = engine_for(er_image)
        result = engine.run(CountingProgram(), initial_active=np.array([0]))
        assert result.iterations == 1

    def test_edge_lists_delivered_correctly(self, chain_image):
        engine = engine_for(chain_image)
        program = EchoProgram(20)
        engine.run(program, max_iterations=1)
        for v in range(19):
            assert program.seen[v] == [v + 1]
        assert program.seen[19] == []

    def test_in_memory_delivers_same_content(self, chain_image):
        engine = engine_for(chain_image, mode=ExecutionMode.IN_MEMORY)
        program = EchoProgram(20)
        engine.run(program, max_iterations=1)
        assert program.seen[5] == [6]


class TestDeterminism:
    def test_same_config_same_virtual_time(self, rmat_image):
        results = [bfs(engine_for(rmat_image), source=0)[1] for _ in range(2)]
        assert results[0].runtime == results[1].runtime
        assert results[0].counters == results[1].counters

    def test_levels_identical_across_modes(self, rmat_image):
        sem_levels, _ = bfs(engine_for(rmat_image), source=0)
        mem_levels, _ = bfs(
            engine_for(rmat_image, mode=ExecutionMode.IN_MEMORY), source=0
        )
        assert np.array_equal(sem_levels, mem_levels)

    def test_thread_count_does_not_change_results(self, rmat_image):
        a, _ = bfs(engine_for(rmat_image, num_threads=2), source=0)
        b, _ = bfs(engine_for(rmat_image, num_threads=16), source=0)
        assert np.array_equal(a, b)


class TestModesAndCosts:
    def test_in_memory_faster_than_semi_external(self, rmat_image):
        _, sem = bfs(engine_for(rmat_image), source=0)
        _, mem = bfs(engine_for(rmat_image, mode=ExecutionMode.IN_MEMORY), source=0)
        assert mem.runtime < sem.runtime
        assert mem.bytes_read == 0
        assert sem.bytes_read > 0

    def test_bigger_cache_not_slower(self, rmat_image):
        from repro.safs.filesystem import SAFS, SAFSConfig

        def run_with_cache(kib):
            safs = SAFS(config=SAFSConfig(cache_bytes=kib * 1024))
            engine = GraphEngine(
                rmat_image,
                safs=safs,
                config=EngineConfig(num_threads=4, range_shift=5),
            )
            _, result = wcc(engine)
            return result

        small = run_with_cache(64)
        large = run_with_cache(16 * 1024)
        assert large.runtime <= small.runtime
        assert large.cache_hit_rate >= small.cache_hit_rate

    def test_merging_reduces_io_requests(self, rmat_image):
        _, merged = wcc(engine_for(rmat_image, merge_in_engine=True))
        _, unmerged = wcc(
            engine_for(rmat_image, merge_in_engine=False, merge_in_fs=False)
        )
        assert merged.counters.get("io.dispatched") < unmerged.counters.get(
            "io.dispatched"
        )
        assert merged.runtime < unmerged.runtime

    def test_fs_merge_between_engine_merge_and_none(self, rmat_image):
        _, eng = wcc(engine_for(rmat_image, merge_in_engine=True))
        _, fsm = wcc(engine_for(rmat_image, merge_in_engine=False, merge_in_fs=True))
        _, raw = wcc(engine_for(rmat_image, merge_in_engine=False, merge_in_fs=False))
        assert eng.runtime <= fsm.runtime <= raw.runtime

    def test_random_order_slower_than_by_id(self, rmat_image):
        # The merge window is one batch of running vertices (§3.7): with
        # small batches and a small cache, random execution order scatters
        # each window over the ID space and little merging survives.
        knobs = dict(max_running_vertices=32, cache_kib=16)
        _, ordered = wcc(engine_for(rmat_image, **knobs))
        _, scrambled = wcc(
            engine_for(rmat_image, schedule_order=ScheduleOrder.RANDOM, **knobs)
        )
        assert ordered.runtime < scrambled.runtime
        # Scattered windows destroy page reuse: more device reads, fewer hits.
        assert ordered.counters.get("io.pages_fetched") < scrambled.counters.get(
            "io.pages_fetched"
        )
        assert ordered.cache_hit_rate > scrambled.cache_hit_rate


class TestLoadBalancing:
    def test_stealing_happens_on_skewed_partitions(self, rmat_image):
        # range_shift large enough that one thread owns nearly everything.
        _, result = pagerank(
            engine_for(
                rmat_image,
                num_threads=4,
                range_shift=9,
                load_balance=True,
                max_running_vertices=64,
            ),
            max_iterations=3,
        )
        assert result.counters.get("engine.stolen_vertices", 0) > 0

    def test_stealing_disabled(self, rmat_image):
        _, result = pagerank(
            engine_for(
                rmat_image,
                num_threads=4,
                range_shift=9,
                load_balance=False,
                max_running_vertices=64,
            ),
            max_iterations=3,
        )
        assert result.counters.get("engine.stolen_vertices", 0) == 0

    def test_stealing_not_slower(self, rmat_image):
        _, balanced = pagerank(
            engine_for(
                rmat_image,
                num_threads=4,
                range_shift=9,
                load_balance=True,
                max_running_vertices=64,
            ),
            max_iterations=3,
        )
        _, unbalanced = pagerank(
            engine_for(
                rmat_image,
                num_threads=4,
                range_shift=9,
                load_balance=False,
                max_running_vertices=64,
            ),
            max_iterations=3,
        )
        assert balanced.runtime <= unbalanced.runtime


class TestVerticalPartitioning:
    def test_parts_created_and_results_unchanged(self, rmat_image):
        plain, _ = triangle_count(engine_for(rmat_image))
        split, result = triangle_count(
            engine_for(
                rmat_image, vertical_part_threshold=32, vertical_part_size=16
            )
        )
        assert np.array_equal(plain, split)
        assert result.counters.get("engine.vertex_parts", 0) > 0


class TestAccounting:
    def test_result_fields_sane(self, rmat_image):
        _, result = bfs(engine_for(rmat_image), source=0)
        assert result.runtime > 0
        assert 0 < result.cpu_utilization <= 1.0
        assert 0 <= result.io_utilization <= 1.0
        assert 0 <= result.cache_hit_rate <= 1.0
        assert result.cpu_busy > 0
        assert result.memory_bytes > 0
        assert result.memory["graph_index"] == rmat_image.index_memory_bytes()

    def test_in_memory_memory_includes_edges(self, rmat_image):
        _, result = bfs(engine_for(rmat_image, mode=ExecutionMode.IN_MEMORY), source=0)
        assert result.memory["edge_lists"] > 0
        assert result.memory["page_cache"] == 0

    def test_init_time_positive(self, rmat_image):
        engine = engine_for(rmat_image)
        assert engine.simulate_init_time() > 0

    def test_bytes_read_at_most_once_with_huge_cache(self, chain_image):
        from repro.safs.filesystem import SAFS, SAFSConfig

        safs = SAFS(config=SAFSConfig(cache_bytes=1 << 24))
        engine = GraphEngine(
            chain_image, safs=safs, config=EngineConfig(num_threads=2, range_shift=3)
        )
        _, result = bfs(engine, source=0)
        # With a cache bigger than the file, each page is fetched at most once.
        file_bytes = len(chain_image.out_bytes)
        assert result.bytes_read <= max(4096, 2 * file_bytes)
