"""Sync/async execution equivalence, determinism, and checkpointing.

The execution-policy contract under test (``docs/execution_modes.md``):

- async PageRank/WCC/SSSP converge to the sync fixpoint — exactly for
  the monotone algorithms (WCC labels, SSSP distances), within the
  pending-mass tolerance for PageRank — across random graphs, seeds,
  staleness bounds and selectivities (hypothesis properties);
- the async mode is deterministic: the same graph + config yields
  bit-identical counter streams and simulated clocks, run after run;
- async engine state (residuals, deferral counters) round-trips through
  checkpoint/resume with bit-identical continuation;
- checkpoints never cross policies: a sync checkpoint cannot seed an
  async run or vice versa;
- programs without a ``residuals`` hook are rejected up front.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.bfs import BFSProgram
from repro.algorithms.pagerank import PageRankProgram
from repro.algorithms.sssp import SSSPProgram
from repro.algorithms.wcc import WCCProgram
from repro.bench.datasets import load_dataset, scaled_cache_bytes
from repro.core.checkpoint import CheckpointError, CheckpointManager
from repro.core.config import EngineConfig, ExecutionKind, ExecutionMode
from repro.core.engine import GraphEngine
from repro.graph.builder import build_directed
from repro.graph.generators import erdos_renyi_graph
from repro.obs import registry as reg
from repro.safs.filesystem import SAFS, SAFSConfig
from repro.safs.page import SAFSFile

#: Generous async round cap — convergence must come from quiescence.
ROUND_CAP = 3000


def _mem_engine(image, execution, **overrides):
    """A fast in-memory engine (the policies are mode-agnostic)."""
    config = EngineConfig(
        mode=ExecutionMode.IN_MEMORY,
        num_threads=4,
        range_shift=5,
        execution=execution,
        **overrides,
    )
    return GraphEngine(image, config=config)


def _sem_engine(execution, **overrides):
    """A twitter-sim semi-external engine (file ids pinned: page-cache
    set hashing keys on them)."""
    image = load_dataset("twitter-sim")
    SAFSFile._next_id = 0
    safs = SAFS(config=SAFSConfig(cache_bytes=scaled_cache_bytes(1.0)))
    config = EngineConfig(
        mode=ExecutionMode.SEMI_EXTERNAL,
        num_threads=32,
        range_shift=8,
        execution=execution,
        **overrides,
    )
    return GraphEngine(image, safs=safs, config=config)


def _random_image(seed, n, density):
    edges, n = erdos_renyi_graph(n, int(n * density), seed=seed)
    return build_directed(edges, n, name=f"er-{seed}")


_async_knobs = dict(
    seed=st.integers(0, 2**16),
    n=st.integers(30, 120),
    density=st.floats(1.0, 6.0),
    staleness=st.integers(1, 8),
    selectivity=st.floats(0.1, 1.0),
)


class TestAsyncConvergesToSyncFixpoint:
    @settings(max_examples=12, deadline=None)
    @given(**_async_knobs)
    def test_pagerank(self, seed, n, density, staleness, selectivity):
        image = _random_image(seed, n, density)
        sync_prog = PageRankProgram(image.num_vertices)
        _mem_engine(image, ExecutionKind.SYNC).run(sync_prog, max_iterations=None)
        async_prog = PageRankProgram(image.num_vertices)
        _mem_engine(
            image,
            ExecutionKind.ASYNC,
            async_staleness=staleness,
            async_selectivity=selectivity,
        ).run(async_prog, max_iterations=ROUND_CAP)
        # Both quiesce with per-vertex pending at or below the floor, so
        # the rank vectors sit within that mass of the common fixpoint.
        assert np.allclose(
            sync_prog.rank + sync_prog.pending,
            async_prog.rank + async_prog.pending,
            rtol=1e-4,
            atol=1e-4,
        )
        assert np.all(np.abs(async_prog.pending) <= async_prog.async_floor)

    @settings(max_examples=12, deadline=None)
    @given(**_async_knobs)
    def test_wcc(self, seed, n, density, staleness, selectivity):
        image = _random_image(seed, n, density)
        sync_prog = WCCProgram(image.num_vertices)
        _mem_engine(image, ExecutionKind.SYNC).run(sync_prog)
        async_prog = WCCProgram(image.num_vertices)
        _mem_engine(
            image,
            ExecutionKind.ASYNC,
            async_staleness=staleness,
            async_selectivity=selectivity,
        ).run(async_prog, max_iterations=ROUND_CAP)
        assert np.array_equal(sync_prog.component, async_prog.component)

    @settings(max_examples=12, deadline=None)
    @given(**_async_knobs)
    def test_sssp(self, seed, n, density, staleness, selectivity):
        edges, n = erdos_renyi_graph(n, int(n * density), seed=seed)
        rng = np.random.default_rng(seed + 1)
        image = build_directed(
            edges, n, name=f"er-w-{seed}",
            weights=rng.uniform(1.0, 10.0, edges.shape[0]),
        )
        source = int(np.argmax(image.out_csr.degrees()))
        sync_prog = SSSPProgram(n, source)
        _mem_engine(image, ExecutionKind.SYNC).run(
            sync_prog, initial_active=np.asarray([source])
        )
        async_prog = SSSPProgram(n, source)
        _mem_engine(
            image,
            ExecutionKind.ASYNC,
            async_staleness=staleness,
            async_selectivity=selectivity,
        ).run(async_prog, initial_active=np.asarray([source]),
              max_iterations=ROUND_CAP)
        # Each path's length is summed source-to-vertex regardless of
        # relaxation order, so the min over paths matches exactly.
        assert np.array_equal(sync_prog.dist, async_prog.dist)


class TestAsyncDeterminism:
    def _async_pr_run(self):
        engine = _sem_engine(ExecutionKind.ASYNC)
        program = PageRankProgram(engine.image.num_vertices)
        result = engine.run(program, max_iterations=ROUND_CAP)
        return (
            program.rank + program.pending,
            result,
            engine.safs.stats.snapshot(),
        )

    def test_same_config_gives_bit_identical_counter_streams(self):
        ranks_a, result_a, counters_a = self._async_pr_run()
        ranks_b, result_b, counters_b = self._async_pr_run()
        assert np.array_equal(ranks_a, ranks_b)
        assert counters_a == counters_b
        assert result_a.runtime == result_b.runtime
        assert result_a.iterations == result_b.iterations
        assert counters_a[reg.ENGINE_ASYNC_ROUNDS] == result_a.iterations
        assert counters_a[reg.ENGINE_PRIORITY_UPDATES] > 0
        assert counters_a[reg.ENGINE_EAGER_FLUSHES] > 0

    def test_sync_runs_never_touch_async_counters(self):
        engine = _sem_engine(ExecutionKind.SYNC)
        engine.run(
            PageRankProgram(engine.image.num_vertices), max_iterations=5
        )
        counters = engine.safs.stats.snapshot()
        assert counters.get(reg.ENGINE_ASYNC_ROUNDS, 0) == 0
        assert counters.get(reg.ENGINE_PRIORITY_UPDATES, 0) == 0
        assert counters.get(reg.ENGINE_EAGER_FLUSHES, 0) == 0


class TestAsyncCheckpointResume:
    CAP = 8  # rounds; keeps the every-boundary matrix cheap

    def _run(self, manager=None, resume=None):
        engine = _sem_engine(ExecutionKind.ASYNC)
        if manager is not None:
            engine.enable_checkpoints(manager, every=1)
        if resume is not None:
            engine.resume_from(resume)
        program = PageRankProgram(engine.image.num_vertices)
        result = engine.run(program, max_iterations=self.CAP)
        return (
            program.rank + program.pending,
            result,
            engine.safs.stats.snapshot(),
        )

    def test_resume_from_every_boundary_is_bit_identical(self, tmp_path):
        golden_state, golden_result, golden_counters = self._run()
        manager = CheckpointManager(tmp_path)
        armed_state, armed_result, armed_counters = self._run(manager=manager)
        # Arming is free in async mode too.
        assert np.array_equal(golden_state, armed_state)
        assert armed_counters == golden_counters
        assert armed_result.runtime == golden_result.runtime
        boundaries = manager.iterations()
        assert boundaries, "the async run must have saved checkpoints"
        for boundary in boundaries[:-1]:
            state, result, counters = self._run(resume=manager.load(boundary))
            assert np.array_equal(state, golden_state), boundary
            assert counters == golden_counters, boundary
            assert result.runtime == golden_result.runtime, boundary
            assert result.iterations == golden_result.iterations, boundary

    def test_async_checkpoint_carries_execution_state(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        self._run(manager=manager)
        state = manager.load(1)
        assert state["engine"]["execution"] == "async"
        execution = state["execution"]
        assert execution["policy"] == "async"
        assert execution["residual"].shape == (8192,)
        assert execution["deferred"].shape == (8192,)

    def test_sync_checkpoint_rejected_by_async_engine(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        sync_engine = _sem_engine(ExecutionKind.SYNC)
        sync_engine.enable_checkpoints(manager, every=1)
        sync_engine.run(
            PageRankProgram(sync_engine.image.num_vertices), max_iterations=3
        )
        # Sync checkpoints keep the pre-policy shape: no execution state.
        assert "execution" not in manager.load(1)
        engine = _sem_engine(ExecutionKind.ASYNC)
        engine.resume_from(manager.load(1))
        with pytest.raises(CheckpointError, match="execution"):
            engine.run(
                PageRankProgram(engine.image.num_vertices),
                max_iterations=self.CAP,
            )

    def test_async_checkpoint_rejected_by_sync_engine(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        self._run(manager=manager)
        engine = _sem_engine(ExecutionKind.SYNC)
        engine.resume_from(manager.load(1))
        with pytest.raises(CheckpointError, match="execution"):
            engine.run(
                PageRankProgram(engine.image.num_vertices),
                max_iterations=self.CAP,
            )


class TestAsyncValidation:
    def test_program_without_residuals_rejected(self):
        engine = _sem_engine(ExecutionKind.ASYNC)
        program = BFSProgram(engine.image.num_vertices)
        with pytest.raises(ValueError, match="residuals"):
            engine.run(program, initial_active=np.asarray([0]))
