"""Property-based tests on engine invariants over random graphs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ExecutionMode
from repro.core.vertex_program import VertexProgram
from repro.graph.builder import build_directed
from repro.graph.types import EdgeType

from tests.conftest import engine_for


class DeliveryAudit(VertexProgram):
    """Requests every active vertex's own list and audits deliveries."""

    edge_type = EdgeType.OUT
    combiner = None

    def __init__(self):
        self.delivered = {}

    def run(self, g, vertex):
        g.request_self(vertex)

    def run_on_vertex(self, g, vertex, page_vertex):
        assert page_vertex.vertex_id == vertex
        self.delivered[vertex] = self.delivered.get(vertex, 0) + 1


class MassConservation(VertexProgram):
    """Sends unit mass along every edge; receivers accumulate."""

    edge_type = EdgeType.OUT
    combiner = "sum"

    def __init__(self, n):
        self.received = np.zeros(n)
        self.sent = 0

    def run(self, g, vertex):
        g.request_self(vertex)

    def run_on_vertex(self, g, vertex, page_vertex):
        edges = page_vertex.read_edges()
        if edges.size:
            self.sent += int(edges.size)
            g.send_message(edges, 1.0)

    def run_on_message(self, g, vertex, value):
        self.received[vertex] += value


@st.composite
def random_images(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=2, max_value=80))
    rng = np.random.default_rng(seed)
    m = int(draw(st.integers(min_value=0, max_value=4)) * n)
    edges = rng.integers(0, n, size=(m, 2), dtype=np.int64)
    return build_directed(edges, n, name=f"prop-{seed}-{n}-{m}")


class TestEngineInvariants:
    @given(image=random_images())
    @settings(max_examples=25, deadline=None)
    def test_every_request_delivered_exactly_once(self, image):
        for mode in ExecutionMode:
            engine = engine_for(image, mode=mode, num_threads=2, range_shift=3)
            program = DeliveryAudit()
            engine.run(program, max_iterations=1)
            assert set(program.delivered) == set(range(image.num_vertices))
            assert all(count == 1 for count in program.delivered.values())

    @given(image=random_images())
    @settings(max_examples=25, deadline=None)
    def test_message_mass_conserved(self, image):
        engine = engine_for(image, num_threads=2, range_shift=3)
        program = MassConservation(image.num_vertices)
        engine.run(program, max_iterations=2)
        assert program.received.sum() == pytest.approx(program.sent)
        # Each vertex receives exactly its in-degree.
        in_degrees = image.in_csr.degrees()
        assert np.array_equal(program.received.astype(np.int64), in_degrees)

    @given(
        image=random_images(),
        threads=st.sampled_from([1, 3, 8]),
    )
    @settings(max_examples=20, deadline=None)
    def test_results_independent_of_thread_count(self, image, threads):
        from repro.algorithms.wcc import wcc

        base, _ = wcc(engine_for(image, num_threads=2, range_shift=3))
        other, _ = wcc(engine_for(image, num_threads=threads, range_shift=3))
        assert np.array_equal(base, other)

    @given(image=random_images())
    @settings(max_examples=15, deadline=None)
    def test_virtual_time_deterministic(self, image):
        from repro.algorithms.bfs import bfs

        results = [
            bfs(engine_for(image, num_threads=4, range_shift=3), source=0)[1]
            for _ in range(2)
        ]
        assert results[0].runtime == results[1].runtime
        assert results[0].cpu_busy == results[1].cpu_busy

    @given(image=random_images())
    @settings(max_examples=15, deadline=None)
    def test_busy_never_exceeds_elapsed_capacity(self, image):
        from repro.algorithms.pagerank import pagerank

        engine = engine_for(image, num_threads=4, range_shift=3)
        _, result = pagerank(engine, max_iterations=5)
        # Total busy time cannot exceed wall time times worker count.
        assert result.cpu_busy <= result.runtime * engine.config.num_threads + 1e-12
