"""Tests for the range-vs-hash partitioning strategies (§3.8)."""

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.wcc import wcc
from repro.core.config import PartitionStrategy
from repro.core.partition import HashPartitioner, RangePartitioner

from tests.conftest import engine_for


class TestHashPartitioner:
    def test_is_a_partition(self):
        p = HashPartitioner(num_partitions=5)
        ids = np.arange(500)
        groups = p.split(ids)
        assert sum(len(g) for g in groups) == 500
        for part_id, group in enumerate(groups):
            assert all(p.partition_of(int(v)) == part_id for v in group)

    def test_scatters_consecutive_ids(self):
        p = HashPartitioner(num_partitions=8)
        owners = p.partition_many(np.arange(64))
        # Consecutive IDs land on many different partitions.
        assert len(set(owners.tolist())) == 8

    def test_range_keeps_consecutive_ids_together(self):
        p = RangePartitioner(num_partitions=8, range_shift=5)
        owners = p.partition_many(np.arange(32))
        assert len(set(owners.tolist())) == 1

    def test_vectorised_matches_scalar(self):
        p = HashPartitioner(num_partitions=7)
        ids = np.arange(100)
        vec = p.partition_many(ids)
        assert all(vec[i] == p.partition_of(i) for i in range(100))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HashPartitioner(4).partition_of(-1)

    def test_roughly_balanced(self):
        p = HashPartitioner(num_partitions=4)
        counts = np.bincount(p.partition_many(np.arange(10_000)), minlength=4)
        assert counts.min() > 0.8 * counts.mean()


class TestEngineWithHashPartitioning:
    def test_results_identical(self, rmat_image):
        by_range, _ = bfs(engine_for(rmat_image), source=0)
        by_hash, _ = bfs(
            engine_for(rmat_image, partition_strategy=PartitionStrategy.HASH),
            source=0,
        )
        assert np.array_equal(by_range, by_hash)

    @pytest.fixture(scope="class")
    def big_image(self):
        # The file must be many pages wide for partition locality to
        # matter at all (the session fixture's file is ~5 pages).
        from repro.graph.builder import build_directed
        from repro.graph.generators import rmat_graph

        edges, n = rmat_graph(scale=13, edge_factor=16, seed=3)
        return build_directed(edges, n, name="partition-big")

    def test_range_partitioning_is_more_io_efficient(self, big_image):
        # §3.8: range partitioning keeps each thread's edge lists in one
        # region of the file, so a thread's working set stays small and
        # cached; hashing makes every thread touch the whole file and
        # re-fetch what other threads' pages evicted.
        knobs = dict(
            cache_kib=64, max_running_vertices=256, range_shift=6, num_threads=4
        )
        _, ranged = wcc(engine_for(big_image, **knobs))
        _, hashed = wcc(
            engine_for(
                big_image, partition_strategy=PartitionStrategy.HASH, **knobs
            )
        )
        assert ranged.counters.get("io.pages_fetched") < hashed.counters.get(
            "io.pages_fetched"
        )
        assert ranged.runtime < hashed.runtime

    def test_request_size_histogram_recorded(self, big_image):
        knobs = dict(cache_kib=64, max_running_vertices=256, range_shift=6,
                     num_threads=4)
        _, result = wcc(engine_for(big_image, **knobs))
        sizes = sum(
            result.counters.get(f"io.size_{bucket}", 0)
            for bucket in ("1_page", "2_8_pages", "9_64_pages", "65plus_pages")
        )
        # Every dispatched request lands in exactly one size bucket.
        assert sizes == result.counters.get("io.dispatched")
        # §3.6: request sizes span one page up to large merged spans.
        assert result.counters.get("io.size_1_page", 0) > 0
        assert result.counters.get("io.size_2_8_pages", 0) > 0
