"""Failure injection and degenerate inputs across the whole stack."""

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.pagerank import pagerank
from repro.algorithms.triangle_count import triangle_count
from repro.algorithms.wcc import wcc
from repro.core.config import EngineConfig, ExecutionMode
from repro.core.engine import GraphEngine
from repro.graph.builder import build_directed, build_undirected
from repro.safs.filesystem import SAFS, SAFSConfig
from repro.sim.ssd_array import SSDArray, SSDArrayConfig

from tests.conftest import engine_for


class TestDegenerateGraphs:
    def test_empty_graph(self):
        image = build_directed(np.zeros((0, 2), dtype=np.int64), 3, name="empty")
        levels, result = bfs(engine_for(image, range_shift=1), source=0)
        assert levels.tolist() == [0, -1, -1]
        assert result.iterations == 1

    def test_single_vertex(self):
        image = build_directed(np.zeros((0, 2), dtype=np.int64), 1, name="one")
        levels, _ = bfs(engine_for(image, range_shift=0), source=0)
        assert levels.tolist() == [0]

    def test_single_self_loop(self):
        image = build_directed(np.array([[0, 0]]), 1, name="loop")
        levels, _ = bfs(engine_for(image, range_shift=0), source=0)
        assert levels.tolist() == [0]
        counts, _ = triangle_count(engine_for(image, range_shift=0))
        assert counts.tolist() == [0]

    def test_all_isolated_vertices(self):
        image = build_directed(np.zeros((0, 2), dtype=np.int64), 50, name="iso50")
        labels, _ = wcc(engine_for(image, range_shift=2))
        assert labels.tolist() == list(range(50))

    def test_two_vertex_cycle(self):
        image = build_directed(np.array([[0, 1], [1, 0]]), 2, name="cycle2")
        ranks, _ = pagerank(engine_for(image, range_shift=0), max_iterations=50)
        # Symmetric graph: both vertices converge to the same rank.
        assert ranks[0] == pytest.approx(ranks[1], rel=1e-3)

    def test_star_from_hub(self):
        edges = np.array([[0, i] for i in range(1, 100)])
        image = build_directed(edges, 100, name="star100")
        levels, result = bfs(engine_for(image, range_shift=3), source=0)
        assert (levels[1:] == 1).all()
        assert result.iterations == 2


class TestLargeEdgeLists:
    def test_edge_list_spanning_many_pages(self):
        # One vertex with 10K neighbors: its edge list covers ~10 pages.
        n = 10_001
        edges = np.stack(
            [np.zeros(n - 1, dtype=np.int64), np.arange(1, n, dtype=np.int64)],
            axis=1,
        )
        image = build_directed(edges, n, name="jumbo")
        assert image.out_index.edge_list_size(0) > 8 * 4096
        levels, result = bfs(engine_for(image, range_shift=8), source=0)
        assert int((levels >= 0).sum()) == n

    def test_max_vertex_id_at_boundary(self):
        image = build_directed(np.array([[0, 4095]]), 4096, name="bound")
        levels, _ = bfs(engine_for(image, range_shift=5), source=0)
        assert levels[4095] == 1


class TestConfigurationCorners:
    def test_single_thread_engine(self, rmat_image):
        levels_multi, _ = bfs(engine_for(rmat_image, num_threads=8), source=0)
        levels_single, _ = bfs(engine_for(rmat_image, num_threads=1), source=0)
        assert np.array_equal(levels_multi, levels_single)

    def test_range_shift_zero(self, rmat_image):
        levels_default, _ = bfs(engine_for(rmat_image), source=0)
        levels_zero, _ = bfs(engine_for(rmat_image, range_shift=0), source=0)
        assert np.array_equal(levels_default, levels_zero)

    def test_one_running_vertex_per_thread(self, rmat_image):
        levels_big, _ = bfs(engine_for(rmat_image), source=0)
        levels_tiny, _ = bfs(
            engine_for(rmat_image, max_running_vertices=1), source=0
        )
        assert np.array_equal(levels_big, levels_tiny)

    def test_cache_of_one_page(self, rmat_image):
        engine = engine_for(rmat_image, cache_kib=4)
        levels, result = bfs(engine, source=0)
        assert result.cache_hit_rate < 0.9
        reference, _ = bfs(engine_for(rmat_image), source=0)
        assert np.array_equal(levels, reference)

    def test_single_ssd_array(self, rmat_image):
        array = SSDArray(SSDArrayConfig(num_ssds=1, stripe_pages=1))
        safs = SAFS(array, SAFSConfig(cache_bytes=1 << 18), stats=array.stats)
        engine = GraphEngine(
            rmat_image,
            safs=safs,
            config=EngineConfig(num_threads=4, range_shift=5),
        )
        levels, _ = bfs(engine, source=0)
        reference, _ = bfs(engine_for(rmat_image), source=0)
        assert np.array_equal(levels, reference)


class TestReuseAndIsolation:
    def test_engine_reusable_across_runs(self, rmat_image):
        engine = engine_for(rmat_image)
        first, _ = bfs(engine, source=0)
        second, _ = bfs(engine, source=0)
        assert np.array_equal(first, second)

    def test_different_algorithms_share_one_engine(self, rmat_image):
        engine = engine_for(rmat_image)
        bfs(engine, source=0)
        labels, _ = wcc(engine)
        ranks, _ = pagerank(engine, max_iterations=5)
        assert labels.size == ranks.size == rmat_image.num_vertices

    def test_warm_cache_speeds_up_second_run(self, rmat_image):
        engine = engine_for(rmat_image, cache_kib=4096)
        _, cold = bfs(engine, source=0)
        _, warm = bfs(engine, source=0)
        assert warm.runtime <= cold.runtime
        assert warm.cache_hit_rate >= cold.cache_hit_rate

    def test_two_images_in_one_safs(self):
        a = build_directed(np.array([[0, 1]]), 2, name="ga")
        b = build_directed(np.array([[1, 0]]), 2, name="gb")
        from repro.sim.stats import StatsCollector

        stats = StatsCollector()
        safs = SAFS(stats=stats)
        config = EngineConfig(num_threads=2, range_shift=1)
        engine_a = GraphEngine(a, safs=safs, config=config)
        engine_b = GraphEngine(b, safs=safs, config=config)
        levels_a, _ = bfs(engine_a, source=0)
        levels_b, _ = bfs(engine_b, source=1)
        assert levels_a.tolist() == [0, 1]
        assert levels_b.tolist() == [1, 0]
