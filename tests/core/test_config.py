"""Unit tests for engine configuration."""

import pytest

from repro.core.config import EngineConfig, ExecutionMode, ScheduleOrder


class TestEngineConfig:
    def test_paper_defaults(self):
        cfg = EngineConfig()
        assert cfg.num_threads == 32
        assert cfg.max_running_vertices == 4000
        assert cfg.mode is ExecutionMode.SEMI_EXTERNAL
        assert cfg.merge_in_engine
        assert cfg.schedule_order is ScheduleOrder.BY_ID
        assert cfg.load_balance

    def test_with_overrides(self):
        cfg = EngineConfig().with_overrides(num_threads=8, merge_in_engine=False)
        assert cfg.num_threads == 8
        assert not cfg.merge_in_engine
        # original untouched
        assert EngineConfig().num_threads == 32

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_threads", 0),
            ("max_running_vertices", 0),
            ("range_shift", -1),
            ("vertical_part_threshold", -1),
            ("vertical_part_size", 0),
            ("message_flush_threshold", 0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            EngineConfig(**{field: value})

    def test_frozen(self):
        cfg = EngineConfig()
        with pytest.raises(Exception):
            cfg.num_threads = 4
