"""Back-to-back jobs on one SAFS stack must match fresh-stack runs.

A long-lived service (``repro.serve``) reuses one engine stack for many
jobs: between jobs ``SAFS.reset_timing()`` clears device queues and the
page cache, and the next job's counters are diffed from a fresh base
snapshot.  The contract under test is that a second job's result —
counters included — is **bit-identical** to the same job on a freshly
built stack.

Historically the shared :class:`StatsCollector` leaked across jobs:
float counters (``io.cpu_issue_time``) kept accumulating, and
``diff`` from a non-zero base rounds differently than accumulation from
zero, so the second job's counter stream drifted in the last few ulps.
"""

import numpy as np
import pytest

from repro.algorithms.pagerank import PageRankProgram
from repro.bench.datasets import load_dataset, scaled_cache_bytes
from repro.core.config import EngineConfig, ExecutionMode
from repro.core.engine import GraphEngine
from repro.safs.filesystem import SAFS, SAFSConfig
from repro.safs.page import SAFSFile
from repro.sim.faults import (
    DeviceFailure,
    FaultPlan,
    FaultPolicy,
    TransientErrors,
)
from repro.sim.ssd_array import SSDArray, SSDArrayConfig

CHAOS_PLAN = FaultPlan(
    [
        TransientErrors(device=3, start=0.0, end=10.0, probability=0.15),
        DeviceFailure(device=11, at=0.002),
    ],
    seed=42,
)
CHAOS_POLICY = FaultPolicy(max_retries=12, retry_backoff=200e-6)


def fresh_engine(plan=None, policy=None):
    """A twitter-sim engine on its own stack; file ids pinned because
    page-cache set hashing keys on them (golden-test idiom)."""
    image = load_dataset("twitter-sim")
    SAFSFile._next_id = 0
    array = SSDArray(SSDArrayConfig(), fault_plan=plan)
    safs = SAFS(
        array,
        SAFSConfig(page_size=4096, cache_bytes=scaled_cache_bytes(1.0)),
        stats=array.stats,
        fault_policy=policy,
    )
    return GraphEngine(
        image,
        safs=safs,
        config=EngineConfig(
            mode=ExecutionMode.SEMI_EXTERNAL, num_threads=32, range_shift=8
        ),
    )


def run_pr(engine):
    program = PageRankProgram(engine.image.num_vertices)
    result = engine.run(program, max_iterations=5)
    return program.rank + program.pending, result


@pytest.mark.parametrize(
    "plan,policy",
    [(None, None), (CHAOS_PLAN, CHAOS_POLICY)],
    ids=["clean", "chaos"],
)
def test_second_job_bit_identical_to_fresh_stack(plan, policy):
    """Job 2 on a reused stack == the same job on a fresh stack, bit for
    bit: results, simulated clocks and the full counter diff."""
    reference, ref_result = run_pr(fresh_engine(plan, policy))

    engine = fresh_engine(plan, policy)
    run_pr(engine)
    engine.safs.reset_timing()
    second, second_result = run_pr(engine)

    assert np.array_equal(second, reference)
    assert second_result.runtime == ref_result.runtime
    assert second_result.cpu_busy == ref_result.cpu_busy
    assert second_result.counters == ref_result.counters


def test_reset_timing_clears_the_shared_stats():
    """After reset the collector is empty, so the next job's base
    snapshot is ``{}`` and its diff accumulates from zero — the property
    the bit-identity above depends on."""
    engine = fresh_engine()
    run_pr(engine)
    assert engine.safs.stats.snapshot() != {}
    engine.safs.reset_timing()
    assert engine.safs.stats.snapshot() == {}


def test_third_job_still_identical():
    """The contract is per-job, not just job 2: every reset returns the
    stack to the fresh state."""
    reference, ref_result = run_pr(fresh_engine())
    engine = fresh_engine()
    for _ in range(2):
        run_pr(engine)
        engine.safs.reset_timing()
    third, third_result = run_pr(engine)
    assert np.array_equal(third, reference)
    assert third_result.runtime == ref_result.runtime
    assert third_result.counters == ref_result.counters
