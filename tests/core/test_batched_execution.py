"""Batched-vs-scalar engine equivalence.

Stripping the batch hooks off a program must leave every simulated number
— worker clocks included — bit-identical, across execution modes and
merge disciplines (the non-engine-merge discipline exercises the
expansion fallback rather than the array fast path).
"""

import numpy as np
import pytest

from repro.algorithms.kcore import KCoreProgram
from repro.algorithms.pagerank import PageRankProgram
from repro.algorithms.wcc import WCCProgram
from repro.core.config import EngineConfig, ExecutionMode
from repro.core.engine import GraphEngine
from repro.graph.builder import build_directed, build_undirected
from repro.graph.generators import rmat_graph
from repro.safs.page import SAFSFile

SCALE = 9


def _image(undirected=False):
    edges, num_vertices = rmat_graph(SCALE, edge_factor=8, seed=7)
    if undirected:
        return build_undirected(edges, num_vertices, name="tiny-u")
    return build_directed(edges, num_vertices, name="tiny")


def _strip_batch_hooks(program):
    program.run_batch = None
    program.run_on_vertices = None
    program.run_on_messages = None
    return program


def _make_program(name, image):
    if name == "pr":
        return PageRankProgram(image.num_vertices)
    if name == "wcc":
        return WCCProgram(image.num_vertices)
    degrees = image.out_csr.degrees().astype(np.int64)
    return KCoreProgram(image.num_vertices, 4, degrees)


def _run(name, image, mode, merge_in_engine, batched):
    SAFSFile._next_id = 0
    config = EngineConfig(
        mode=mode, num_threads=4, merge_in_engine=merge_in_engine
    )
    engine = GraphEngine(image, config=config)
    program = _make_program(name, image)
    if not batched:
        _strip_batch_hooks(program)
    result = engine.run(program, max_iterations=10)
    return result, program


def _state_of(name, program):
    if name == "pr":
        return program.rank + program.pending
    if name == "wcc":
        return program.component
    return program.alive


@pytest.mark.parametrize("name", ["pr", "wcc", "kcore"])
@pytest.mark.parametrize(
    "mode,merge_in_engine",
    [
        (ExecutionMode.SEMI_EXTERNAL, True),
        (ExecutionMode.SEMI_EXTERNAL, False),
        (ExecutionMode.IN_MEMORY, True),
    ],
)
def test_batched_equals_scalar(name, mode, merge_in_engine):
    image = _image(undirected=(name == "kcore"))
    scalar_result, scalar_program = _run(name, image, mode, merge_in_engine, False)
    batched_result, batched_program = _run(name, image, mode, merge_in_engine, True)

    assert batched_result.runtime == scalar_result.runtime
    assert batched_result.cpu_busy == scalar_result.cpu_busy
    assert batched_result.iterations == scalar_result.iterations
    assert batched_result.bytes_read == scalar_result.bytes_read
    assert batched_result.counters == scalar_result.counters
    np.testing.assert_array_equal(
        _state_of(name, batched_program), _state_of(name, scalar_program)
    )
