"""Tests for the per-iteration tracer."""

import csv

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.pagerank import pagerank
from repro.core.config import EngineConfig, ExecutionMode
from repro.core.engine import GraphEngine, IterationAborted
from repro.core.tracing import IterationTracer
from repro.safs.filesystem import SAFS, SAFSConfig
from repro.sim.faults import DeviceFailure, FaultPlan
from repro.sim.ssd_array import SSDArray, SSDArrayConfig

from tests.conftest import engine_for


class TestIterationTracer:
    def test_records_one_row_per_iteration(self, rmat_image):
        engine = engine_for(rmat_image)
        tracer = IterationTracer(engine)
        with tracer:
            _, result = bfs(engine, 0)
        assert tracer.num_iterations == result.iterations

    def test_frontier_curve_matches_bfs_levels(self, rmat_image):
        engine = engine_for(rmat_image)
        source = int(np.argmax(rmat_image.out_csr.degrees()))
        tracer = IterationTracer(engine)
        with tracer:
            levels, _ = bfs(engine, source)
        for level, size in enumerate(tracer.frontier_sizes()):
            # The frontier at iteration i contains the level-i vertices
            # plus re-activated already-visited ones; at minimum it covers
            # the level-i set.
            assert size >= int((levels == level).sum())

    def test_first_frontier_is_the_source(self, rmat_image):
        engine = engine_for(rmat_image)
        tracer = IterationTracer(engine)
        with tracer:
            bfs(engine, 0)
        assert tracer.frontier_sizes()[0] == 1

    def test_end_times_monotonic(self, rmat_image):
        engine = engine_for(rmat_image)
        tracer = IterationTracer(engine)
        with tracer:
            pagerank(engine, max_iterations=5)
        times = [r.end_time for r in tracer.records]
        assert times == sorted(times)

    def test_hook_restored_after_exit(self, rmat_image):
        engine = engine_for(rmat_image)
        tracer = IterationTracer(engine)
        with tracer:
            # The hook shadows the class method via an instance attribute.
            assert "_run_iteration" in engine.__dict__
        assert "_run_iteration" not in engine.__dict__

    def test_hook_restored_when_traced_run_raises(self, rmat_image):
        # Regression: __exit__ must pop the hook even when the body
        # raises — a stale hook would silently re-trace (and append to
        # a dead tracer) on every later run of the engine.
        engine = engine_for(rmat_image)
        tracer = IterationTracer(engine)
        with pytest.raises(ZeroDivisionError):
            with tracer:
                bfs(engine, 0)
                raise ZeroDivisionError
        assert "_run_iteration" not in engine.__dict__
        records_after_exit = tracer.num_iterations
        bfs(engine, 0)  # untraced: must not grow the tracer
        assert tracer.num_iterations == records_after_exit

    def test_hook_restored_after_fault_aborted_run(self, rmat_image):
        # The realistic raiser: every device fails at t=0, so the first
        # semi-external iteration aborts with IterationAborted from
        # inside the traced hook.
        array = SSDArray(
            SSDArrayConfig(),
            fault_plan=FaultPlan(
                [DeviceFailure(device=d, at=0.0) for d in range(15)], seed=1
            ),
        )
        safs = SAFS(array, SAFSConfig(cache_bytes=1 << 20), stats=array.stats)
        engine = GraphEngine(
            rmat_image,
            safs=safs,
            config=EngineConfig(
                mode=ExecutionMode.SEMI_EXTERNAL, num_threads=4, range_shift=5
            ),
        )
        tracer = IterationTracer(engine)
        with pytest.raises(IterationAborted):
            with tracer:
                bfs(engine, 0)
        assert "_run_iteration" not in engine.__dict__

    def test_exit_is_idempotent(self, rmat_image):
        engine = engine_for(rmat_image)
        tracer = IterationTracer(engine)
        with tracer:
            bfs(engine, 0)
        tracer.__exit__(None, None, None)  # double exit: no error
        IterationTracer(engine).__exit__(None, None, None)  # exit sans enter
        assert "_run_iteration" not in engine.__dict__

    def test_csv_roundtrip(self, rmat_image, tmp_path):
        engine = engine_for(rmat_image)
        tracer = IterationTracer(engine)
        with tracer:
            bfs(engine, 0)
        path = tmp_path / "trace.csv"
        tracer.write_csv(path)
        with open(path) as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == tracer.num_iterations
        assert int(rows[0]["active_vertices"]) == 1

    def test_pagerank_frontier_shrinks(self, er_image):
        engine = engine_for(er_image)
        tracer = IterationTracer(engine)
        with tracer:
            pagerank(engine, max_iterations=30)
        sizes = tracer.frontier_sizes()
        assert sizes[0] == er_image.num_vertices
        assert sizes[-1] < sizes[0]
