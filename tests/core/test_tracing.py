"""Tests for the per-iteration tracer."""

import csv

import numpy as np

from repro.algorithms.bfs import bfs
from repro.algorithms.pagerank import pagerank
from repro.core.tracing import IterationTracer

from tests.conftest import engine_for


class TestIterationTracer:
    def test_records_one_row_per_iteration(self, rmat_image):
        engine = engine_for(rmat_image)
        tracer = IterationTracer(engine)
        with tracer:
            _, result = bfs(engine, 0)
        assert tracer.num_iterations == result.iterations

    def test_frontier_curve_matches_bfs_levels(self, rmat_image):
        engine = engine_for(rmat_image)
        source = int(np.argmax(rmat_image.out_csr.degrees()))
        tracer = IterationTracer(engine)
        with tracer:
            levels, _ = bfs(engine, source)
        for level, size in enumerate(tracer.frontier_sizes()):
            # The frontier at iteration i contains the level-i vertices
            # plus re-activated already-visited ones; at minimum it covers
            # the level-i set.
            assert size >= int((levels == level).sum())

    def test_first_frontier_is_the_source(self, rmat_image):
        engine = engine_for(rmat_image)
        tracer = IterationTracer(engine)
        with tracer:
            bfs(engine, 0)
        assert tracer.frontier_sizes()[0] == 1

    def test_end_times_monotonic(self, rmat_image):
        engine = engine_for(rmat_image)
        tracer = IterationTracer(engine)
        with tracer:
            pagerank(engine, max_iterations=5)
        times = [r.end_time for r in tracer.records]
        assert times == sorted(times)

    def test_hook_restored_after_exit(self, rmat_image):
        engine = engine_for(rmat_image)
        tracer = IterationTracer(engine)
        with tracer:
            # The hook shadows the class method via an instance attribute.
            assert "_run_iteration" in engine.__dict__
        assert "_run_iteration" not in engine.__dict__

    def test_csv_roundtrip(self, rmat_image, tmp_path):
        engine = engine_for(rmat_image)
        tracer = IterationTracer(engine)
        with tracer:
            bfs(engine, 0)
        path = tmp_path / "trace.csv"
        tracer.write_csv(path)
        with open(path) as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == tracer.num_iterations
        assert int(rows[0]["active_vertices"]) == 1

    def test_pagerank_frontier_shrinks(self, er_image):
        engine = engine_for(er_image)
        tracer = IterationTracer(engine)
        with tracer:
            pagerank(engine, max_iterations=30)
        sizes = tracer.frontier_sizes()
        assert sizes[0] == er_image.num_vertices
        assert sizes[-1] < sizes[0]
