"""The counter registry: the fail-fast surface for metric names."""

import pytest

from repro.bench.datasets import load_dataset
from repro.bench.harness import make_engine, run_algorithm
from repro.obs import registry
from repro.safs.page import SAFSFile
from repro.sim.health import HealthPolicy
from repro.sim.parity import ParityConfig


class TestRegistryShape:
    def test_every_constant_is_dotted(self):
        assert registry.KNOWN_COUNTERS
        for name in registry.KNOWN_COUNTERS:
            assert "." in name

    def test_unknown_counters_flags_typos(self):
        names = [registry.CACHE_HITS, "cache.hist", registry.SSD_REQUESTS]
        assert registry.unknown_counters(names) == ["cache.hist"]

    def test_histogram_bounds_family_fallback(self):
        direct = registry.histogram_bounds(registry.HIST_SSD_SERVICE_SECONDS)
        per_device = registry.histogram_bounds(
            f"{registry.HIST_SSD_SERVICE_SECONDS}.ssd03"
        )
        assert per_device == direct

    def test_histogram_bounds_rejects_unregistered(self):
        with pytest.raises(KeyError):
            registry.histogram_bounds("made.up_histogram")

    def test_bounds_are_ascending(self):
        for bounds in registry.HISTOGRAM_BOUNDS.values():
            assert list(bounds) == sorted(bounds)


class TestRunsStayInsideRegistry:
    """Every counter an actual run touches must be a registry member."""

    def test_clean_semi_external_run(self):
        SAFSFile._next_id = 0
        engine = make_engine(load_dataset("page-sim"))
        run_algorithm(engine, "pr", max_iterations=5)
        assert registry.unknown_counters(engine.stats.names()) == []

    def test_recovery_stack_run(self):
        from repro.sim.faults import default_chaos_plan

        SAFSFile._next_id = 0
        engine = make_engine(
            load_dataset("page-sim"),
            fault_plan=default_chaos_plan(42),
            health_policy=HealthPolicy(),
            parity=ParityConfig(),
        )
        run_algorithm(engine, "pr", max_iterations=5)
        assert registry.unknown_counters(engine.stats.names()) == []

    def test_in_memory_run(self):
        from repro.core.config import ExecutionMode

        engine = make_engine(
            load_dataset("page-sim"), mode=ExecutionMode.IN_MEMORY
        )
        run_algorithm(engine, "pr", max_iterations=5)
        assert registry.unknown_counters(engine.stats.names()) == []
