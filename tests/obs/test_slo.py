"""Burn-rate tracking: window math, hysteresis, the repro.slo/v1 doc.

The tracker's contract (``docs/observability.md``): per declared
objective it maintains fast/slow sliding windows on the simulated
clock, fires ``burn-start`` when *both* windows burn at or above the
threshold and ``burn-stop`` when the fast window falls back under it,
and the whole thing is a pure function of the outcome stream — two
identical streams give byte-identical summaries and event logs.
"""

import json

import numpy as np
import pytest

from repro.graph.builder import build_directed
from repro.obs import (
    SLO_SCHEMA,
    SLOConfig,
    SLOTracker,
    TimelineSampler,
    build_slo_report,
    format_slo_report,
    validate_slo_report,
)
from repro.serve import (
    GraphService,
    OverloadConfig,
    ServiceConfig,
    TenantSpec,
    TenantTraffic,
    generate_trace,
)


def _tracker(config=None, target=0.9, threshold_s=0.005):
    spec = TenantSpec(
        name="acme",
        max_concurrent=2,
        slo_latency_s=threshold_s,
        slo_target=target,
    )
    return SLOTracker({"acme": spec}, config)


class TestSLOConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLOConfig(fast_window_s=0.0)
        with pytest.raises(ValueError):
            SLOConfig(fast_window_s=0.1, slow_window_s=0.05)
        with pytest.raises(ValueError):
            SLOConfig(burn_threshold=0.0)


class TestTenantObjectives:
    def test_spec_without_objectives_builds_an_inactive_tracker(self):
        spec = TenantSpec(name="plain", max_concurrent=1)
        assert spec.slo_objectives == {}
        assert not SLOTracker({"plain": spec}).active

    def test_declared_objectives_become_states(self):
        spec = TenantSpec(
            name="acme",
            max_concurrent=1,
            slo_latency_s=0.004,
            slo_target=0.95,
            slo_availability=0.99,
        )
        tracker = SLOTracker({"acme": spec})
        assert tracker.active
        summary = tracker.summary()
        assert set(summary["tenants"]["acme"]) == {"latency", "availability"}
        assert summary["tenants"]["acme"]["latency"]["threshold_s"] == 0.004
        assert summary["tenants"]["acme"]["availability"]["target"] == 0.99


class TestBurnMath:
    def test_good_stream_never_burns(self):
        tracker = _tracker()
        for i in range(50):
            tracker.record("acme", i * 0.001, "completed", latency=0.001)
        assert tracker.events == []
        row = tracker.summary()["tenants"]["acme"]["latency"]
        assert row["good"] == 50 and row["bad"] == 0
        assert row["compliance"] == 1.0
        assert row["burn_seconds"] == 0.0

    def test_burn_starts_only_when_both_windows_cross(self):
        # Slow window 10x the fast one: a burst of bad outcomes saturates
        # the fast window immediately but must also push the *slow*
        # window's bad fraction over budget before the event fires.
        config = SLOConfig(
            fast_window_s=0.01, slow_window_s=0.1, burn_threshold=1.0
        )
        tracker = _tracker(config, target=0.5)  # budget = 0.5
        for i in range(20):
            tracker.record("acme", i * 0.001, "completed", latency=0.001)
        tracker.record("acme", 0.020, "shed")
        # fast window: 10 entries ending at t=0.020 hold 1 bad -> burn
        # 0.2; slow window burn 1/21/0.5 < 1.  No event yet.
        assert tracker.events == []
        # Keep shedding: the fast window saturates quickly (burn 2.0)
        # but the slow window still holds the 20 good outcomes, so the
        # event only fires once the bad outcomes outnumber them.
        for i in range(25):
            tracker.record("acme", 0.021 + i * 0.0005, "shed")
        kinds = [e.kind for e in tracker.events]
        assert kinds == ["burn-start"]
        event = tracker.events[0]
        assert event.fast_burn >= 1.0 and event.slow_burn >= 1.0

    def test_burn_stop_fires_when_fast_window_recovers(self):
        config = SLOConfig(
            fast_window_s=0.01, slow_window_s=0.02, burn_threshold=1.0
        )
        tracker = _tracker(config, target=0.5)
        for i in range(10):
            tracker.record("acme", i * 0.001, "shed")
        assert [e.kind for e in tracker.events] == ["burn-start"]
        # A run of good completions pushes the bad entries out of the
        # fast window: burn-stop, with burn-in-progress time accounted.
        for i in range(30):
            tracker.record(
                "acme", 0.010 + i * 0.001, "completed", latency=0.001
            )
        kinds = [e.kind for e in tracker.events]
        assert kinds == ["burn-start", "burn-stop"]
        row = tracker.summary()["tenants"]["acme"]["latency"]
        assert row["burn_seconds"] > 0.0
        assert not row["burning"]

    def test_slow_latency_counts_against_the_latency_budget(self):
        tracker = _tracker(threshold_s=0.002)
        tracker.record("acme", 0.01, "completed", latency=0.005)  # late
        tracker.record("acme", 0.02, "completed", latency=0.001)  # in time
        tracker.record("acme", 0.03, "aborted", latency=0.001)
        row = tracker.summary()["tenants"]["acme"]["latency"]
        assert row["good"] == 1 and row["bad"] == 2

    def test_availability_only_penalizes_unserved_queries(self):
        spec = TenantSpec(
            name="acme", max_concurrent=1, slo_availability=0.9
        )
        tracker = SLOTracker({"acme": spec})
        tracker.record("acme", 0.01, "completed", latency=9.0)  # slow but served
        tracker.record("acme", 0.02, "shed")
        tracker.record("acme", 0.03, "aborted")
        row = tracker.summary()["tenants"]["acme"]["availability"]
        assert row["good"] == 1 and row["bad"] == 2

    def test_non_monotone_times_are_clamped_to_the_high_water(self):
        # The service finalizes jobs in event-loop order; finish times
        # are not globally monotone.  The tracker clamps, so the event
        # log stays time-ordered (the validator's contract).
        tracker = _tracker(SLOConfig(0.01, 0.01, 1.0), target=0.5)
        tracker.record("acme", 0.020, "shed")
        tracker.record("acme", 0.005, "shed")  # late completion, earlier time
        times = [e.time for e in tracker.events]
        assert times == sorted(times)
        assert all(t >= 0.020 for t in times)

    def test_finish_closes_open_burn_accounting(self):
        tracker = _tracker(SLOConfig(0.01, 0.01, 1.0), target=0.5)
        for i in range(5):
            tracker.record("acme", i * 0.001, "shed")
        assert tracker.summary()["tenants"]["acme"]["latency"]["burning"]
        tracker.finish(0.104)
        row = tracker.summary()["tenants"]["acme"]["latency"]
        assert row["burn_seconds"] == pytest.approx(0.104 - tracker.events[0].time)


def _image():
    rng = np.random.default_rng(0)
    edges = rng.integers(0, 120, size=(600, 2), dtype=np.int64)
    return build_directed(edges, 120, name="slo-report")


def _slo_run(seed=5, timeline=None):
    tenants = [
        TenantSpec(
            name="acme",
            weight=2.0,
            max_concurrent=2,
            slo_latency_s=0.003,
            slo_target=0.95,
            slo_availability=0.9,
        ),
        TenantSpec(name="globex", max_concurrent=1, queue_cap=2),
    ]
    traffics = [
        TenantTraffic(tenant="acme", rate_qps=6000.0),
        TenantTraffic(tenant="globex", rate_qps=3000.0, apps=("bfs", "wcc")),
    ]
    trace = generate_trace(traffics, 0.006, seed=seed)
    config = ServiceConfig(
        policy="fair",
        pr_iterations=3,
        overload=OverloadConfig(tenant_queue_cap=4, global_queue_cap=8),
    )
    service = GraphService(_image(), tenants, config, timeline=timeline)
    report = service.serve(trace)
    return service, report


class TestServiceIntegration:
    def test_service_without_objectives_has_no_tracker(self):
        tenants = [TenantSpec(name="plain", max_concurrent=1)]
        traffics = [TenantTraffic(tenant="plain", rate_qps=500.0)]
        trace = generate_trace(traffics, 0.004, seed=1)
        service = GraphService(_image(), tenants, ServiceConfig(policy="fifo"))
        report = service.serve(trace)
        assert service.slo is None
        assert report.slo is None

    def test_same_seed_byte_identical_slo_summaries(self):
        _, one = _slo_run(seed=5)
        _, two = _slo_run(seed=5)
        assert one.slo is not None
        assert json.dumps(one.slo, sort_keys=True) == json.dumps(
            two.slo, sort_keys=True
        )

    def test_report_carries_summary_and_events_stay_in_run(self):
        _, report = _slo_run(seed=5)
        slo = report.slo
        assert set(slo["tenants"]) == {"acme"}
        times = [e["time"] for e in slo["events"]]
        assert times == sorted(times)
        assert all(0.0 <= t <= report.duration_s for t in times)


class TestSLOReportDoc:
    @pytest.fixture(scope="class")
    def doc(self):
        timeline = TimelineSampler()
        service, report = _slo_run(seed=5, timeline=timeline)
        return build_slo_report(
            report, service.slo, timeline, label="slo-report seed=5"
        )

    def test_round_trip_validates(self, doc):
        assert doc["schema"] == SLO_SCHEMA
        assert validate_slo_report(doc) == []
        # ...and survives JSON serialization.
        assert validate_slo_report(json.loads(json.dumps(doc))) == []

    def test_formatting_mentions_objectives_and_events(self, doc):
        text = format_slo_report(doc)
        assert "acme" in text
        assert "latency" in text and "availability" in text
        if doc["slo"]["events"] or doc["overload_events"]:
            assert "events (burn-rate + overload, merged)" in text

    def test_validator_catches_broken_documents(self, doc):
        bad = json.loads(json.dumps(doc))
        bad["schema"] = "repro.profile/v1"
        assert any("schema" in p for p in validate_slo_report(bad))

        bad = json.loads(json.dumps(doc))
        bad["completed"] += 1
        problems = validate_slo_report(bad)
        assert any("accounting" in p or "timeline" in p for p in problems)

        bad = json.loads(json.dumps(doc))
        bad["slo"]["events"] = [
            {"time": 1.0, "tenant": "acme", "objective": "latency",
             "kind": "burn-start", "fast_burn": 2.0, "slow_burn": 2.0},
            {"time": 0.5, "tenant": "acme", "objective": "latency",
             "kind": "burn-stop", "fast_burn": 0.0, "slow_burn": 1.0},
        ]
        assert any(
            "time-ordered" in p for p in validate_slo_report(bad)
        )

        bad = json.loads(json.dumps(doc))
        del bad["timeline"]
        assert any("timeline" in p for p in validate_slo_report(bad))
