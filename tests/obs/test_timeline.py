"""The timeline sampler: deterministic windows, zero-cost disarmed.

Three contracts pinned here (the issue's S3 checklist):

1. **Determinism** — two same-seed runs with an armed sampler produce
   byte-identical snapshot streams (``json.dumps`` of the rows).
2. **Zero drift** — arming the sampler never perturbs the run: the
   final ``serve.*`` counters (and the whole counter snapshot) of an
   armed chaos serve are bit-identical to a disarmed one.
3. **Conservation** — windowed ``completed``/``aborted`` counts sum
   exactly to the :class:`ServiceReport` totals, whatever the seed and
   window length (a hypothesis property; late completions land in the
   open window, never dropped, never double-counted).
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import build_directed
from repro.obs import TimelineConfig, TimelineSampler
from repro.obs import registry as reg
from repro.serve import (
    GraphService,
    OverloadConfig,
    ServiceConfig,
    TenantSpec,
    TenantTraffic,
    generate_trace,
)
from repro.sim.faults import DeviceFailure, FaultPlan, FaultPolicy, TransientErrors


def _image():
    rng = np.random.default_rng(0)
    n, m = 120, 600
    edges = rng.integers(0, n, size=(m, 2), dtype=np.int64)
    return build_directed(edges, n, name="timeline-prop")


IMAGE = _image()

TENANTS = [
    TenantSpec(name="acme", weight=2.0, max_concurrent=3),
    TenantSpec(name="globex", max_concurrent=2),
]
TRAFFICS = [
    TenantTraffic(
        tenant="acme", rate_qps=3000.0, burst_factor=4.0, burst_fraction=0.2
    ),
    TenantTraffic(tenant="globex", rate_qps=1500.0, apps=("bfs", "wcc")),
]

#: Recoverable chaos + overload control: the adversarial setting the
#: zero-drift contract has to hold under.
CHAOS_PLAN = FaultPlan(
    [
        TransientErrors(device=3, start=0.0, end=10.0, probability=0.15),
        DeviceFailure(device=11, at=0.002),
    ],
    seed=42,
)
CHAOS_POLICY = FaultPolicy(
    max_retries=12, retry_backoff=200e-6, request_timeout=0.002
)


def _chaos_run(seed, timeline=None, duration=0.01):
    trace = generate_trace(TRAFFICS, duration, seed=seed)
    config = ServiceConfig(
        policy="fair",
        pr_iterations=3,
        overload=OverloadConfig(
            tenant_queue_cap=8,
            global_queue_cap=16,
            brownout=True,
            window_s=0.002,
            sample_period_s=0.0002,
            wait_budget_s=0.002,
        ),
    )
    service = GraphService(
        IMAGE,
        TENANTS,
        config,
        fault_plan=CHAOS_PLAN,
        fault_policy=CHAOS_POLICY,
        timeline=timeline,
    )
    report = service.serve(trace)
    return service, report


class TestTimelineConfig:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            TimelineConfig(interval_s=0.0)
        with pytest.raises(ValueError):
            TimelineConfig(interval_s=-1.0)

    def test_unbound_sampler_is_disarmed_and_finish_is_a_noop(self):
        sampler = TimelineSampler()
        assert not sampler.armed
        sampler.finish(1.0)  # never bound: nothing to close
        assert sampler.snapshots == []


class TestDeterminism:
    def test_same_seed_byte_identical_snapshot_stream(self):
        _, _ = _chaos_run(7)  # warm nothing — each run is independent
        one = TimelineSampler()
        _chaos_run(7, timeline=one)
        two = TimelineSampler()
        _chaos_run(7, timeline=two)
        assert json.dumps(one.snapshots, sort_keys=True) == json.dumps(
            two.snapshots, sort_keys=True
        )
        assert one.to_markdown() == two.to_markdown()

    def test_rows_cover_every_tenant_every_window_in_order(self):
        sampler = TimelineSampler()
        _chaos_run(7, timeline=sampler)
        assert sampler.snapshots
        windows = sorted({row["window"] for row in sampler.snapshots})
        assert windows == list(range(len(windows)))
        for window in windows:
            rows = [r for r in sampler.snapshots if r["window"] == window]
            assert [r["tenant"] for r in rows] == ["acme", "globex"]


class TestZeroDrift:
    def test_armed_chaos_serve_counters_bit_identical_to_disarmed(self):
        armed_service, armed_report = _chaos_run(
            11, timeline=TimelineSampler()
        )
        plain_service, plain_report = _chaos_run(11, timeline=None)
        armed_counters = armed_service.stats.snapshot()
        plain_counters = plain_service.stats.snapshot()
        assert armed_counters == plain_counters
        serve_keys = [k for k in armed_counters if k.startswith("serve.")]
        assert serve_keys  # the serve family actually flushed
        assert armed_report.to_dict() == plain_report.to_dict()

    def test_gauge_series_live_outside_counter_snapshots(self):
        service, _ = _chaos_run(11, timeline=TimelineSampler())
        metrics = service.stats.metrics_snapshot()
        series_names = list(metrics["series"])
        assert f"{reg.GAUGE_SERVE_WINDOW_THROUGHPUT}.acme" in series_names
        assert f"{reg.GAUGE_SERVE_WINDOW_P99}.globex" in series_names
        assert reg.GAUGE_SERVE_BROWNOUT_STATE in series_names
        assert reg.GAUGE_SERVE_GLOBAL_QUEUE_DEPTH in series_names
        # Every sampled series is registry-declared.
        assert reg.unknown_gauges(series_names) == []
        # And none of them leaked into the counter dict.
        assert not any(
            name in service.stats.snapshot() for name in series_names
        )


@st.composite
def timeline_runs(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    interval = draw(st.sampled_from([0.001, 0.002, 0.005, 0.02]))
    duration = draw(st.sampled_from([0.004, 0.008]))
    return seed, interval, duration


class TestConservation:
    @settings(max_examples=8, deadline=None)
    @given(run=timeline_runs())
    def test_window_counts_sum_to_report_totals(self, run):
        seed, interval, duration = run
        sampler = TimelineSampler(TimelineConfig(interval_s=interval))
        _, report = _chaos_run(seed, timeline=sampler, duration=duration)
        assert (
            sum(row["completed"] for row in sampler.snapshots)
            == report.completed
        )
        assert (
            sum(row["aborted"] for row in sampler.snapshots) == report.aborted
        )
        # Nominal-interval throughput is consistent with the counts.
        for row in sampler.snapshots:
            assert row["throughput_qps"] == pytest.approx(
                row["completed"] / interval
            )
