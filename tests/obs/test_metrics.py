"""Histogram / gauge-series extensions of :class:`StatsCollector`.

The contract: the new stores are *separate* from the counter dict, so
``snapshot()``/``diff()`` — the surface every golden and equivalence
test pins — are untouched by observations, and ``metrics_snapshot()``
exports all three sections under a stable schema.
"""

import pytest

from repro.obs import registry
from repro.sim.stats import METRICS_SCHEMA, Histogram, StatsCollector


class TestHistogram:
    def test_bucketing(self):
        h = Histogram((1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 2.0, 3.0, 100.0):
            h.observe(v)
        # Buckets: <=1, <=2, <=4, overflow.
        assert h.counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.total == pytest.approx(108.0)

    def test_mean_min_max(self):
        h = Histogram((10.0,))
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == pytest.approx(3.0)
        assert h.min == 2.0
        assert h.max == 4.0

    def test_empty_summary(self):
        h = Histogram((1.0,))
        s = h.summary()
        assert s["count"] == 0
        assert s["min"] is None and s["max"] is None

    def test_quantile_empty_and_extremes(self):
        h = Histogram((1.0, 2.0, 4.0))
        assert h.quantile(0.5) == 0.0  # empty histogram
        h.observe(1.5)
        h.observe(3.0)
        assert h.quantile(0.0) == h.min
        assert h.quantile(-1.0) == h.min
        assert h.quantile(1.0) == h.max
        assert h.quantile(2.0) == h.max

    def test_quantile_interpolates_within_the_bucket(self):
        h = Histogram((1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        # q=0.5 -> target rank 2, inside the (1, 2] bucket, which holds
        # ranks 1..3: linear interpolation between the bucket edges.
        q50 = h.quantile(0.5)
        assert 1.0 <= q50 <= 2.0

    def test_quantile_is_monotone_and_clamped(self):
        h = Histogram((0.001, 0.01, 0.1))
        for v in (0.0005, 0.004, 0.02, 0.02, 0.5):
            h.observe(v)
        qs = [h.quantile(q) for q in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)]
        assert qs == sorted(qs)
        assert all(h.min <= value <= h.max for value in qs)

    def test_quantile_single_observation(self):
        h = Histogram((1.0,))
        h.observe(0.25)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 0.25

    def test_summary_roundtrips_bounds(self):
        bounds = registry.HISTOGRAM_BOUNDS[registry.HIST_SSD_QUEUE_DEPTH]
        h = Histogram(bounds)
        h.observe(3)
        s = h.summary()
        assert tuple(s["bounds"]) == tuple(bounds)
        assert sum(s["counts"]) == 1


class TestStatsCollectorMetrics:
    def test_observe_requires_bounds_first(self):
        stats = StatsCollector()
        with pytest.raises(ValueError):
            stats.observe("x.latency", 1.0)

    def test_observe_rejects_conflicting_bounds(self):
        stats = StatsCollector()
        stats.observe("x.latency", 1.0, bounds=(1.0, 2.0))
        stats.observe("x.latency", 1.5)  # bounds now known
        with pytest.raises(ValueError):
            stats.observe("x.latency", 1.0, bounds=(5.0,))

    def test_observations_do_not_touch_counters(self):
        stats = StatsCollector()
        stats.add("io.requests", 3)
        before = stats.snapshot()
        stats.observe("x.latency", 1.0, bounds=(1.0,))
        stats.sample("x.gauge", 0.5, 7)
        assert stats.snapshot() == before
        assert stats.diff(before) == {}

    def test_series_records_time_value_pairs(self):
        stats = StatsCollector()
        stats.sample("g", 0.0, 1)
        stats.sample("g", 1.0, 2)
        assert stats.series("g") == [(0.0, 1), (1.0, 2)]

    def test_metrics_snapshot_schema(self):
        stats = StatsCollector()
        stats.add("io.requests", 2)
        stats.observe("x.latency", 1.0, bounds=(1.0, 2.0))
        stats.sample("g", 0.0, 1)
        snap = stats.metrics_snapshot()
        assert snap["schema"] == METRICS_SCHEMA
        assert snap["counters"] == {"io.requests": 2}
        assert set(snap["histograms"]) == {"x.latency"}
        assert snap["series"]["g"] == [[0.0, 1]]

    def test_reset_clears_everything(self):
        stats = StatsCollector()
        stats.add("c", 1)
        stats.observe("h", 1.0, bounds=(1.0,))
        stats.sample("g", 0.0, 1)
        stats.reset()
        snap = stats.metrics_snapshot()
        assert snap["counters"] == {}
        assert snap["histograms"] == {}
        assert snap["series"] == {}
