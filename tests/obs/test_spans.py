"""Tracing acceptance: zero-cost disarmed, exact spans armed.

The two contracts from the issue:

- disarmed (the default), counter streams are bit-identical to the seed
  — arming must not perturb the simulation at all;
- armed, per-request span durations are exact simulated time: per
  device, the traced service durations sum to the device's accumulated
  busy time.
"""

import json

import pytest

from repro.bench.datasets import load_dataset
from repro.bench.harness import make_engine, run_algorithm
from repro.obs import Observer, arm, disarm, to_chrome, to_jsonl
from repro.obs import registry
from repro.safs.page import SAFSFile


def traced_run(app="pr", armed=True, max_iterations=5):
    SAFSFile._next_id = 0
    engine = make_engine(load_dataset("page-sim"))
    observer = arm(engine) if armed else None
    result = run_algorithm(engine, app, max_iterations=max_iterations)
    return engine, observer, result


@pytest.fixture(scope="module")
def armed_run():
    return traced_run()


class TestZeroCostDisarmed:
    def test_armed_run_matches_disarmed_bit_for_bit(self, armed_run):
        engine, _, result = armed_run
        engine2, _, result2 = traced_run(armed=False)
        assert result2.runtime == result.runtime
        assert result2.counters == result.counters
        assert engine2.stats.snapshot() == engine.stats.snapshot()

    def test_disarm_detaches_every_layer(self):
        SAFSFile._next_id = 0
        engine = make_engine(load_dataset("page-sim"))
        arm(engine)
        disarm(engine)
        assert engine.obs is None
        assert engine.safs.obs is None
        assert engine.safs.scheduler.obs is None
        assert engine.safs.array.obs is None
        assert all(s.obs is None for s in engine.safs.array.ssds)

    def test_layers_default_to_disarmed(self):
        SAFSFile._next_id = 0
        engine = make_engine(load_dataset("page-sim"))
        assert engine.obs is None
        assert engine.safs.obs is None
        assert all(s.obs is None for s in engine.safs.array.ssds)


class TestDeviceSpansTileBusyTime:
    def test_service_durations_sum_to_busy_time(self, armed_run):
        engine, observer, _ = armed_run
        busy = observer.device_busy_seconds()
        for ssd in list(engine.safs.array.ssds) + list(engine.safs.array.spares):
            assert busy.get(ssd.name, 0.0) == pytest.approx(
                ssd.busy_time, abs=1e-12
            )

    def test_queue_waits_are_nonnegative(self, armed_run):
        _, observer, _ = armed_run
        assert observer.device_spans
        for span in observer.device_spans:
            assert span["start"] >= span["arrival"]
            assert span["service"] >= 0.0


class TestIoSpans:
    def test_stage_events_bracket_the_span(self, armed_run):
        _, observer, _ = armed_run
        assert observer.io_spans
        for span in observer.io_spans:
            events = span["events"]
            assert events[0][0] == "issued" and events[0][1] == span["issue"]
            assert events[-1][0] == "completed" and events[-1][1] == span["done"]
            assert span["done"] >= span["issue"]

    def test_every_io_span_has_a_cache_lookup(self, armed_run):
        _, observer, _ = armed_run
        for span in observer.io_spans:
            assert any(ev[0] == "cache_lookup" for ev in span["events"])

    def test_request_spans_link_to_io_spans(self, armed_run):
        _, observer, _ = armed_run
        io_ids = {span["id"] for span in observer.io_spans}
        assert observer.request_spans
        for req in observer.request_spans:
            assert req["io"] in io_ids
            assert req["done"] >= req["issued"]

    def test_iteration_count_matches_result(self, armed_run):
        _, observer, result = armed_run
        assert len(observer.iterations) == result.iterations


class TestHistogramsAndGauges:
    def test_per_device_service_histograms_recorded(self, armed_run):
        engine, _, _ = armed_run
        hists = engine.stats.histograms()
        served = [s.name for s in engine.safs.array.ssds if s.busy_time > 0]
        for name in served:
            key = f"{registry.HIST_SSD_SERVICE_SECONDS}.{name}"
            assert key in hists and hists[key].count > 0

    def test_gauges_sampled_once_per_iteration(self, armed_run):
        # Engine-loop gauges only: the serve.* gauges in KNOWN_GAUGES
        # are sampled by the serving timeline, never by a batch run.
        engine, _, result = armed_run
        for gauge in registry.ENGINE_GAUGES:
            assert len(engine.stats.series(gauge)) == result.iterations
        for gauge in registry.KNOWN_GAUGES - registry.ENGINE_GAUGES:
            assert engine.stats.series(gauge) == []

    def test_per_set_hit_rate_gauges_sampled(self, armed_run):
        # Arming enables per-set tallies, and every probed set gets one
        # cumulative-rate sample per iteration barrier.
        engine, _, result = armed_run
        samples = engine.safs.cache.set_hit_rate_samples()
        assert samples  # the run probed at least one set
        for index, rate in samples.items():
            series = engine.stats.series(
                f"{registry.GAUGE_CACHE_SET_HIT_RATE}.{index}"
            )
            assert 0 < len(series) <= result.iterations
            assert series[-1][1] == rate
            assert all(0.0 <= value <= 1.0 for _, value in series)

    def test_per_set_tracking_off_when_disarmed(self):
        SAFSFile._next_id = 0
        engine = make_engine(load_dataset("page-sim"))
        run_algorithm(engine, "pr", max_iterations=2)
        assert engine.safs.cache.set_hit_rate_samples() == {}


class TestExports:
    def test_jsonl_is_valid_and_ordered(self, armed_run):
        _, observer, _ = armed_run
        lines = to_jsonl(observer).splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == (
            len(observer.iterations)
            + len(observer.io_spans)
            + len(observer.device_spans)
            + len(observer.request_spans)
        )
        kinds = {r["type"] for r in records}
        assert kinds == {"iteration", "io", "device", "request"}

    def test_chrome_trace_shape(self, armed_run):
        _, observer, _ = armed_run
        doc = to_chrome(observer)
        json.dumps(doc)  # must serialise
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases >= {"M", "X", "C"}
        for event in events:
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
        thread_names = {
            e["args"]["name"] for e in events if e["name"] == "thread_name"
        }
        assert {"engine", "safs"} <= thread_names
        assert any(name.startswith("ssd") for name in thread_names)
