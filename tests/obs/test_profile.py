"""The simulated-time profiler: per-layer decomposition that tiles time."""

import json

import pytest

from repro.bench.datasets import load_dataset
from repro.bench.harness import make_engine, run_algorithm
from repro.obs import arm, build_profile, format_profile, validate_profile
from repro.obs.report import LAYERS, PROFILE_SCHEMA, TICK_SECONDS, main
from repro.safs.page import SAFSFile


@pytest.fixture(scope="module")
def profile_and_result():
    SAFSFile._next_id = 0
    engine = make_engine(load_dataset("page-sim"))
    observer = arm(engine)
    result = run_algorithm(engine, "pr", max_iterations=5)
    return build_profile(observer, label="pr@page-sim"), result


class TestBuildProfile:
    def test_schema_and_label(self, profile_and_result):
        profile, _ = profile_and_result
        assert profile["schema"] == PROFILE_SCHEMA
        assert profile["label"] == "pr@page-sim"

    def test_layers_tile_each_iteration_span(self, profile_and_result):
        profile, _ = profile_and_result
        assert profile["iterations"]
        for row in profile["iterations"]:
            span = row["end_s"] - row["start_s"]
            total = sum(row[f"{layer}_s"] for layer in LAYERS)
            assert total == pytest.approx(span, abs=TICK_SECONDS)

    def test_totals_tile_the_runtime(self, profile_and_result):
        profile, result = profile_and_result
        grand = sum(profile["totals"][f"{layer}_s"] for layer in LAYERS)
        ticks = TICK_SECONDS * (len(profile["iterations"]) + 1)
        assert abs(grand - profile["runtime_s"]) <= ticks
        assert profile["runtime_s"] == pytest.approx(result.runtime)

    def test_layer_times_are_nonnegative(self, profile_and_result):
        profile, _ = profile_and_result
        for row in profile["iterations"]:
            for layer in LAYERS:
                assert row[f"{layer}_s"] >= 0.0

    def test_validate_passes_and_format_renders(self, profile_and_result):
        profile, _ = profile_and_result
        assert validate_profile(profile) == []
        text = format_profile(profile)
        assert "compute" in text and "recovery" in text


class TestValidateProfile:
    def test_rejects_wrong_schema(self, profile_and_result):
        profile, _ = profile_and_result
        bad = dict(profile, schema="nope/v0")
        assert validate_profile(bad)

    def test_rejects_non_tiling_rows(self, profile_and_result):
        profile, _ = profile_and_result
        bad = json.loads(json.dumps(profile))
        bad["iterations"][0]["compute_s"] += 1.0
        assert validate_profile(bad)


class TestReportCli:
    def test_valid_file_exits_zero(self, profile_and_result, tmp_path, capsys):
        profile, _ = profile_and_result
        path = tmp_path / "profile.json"
        path.write_text(json.dumps(profile))
        assert main([str(path)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_corrupt_file_exits_nonzero(self, profile_and_result, tmp_path):
        profile, _ = profile_and_result
        bad = json.loads(json.dumps(profile))
        bad["iterations"][0]["queue_s"] += 0.5
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        assert main([str(path)]) == 1
