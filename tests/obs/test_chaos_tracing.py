"""Spans under chaos: fault stages are narrated, traces stay deterministic.

Reuses the canonical chaos fixtures of
``tests/core/test_engine_under_faults.py`` — a flaky device, a stuck
queue longer than the request timeout, and one mid-run device failure —
which reliably drive the retry, timeout and reroute/reconstruct paths.
"""

import pytest

from repro.bench.datasets import load_dataset, scaled_cache_bytes
from repro.bench.harness import run_algorithm
from repro.core.config import EngineConfig, ExecutionMode
from repro.core.engine import GraphEngine
from repro.obs import arm, build_profile, to_jsonl, validate_profile
from repro.safs.filesystem import SAFS, SAFSConfig
from repro.safs.page import SAFSFile
from repro.sim.faults import (
    DeviceFailure,
    FaultPlan,
    FaultPolicy,
    StuckQueue,
    TransientErrors,
)
from repro.sim.parity import ParityConfig
from repro.sim.ssd_array import SSDArray, SSDArrayConfig


def chaos_plan():
    return FaultPlan(
        [
            TransientErrors(device=3, start=0.0, end=10.0, probability=0.15),
            StuckQueue(device=7, start=0.0005, end=0.012),
            DeviceFailure(device=11, at=0.002),
        ],
        seed=42,
    )


CHAOS_POLICY = FaultPolicy(
    max_retries=12, retry_backoff=200e-6, request_timeout=0.002
)


def make_chaos_engine(parity=False):
    image = load_dataset("twitter-sim")
    SAFSFile._next_id = 0
    array = SSDArray(
        SSDArrayConfig(),
        fault_plan=chaos_plan(),
        parity=ParityConfig() if parity else None,
    )
    safs = SAFS(
        array,
        SAFSConfig(page_size=4096, cache_bytes=scaled_cache_bytes(1.0)),
        stats=array.stats,
        fault_policy=CHAOS_POLICY,
    )
    return GraphEngine(
        image,
        safs=safs,
        config=EngineConfig(
            mode=ExecutionMode.SEMI_EXTERNAL, num_threads=32, range_shift=8
        ),
    )


def chaos_run(parity=False, armed=True):
    engine = make_chaos_engine(parity)
    observer = arm(engine) if armed else None
    result = run_algorithm(engine, "pr", max_iterations=10)
    return engine, observer, result


@pytest.fixture(scope="module")
def mirror_run():
    return chaos_run(parity=False)


@pytest.fixture(scope="module")
def parity_run():
    return chaos_run(parity=True)


def stages_of(observer):
    return {event[0] for span in observer.io_spans for event in span["events"]}


class TestChaosStageEvents:
    def test_retry_and_reroute_stages_recorded(self, mirror_run):
        engine, observer, _ = mirror_run
        stages = stages_of(observer)
        assert {"issued", "cache_lookup", "completed"} <= stages
        assert "retried" in stages
        assert "rerouted" in stages
        assert "timeout" in stages
        # The trace narrates at least as many retries as the counter saw.
        retried = sum(
            1
            for span in observer.io_spans
            for event in span["events"]
            if event[0] == "retried"
        )
        assert retried >= engine.stats.get("faults.retries") > 0

    def test_retried_events_carry_device_and_attempt(self, mirror_run):
        _, observer, _ = mirror_run
        for span in observer.io_spans:
            for event in span["events"]:
                if event[0] == "retried":
                    assert event[2]["attempt"] >= 1
                    assert "device" in event[2]
                if event[0] == "rerouted":
                    assert event[2]["device"] != event[2]["target"]

    def test_parity_reconstruction_stages_recorded(self, parity_run):
        engine, observer, _ = parity_run
        stages = stages_of(observer)
        assert "reconstructed" in stages
        assert engine.stats.get("parity.reconstructions") > 0

    def test_recovery_device_spans_flagged(self, parity_run):
        _, observer, _ = parity_run
        recovery_spans = [s for s in observer.device_spans if s["recovery"]]
        assert recovery_spans  # parity peer reads charge recovery

    def test_recovery_shows_up_in_profile(self, parity_run):
        _, observer, _ = parity_run
        profile = build_profile(observer, label="chaos")
        assert validate_profile(profile) == []
        assert profile["totals"]["recovery_s"] > 0.0


class TestChaosInvariants:
    def test_arming_never_moves_chaos_counters(self, mirror_run):
        engine, _, result = mirror_run
        engine2, _, result2 = chaos_run(parity=False, armed=False)
        assert result2.runtime == result.runtime
        assert result2.counters == result.counters
        assert engine2.stats.snapshot() == engine.stats.snapshot()

    def test_device_spans_tile_busy_time_under_chaos(self, parity_run):
        engine, observer, _ = parity_run
        busy = observer.device_busy_seconds()
        devices = list(engine.safs.array.ssds) + list(engine.safs.array.spares)
        for ssd in devices:
            assert busy.get(ssd.name, 0.0) == pytest.approx(
                ssd.busy_time, abs=1e-12
            )

    def test_trace_byte_identical_for_same_fault_seed(self, mirror_run):
        _, observer, _ = mirror_run
        _, observer2, _ = chaos_run(parity=False)
        assert to_jsonl(observer) == to_jsonl(observer2)
