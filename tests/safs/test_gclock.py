"""Tests for the gclock eviction policy of the page cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.safs.page import Page
from repro.safs.page_cache import PageCache, PageCacheConfig


def make_cache(capacity_pages=4, associativity=4, eviction="gclock"):
    return PageCache(
        PageCacheConfig(
            capacity_bytes=capacity_pages * 4096,
            page_size=4096,
            associativity=associativity,
            eviction=eviction,
        )
    )


def page(no):
    return Page(0, no, memoryview(bytes([no % 256])))


class TestGClockBasics:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_cache(eviction="clock2")

    def test_hit_after_insert(self):
        cache = make_cache()
        cache.insert(page(1))
        assert cache.lookup(0, 1) is not None

    def test_eviction_happens_at_capacity(self):
        cache = make_cache(capacity_pages=2, associativity=2)
        cache.insert(page(0))
        cache.insert(page(1))
        evicted = cache.insert(page(2))
        assert evicted is not None
        assert len(cache) == 2

    def test_referenced_page_survives_first_sweep(self):
        cache = make_cache(capacity_pages=2, associativity=2)
        cache.insert(page(0))
        cache.insert(page(1))
        # Touch page 0 repeatedly; inserting two new pages must evict
        # page 1 before page 0 loses its reference bit twice.
        cache.lookup(0, 0)
        evicted = cache.insert(page(2))
        assert evicted == (0, 1) or cache.contains(0, 0)

    def test_clear_resets_clock_state(self):
        cache = make_cache(capacity_pages=2, associativity=2)
        cache.insert(page(0))
        cache.insert(page(1))
        cache.clear()
        assert len(cache) == 0
        cache.insert(page(5))
        assert cache.contains(0, 5)

    def test_reinsert_refreshes(self):
        cache = make_cache()
        cache.insert(page(1))
        assert cache.insert(page(1)) is None
        assert len(cache) == 1


class TestGClockProperties:
    @given(
        accesses=st.lists(st.integers(min_value=0, max_value=100), max_size=400),
        capacity=st.integers(min_value=1, max_value=32),
        assoc=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_never_exceeds_capacity(self, accesses, capacity, assoc):
        cache = make_cache(capacity_pages=capacity, associativity=assoc)
        for no in accesses:
            if cache.lookup(0, no) is None:
                cache.insert(page(no))
            assert len(cache) <= cache.config.capacity_pages

    @given(accesses=st.lists(st.integers(min_value=0, max_value=60), max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_same_accounting_as_lru(self, accesses):
        # hits + misses must equal lookups under either policy.
        for policy in ("lru", "gclock"):
            cache = make_cache(capacity_pages=8, associativity=4, eviction=policy)
            for no in accesses:
                if cache.lookup(0, no) is None:
                    cache.insert(page(no))
            total = cache.stats.get("cache.hits") + cache.stats.get("cache.misses")
            assert total == len(accesses)

    def test_loop_pattern_gclock_not_worse_than_lru(self):
        # Scanning a loop slightly larger than the set is LRU's worst
        # case (every access misses); gclock's reference bits give some
        # pages a second life.
        def run(policy):
            cache = make_cache(capacity_pages=4, associativity=4, eviction=policy)
            for _ in range(40):
                for no in range(5):
                    if cache.lookup(0, no) is None:
                        cache.insert(page(no))
            return cache.hit_rate()

        assert run("gclock") >= 0.0  # sanity: completes, hit rate defined
