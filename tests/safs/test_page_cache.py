"""Unit and property tests for the set-associative page cache."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.safs.page import Page
from repro.safs.page_cache import PageCache, PageCacheConfig
from repro.sim.stats import StatsCollector


def make_cache(capacity_pages=16, associativity=4, page_size=4096):
    return PageCache(
        PageCacheConfig(
            capacity_bytes=capacity_pages * page_size,
            page_size=page_size,
            associativity=associativity,
        )
    )


def page(file_id, page_no):
    return Page(file_id, page_no, memoryview(bytes([page_no % 256])))


class TestGeometry:
    def test_capacity_pages(self):
        cfg = PageCacheConfig(capacity_bytes=1 << 20, page_size=4096)
        assert cfg.capacity_pages == 256

    def test_tiny_cache_has_one_set(self):
        cfg = PageCacheConfig(capacity_bytes=2 * 4096, page_size=4096, associativity=8)
        assert cfg.num_sets == 1
        assert cfg.set_capacity == 2

    def test_cache_holds_at_least_one_page(self):
        cfg = PageCacheConfig(capacity_bytes=1, page_size=4096)
        assert cfg.capacity_pages == 1


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.lookup(0, 5) is None
        cache.insert(page(0, 5))
        got = cache.lookup(0, 5)
        assert got is not None
        assert got.key == (0, 5)

    def test_contains_does_not_count_stats(self):
        stats = StatsCollector()
        cache = PageCache(PageCacheConfig(capacity_bytes=16 * 4096), stats)
        cache.insert(page(0, 1))
        assert cache.contains(0, 1)
        assert not cache.contains(0, 2)
        assert stats.get("cache.hits") == 0
        assert stats.get("cache.misses") == 0

    def test_distinct_files_are_distinct_pages(self):
        cache = make_cache()
        cache.insert(page(0, 5))
        assert cache.lookup(1, 5) is None

    def test_reinsert_refreshes_not_grows(self):
        cache = make_cache()
        cache.insert(page(0, 1))
        cache.insert(page(0, 1))
        assert len(cache) == 1

    def test_eviction_is_lru_within_set(self):
        # One set of capacity 2: inserting a third page evicts the LRU one.
        cache = make_cache(capacity_pages=2, associativity=2)
        cache.insert(page(0, 0))
        cache.insert(page(0, 1))
        cache.lookup(0, 0)  # refresh page 0
        evicted = cache.insert(page(0, 2))
        assert evicted == (0, 1)
        assert cache.contains(0, 0)
        assert not cache.contains(0, 1)

    def test_hit_rate(self):
        cache = make_cache()
        assert cache.hit_rate() == 0.0
        cache.lookup(0, 1)
        cache.insert(page(0, 1))
        cache.lookup(0, 1)
        assert cache.hit_rate() == 0.5

    def test_clear(self):
        cache = make_cache()
        cache.insert(page(0, 1))
        cache.clear()
        assert len(cache) == 0
        assert not cache.contains(0, 1)

    def test_page_data_preserved(self):
        cache = make_cache()
        original = Page(0, 9, memoryview(b"payload"))
        cache.insert(original)
        got = cache.lookup(0, 9)
        assert bytes(got.data) == b"payload"


class TestProperties:
    @given(
        accesses=st.lists(st.integers(min_value=0, max_value=200), max_size=300),
        capacity=st.integers(min_value=1, max_value=64),
        assoc=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_never_exceeds_capacity(self, accesses, capacity, assoc):
        cache = make_cache(capacity_pages=capacity, associativity=assoc)
        for page_no in accesses:
            if cache.lookup(0, page_no) is None:
                cache.insert(page(0, page_no))
            assert len(cache) <= cache.config.capacity_pages

    @given(accesses=st.lists(st.integers(min_value=0, max_value=50), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_hits_plus_misses_equals_lookups(self, accesses):
        stats = StatsCollector()
        cache = PageCache(PageCacheConfig(capacity_bytes=8 * 4096), stats)
        for page_no in accesses:
            if cache.lookup(0, page_no) is None:
                cache.insert(page(0, page_no))
        total = stats.get("cache.hits") + stats.get("cache.misses")
        assert total == len(accesses)

    @given(accesses=st.lists(st.integers(min_value=0, max_value=30), max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_lookup_after_insert_without_eviction_hits(self, accesses):
        # With capacity larger than the universe, nothing is ever evicted,
        # so a second lookup of any inserted page must hit.
        cache = make_cache(capacity_pages=64, associativity=64)
        inserted = set()
        for page_no in accesses:
            if cache.lookup(0, page_no) is None:
                assert page_no not in inserted
                cache.insert(page(0, page_no))
                inserted.add(page_no)
            else:
                assert page_no in inserted


class TestPerSetTracking:
    def test_off_by_default(self):
        cache = make_cache()
        cache.insert(page(0, 1))
        cache.lookup(0, 1)
        cache.lookup(0, 2)
        assert cache.set_hit_rate_samples() == {}

    def test_tracks_hits_and_misses_per_set(self):
        cache = make_cache(capacity_pages=8, associativity=8)  # one set
        cache.enable_set_tracking()
        cache.insert(page(0, 1))
        cache.lookup(0, 1)  # hit
        cache.lookup(0, 2)  # miss
        cache.lookup(0, 1)  # hit
        samples = cache.set_hit_rate_samples()
        assert samples == {0: 2 / 3}

    def test_lookup_range_counts_like_scalar_lookups(self):
        scalar, bulk = make_cache(), make_cache()
        for cache in (scalar, bulk):
            cache.enable_set_tracking()
            cache.insert_range([page(0, n) for n in (2, 4, 5)])
        for n in range(8):
            scalar.lookup(0, n)
        bulk.lookup_range(0, 0, 7)
        assert scalar.set_hit_rate_samples() == bulk.set_hit_rate_samples()

    def test_unprobed_sets_omitted(self):
        cache = make_cache(capacity_pages=16, associativity=1)  # 16 sets
        cache.enable_set_tracking()
        cache.lookup(0, 0)
        samples = cache.set_hit_rate_samples()
        assert len(samples) == 1
        assert set(samples.values()) == {0.0}

    def test_idempotent_enable_keeps_tallies(self):
        cache = make_cache(capacity_pages=8, associativity=8)
        cache.enable_set_tracking()
        cache.insert(page(0, 1))
        cache.lookup(0, 1)
        cache.enable_set_tracking()
        assert cache.set_hit_rate_samples() == {0: 1.0}
