"""In-flight read dedup: the registry and the scheduler attach path.

The :class:`InflightReadRegistry` lets a dispatch join another
dispatch's outstanding device fetch of the same flash extent instead of
re-issuing it — the cross-query I/O sharing tentpole
(``docs/io_sharing.md``).  These tests pin the registry's semantics
(attach before completion, expiry on probe, the failure contract that
never records a raised fetch) and the scheduler-level invariants: the
follower completes at ``max(arrival, leader completion)``, dedup never
changes the bytes a dispatch observes, and the page conservation law
``io.pages_requested == cache.hits + io.pages_fetched +
safs.dedup_pages`` holds exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.safs.io_request import IORequest, merge_requests
from repro.safs.io_scheduler import InflightReadRegistry, IOScheduler
from repro.safs.page import SAFSFile
from repro.safs.page_cache import PageCache, PageCacheConfig
from repro.sim.cost_model import CostModel
from repro.sim.faults import UnrecoverableIOError
from repro.sim.ssd_array import SSDArray, SSDArrayConfig
from repro.sim.stats import StatsCollector

PAGE = 4096


def merged_for(file, offset, length):
    return merge_requests([IORequest(file, offset, length)], PAGE)[0]


def make_scheduler(stats=None):
    """A scheduler with two tenant cache partitions and dedup armed.

    Partitions matter: with one shared cache the follower's pages are
    already resident by the time it dispatches (inserts happen at
    wall-clock dispatch time), so only cross-partition misses can
    overlap in flight.
    """
    stats = stats if stats is not None else StatsCollector()
    array = SSDArray(SSDArrayConfig(num_ssds=2, stripe_pages=2), stats)
    cache = PageCache(PageCacheConfig(capacity_bytes=32 * PAGE), stats)
    scheduler = IOScheduler(array, cache, CostModel(), PAGE, stats)
    scheduler.tenant_caches = {
        "a": PageCache(PageCacheConfig(capacity_bytes=32 * PAGE), stats),
        "b": PageCache(PageCacheConfig(capacity_bytes=32 * PAGE), stats),
    }
    scheduler.inflight = InflightReadRegistry()
    return scheduler


class TestRegistry:
    def test_attach_on_empty_registry_is_none(self):
        registry = InflightReadRegistry()
        assert registry.attach(0, 0, 4, 0.0) is None
        assert registry.attached == 0

    def test_attach_before_completion_returns_leader(self):
        registry = InflightReadRegistry()
        registry.record(0, 8, 4, completion=1.0)
        assert registry.attach(0, 8, 4, 0.5) == 1.0
        assert registry.attached == 1

    def test_attach_at_or_after_completion_expires_entry(self):
        registry = InflightReadRegistry()
        registry.record(0, 8, 4, completion=1.0)
        assert registry.attach(0, 8, 4, 1.0) is None
        # Expired on probe: the data went into the leader's cache, not
        # ours, so a re-probe must not resurrect the entry.
        assert len(registry) == 0
        assert registry.attach(0, 8, 4, 0.5) is None

    def test_attach_is_exact_extent_match(self):
        registry = InflightReadRegistry()
        registry.record(0, 8, 4, completion=1.0)
        assert registry.attach(0, 8, 2, 0.5) is None
        assert registry.attach(0, 10, 4, 0.5) is None
        assert registry.attach(1, 8, 4, 0.5) is None


class TestSchedulerDedup:
    def test_cross_partition_overlap_attaches(self):
        scheduler = make_scheduler()
        file = SAFSFile("a", bytes(PAGE * 8))
        scheduler.register_file(file)
        scheduler.tenant = "a"
        done_a, _, _ = scheduler.dispatch(merged_for(file, 0, 4 * PAGE), 0.0)
        assert done_a > 0.0
        # Tenant b misses its own partition on the same extent while
        # a's fetch is still outstanding on the simulated clock.
        scheduler.tenant = "b"
        done_b, _, hit = scheduler.dispatch(merged_for(file, 0, 4 * PAGE), 0.0)
        assert not hit
        assert scheduler.stats.get("safs.dedup_pages") == 4
        assert scheduler.stats.get("safs.dedup_waits") == 1
        # Follower completes exactly when the leader's fetch lands.
        assert done_b == done_a

    def test_follower_arriving_midway_pays_only_residual(self):
        scheduler = make_scheduler()
        file = SAFSFile("a", bytes(PAGE * 8))
        scheduler.register_file(file)
        scheduler.tenant = "a"
        done_a, _, _ = scheduler.dispatch(merged_for(file, 0, 4 * PAGE), 0.0)
        mid = done_a / 2
        scheduler.tenant = "b"
        done_b, _, _ = scheduler.dispatch(merged_for(file, 0, 4 * PAGE), mid)
        assert done_b == done_a
        assert scheduler.stats.get("safs.dedup_wait_seconds") == pytest.approx(
            done_a - mid
        )

    def test_attach_after_leader_lands_reissues(self):
        scheduler = make_scheduler()
        file = SAFSFile("a", bytes(PAGE * 8))
        scheduler.register_file(file)
        scheduler.tenant = "a"
        done_a, _, _ = scheduler.dispatch(merged_for(file, 0, 4 * PAGE), 0.0)
        scheduler.tenant = "b"
        fetched_before = scheduler.stats.get("io.pages_fetched")
        scheduler.dispatch(merged_for(file, 0, 4 * PAGE), done_a + 1.0)
        assert scheduler.stats.get("safs.dedup_pages") == 0
        assert scheduler.stats.get("io.pages_fetched") == fetched_before + 4

    def test_dedup_off_is_legacy_path(self):
        armed = make_scheduler()
        legacy = make_scheduler()
        legacy.inflight = None
        for scheduler in (armed, legacy):
            file = SAFSFile("a", bytes(PAGE * 8))
            scheduler.register_file(file)
            scheduler.tenant = "a"
            scheduler.dispatch(merged_for(file, 0, 4 * PAGE), 0.0)
        # Same single-tenant sequence, identical counters either way:
        # an armed-but-unused registry costs nothing.
        assert armed.stats.snapshot() == legacy.stats.snapshot()

    def test_conservation_law_with_dedup(self):
        scheduler = make_scheduler()
        file = SAFSFile("a", bytes(PAGE * 16))
        scheduler.register_file(file)
        for tenant, offset, length, at in [
            ("a", 0, 8, 0.0),
            ("b", 0, 8, 0.0),   # attaches to a's fetch
            ("a", 4, 8, 0.0),   # partial hit in a's partition
            ("b", 8, 8, 5.0),   # later: a's fetch landed, fresh read
            ("a", 0, 4, 9.0),   # pure hit
        ]:
            scheduler.tenant = tenant
            scheduler.dispatch(
                merged_for(file, offset * PAGE, length * PAGE), at
            )
        stats = scheduler.stats
        assert stats.get("io.pages_requested") == (
            stats.get("cache.hits")
            + stats.get("io.pages_fetched")
            + stats.get("safs.dedup_pages")
        )


class TestLeaderFailure:
    def test_failed_fetch_is_never_recorded(self, monkeypatch):
        scheduler = make_scheduler()
        file = SAFSFile("a", bytes(PAGE * 8))
        scheduler.register_file(file)
        scheduler.tenant = "a"

        def doomed(issue_time, flash_first, flash_count):
            raise UnrecoverableIOError(0, issue_time, "dead")

        monkeypatch.setattr(scheduler, "_fetch_extent", doomed)
        with pytest.raises(UnrecoverableIOError):
            scheduler.dispatch(merged_for(file, 0, 4 * PAGE), 0.0)
        # The failure contract: no entry, so the next requester drives
        # the full retry path itself instead of waiting forever on a
        # fetch that will never land.
        assert len(scheduler.inflight) == 0

    def test_next_requester_reissues_after_leader_death(self, monkeypatch):
        scheduler = make_scheduler()
        file = SAFSFile("a", bytes(PAGE * 8))
        scheduler.register_file(file)
        scheduler.tenant = "a"
        real_fetch = scheduler._fetch_extent

        def doomed(issue_time, flash_first, flash_count):
            raise UnrecoverableIOError(0, issue_time, "dead")

        monkeypatch.setattr(scheduler, "_fetch_extent", doomed)
        with pytest.raises(UnrecoverableIOError):
            scheduler.dispatch(merged_for(file, 0, 4 * PAGE), 0.0)
        # The fault clears; the would-be waiter re-issues and succeeds.
        monkeypatch.setattr(scheduler, "_fetch_extent", real_fetch)
        scheduler.tenant = "b"
        done, _, hit = scheduler.dispatch(merged_for(file, 0, 4 * PAGE), 0.1)
        assert not hit and done > 0.1
        assert scheduler.stats.get("safs.dedup_pages") == 0
        assert scheduler.stats.get("io.pages_fetched") == 4

    def test_aborted_dispatch_keeps_conservation_exact(self, monkeypatch):
        scheduler = make_scheduler()
        file = SAFSFile("a", bytes(PAGE * 16))
        scheduler.register_file(file)
        scheduler.tenant = "a"
        # Prime pages 0-3, then abort a span that hits 0-3 and dies on
        # the 4-7 fetch: the hits must still balance against requested.
        scheduler.dispatch(merged_for(file, 0, 4 * PAGE), 0.0)

        def doomed(issue_time, flash_first, flash_count):
            raise UnrecoverableIOError(0, issue_time, "dead")

        monkeypatch.setattr(scheduler, "_fetch_extent", doomed)
        with pytest.raises(UnrecoverableIOError):
            scheduler.dispatch(merged_for(file, 0, 8 * PAGE), 1.0)
        stats = scheduler.stats
        assert stats.get("io.pages_requested") == (
            stats.get("cache.hits")
            + stats.get("io.pages_fetched")
            + stats.get("safs.dedup_pages")
        )


class TestConservationProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b"]),
                st.integers(min_value=0, max_value=12),
                st.integers(min_value=1, max_value=8),
                st.floats(min_value=0.0, max_value=0.01),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_requested_pages_always_balance(self, ops):
        scheduler = make_scheduler()
        file = SAFSFile("a", bytes(PAGE * 20))
        scheduler.register_file(file)
        for tenant, first, length, at in ops:
            length = min(length, 20 - first)
            if length <= 0:
                continue
            scheduler.tenant = tenant
            scheduler.dispatch(
                merged_for(file, first * PAGE, length * PAGE), at
            )
        stats = scheduler.stats
        assert stats.get("io.pages_requested") == (
            stats.get("cache.hits")
            + stats.get("io.pages_fetched")
            + stats.get("safs.dedup_pages")
        )
