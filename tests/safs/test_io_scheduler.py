"""Direct unit tests for the SAFS I/O scheduler."""

import pytest

from repro.safs.io_request import IORequest, merge_requests
from repro.safs.io_scheduler import IOScheduler
from repro.safs.page import SAFSFile
from repro.safs.page_cache import PageCache, PageCacheConfig
from repro.sim.cost_model import CostModel
from repro.sim.ssd_array import SSDArray, SSDArrayConfig
from repro.sim.stats import StatsCollector

PAGE = 4096


@pytest.fixture()
def scheduler():
    stats = StatsCollector()
    array = SSDArray(SSDArrayConfig(num_ssds=2, stripe_pages=2), stats)
    cache = PageCache(PageCacheConfig(capacity_bytes=32 * PAGE), stats)
    return IOScheduler(array, cache, CostModel(), PAGE, stats)


def merged_for(file, offset, length):
    return merge_requests([IORequest(file, offset, length)], PAGE)[0]


class TestRegistration:
    def test_register_and_query(self, scheduler):
        file = SAFSFile("a", bytes(PAGE * 4))
        assert not scheduler.is_registered(file)
        scheduler.register_file(file)
        assert scheduler.is_registered(file)

    def test_double_registration_rejected(self, scheduler):
        file = SAFSFile("a", bytes(PAGE))
        scheduler.register_file(file)
        with pytest.raises(ValueError):
            scheduler.register_file(file)

    def test_files_laid_out_consecutively(self, scheduler):
        a = SAFSFile("a", bytes(PAGE * 3))
        b = SAFSFile("b", bytes(PAGE * 2))
        scheduler.register_file(a)
        scheduler.register_file(b)
        a_first, a_count = scheduler._flash_extent(a, 0, 3)
        b_first, _ = scheduler._flash_extent(b, 0, 1)
        assert b_first == a_first + a_count

    def test_dispatch_unregistered_rejected(self, scheduler):
        rogue = SAFSFile("rogue", bytes(PAGE))
        with pytest.raises(ValueError):
            scheduler.dispatch(merged_for(rogue, 0, 10), 0.0)

    def test_invalid_page_size(self):
        array = SSDArray(SSDArrayConfig(num_ssds=1))
        cache = PageCache()
        with pytest.raises(ValueError):
            IOScheduler(array, cache, CostModel(), 0)


class TestDispatch:
    def test_miss_then_hit(self, scheduler):
        file = SAFSFile("a", bytes(PAGE * 4))
        scheduler.register_file(file)
        done1, cpu1, hit1 = scheduler.dispatch(merged_for(file, 0, PAGE), 0.0)
        assert not hit1
        done2, cpu2, hit2 = scheduler.dispatch(merged_for(file, 0, PAGE), done1)
        assert hit2
        assert cpu2 < cpu1  # no page transfer on the hit path

    def test_partial_hit_single_span(self, scheduler):
        file = SAFSFile("a", bytes(PAGE * 8))
        scheduler.register_file(file)
        scheduler.dispatch(merged_for(file, 0, 2 * PAGE), 0.0)
        before = scheduler.stats.get("io.pages_fetched")
        scheduler.dispatch(merged_for(file, 0, 6 * PAGE), 1.0)
        # Pages 0-1 cached: only 2-5 fetched.
        assert scheduler.stats.get("io.pages_fetched") == before + 4

    def test_hole_in_cache_fetches_two_spans(self, scheduler):
        file = SAFSFile("a", bytes(PAGE * 8))
        scheduler.register_file(file)
        # Prime the middle pages 2-3.
        scheduler.dispatch(merged_for(file, 2 * PAGE, 2 * PAGE), 0.0)
        requests_before = scheduler.stats.get("ssd.requests")
        scheduler.dispatch(merged_for(file, 0, 8 * PAGE), 1.0)
        # Two missing runs (0-1 and 4-7), each striped over devices.
        assert scheduler.stats.get("ssd.requests") > requests_before + 1
        assert scheduler.stats.get("io.pages_fetched") == 2 + 6

    def test_full_hit_completes_at_issue_time(self, scheduler):
        file = SAFSFile("a", bytes(PAGE * 2))
        scheduler.register_file(file)
        scheduler.dispatch(merged_for(file, 0, 2 * PAGE), 0.0)
        done, _, hit = scheduler.dispatch(merged_for(file, 0, 2 * PAGE), 5.0)
        assert hit
        assert done == 5.0

    def test_cpu_cost_scales_with_span(self, scheduler):
        file = SAFSFile("a", bytes(PAGE * 16))
        scheduler.register_file(file)
        _, small_cpu, _ = scheduler.dispatch(merged_for(file, 0, PAGE), 0.0)
        scheduler.cache.clear()
        _, big_cpu, _ = scheduler.dispatch(merged_for(file, 0, 16 * PAGE), 0.0)
        assert big_cpu > small_cpu
