"""Unit tests for the §3.6 request-size histogram."""

import pytest

from repro.safs.filesystem import SAFS, SAFSConfig
from repro.safs.io_request import IORequest, merge_requests
from repro.sim.ssd_array import SSDArray, SSDArrayConfig

PAGE = 4096


@pytest.fixture()
def safs():
    array = SSDArray(SSDArrayConfig(num_ssds=2, stripe_pages=4))
    return SAFS(array, SAFSConfig(cache_bytes=256 * PAGE), stats=array.stats)


def submit_span(safs, file, first_page, num_pages):
    request = IORequest(file, first_page * PAGE, num_pages * PAGE)
    safs.submit_merged(merge_requests([request], PAGE), 0.0)


class TestRequestSizeHistogram:
    def test_single_page_bucket(self, safs):
        file = safs.create_file("f", bytes(PAGE * 128))
        submit_span(safs, file, 0, 1)
        assert safs.stats.get("io.size_1_page") == 1

    def test_small_span_bucket(self, safs):
        file = safs.create_file("f", bytes(PAGE * 128))
        submit_span(safs, file, 0, 8)
        assert safs.stats.get("io.size_2_8_pages") == 1

    def test_medium_span_bucket(self, safs):
        file = safs.create_file("f", bytes(PAGE * 128))
        submit_span(safs, file, 0, 64)
        assert safs.stats.get("io.size_9_64_pages") == 1

    def test_large_span_bucket(self, safs):
        file = safs.create_file("f", bytes(PAGE * 128))
        submit_span(safs, file, 0, 65)
        assert safs.stats.get("io.size_65plus_pages") == 1

    def test_buckets_partition_dispatches(self, safs):
        file = safs.create_file("f", bytes(PAGE * 128))
        for first, count in ((0, 1), (4, 3), (16, 20), (40, 80)):
            submit_span(safs, file, first, count)
        total = sum(
            safs.stats.get(f"io.size_{bucket}")
            for bucket in ("1_page", "2_8_pages", "9_64_pages", "65plus_pages")
        )
        assert total == safs.stats.get("io.dispatched") == 4
