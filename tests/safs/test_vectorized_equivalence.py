"""Property tests: the vectorized fast paths are observationally identical
to their per-object reference implementations.

Two invariants back the engine's batched fast path (see
``docs/architecture.md``, "Hot paths and vectorization invariants"):

- ``merge_request_arrays`` produces span-for-span the same merge as the
  object-based ``merge_requests`` — same spans, same part-to-span
  assignment, same stable ``(file, offset)`` order — for every
  ``adjacency_gap`` and ``window``;
- ``PageCache.lookup_range`` / ``insert_range`` leave the hit, miss,
  eviction and insertion counters *and* the full recency state exactly
  where the per-page ``lookup`` / ``insert`` calls would.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.safs.io_request import (
    IORequest,
    MergedRequest,
    merge_request_arrays,
    merge_requests,
)
from repro.safs.io_scheduler import IOScheduler
from repro.safs.page import Page, SAFSFile
from repro.safs.page_cache import PageCache, PageCacheConfig
from repro.sim.cost_model import DEFAULT_COST_MODEL
from repro.sim.faults import (
    DeviceFailure,
    FaultPlan,
    FaultPolicy,
    LatencySpike,
    StuckQueue,
    TransientErrors,
    UnrecoverableIOError,
)
from repro.sim.ssd_array import SSDArray, SSDArrayConfig
from repro.sim.stats import StatsCollector

PAGE = 512
FILE_BYTES = PAGE * 64


# One (offset, length) request against one of up to three files.
request_strategy = st.tuples(
    st.integers(min_value=0, max_value=2),  # file slot
    st.integers(min_value=0, max_value=FILE_BYTES - 1),  # offset
    st.integers(min_value=1, max_value=PAGE * 3),  # length
)


def _clamp(offset, length):
    return min(length, FILE_BYTES - offset)


@given(
    raw=st.lists(request_strategy, min_size=0, max_size=40),
    adjacency_gap=st.integers(min_value=0, max_value=3),
    window=st.one_of(st.none(), st.integers(min_value=1, max_value=10)),
)
@settings(max_examples=200, deadline=None)
def test_merge_arrays_matches_merge_requests(raw, adjacency_gap, window):
    files = [SAFSFile(f"f{i}", bytes(FILE_BYTES)) for i in range(3)]
    requests = [
        IORequest(files[slot], offset, _clamp(offset, length))
        for slot, offset, length in raw
    ]
    merged = merge_requests(
        requests, PAGE, adjacency_gap=adjacency_gap, window=window
    )
    spans = merge_request_arrays(
        np.asarray([r.file.file_id for r in requests]),
        np.asarray([r.offset for r in requests]),
        np.asarray([r.length for r in requests]),
        PAGE,
        adjacency_gap=adjacency_gap,
        window=window,
    )

    assert spans.num_spans == len(merged)
    for i, m in enumerate(merged):
        assert spans.file_ids[i] == m.file.file_id
        assert spans.first_pages[i] == m.first_page
        assert spans.last_pages[i] == m.last_page
    # Part assignment: the sorted elements grouped by span must list the
    # same requests, in the same order, as each MergedRequest's parts.
    flat_parts = [id(part) for m in merged for part in m.parts]
    assert flat_parts == [id(requests[j]) for j in spans.order]
    span_sizes = np.bincount(spans.span_of_part, minlength=spans.num_spans)
    assert span_sizes.tolist() == [len(m.parts) for m in merged]
    # span_of_part is grouped: non-decreasing along the sorted elements.
    if spans.span_of_part.size:
        assert np.all(np.diff(spans.span_of_part) >= 0)


# A cache operation: either a span lookup or a span insert.
op_strategy = st.tuples(
    st.sampled_from(["lookup", "insert"]),
    st.integers(min_value=0, max_value=1),  # file id
    st.integers(min_value=0, max_value=40),  # first page
    st.integers(min_value=1, max_value=12),  # span length
)


def _apply_per_page(cache, ops):
    for kind, file_id, first, count in ops:
        if kind == "lookup":
            for page_no in range(first, first + count):
                cache.lookup(file_id, page_no)
        else:
            for page_no in range(first, first + count):
                cache.insert(Page(file_id, page_no, memoryview(b"x")))


def _apply_bulk(cache, ops):
    for kind, file_id, first, count in ops:
        if kind == "lookup":
            cache.lookup_range(file_id, first, first + count - 1)
        else:
            cache.insert_range(
                Page(file_id, page_no, memoryview(b"x"))
                for page_no in range(first, first + count)
            )


def _recency_state(cache):
    state = {index: list(s.keys()) for index, s in cache._sets.items() if s}
    if cache.config.eviction == "gclock":
        bits = {
            index: [bool(b[k]) for k in cache._rings[index]]
            for index, b in cache._ref_bits.items()
        }
        hands = dict(cache._hands)
        rings = {index: list(r) for index, r in cache._rings.items()}
        return state, bits, hands, rings
    return state


@pytest.mark.parametrize("eviction", ["lru", "gclock"])
@given(ops=st.lists(op_strategy, min_size=1, max_size=30))
@settings(max_examples=150, deadline=None)
def test_bulk_cache_ops_match_per_page(eviction, ops):
    config = PageCacheConfig(
        capacity_bytes=16 * PAGE, page_size=PAGE, associativity=4, eviction=eviction
    )
    scalar_stats = StatsCollector()
    bulk_stats = StatsCollector()
    scalar = PageCache(config, scalar_stats)
    bulk = PageCache(config, bulk_stats)

    _apply_per_page(scalar, ops)
    _apply_bulk(bulk, ops)

    assert scalar_stats.snapshot() == bulk_stats.snapshot()
    assert scalar._resident == bulk._resident
    assert _recency_state(scalar) == _recency_state(bulk)


def test_lookup_range_returns_hit_mask():
    cache = PageCache(PageCacheConfig(capacity_bytes=64 * PAGE, page_size=PAGE))
    cache.insert(Page(0, 3, memoryview(b"x")))
    cache.insert(Page(0, 5, memoryview(b"x")))
    mask = cache.lookup_range(0, 2, 6)
    assert mask.tolist() == [False, True, False, True, False]
    assert cache.stats.get("cache.hits") == 2
    assert cache.stats.get("cache.misses") == 3


# ---------------------------------------------------------------------------
# Scalar vs vectorized dispatch under a nonzero fault plan
# ---------------------------------------------------------------------------

FAULT_PAGE = 4096
FILE_PAGES = 64


def _chaos_plan(seed):
    """Every fault class at once: flaky reads, a spiked device, a stuck
    queue and one dead device."""
    return FaultPlan(
        [
            TransientErrors(device=1, start=0.0, end=10.0, probability=0.4),
            LatencySpike(device=3, start=0.0, end=0.01, factor=6.0),
            StuckQueue(device=0, start=0.0005, end=0.004),
            DeviceFailure(device=2, at=0.001),
        ],
        seed=seed,
    )


def _dispatch_all(kind, plan, policy, spans):
    """Drive one fresh SAFS stack through ``spans`` with either the scalar
    ``dispatch`` or the vectorized ``dispatch_span`` and record everything
    observable: per-span results, raised aborts, and the counter stream."""
    SAFSFile._next_id = 0
    stats = StatsCollector()
    array = SSDArray(
        SSDArrayConfig(num_ssds=4, stripe_pages=2), stats, fault_plan=plan
    )
    cache = PageCache(
        PageCacheConfig(
            capacity_bytes=16 * FAULT_PAGE, page_size=FAULT_PAGE, associativity=4
        ),
        stats,
    )
    scheduler = IOScheduler(
        array, cache, DEFAULT_COST_MODEL, FAULT_PAGE, stats, fault_policy=policy
    )
    file = SAFSFile("f", bytes(FAULT_PAGE * FILE_PAGES))
    scheduler.register_file(file)
    outcomes = []
    cursor = 0.0
    for first, count in spans:
        last = min(first + count - 1, FILE_PAGES - 1)
        try:
            if kind == "scalar":
                result = scheduler.dispatch(
                    MergedRequest(file, first, last, []), cursor
                )
            else:
                result = scheduler.dispatch_span(file, first, last, cursor)
        except UnrecoverableIOError as exc:
            outcomes.append(("aborted", exc.device, exc.time, exc.reason))
            break
        cursor += result[1]
        outcomes.append(result)
    return outcomes, stats.snapshot()


span_strategy = st.tuples(
    st.integers(min_value=0, max_value=FILE_PAGES - 1),
    st.integers(min_value=1, max_value=12),
)


@given(
    spans=st.lists(span_strategy, min_size=1, max_size=25),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=60, deadline=None)
def test_dispatch_span_matches_dispatch_under_faults(spans, seed):
    """The vectorized dispatch path traverses the identical fault
    machinery as the scalar one: same retries, same reroutes, same
    completion times, same counters — bit for bit, under chaos."""
    policy = FaultPolicy(
        max_retries=10, retry_backoff=2e-4, request_timeout=0.02
    )
    scalar = _dispatch_all("scalar", _chaos_plan(seed), policy, spans)
    vectorized = _dispatch_all("span", _chaos_plan(seed), policy, spans)
    assert scalar == vectorized


@given(spans=st.lists(span_strategy, min_size=1, max_size=25))
@settings(max_examples=40, deadline=None)
def test_dispatch_paths_abort_identically(spans):
    """When recovery is impossible, both paths raise the same
    UnrecoverableIOError at the same point with the same counter stream
    (including the rolled-back cache insertions)."""
    plan = FaultPlan([DeviceFailure(device=2, at=0.0)], seed=1)
    policy = FaultPolicy(
        max_retries=1, retry_backoff=2e-4, reroute_on_dead=False
    )
    scalar = _dispatch_all("scalar", plan, policy, spans)
    vectorized = _dispatch_all("span", plan, policy, spans)
    assert scalar == vectorized
