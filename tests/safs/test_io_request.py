"""Unit and property tests for request merging (the §3.6 rules)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.safs.io_request import IORequest, merge_requests
from repro.safs.page import SAFSFile

PAGE = 4096


@pytest.fixture()
def big_file():
    return SAFSFile("edges", bytes(PAGE * 64))


def req(file, offset, length):
    return IORequest(file, offset, length)


class TestIORequest:
    def test_page_span_single_page(self, big_file):
        assert req(big_file, 0, 100).page_span(PAGE) == (0, 0)
        assert req(big_file, PAGE - 1, 1).page_span(PAGE) == (0, 0)

    def test_page_span_crossing(self, big_file):
        assert req(big_file, PAGE - 1, 2).page_span(PAGE) == (0, 1)
        assert req(big_file, 0, 3 * PAGE).page_span(PAGE) == (0, 2)

    def test_invalid_requests_rejected(self, big_file):
        with pytest.raises(ValueError):
            IORequest(big_file, -1, 10)
        with pytest.raises(ValueError):
            IORequest(big_file, 0, 0)
        with pytest.raises(ValueError):
            IORequest(big_file, big_file.size - 1, 2)

    def test_end(self, big_file):
        assert req(big_file, 10, 5).end == 15


class TestMergeRequests:
    def test_empty(self):
        assert merge_requests([], PAGE) == []

    def test_same_page_merges(self, big_file):
        merged = merge_requests([req(big_file, 0, 100), req(big_file, 200, 100)], PAGE)
        assert len(merged) == 1
        assert merged[0].num_pages == 1
        assert len(merged[0].parts) == 2

    def test_adjacent_pages_merge(self, big_file):
        # The paper's Figure 6: v1+v2 on the same page merge, v6+v8 on
        # adjacent pages merge.
        merged = merge_requests(
            [req(big_file, 0, 100), req(big_file, PAGE, 100)], PAGE
        )
        assert len(merged) == 1
        assert (merged[0].first_page, merged[0].last_page) == (0, 1)

    def test_gap_does_not_merge(self, big_file):
        merged = merge_requests(
            [req(big_file, 0, 100), req(big_file, 2 * PAGE, 100)], PAGE
        )
        assert len(merged) == 2

    def test_unsorted_input_is_sorted(self, big_file):
        merged = merge_requests(
            [req(big_file, PAGE, 10), req(big_file, 0, 10)], PAGE
        )
        assert len(merged) == 1

    def test_different_files_never_merge(self, big_file):
        other = SAFSFile("other", bytes(PAGE * 4))
        merged = merge_requests([req(big_file, 0, 10), req(other, 0, 10)], PAGE)
        assert len(merged) == 2

    def test_zero_gap_merges_only_same_page(self, big_file):
        requests = [req(big_file, 0, 10), req(big_file, PAGE, 10)]
        assert len(merge_requests(requests, PAGE, adjacency_gap=0)) == 2
        requests = [req(big_file, 0, 10), req(big_file, 100, 10)]
        assert len(merge_requests(requests, PAGE, adjacency_gap=0)) == 1

    def test_window_limits_merging(self, big_file):
        # Pages 0..3 in scrambled order: a global merger makes one span, a
        # window of 2 sees (p3, p0) then (p2, p1) and cannot join them all.
        requests = [
            req(big_file, 3 * PAGE, 10),
            req(big_file, 0, 10),
            req(big_file, 2 * PAGE, 10),
            req(big_file, PAGE, 10),
        ]
        assert len(merge_requests(requests, PAGE)) == 1
        windowed = merge_requests(requests, PAGE, window=2)
        assert len(windowed) > 1

    def test_covers(self, big_file):
        merged = merge_requests([req(big_file, 0, 2 * PAGE)], PAGE)[0]
        assert merged.covers(req(big_file, 100, 10), PAGE)
        assert not merged.covers(req(big_file, 3 * PAGE, 10), PAGE)

    def test_invalid_arguments(self, big_file):
        with pytest.raises(ValueError):
            merge_requests([req(big_file, 0, 1)], 0)
        with pytest.raises(ValueError):
            merge_requests([req(big_file, 0, 1)], PAGE, adjacency_gap=-1)
        with pytest.raises(ValueError):
            merge_requests([req(big_file, 0, 1)], PAGE, window=0)


@st.composite
def request_lists(draw):
    file = SAFSFile("prop", bytes(PAGE * 32))
    n = draw(st.integers(min_value=1, max_value=40))
    requests = []
    for _ in range(n):
        offset = draw(st.integers(min_value=0, max_value=file.size - 2))
        length = draw(st.integers(min_value=1, max_value=min(3 * PAGE, file.size - offset)))
        requests.append(IORequest(file, offset, length))
    return file, requests


class TestMergeProperties:
    @given(request_lists())
    @settings(max_examples=60, deadline=None)
    def test_every_request_appears_exactly_once(self, file_and_requests):
        _, requests = file_and_requests
        merged = merge_requests(requests, PAGE)
        flattened = [part for m in merged for part in m.parts]
        assert sorted(id(r) for r in flattened) == sorted(id(r) for r in requests)

    @given(request_lists())
    @settings(max_examples=60, deadline=None)
    def test_every_part_is_covered_by_its_span(self, file_and_requests):
        _, requests = file_and_requests
        for merged in merge_requests(requests, PAGE):
            for part in merged.parts:
                assert merged.covers(part, PAGE)

    @given(request_lists())
    @settings(max_examples=60, deadline=None)
    def test_conservative_no_uncovered_pages(self, file_and_requests):
        # Conservative merging: every page of a merged span is touched by
        # some constituent request or adjacent to one (gap of at most 1
        # between consecutive constituent spans).
        _, requests = file_and_requests
        for merged in merge_requests(requests, PAGE):
            covered = set()
            for part in merged.parts:
                first, last = part.page_span(PAGE)
                covered.update(range(first, last + 1))
            for page_no in range(merged.first_page, merged.last_page + 1):
                assert page_no in covered or (page_no - 1) in covered

    @given(request_lists())
    @settings(max_examples=60, deadline=None)
    def test_merged_spans_never_overlap(self, file_and_requests):
        _, requests = file_and_requests
        spans = sorted(
            (m.first_page, m.last_page) for m in merge_requests(requests, PAGE)
        )
        for (_, last), (nxt_first, _) in zip(spans, spans[1:]):
            assert nxt_first > last + 1
