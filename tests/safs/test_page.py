"""Unit tests for SAFS pages and file images."""

import pytest

from repro.safs.page import (
    DEFAULT_PAGE_SIZE,
    Page,
    SAFSFile,
    flash_pages_per_safs_page,
)


class TestFlashPagesPerSAFSPage:
    def test_default_page_is_one_flash_page(self):
        assert flash_pages_per_safs_page(DEFAULT_PAGE_SIZE) == 1

    def test_small_pages_still_cost_one_flash_page(self):
        # §5.4.2: a SAFS page smaller than 4KB does not increase the I/O
        # rate — the device still moves a whole flash page.
        assert flash_pages_per_safs_page(1024) == 1
        assert flash_pages_per_safs_page(512) == 1

    def test_large_pages_scale(self):
        assert flash_pages_per_safs_page(8192) == 2
        assert flash_pages_per_safs_page(1 << 20) == 256

    def test_non_multiple_rounds_up(self):
        assert flash_pages_per_safs_page(5000) == 2

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            flash_pages_per_safs_page(0)


class TestSAFSFile:
    def test_size_and_pages(self):
        f = SAFSFile("a", bytes(10_000))
        assert f.size == 10_000
        assert f.num_pages(4096) == 3
        assert f.num_pages(10_000) == 1

    def test_read_roundtrip(self):
        payload = bytes(range(256)) * 4
        f = SAFSFile("a", payload)
        assert bytes(f.read(0, len(payload))) == payload
        assert bytes(f.read(10, 5)) == payload[10:15]

    def test_read_zero_length(self):
        f = SAFSFile("a", b"abc")
        assert bytes(f.read(1, 0)) == b""

    def test_read_past_eof_rejected(self):
        f = SAFSFile("a", b"abc")
        with pytest.raises(ValueError):
            f.read(2, 2)
        with pytest.raises(ValueError):
            f.read(-1, 1)

    def test_read_page(self):
        data = bytes(range(100)) * 100
        f = SAFSFile("a", data)
        page = f.read_page(1, 4096)
        assert bytes(page) == data[4096:8192]

    def test_read_last_short_page(self):
        f = SAFSFile("a", bytes(5000))
        assert len(f.read_page(1, 4096)) == 5000 - 4096

    def test_read_page_past_eof_rejected(self):
        f = SAFSFile("a", bytes(100))
        with pytest.raises(ValueError):
            f.read_page(1, 4096)
        with pytest.raises(ValueError):
            f.read_page(-1, 4096)

    def test_file_ids_unique(self):
        a = SAFSFile("a", b"x")
        b = SAFSFile("b", b"x")
        assert a.file_id != b.file_id


class TestPage:
    def test_key(self):
        page = Page(3, 7, memoryview(b"x"))
        assert page.key == (3, 7)
