"""Tests for the per-page checksum layer (``repro.safs.integrity``).

Covers the checksum algebra (vectorized/scalar agreement, tail pages,
word-order sensitivity), the :class:`IntegrityMap` bookkeeping, the
hypothesis round-trip/corruption-detection properties the issue calls
for, and the end-to-end wiring: a fault-free SAFS stack skips
checksumming entirely (the golden fast path), while injected silent
corruption is detected and — without parity — surfaces as a clean
:class:`UnrecoverableIOError`, never wrong data.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.safs.filesystem import SAFS, SAFSConfig
from repro.safs.integrity import (
    IntegrityError,
    IntegrityMap,
    page_checksum,
    page_checksums,
)
from repro.safs.io_request import IORequest, merge_requests
from repro.safs.page import SAFSFile
from repro.sim.faults import FaultPlan, FaultPolicy, SilentCorruption, UnrecoverableIOError
from repro.sim.ssd_array import SSDArray, SSDArrayConfig

PAGE = 4096


def _rng_bytes(seed: int, length: int) -> bytes:
    return np.random.default_rng(seed).integers(0, 256, size=length, dtype=np.uint8).tobytes()


class TestChecksumAlgebra:
    def test_vectorized_matches_scalar(self):
        data = _rng_bytes(0, PAGE * 3)
        sums = page_checksums(data, PAGE)
        for i in range(3):
            assert int(sums[i]) == page_checksum(data[i * PAGE : (i + 1) * PAGE])

    def test_tail_page_matches_scalar(self):
        # A file whose last page is short: the zero padding must not
        # change the checksum relative to the scalar path on raw bytes.
        data = _rng_bytes(1, PAGE * 2 + 100)
        sums = page_checksums(data, PAGE)
        assert sums.size == 3
        assert int(sums[2]) == page_checksum(data[2 * PAGE :])

    def test_short_page_differs_from_padded_twin(self):
        # The length salt: a 100-byte page and the same bytes padded to a
        # full page must not collide.
        short = _rng_bytes(2, 100)
        assert page_checksum(short) != page_checksum(short + b"\x00" * (PAGE - 100))

    def test_word_swap_changes_checksum(self):
        # Position-dependent lane weights: swapping two 8-byte words must
        # change the fold (a plain XOR fold would not notice).
        a, b = _rng_bytes(3, 8), _rng_bytes(4, 8)
        assert page_checksum(a + b) != page_checksum(b + a)

    def test_empty_data(self):
        assert page_checksums(b"", PAGE).size == 0

    def test_page_size_must_be_multiple_of_8(self):
        with pytest.raises(ValueError):
            page_checksums(b"x" * 64, 12)


class TestChecksumProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.binary(min_size=1, max_size=600), st.sampled_from([64, 128, 256]))
    def test_round_trip_per_page(self, data, page_size):
        """Vectorized per-page sums equal the scalar sum of each slice."""
        sums = page_checksums(data, page_size)
        assert sums.size == -(-len(data) // page_size)
        for i in range(sums.size):
            chunk = data[i * page_size : (i + 1) * page_size]
            assert int(sums[i]) == page_checksum(chunk)

    @settings(max_examples=50, deadline=None)
    @given(
        st.binary(min_size=1, max_size=256),
        st.data(),
    )
    def test_any_single_bit_flip_is_detected(self, data, draw):
        """Flipping any one bit changes the checksum (bit rot never
        passes verification unnoticed)."""
        bit = draw.draw(st.integers(min_value=0, max_value=len(data) * 8 - 1))
        mutated = bytearray(data)
        mutated[bit // 8] ^= 1 << (bit % 8)
        assert page_checksum(data) != page_checksum(bytes(mutated))


class TestIntegrityMap:
    def test_register_and_verify(self):
        data = _rng_bytes(5, PAGE * 4)
        imap = IntegrityMap(PAGE)
        imap.register(7, data)
        assert imap.covers(7)
        assert not imap.covers(8)
        assert imap.num_pages(7) == 4
        for i in range(4):
            imap.verify(7, i, data[i * PAGE : (i + 1) * PAGE])

    def test_verify_rejects_mutation(self):
        data = bytearray(_rng_bytes(6, PAGE))
        imap = IntegrityMap(PAGE)
        imap.register(0, bytes(data))
        data[123] ^= 0xFF
        with pytest.raises(IntegrityError):
            imap.verify(0, 0, bytes(data))

    def test_verify_out_of_range_page(self):
        imap = IntegrityMap(PAGE)
        imap.register(0, bytes(PAGE))
        with pytest.raises(IntegrityError):
            imap.verify(0, 5, bytes(PAGE))

    def test_double_registration_rejected(self):
        imap = IntegrityMap(PAGE)
        imap.register(0, bytes(PAGE))
        with pytest.raises(ValueError):
            imap.register(0, bytes(PAGE))

    def test_odd_page_size_falls_back_to_scalar(self):
        data = _rng_bytes(7, 100)
        imap = IntegrityMap(12)  # not a multiple of 8
        imap.register(0, data)
        imap.verify(0, 2, data[24:36])
        with pytest.raises(IntegrityError):
            imap.verify(0, 2, b"x" * 12)


def _stack(plan=None, policy=None):
    SAFSFile._next_id = 0
    array = SSDArray(
        SSDArrayConfig(num_ssds=4, stripe_pages=2), fault_plan=plan
    )
    return SAFS(
        array,
        SAFSConfig(page_size=PAGE, cache_bytes=1 << 20),
        stats=array.stats,
        fault_policy=policy,
    )


class TestStackWiring:
    def test_fault_free_stack_skips_checksumming(self):
        """No fault plan, no parity: the integrity layer must not even
        exist — the legacy fast path stays untouched."""
        safs = _stack()
        assert safs.scheduler.integrity is None

    def test_faulty_stack_checksums_every_file(self):
        plan = FaultPlan([], seed=3)
        safs = _stack(plan)
        file = safs.create_file("a", _rng_bytes(8, PAGE * 8))
        imap = safs.scheduler.integrity
        assert imap is not None and imap.covers(file.file_id)
        assert imap.num_pages(file.file_id) == 8

    def test_silent_corruption_detected_and_aborts_without_parity(self):
        """Injected rot is caught by the media check and — with no parity
        to reconstruct from — exhausts retries into a clean abort."""
        plan = FaultPlan(
            [SilentCorruption(device=1, start=0.0, end=10.0, probability=1.0)],
            seed=11,
        )
        safs = _stack(plan, FaultPolicy(max_retries=2))
        file = safs.create_file("a", _rng_bytes(9, PAGE * 16))
        merged = merge_requests([IORequest(file, 0, PAGE * 16)], PAGE)[0]
        with pytest.raises(UnrecoverableIOError):
            safs.scheduler.dispatch(merged, 0.0)
        assert safs.stats.get("integrity.checksum_failures") > 0

    def test_corruption_is_persistent_per_page(self):
        """The same rotted page fails again on retry: rot is a pure
        function of (seed, device, page, window), not a coin per read."""
        corruption = SilentCorruption(device=0, start=0.0, end=10.0, probability=0.5)
        plan = FaultPlan([corruption], seed=5)
        hits = [plan.corrupted(0, page, 1.0) for page in range(64)]
        assert any(hits) and not all(hits)
        assert hits == [plan.corrupted(0, page, 1.0) for page in range(64)]
