"""Integration tests for the SAFS facade and I/O scheduler."""

import pytest

from repro.safs.filesystem import SAFS, SAFSConfig
from repro.safs.io_request import IORequest, merge_requests
from repro.safs.user_task import UserTask
from repro.sim.ssd_array import SSDArray, SSDArrayConfig
from repro.sim.stats import StatsCollector

PAGE = 4096


def make_safs(cache_pages=64, page_size=PAGE, num_ssds=4):
    stats = StatsCollector()
    array = SSDArray(SSDArrayConfig(num_ssds=num_ssds, stripe_pages=4), stats)
    config = SAFSConfig(page_size=page_size, cache_bytes=cache_pages * page_size)
    return SAFS(array, config, stats=stats)


class TestNamespace:
    def test_create_and_open(self):
        safs = make_safs()
        created = safs.create_file("graph", bytes(PAGE * 8))
        assert safs.open_file("graph") is created
        assert safs.file_names() == ["graph"]

    def test_duplicate_name_rejected(self):
        safs = make_safs()
        safs.create_file("graph", b"x")
        with pytest.raises(ValueError):
            safs.create_file("graph", b"y")

    def test_missing_file(self):
        with pytest.raises(FileNotFoundError):
            make_safs().open_file("nope")


class TestSubmit:
    def test_completion_carries_correct_bytes(self):
        safs = make_safs()
        payload = bytes(range(256)) * (PAGE // 16)
        file = safs.create_file("f", payload)
        merged = merge_requests([IORequest(file, 100, 64)], PAGE)
        completions, _cpu = safs.submit_merged(merged, 0.0)
        assert len(completions) == 1
        assert bytes(completions[0].data) == payload[100:164]

    def test_completions_sorted_by_time(self):
        safs = make_safs()
        file = safs.create_file("f", bytes(PAGE * 32))
        requests = [IORequest(file, p * PAGE, 16) for p in (30, 2, 17, 5)]
        merged = merge_requests(requests, PAGE)
        completions, _ = safs.submit_merged(merged, 0.0)
        times = [c.completion_time for c in completions]
        assert times == sorted(times)
        assert len(completions) == 4

    def test_cache_hit_is_faster_and_flagged(self):
        safs = make_safs()
        file = safs.create_file("f", bytes(PAGE * 8))
        merged = merge_requests([IORequest(file, 0, 10)], PAGE)
        first, _ = safs.submit_merged(merged, 0.0)
        assert not first[0].cache_hit
        merged = merge_requests([IORequest(file, 0, 10)], PAGE)
        second, _ = safs.submit_merged(merged, first[0].completion_time)
        assert second[0].cache_hit
        device_time = first[0].completion_time
        hit_time = second[0].completion_time - first[0].completion_time
        assert hit_time < device_time

    def test_cached_pages_cost_no_device_reads(self):
        safs = make_safs()
        file = safs.create_file("f", bytes(PAGE * 8))
        merged = merge_requests([IORequest(file, 0, 4 * PAGE)], PAGE)
        safs.submit_merged(merged, 0.0)
        fetched_before = safs.stats.get("io.pages_fetched")
        merged = merge_requests([IORequest(file, 0, 4 * PAGE)], PAGE)
        safs.submit_merged(merged, 1.0)
        assert safs.stats.get("io.pages_fetched") == fetched_before

    def test_partial_hit_fetches_only_missing_run(self):
        safs = make_safs()
        file = safs.create_file("f", bytes(PAGE * 8))
        # Prime pages 0-1.
        safs.submit_merged(merge_requests([IORequest(file, 0, 2 * PAGE)], PAGE), 0.0)
        fetched_before = safs.stats.get("io.pages_fetched")
        # Request pages 0-3: only 2-3 should be fetched.
        safs.submit_merged(merge_requests([IORequest(file, 0, 4 * PAGE)], PAGE), 1.0)
        assert safs.stats.get("io.pages_fetched") == fetched_before + 2

    def test_unregistered_file_rejected(self):
        safs = make_safs()
        from repro.safs.page import SAFSFile

        rogue = SAFSFile("rogue", bytes(PAGE))
        merged = merge_requests([IORequest(rogue, 0, 10)], PAGE)
        with pytest.raises(ValueError):
            safs.submit_merged(merged, 0.0)

    def test_empty_submit(self):
        safs = make_safs()
        completions, cpu = safs.submit([], 0.0)
        assert completions == []
        assert cpu == 0.0

    def test_user_task_runs_on_completion_data(self):
        safs = make_safs()
        payload = b"A" * 50 + b"B" * 50 + bytes(PAGE)
        file = safs.create_file("f", payload)
        seen = []
        task = UserTask(
            on_complete=lambda data, ctx, t: seen.append((bytes(data), ctx, t))
        )
        merged = merge_requests([IORequest(file, 50, 50, task)], PAGE)
        completions, _ = safs.submit_merged(merged, 0.0)
        for done in completions:
            done.request.task.run(done.data, done.completion_time)
        assert seen == [(b"B" * 50, None, completions[0].completion_time)]


class TestMergeDisciplines:
    def test_engine_merge_issues_fewer_device_requests(self):
        # Two SAFS instances over identical files; one gets pre-merged
        # requests, the other raw per-vertex requests with no merging.
        def run(fs_merge):
            safs = make_safs(cache_pages=4)  # tiny cache, no reuse
            file = safs.create_file("f", bytes(PAGE * 64))
            requests = [IORequest(file, p * PAGE, PAGE) for p in range(32)]
            completions, cpu = safs.submit(requests, 0.0, fs_merge=fs_merge)
            last = max(c.completion_time for c in completions)
            return last, cpu, safs.stats.get("io.dispatched")

        t_unmerged, cpu_unmerged, n_unmerged = run(fs_merge=False)
        t_fs, cpu_fs, n_fs = run(fs_merge=True)
        assert n_fs < n_unmerged
        assert t_fs <= t_unmerged

    def test_engine_merge_cheaper_cpu_than_fs_merge(self):
        # Figure 12: merging in FlashGraph beats merging in SAFS because
        # the kernel path costs more CPU per incoming request.
        stats_cost = {}
        for mode in ("engine", "fs"):
            safs = make_safs(cache_pages=4)
            file = safs.create_file("f", bytes(PAGE * 64))
            requests = [IORequest(file, p * PAGE, PAGE) for p in range(32)]
            if mode == "engine":
                merged = merge_requests(requests, PAGE)
                _, cpu = safs.submit_merged(merged, 0.0)
            else:
                _, cpu = safs.submit(requests, 0.0, fs_merge=True)
            stats_cost[mode] = cpu
        assert stats_cost["engine"] < stats_cost["fs"]


class TestPageSizes:
    def test_large_pages_fetch_more_flash_pages(self):
        small = make_safs(cache_pages=256, page_size=PAGE)
        large = make_safs(cache_pages=16, page_size=16 * PAGE)
        data = bytes(PAGE * 64)
        f_small = small.create_file("f", data)
        f_large = large.create_file("f", data)
        small.submit_merged(merge_requests([IORequest(f_small, 0, 100)], PAGE), 0.0)
        large.submit_merged(
            merge_requests([IORequest(f_large, 0, 100)], 16 * PAGE), 0.0
        )
        assert small.stats.get("ssd.pages_read") == 1
        assert large.stats.get("ssd.pages_read") == 16

    def test_sub_flash_page_still_reads_full_flash_page(self):
        safs = make_safs(cache_pages=256, page_size=1024)
        file = safs.create_file("f", bytes(PAGE * 4))
        safs.submit_merged(merge_requests([IORequest(file, 0, 10)], 1024), 0.0)
        assert safs.stats.get("ssd.pages_read") == 1

    def test_cached_bytes(self):
        safs = make_safs(cache_pages=64)
        file = safs.create_file("f", bytes(PAGE * 8))
        safs.submit_merged(merge_requests([IORequest(file, 0, 3 * PAGE)], PAGE), 0.0)
        assert safs.cached_bytes() == 3 * PAGE

    def test_reset_timing(self):
        safs = make_safs()
        file = safs.create_file("f", bytes(PAGE * 8))
        safs.submit_merged(merge_requests([IORequest(file, 0, PAGE)], PAGE), 0.0)
        safs.reset_timing()
        assert safs.cached_bytes() == 0
        assert safs.array.drain_time() == 0.0
