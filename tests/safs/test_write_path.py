"""Tests for the SAFS write path and the read-only-computation invariant."""

import numpy as np
import pytest

from repro.graph.builder import build_directed
from repro.safs.write_path import GraphLoader, WriteModel, assert_read_only_computation
from repro.sim.ssd_array import SSDArray, SSDArrayConfig
from repro.sim.stats import StatsCollector


@pytest.fixture()
def loader():
    stats = StatsCollector()
    array = SSDArray(SSDArrayConfig(num_ssds=4), stats)
    return GraphLoader(array, stats=stats)


@pytest.fixture()
def image():
    rng = np.random.default_rng(0)
    edges = rng.integers(0, 500, size=(3000, 2), dtype=np.int64)
    return build_directed(edges, 500, name="wp")


class TestWriteTime:
    def test_scales_with_bytes(self, loader):
        assert loader.write_time(2_000_000) == 2 * loader.write_time(1_000_000)

    def test_scales_with_devices(self, image):
        small = GraphLoader(SSDArray(SSDArrayConfig(num_ssds=2)))
        large = GraphLoader(SSDArray(SSDArrayConfig(num_ssds=8)))
        assert small.write_time(1 << 20) == 4 * large.write_time(1 << 20)

    def test_writes_slower_than_reads(self, loader):
        # Consumer SSDs of the paper's era: write bandwidth below read.
        read_bw = loader.array.config.ssd_config.seq_bandwidth
        assert loader.model.seq_write_bandwidth < read_bw

    def test_negative_rejected(self, loader):
        with pytest.raises(ValueError):
            loader.write_time(-1)


class TestLoadImage:
    def test_accounts_bytes_and_pages(self, loader, image):
        seconds, programmed = loader.load_image(image)
        assert seconds > 0
        assert programmed > 0
        assert loader.stats.get("write.bytes") == image.storage_bytes()
        # Write amplification adds flash programs beyond host pages.
        assert programmed >= loader.stats.get("write.host_pages")

    def test_wear_fraction_small_for_single_load(self, loader, image):
        loader.load_image(image)
        wear = loader.wear_fraction()
        assert 0.0 < wear < 0.01  # one load barely dents endurance

    def test_wear_zero_before_any_write(self, loader):
        assert loader.wear_fraction() == 0.0

    def test_repeated_loads_accumulate(self, loader, image):
        loader.load_image(image)
        first = loader.stats.get("write.flash_pages_programmed")
        loader.load_image(image)
        assert loader.stats.get("write.flash_pages_programmed") == 2 * first


class TestReadOnlyInvariant:
    def test_passes_when_no_computation_writes(self):
        assert_read_only_computation(StatsCollector())

    def test_fails_on_computation_writes(self):
        stats = StatsCollector()
        stats.add("write.bytes.computation", 4096)
        with pytest.raises(AssertionError):
            assert_read_only_computation(stats)

    def test_engine_runs_never_write(self, rmat_image, make_engine):
        # The whole-system invariant: algorithms only read.
        from repro.algorithms.bfs import bfs
        from repro.algorithms.wcc import wcc

        engine = make_engine(rmat_image)
        bfs(engine, 0)
        wcc(engine)
        assert_read_only_computation(engine.stats)
        assert engine.stats.get("write.bytes", 0.0) == 0.0
