"""Figure 9: CPU and I/O utilisation on the subdomain web graph."""

from repro.bench.experiments import fig9
from repro.bench.reporting import format_table, print_experiment


def test_fig9_utilization(bench_once):
    rows = bench_once(fig9)
    print_experiment(
        "Figure 9 - CPU and I/O utilisation (subdomain graph, SEM 1GB)",
        [format_table(rows)],
    )
    by_app = {r["app"]: r for r in rows}
    # Paper: BFS has the highest I/O throughput and the lowest CPU
    # utilisation (I/O bound); WCC and PR are the most CPU bound.
    assert by_app["bfs"]["io_util"] == max(r["io_util"] for r in rows)
    assert by_app["bfs"]["cpu_util"] <= by_app["wcc"]["cpu_util"]
    assert by_app["bfs"]["cpu_util"] <= by_app["pr"]["cpu_util"]
