"""Figure 11: FlashGraph vs GraphChi and X-Stream (runtime + memory)."""

import math

from repro.bench.experiments import fig11
from repro.bench.reporting import format_table, print_experiment


def test_fig11_vs_external_engines(bench_once):
    rows = bench_once(fig11)
    print_experiment(
        "Figure 11 - Runtime and memory vs external-memory engines "
        "(Twitter graph)",
        [format_table(rows)],
    )
    for row in rows:
        # Paper: one to two orders of magnitude faster; the weakest case
        # (all-active CPU-bound apps) is still several-fold.  Triangle
        # counting's gap compresses at 1/4096 scale because its workload
        # shrinks quadratically while full scans shrink linearly - every
        # engine is CPU-bound on the same intersections here - so for TC
        # we assert direction rather than magnitude (see EXPERIMENTS.md).
        factor = {"tc": 1.2, "wcc": 4, "pr": 4.5}.get(row["app"], 5)
        if not math.isnan(row.get("graphchi_s", float("nan"))):
            assert row["graphchi_s"] > factor * row["FG-1G_s"], row
        assert row["xstream_s"] > factor * row["FG-1G_s"], row
    # Traversal is where selective access pays most: >=1 order of magnitude.
    bfs_row = next(r for r in rows if r["app"] == "bfs")
    assert bfs_row["xstream_s"] > 10 * bfs_row["FG-1G_s"]
    # Paper: FlashGraph's memory footprint is comparable - sometimes
    # smaller than GraphChi's.
    tc_row = next(r for r in rows if r["app"] == "tc")
    assert tc_row["FG-1G_mem_MB"] < 10 * tc_row["graphchi_mem_MB"]
