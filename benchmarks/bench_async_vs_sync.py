#!/usr/bin/env python
"""Async priority rounds vs synchronous BSP: I/O and convergence.

Runs the three residual-capable algorithms (PageRank, WCC, SSSP) on the
twitter-sim graph in both execution modes (``docs/execution_modes.md``)
and records the comparison in ``BENCH_async.json``:

- **PageRank** syncs are capped at the paper's 30 iterations, so the
  async run stops at *equal result tolerance*: its global residual
  threshold is set to the pending mass the sync run left behind, and the
  recorded ``result_max_rel_diff`` proves both runs sit within tolerance
  of the same fixpoint.
- **WCC / SSSP** converge exactly in both modes; the benchmark asserts
  the label/distance vectors are identical.

Usage::

    PYTHONPATH=src python benchmarks/bench_async_vs_sync.py            # print table
    PYTHONPATH=src python benchmarks/bench_async_vs_sync.py --record   # + BENCH_async.json
    PYTHONPATH=src python benchmarks/bench_async_vs_sync.py --check    # CI gate
    PYTHONPATH=src python benchmarks/bench_async_vs_sync.py --markdown out.md

``--check`` exits non-zero unless async reads at least
``--min-reduction`` (default 0.2) fewer bytes than sync on
pr@twitter-sim@sem while staying inside the result tolerance, and
matches the sync fixpoint exactly on WCC/SSSP.
"""

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.algorithms.pagerank import PageRankProgram
from repro.algorithms.sssp import SSSPProgram
from repro.algorithms.wcc import WCCProgram
from repro.bench.datasets import load_dataset, scaled_cache_bytes
from repro.bench.harness import make_engine
from repro.core.config import ExecutionKind, ExecutionMode
from repro.graph.builder import build_directed
from repro.graph.generators import twitter_sim
from repro.safs.page import SAFSFile

_REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_FILE = _REPO_ROOT / "BENCH_async.json"

#: Relative L-inf tolerance for the PageRank fixpoint comparison (both
#: runs stop with the same unpropagated mass; see the module docstring).
PR_REL_TOLERANCE = 2e-3

#: Async round cap: a generous ceiling — convergence comes from
#: quiescence/threshold, never from hitting this.
ASYNC_ROUND_CAP = 5000


def _run(image, kind, program, initial_active=None, max_iterations=None, **overrides):
    """One fresh-engine run; pins the SAFS file-id counter so page-cache
    set hashing is identical no matter what ran earlier in-process."""
    SAFSFile._next_id = 0
    engine = make_engine(
        image,
        mode=ExecutionMode.SEMI_EXTERNAL,
        cache_bytes=scaled_cache_bytes(1.0),
        execution=kind,
        **overrides,
    )
    result = engine.run(
        program, initial_active=initial_active, max_iterations=max_iterations
    )
    return result


def _row(result) -> dict:
    return {
        "iterations": result.iterations,
        "bytes_read": int(result.bytes_read),
        "cache_hit_rate": round(result.cache_hit_rate, 4),
        "sim_runtime_s": result.runtime,
    }


def bench_pagerank(image) -> dict:
    sync_prog = PageRankProgram(image.num_vertices)
    sync_res = _run(image, ExecutionKind.SYNC, sync_prog, max_iterations=30)
    sync_ranks = sync_prog.rank + sync_prog.pending
    leftover = float(np.sum(np.abs(sync_prog.pending)))

    async_prog = PageRankProgram(image.num_vertices)
    async_res = _run(
        image,
        ExecutionKind.ASYNC,
        async_prog,
        max_iterations=ASYNC_ROUND_CAP,
        async_threshold=leftover,
    )
    async_ranks = async_prog.rank + async_prog.pending

    rel_diff = float(
        np.max(np.abs(sync_ranks - async_ranks)) / np.max(sync_ranks)
    )
    return {
        "sync": _row(sync_res),
        "async": _row(async_res),
        "bytes_read_reduction": round(
            1.0 - async_res.bytes_read / sync_res.bytes_read, 4
        ),
        "equal_tolerance": {
            "sync_leftover_residual": round(leftover, 6),
            "async_leftover_residual": round(
                float(np.sum(np.abs(async_prog.pending))), 6
            ),
            "result_max_rel_diff": rel_diff,
            "rel_tolerance": PR_REL_TOLERANCE,
        },
    }


def bench_wcc(image) -> dict:
    sync_prog = WCCProgram(image.num_vertices)
    sync_res = _run(image, ExecutionKind.SYNC, sync_prog)

    async_prog = WCCProgram(image.num_vertices)
    async_res = _run(
        image, ExecutionKind.ASYNC, async_prog, max_iterations=ASYNC_ROUND_CAP
    )
    return {
        "sync": _row(sync_res),
        "async": _row(async_res),
        "bytes_read_reduction": round(
            1.0 - async_res.bytes_read / sync_res.bytes_read, 4
        ),
        "results_identical": bool(
            np.array_equal(sync_prog.component, async_prog.component)
        ),
    }


def bench_sssp() -> dict:
    # SSSP needs edge weights, which the stock twitter-sim image does not
    # carry — build the same graph with seeded uniform weights.
    edges, num_vertices = twitter_sim(scale=13, seed=1)
    rng = np.random.default_rng(7)
    image = build_directed(
        edges,
        num_vertices,
        name="twitter-sim-weighted",
        weights=rng.uniform(1.0, 10.0, edges.shape[0]),
    )
    source = int(np.argmax(image.out_csr.degrees()))

    sync_prog = SSSPProgram(image.num_vertices, source)
    sync_res = _run(
        image, ExecutionKind.SYNC, sync_prog,
        initial_active=np.asarray([source]),
    )
    async_prog = SSSPProgram(image.num_vertices, source)
    async_res = _run(
        image, ExecutionKind.ASYNC, async_prog,
        initial_active=np.asarray([source]),
        max_iterations=ASYNC_ROUND_CAP,
    )
    return {
        "sync": _row(sync_res),
        "async": _row(async_res),
        "bytes_read_reduction": round(
            1.0 - async_res.bytes_read / sync_res.bytes_read, 4
        ),
        "results_identical": bool(
            np.array_equal(sync_prog.dist, async_prog.dist)
        ),
    }


def run_all() -> dict:
    image = load_dataset("twitter-sim")
    return {
        "pr@twitter-sim@sem": bench_pagerank(image),
        "wcc@twitter-sim@sem": bench_wcc(image),
        "sssp@twitter-sim-weighted@sem": bench_sssp(),
    }


def format_markdown(rows: dict) -> str:
    lines = [
        "| workload | sync iters | async rounds | sync bytes | async bytes | reduction | result |",
        "|---|---|---|---|---|---|---|",
    ]
    for name, row in rows.items():
        if "results_identical" in row:
            verdict = "identical" if row["results_identical"] else "DIVERGED"
        else:
            eq = row["equal_tolerance"]
            verdict = f"rel diff {eq['result_max_rel_diff']:.2e}"
        lines.append(
            f"| {name} | {row['sync']['iterations']} "
            f"| {row['async']['iterations']} "
            f"| {int(row['sync']['bytes_read']):,} "
            f"| {int(row['async']['bytes_read']):,} "
            f"| {row['bytes_read_reduction'] * 100:.1f}% "
            f"| {verdict} |"
        )
    return "\n".join(lines) + "\n"


def check(rows: dict, min_reduction: float) -> int:
    failed = False
    pr = rows["pr@twitter-sim@sem"]
    if pr["bytes_read_reduction"] < min_reduction:
        print(
            f"FAIL pr bytes_read reduction {pr['bytes_read_reduction']:.1%} "
            f"< required {min_reduction:.0%}",
            file=sys.stderr,
        )
        failed = True
    eq = pr["equal_tolerance"]
    if eq["result_max_rel_diff"] > eq["rel_tolerance"]:
        print(
            f"FAIL pr result diff {eq['result_max_rel_diff']:.2e} exceeds "
            f"tolerance {eq['rel_tolerance']:.2e}",
            file=sys.stderr,
        )
        failed = True
    if eq["async_leftover_residual"] > eq["sync_leftover_residual"]:
        print("FAIL async stopped less converged than sync", file=sys.stderr)
        failed = True
    for name in ("wcc@twitter-sim@sem", "sssp@twitter-sim-weighted@sem"):
        row = rows[name]
        if not row["results_identical"]:
            print(f"FAIL {name}: async result diverged from sync", file=sys.stderr)
            failed = True
        if row["async"]["bytes_read"] > row["sync"]["bytes_read"]:
            print(f"FAIL {name}: async read more bytes than sync", file=sys.stderr)
            failed = True
    print("async-vs-sync check:", "FAILED" if failed else "ok")
    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--record", action="store_true",
                        help="write the comparison to BENCH_async.json")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless the async wins hold")
    parser.add_argument("--min-reduction", type=float, default=0.2,
                        help="--check: required pr bytes_read reduction (default 0.2)")
    parser.add_argument("--markdown", metavar="PATH",
                        help="also write the comparison as a Markdown table")
    args = parser.parse_args()

    rows = run_all()
    print(format_markdown(rows))
    if args.record:
        RESULTS_FILE.write_text(json.dumps(rows, indent=2, sort_keys=True) + "\n")
        print(f"recorded {len(rows)} workloads in {RESULTS_FILE.name}")
    if args.markdown:
        Path(args.markdown).write_text(format_markdown(rows))
        print(f"wrote Markdown table -> {args.markdown}")
    if args.check:
        return check(rows, args.min_reduction)
    return 0


if __name__ == "__main__":
    sys.exit(main())
