"""Table 1: graph datasets (paper vs scaled stand-ins)."""

from repro.bench.experiments import table1
from repro.bench.reporting import format_table, print_experiment


def test_table1_datasets(bench_once):
    rows = bench_once(table1)
    print_experiment(
        "Table 1 - Graph data sets (scaled stand-ins)",
        [format_table(rows)],
    )
    # The stand-ins must preserve each dataset's edges/vertex ratio band.
    by_name = {r["dataset"]: r for r in rows}
    assert 25 <= by_name["twitter-sim"]["edges_per_vertex"] <= 40
    assert 15 <= by_name["subdomain-sim"]["edges_per_vertex"] <= 25
    assert 25 <= by_name["page-sim"]["edges_per_vertex"] <= 40
    # The page graph is the stringy, high-diameter one.
    assert by_name["page-sim"]["sim_diam"] > 5 * by_name["twitter-sim"]["sim_diam"]
