#!/usr/bin/env python
"""Wall-clock benchmark harness for the simulator itself.

Every other benchmark in this directory reports *simulated* seconds; this
one records how long the simulator takes in *real* wall-clock time.  The
vectorized hot paths (batched vertex execution, array-based I/O merging,
bulk page-cache operations) change only wall-clock cost — simulated
counters must stay bit-identical — so this harness is where the perf
trajectory is tracked, suite by suite, in ``BENCH_wallclock.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py                 # run + print full suite
    PYTHONPATH=src python benchmarks/bench_wallclock.py --record after  # run + store under "after"
    PYTHONPATH=src python benchmarks/bench_wallclock.py --record smoke  # store the smoke baseline
    PYTHONPATH=src python benchmarks/bench_wallclock.py --smoke         # CI: fail on >2x regression

``--smoke`` runs the short suite and exits non-zero when any suite is more
than ``--tolerance`` (default 2.0) times slower than the committed
baseline's ``smoke`` section — loose enough for shared CI runners, tight
enough to catch an accidental return to per-vertex Python loops.
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.bench.datasets import load_dataset, scaled_cache_bytes
from repro.bench.harness import (
    collect_metrics,
    make_engine,
    run_algorithm,
    write_metrics_json,
)
from repro.core.config import ExecutionMode
from repro.obs import arm, build_profile, validate_profile
from repro.safs.page import SAFSFile

_REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_FILE = _REPO_ROOT / "BENCH_wallclock.json"
METRICS_FILE = _REPO_ROOT / "BENCH_metrics.json"
PROFILE_FILE = _REPO_ROOT / "BENCH_profile.json"

#: The suite whose per-layer profile becomes BENCH_profile.json.
PROFILE_SUITE = (
    "pr@twitter-sim@sem", "twitter-sim", "pr", ExecutionMode.SEMI_EXTERNAL, "v1"
)

#: (suite name, graph, app, mode, edge-list format).  The SEM suites
#: exercise the full request/merge/cache/delivery stack; the MEM suites
#: isolate the engine; the ``@v2`` suites run the same workload over the
#: compressed on-SSD format so its wall-clock and bytes_read deltas are
#: tracked next to the v1 numbers.
FULL_SUITES = (
    ("pr@twitter-sim@sem", "twitter-sim", "pr", ExecutionMode.SEMI_EXTERNAL, "v1"),
    ("wcc@twitter-sim@sem", "twitter-sim", "wcc", ExecutionMode.SEMI_EXTERNAL, "v1"),
    ("bfs@twitter-sim@sem", "twitter-sim", "bfs", ExecutionMode.SEMI_EXTERNAL, "v1"),
    ("pr@twitter-sim@sem@v2", "twitter-sim", "pr", ExecutionMode.SEMI_EXTERNAL, "v2"),
    ("wcc@twitter-sim@sem@v2", "twitter-sim", "wcc", ExecutionMode.SEMI_EXTERNAL, "v2"),
    ("bfs@twitter-sim@sem@v2", "twitter-sim", "bfs", ExecutionMode.SEMI_EXTERNAL, "v2"),
    ("pr@twitter-sim@mem", "twitter-sim", "pr", ExecutionMode.IN_MEMORY, "v1"),
    ("wcc@twitter-sim@mem", "twitter-sim", "wcc", ExecutionMode.IN_MEMORY, "v1"),
)

SMOKE_SUITES = (
    ("pr@twitter-sim@sem", "twitter-sim", "pr", ExecutionMode.SEMI_EXTERNAL, "v1"),
    ("wcc@twitter-sim@sem", "twitter-sim", "wcc", ExecutionMode.SEMI_EXTERNAL, "v1"),
    ("pr@twitter-sim@sem@v2", "twitter-sim", "pr", ExecutionMode.SEMI_EXTERNAL, "v2"),
)


def run_suite(
    graph: str, app: str, mode: ExecutionMode, repeats: int = 1, fmt: str = "v1"
) -> dict:
    """Run one (graph, app, mode, fmt) suite; wall_s is the best of
    ``repeats``.

    ``SAFSFile._next_id`` is pinned before each run so page-cache set
    hashing (which keys on file_id) is reproducible no matter what ran
    earlier in the process.
    """
    image = load_dataset(graph, fmt)
    cache = scaled_cache_bytes(1.0)
    best = None
    result = None
    for _ in range(repeats):
        SAFSFile._next_id = 0
        engine = make_engine(image, mode=mode, cache_bytes=cache)
        start = time.perf_counter()
        result = run_algorithm(engine, app)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return {
        "wall_s": best,
        "sim_runtime_s": result.runtime,
        "bytes_read": result.bytes_read,
        "cache_hit_rate": result.cache_hit_rate,
        "iterations": result.iterations,
        "format": fmt,
    }


def run_suites(suites, repeats: int = 1) -> dict:
    rows = {}
    for name, graph, app, mode, fmt in suites:
        rows[name] = run_suite(graph, app, mode, repeats=repeats, fmt=fmt)
        print(
            f"{name:24s} wall={rows[name]['wall_s']:8.3f}s  "
            f"sim={rows[name]['sim_runtime_s']:.6f}s  "
            f"iters={rows[name]['iterations']}"
        )
    return rows


def record(section: str, rows: dict, merge: bool = False) -> None:
    data = json.loads(RESULTS_FILE.read_text()) if RESULTS_FILE.exists() else {}
    if merge and section in data:
        # Merge keeps suites recorded on other machines untouched —
        # wall_s values are host-specific, so re-recording everything
        # just to add one suite would perturb the whole baseline.
        data[section] = {**data[section], **rows}
    else:
        data[section] = rows
    before, after = data.get("before"), data.get("after")
    if before and after:
        data["speedup"] = {
            name: round(before[name]["wall_s"] / after[name]["wall_s"], 2)
            for name in after
            if name in before and after[name]["wall_s"] > 0
        }
    RESULTS_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"recorded {len(rows)} suites under {section!r} in {RESULTS_FILE.name}")


def record_metrics() -> None:
    """Re-run the smoke suites with the observer armed (untimed) and
    write ``BENCH_metrics.json`` plus the flagship suite's per-layer
    breakdown as ``BENCH_profile.json``.

    Arming never moves simulated counters (the bit-identical contract
    checked by ``--smoke``), so the snapshots here match what the timed
    runs saw — with latency histograms and gauge series filled in.
    """
    sections = {}
    profile = None
    for name, graph, app, mode, fmt in SMOKE_SUITES:
        image = load_dataset(graph, fmt)
        SAFSFile._next_id = 0
        engine = make_engine(image, mode=mode, cache_bytes=scaled_cache_bytes(1.0))
        observer = arm(engine) if mode is ExecutionMode.SEMI_EXTERNAL else None
        run_algorithm(engine, app)
        sections[name] = collect_metrics(engine, label=name)
        if (name, graph, app, mode, fmt) == PROFILE_SUITE and observer is not None:
            profile = build_profile(observer, label=name)
    write_metrics_json(METRICS_FILE, sections)
    print(f"recorded {len(sections)} metric snapshots in {METRICS_FILE.name}")
    if profile is not None:
        problems = validate_profile(profile)
        if problems:
            raise AssertionError(f"invalid profile: {problems}")
        PROFILE_FILE.write_text(
            json.dumps(profile, indent=2, sort_keys=True) + "\n"
        )
        print(f"recorded {PROFILE_SUITE[0]} profile in {PROFILE_FILE.name}")


def smoke_check(tolerance: float) -> int:
    if not RESULTS_FILE.exists():
        print(f"no {RESULTS_FILE.name}; run --record smoke first", file=sys.stderr)
        return 2
    baseline = json.loads(RESULTS_FILE.read_text()).get("smoke")
    if not baseline:
        print(f"{RESULTS_FILE.name} has no 'smoke' section", file=sys.stderr)
        return 2
    rows = run_suites(SMOKE_SUITES)
    failed = False
    for name, row in rows.items():
        ref = baseline.get(name)
        if ref is None:
            print(f"SKIP {name}: no baseline entry")
            continue
        ratio = row["wall_s"] / ref["wall_s"]
        verdict = "ok" if ratio <= tolerance else "REGRESSION"
        print(f"{name:24s} {row['wall_s']:.3f}s vs baseline {ref['wall_s']:.3f}s "
              f"({ratio:.2f}x) {verdict}")
        if ratio > tolerance:
            failed = True
        # The simulated counters are part of the contract: the fast paths
        # may only change wall-clock, never results.
        for key in ("sim_runtime_s", "bytes_read", "cache_hit_rate", "iterations"):
            if row[key] != ref[key]:
                print(f"COUNTER DRIFT {name}.{key}: {row[key]!r} != baseline "
                      f"{ref[key]!r}", file=sys.stderr)
                failed = True
    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short suite; compare against the committed baseline")
    parser.add_argument("--record", metavar="SECTION",
                        help="store results under this section of BENCH_wallclock.json "
                             "(before / after / smoke)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="repeats per suite; wall_s is the minimum (default 2)")
    parser.add_argument("--tolerance", type=float, default=2.0,
                        help="--smoke failure threshold vs baseline (default 2.0)")
    parser.add_argument("--only", action="append", metavar="SUITE",
                        help="limit to suites whose name contains this substring "
                             "(repeatable); with --record, merges into the "
                             "section instead of replacing it")
    args = parser.parse_args()

    if args.smoke:
        return smoke_check(args.tolerance)
    suites = SMOKE_SUITES if args.record == "smoke" else FULL_SUITES
    if args.only:
        suites = tuple(
            s for s in suites if any(sub in s[0] for sub in args.only)
        )
        if not suites:
            print("no suites match --only", file=sys.stderr)
            return 2
    rows = run_suites(suites, repeats=args.repeats)
    if args.record:
        record(args.record, rows, merge=bool(args.only))
        if not args.only:
            record_metrics()
    return 0


if __name__ == "__main__":
    sys.exit(main())
