"""Figure 8: semi-external memory (1GB cache) relative to in-memory."""

from repro.bench.experiments import fig8
from repro.bench.reporting import format_table, print_experiment


def test_fig8_sem_vs_mem(bench_once):
    rows = bench_once(fig8)
    print_experiment(
        "Figure 8 - SEM FlashGraph (1GB cache) relative to in-memory",
        [format_table(rows)],
    )
    # Paper: SEM preserves a large fraction of in-memory performance -
    # up to ~80%, and >40% even in the worst cases (BFS/TC on subdomain).
    for row in rows:
        assert 0.1 <= row["relative_perf"] <= 1.05, row
    best = max(r["relative_perf"] for r in rows)
    assert best >= 0.6
