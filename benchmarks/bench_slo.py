#!/usr/bin/env python
"""Cost of the serving-layer SLO observability plane.

Serves the same seeded two-tenant overload scenario on twitter-sim
three times — **disarmed** (no sampler, no declared objectives, no
observer: the plain serving fast path), **armed** (timeline sampler +
SLO burn tracking, the always-on production shape) and **traced**
(those plus the full span :class:`Observer`, the ``repro slo
--trace-spans`` shape) — and records:

- min-of-N wall-clock for each; the armed/disarmed overhead fraction
  is the gated headline (<5%: windowed sampling + burn tracking are
  cheap enough to leave on), while the traced delta is informational —
  full span tracing has always been the expensive opt-in;
- the bit-identity check: the armed run's final ``serve.*`` counters
  must equal the disarmed run's byte for byte (observability never
  perturbs the simulation);
- the armed run's own outputs (timeline rows, burn events, a validated
  ``repro.slo/v1`` document) so the bench doubles as an end-to-end
  smoke of the plane.

Usage::

    PYTHONPATH=src python benchmarks/bench_slo.py                 # print table
    PYTHONPATH=src python benchmarks/bench_slo.py --record        # + BENCH_slo.json
    PYTHONPATH=src python benchmarks/bench_slo.py --smoke --check # CI gate
    PYTHONPATH=src python benchmarks/bench_slo.py --markdown out.md

``--check`` exits non-zero when the counter streams diverge (that is a
correctness bug, gated unconditionally), when the armed run's SLO
document fails validation, or when the armed overhead exceeds
``--tolerance`` (default 0.05 — the issue's <5% budget; wall-clock on
shared runners is noisy, so the gate uses min-of-``--repeats``).
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.bench.datasets import load_dataset
from repro.obs import (
    Observer,
    TimelineSampler,
    build_slo_report,
    validate_slo_report,
)
from repro.serve import (
    GraphService,
    OverloadConfig,
    ServiceConfig,
    TenantSpec,
    TenantTraffic,
    generate_trace,
)

_REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_FILE = _REPO_ROOT / "BENCH_slo.json"

TRAFFIC_SEED = 11
DURATION_S = 0.2
SMOKE_DURATION_S = 0.05


def _tenants(armed):
    """The interactive mix; the armed variant declares objectives."""
    slo = dict(slo_latency_s=0.025, slo_target=0.95, slo_availability=0.9)
    return [
        TenantSpec(
            name="acme",
            weight=2.0,
            max_concurrent=3,
            **(slo if armed else {}),
        ),
        TenantSpec(name="globex", max_concurrent=2),
    ]


TRAFFICS = [
    TenantTraffic(
        tenant="acme",
        rate_qps=240.0,
        apps=("pr", "bfs", "wcc"),
        burst_factor=4.0,
        burst_fraction=0.2,
    ),
    TenantTraffic(tenant="globex", rate_qps=120.0, apps=("bfs", "wcc")),
]

CONFIG = ServiceConfig(
    policy="fair",
    overload=OverloadConfig(
        tenant_queue_cap=8,
        global_queue_cap=24,
        brownout=True,
    ),
)


MODES = ("disarmed", "armed", "traced")


def _run(image, duration, mode):
    """One serve pass; returns (service, report, sampler, wall_seconds)."""
    trace = generate_trace(TRAFFICS, duration, seed=TRAFFIC_SEED)
    armed = mode != "disarmed"
    sampler = TimelineSampler() if armed else None
    observer = Observer() if mode == "traced" else None
    service = GraphService(
        image,
        _tenants(armed),
        CONFIG,
        observer=observer,
        timeline=sampler,
    )
    start = time.perf_counter()
    report = service.serve(trace)
    wall = time.perf_counter() - start
    return service, report, sampler, wall


def _serve_counters(service):
    return {
        name: value
        for name, value in service.stats.snapshot().items()
        if name.startswith("serve.")
    }


def run_bench(duration, repeats):
    image = load_dataset("twitter-sim")
    walls = {mode: [] for mode in MODES}
    outcome = {}
    for _ in range(repeats):
        for mode in MODES:
            service, report, sampler, wall = _run(image, duration, mode)
            walls[mode].append(wall)
            outcome[mode] = (service, report, sampler)
    disarmed_s = min(walls["disarmed"])
    armed_s = min(walls["armed"])
    traced_s = min(walls["traced"])
    overhead = armed_s / disarmed_s - 1.0 if disarmed_s > 0 else 0.0
    traced_overhead = traced_s / disarmed_s - 1.0 if disarmed_s > 0 else 0.0

    plain_service, plain_report, _ = outcome["disarmed"]
    armed_service, armed_report, sampler = outcome["armed"]
    traced_service, _, _ = outcome["traced"]
    plain = _serve_counters(plain_service)
    counters_identical = (
        plain == _serve_counters(armed_service)
        and plain == _serve_counters(traced_service)
    )
    doc = build_slo_report(
        armed_report,
        armed_service.slo,
        sampler,
        label=f"bench_slo twitter-sim {duration}s seed={TRAFFIC_SEED}",
    )
    problems = validate_slo_report(doc)
    return {
        "scenario": {
            "dataset": "twitter-sim",
            "duration_s": duration,
            "seed": TRAFFIC_SEED,
            "repeats": repeats,
            "policy": CONFIG.policy,
        },
        "wall": {
            "disarmed_s": disarmed_s,
            "armed_s": armed_s,
            "traced_s": traced_s,
            "overhead_frac": overhead,
            "traced_overhead_frac": traced_overhead,
        },
        "counters_identical": counters_identical,
        "armed_run": {
            "offered": armed_report.offered,
            "completed": armed_report.completed,
            "aborted": armed_report.aborted,
            "shed": armed_report.shed,
            "timeline_rows": len(sampler.snapshots),
            "burn_events": len(doc["slo"]["events"]) if doc["slo"] else 0,
            "query_spans": len(traced_service.observer.query_spans),
        },
        "slo_doc_problems": problems,
    }


def format_table(results):
    wall = results["wall"]
    armed = results["armed_run"]
    lines = [
        f"bench_slo: {results['scenario']['dataset']} "
        f"{results['scenario']['duration_s']}s simulated, "
        f"min of {results['scenario']['repeats']}",
        f"{'mode':<10} {'wall (s)':>10}",
        f"{'disarmed':<10} {wall['disarmed_s']:>10.4f}",
        f"{'armed':<10} {wall['armed_s']:>10.4f}",
        f"{'traced':<10} {wall['traced_s']:>10.4f}",
        f"sampler overhead: {wall['overhead_frac'] * 100:+.2f}% "
        f"(traced: {wall['traced_overhead_frac'] * 100:+.2f}%)  "
        f"counters identical: {results['counters_identical']}",
        f"armed run: {armed['completed']}/{armed['offered']} completed, "
        f"{armed['shed']} shed, {armed['timeline_rows']} timeline rows, "
        f"{armed['burn_events']} burn events, "
        f"{armed['query_spans']} query spans",
    ]
    return "\n".join(lines)


def format_markdown(results):
    wall = results["wall"]
    lines = [
        "| mode | wall (s) |",
        "|---|---|",
        f"| disarmed | {wall['disarmed_s']:.4f} |",
        f"| armed | {wall['armed_s']:.4f} |",
        f"| traced | {wall['traced_s']:.4f} |",
        "",
        f"Sampler overhead: {wall['overhead_frac'] * 100:+.2f}%, "
        f"full tracing: {wall['traced_overhead_frac'] * 100:+.2f}% "
        f"(counters identical: {results['counters_identical']})",
    ]
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--record", action="store_true",
                        help="write results to BENCH_slo.json")
    parser.add_argument("--check", action="store_true",
                        help="gate: counters identical, valid SLO doc, "
                             "overhead under --tolerance")
    parser.add_argument("--smoke", action="store_true",
                        help="short duration for CI")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="--check: max armed overhead fraction "
                             "(default 0.05)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="wall-clock repeats, min taken (default 3)")
    parser.add_argument("--markdown", metavar="PATH",
                        help="also write a Markdown table")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the results JSON here")
    args = parser.parse_args()

    duration = SMOKE_DURATION_S if args.smoke else DURATION_S
    results = run_bench(duration, args.repeats)
    print(format_table(results))

    if args.record:
        RESULTS_FILE.write_text(
            json.dumps(results, indent=2, sort_keys=True) + "\n"
        )
        print(f"recorded {RESULTS_FILE}")
    if args.json:
        Path(args.json).write_text(
            json.dumps(results, indent=2, sort_keys=True) + "\n"
        )
    if args.markdown:
        Path(args.markdown).write_text(format_markdown(results) + "\n")

    failures = []
    if not results["counters_identical"]:
        failures.append(
            "armed serve.* counters diverge from the disarmed run"
        )
    if results["slo_doc_problems"]:
        failures.extend(
            f"slo doc: {p}" for p in results["slo_doc_problems"]
        )
    if args.check:
        overhead = results["wall"]["overhead_frac"]
        if overhead > args.tolerance:
            failures.append(
                f"sampler overhead {overhead * 100:.2f}% exceeds "
                f"{args.tolerance * 100:.0f}% budget"
            )
    if failures:
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
