"""Figure 13: the impact of the SAFS page size."""

from repro.bench.experiments import fig13
from repro.bench.reporting import format_table, print_experiment


def test_fig13_page_size(bench_once):
    rows = bench_once(fig13)
    print_experiment(
        "Figure 13 - SAFS page size sweep (4KB - 1MB)",
        [format_table(rows)],
    )
    for app in ("bfs", "tc", "wcc"):
        by_size = {r["page_size"]: r["runtime_s"] for r in rows if r["app"] == app}
        # Paper: 4KB is the right page size; 1MB pages waste bandwidth and
        # degrade every application, selective ones dramatically.  TC's
        # curve is nearly flat across small pages (it is CPU-bound), so
        # 4KB only needs to be within a few percent of the optimum there.
        assert by_size[4096] <= min(by_size.values()) * 1.05, (app, by_size)
        assert by_size[1048576] > by_size[4096], (app, by_size)
        if app in ("bfs", "wcc"):
            assert by_size[4096] == min(by_size.values()), (app, by_size)
    # The selective-access applications degrade hardest (TurboGraph's
    # multi-megabyte blocks would be suboptimal).
    bfs = {r["page_size"]: r["runtime_s"] for r in rows if r["app"] == "bfs"}
    assert bfs[1048576] > 2 * bfs[4096]
