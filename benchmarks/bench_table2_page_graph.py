"""Table 2: the billion-node page graph stand-in (4GB cache)."""

from repro.bench.experiments import table2
from repro.bench.reporting import format_table, print_experiment


def test_table2_page_graph(bench_once):
    rows = bench_once(table2)
    print_experiment(
        "Table 2 - Page graph stand-in, 4GB-equivalent cache",
        [format_table(rows)],
    )
    by_app = {r["app"]: r for r in rows}
    # The paper's TC >> everything ordering does not survive 1/4096
    # scaling (triangle work shrinks quadratically, diameter-driven
    # iteration costs do not - see EXPERIMENTS.md); the claims below do.
    # BFS stays among the cheapest despite the huge diameter:
    assert by_app["bfs"]["runtime_s"] < by_app["pr"]["runtime_s"]
    assert by_app["bfs"]["runtime_s"] < by_app["tc"]["runtime_s"]
    # Traversals run for diameter-many iterations on the stringy page graph:
    assert by_app["bfs"]["iterations"] > 50
    # The headline: every application's memory footprint is a fraction of
    # the on-SSD graph size (the paper: 22-83GB against a 1.1TB graph).
    from repro.bench.datasets import load_dataset
    graph_mb = load_dataset("page-sim").storage_bytes() / 1e6
    for row in rows:
        assert 0 < row["memory_MB"] < 0.6 * graph_mb, row
