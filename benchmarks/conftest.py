"""Benchmark configuration.

Every benchmark regenerates one table or figure of the paper.  The
deliverable is the printed table (simulated seconds + exact counters);
pytest-benchmark's wall-clock numbers only measure the harness itself, so
each bench runs exactly one round.
"""

import pytest

from repro.bench.reporting import results_path


def pytest_sessionstart(session):
    """Start each benchmark session with a fresh table mirror file."""
    with open(results_path(), "w") as mirror:
        mirror.write("FlashGraph reproduction - benchmark tables\n")


def run_once(benchmark, experiment_fn):
    """Run ``experiment_fn`` exactly once under pytest-benchmark."""
    return benchmark.pedantic(experiment_fn, rounds=1, iterations=1)


@pytest.fixture()
def bench_once(benchmark):
    def _run(experiment_fn):
        return run_once(benchmark, experiment_fn)

    return _run
