"""Ablations for DESIGN.md's design decisions (beyond the paper's figures)."""

from repro.bench.experiments import ablations
from repro.bench.reporting import format_table, print_experiment


def test_ablations(bench_once):
    rows = bench_once(ablations)
    print_experiment("Ablations (engine design choices)", [format_table(rows)])

    def series(name):
        return {r["setting"]: r["runtime_s"] for r in rows if r["ablation"] == name}

    merge = series("engine-merge")
    assert merge["True"] < merge["False"]

    running = series("max-running-vertices")
    # §3.7: a larger merge window helps up to a plateau.
    assert running["4000"] < running["100"]
    assert abs(running["4000"] - running["1000"]) <= 0.2 * running["1000"]

    vertical = series("vertical-partitioning")
    # Splitting hub requests across threads must not hurt (it mildly
    # helps: parts of a hub's neighbor reads run in parallel, §3.8).
    assert vertical["threshold=512"] <= 1.05 * vertical["threshold=0"]

    ssds = series("ssd-count")
    assert ssds["15"] < ssds["1"]
