"""Figure 10: FlashGraph vs PowerGraph and Galois."""

from repro.bench.experiments import fig10
from repro.bench.reporting import format_table, print_experiment


def test_fig10_vs_inmemory_engines(bench_once):
    rows = bench_once(fig10)
    print_experiment(
        "Figure 10 - Runtime vs in-memory engines (FG-mem, FG-1G, "
        "PowerGraph, Galois)",
        [format_table(rows)],
    )
    for row in rows:
        # Paper: both FlashGraph builds significantly outperform PowerGraph.
        assert row["FG-mem_s"] < row["powergraph_s"], row
        assert row["FG-1G_s"] < row["powergraph_s"], row
    # Paper: Galois wins graph traversal (direction-optimizing BFS)...
    traversal = [r for r in rows if r["app"] in ("bfs", "bc")]
    assert all(r["galois_s"] < r["FG-mem_s"] for r in traversal)
    # ...while in-memory FlashGraph wins WCC and PageRank.
    push_style = [r for r in rows if r["app"] in ("wcc", "pr")]
    assert all(r["FG-mem_s"] < r["galois_s"] for r in push_style)
