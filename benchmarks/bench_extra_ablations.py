"""Extra ablations: TurboGraph block sizes, cache policy, stragglers."""

from repro.bench.extra_experiments import (
    cache_policy_ablation,
    straggler_experiment,
    turbograph_comparison,
)
from repro.bench.reporting import format_table, print_experiment


def test_turbograph_comparison(bench_once):
    rows = bench_once(turbograph_comparison)
    print_experiment(
        "TurboGraph-style multi-megabyte blocks vs FlashGraph's 4KB pages "
        "(the §5.4.2 argument, direct)",
        [format_table(rows)],
    )
    for row in rows:
        assert row["turbo_read_MB"] > row["fg_read_MB"], row
        assert row["turbograph_s"] > row["flashgraph_s"], row


def test_cache_policy_ablation(bench_once):
    rows = bench_once(cache_policy_ablation)
    print_experiment(
        "SAFS page cache: eviction policy x associativity (WCC)",
        [format_table(rows)],
    )
    # Both policies must produce sane hit rates; higher associativity
    # should not hurt hit rates materially.
    for row in rows:
        assert 0.0 <= row["cache_hit"] <= 1.0
    lru8 = next(r for r in rows if r["eviction"] == "lru" and r["associativity"] == 8)
    gcl8 = next(
        r for r in rows if r["eviction"] == "gclock" and r["associativity"] == 8
    )
    assert abs(lru8["cache_hit"] - gcl8["cache_hit"]) < 0.2


def test_straggler_experiment(bench_once):
    rows = bench_once(straggler_experiment)
    print_experiment(
        "Degraded-device resilience: BFS with N stragglers in the array",
        [format_table(rows)],
    )
    by_count = {r["stragglers"]: r["runtime_s"] for r in rows}
    # More stragglers, more pain; but one slow device out of 15 must not
    # slow the run 4x - per-SSD queues confine the damage.
    assert by_count[0] <= by_count[1] <= by_count[4]
    # One slow device out of 15 must not degrade the whole run by its
    # full 4x slowdown - per-SSD queues confine most of the damage.
    assert by_count[1] < 3.5 * by_count[0]


def test_partitioning_ablation(bench_once):
    from repro.bench.extra_experiments import partitioning_ablation

    rows = bench_once(partitioning_ablation)
    print_experiment(
        "Horizontal partitioning: range (paper) vs hash (counterfactual)",
        [format_table(rows)],
    )
    for app in ("bfs", "wcc"):
        ranged = next(
            r for r in rows if r["strategy"] == "range" and r["app"] == app
        )
        hashed = next(
            r for r in rows if r["strategy"] == "hash" and r["app"] == app
        )
        # §3.8: range partitioning localises each thread's I/O.
        assert ranged["pages_fetched"] <= hashed["pages_fetched"], app
        assert ranged["runtime_s"] <= 1.05 * hashed["runtime_s"], app
