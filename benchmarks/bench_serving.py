#!/usr/bin/env python
"""Sustained QPS vs tail latency for the multi-tenant serving layer.

Serves seeded open-loop traffic (``repro.serve``) against the shared
SAFS stack on twitter-sim across an offered-QPS sweep, for two tenant
mixes, each run clean and under the composed chaos plan (flaky device +
stuck queue + one SSD death).  Records sustained-QPS-vs-p50/p99 curves
in ``BENCH_serving.json``:

- **interactive**: a bursty heavy tenant (weight 2, quota 3, Zipf over
  pr/bfs/wcc) sharing with a steady light tenant (quota 2, bfs/wcc) —
  the fair-share stress shape.
- **uniform**: two identical steady tenants — the baseline shape.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py            # print table
    PYTHONPATH=src python benchmarks/bench_serving.py --record   # + BENCH_serving.json
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke --check  # CI gate
    PYTHONPATH=src python benchmarks/bench_serving.py --markdown out.md

``--check`` exits non-zero if any run violated a tenant quota, if a
clean run aborted a query, or if the lowest-QPS clean p99 exceeds
``--p99-budget-ms`` (default 25).  ``--smoke`` shrinks the sweep to the
interactive mix at the two lower QPS points for CI.

The **overload rows** drive the interactive shape (with deadlines and
queue caps on the tenants) at 2x the top of the QPS grid under four
control levels — ``no-control``, ``shed-only``, ``shed+deadline``,
``full-brownout`` — clean and under chaos.  ``--check`` then gates the
headline robustness claim: full-brownout under chaos keeps *served*
p99 (completed queries — what a client who got an answer experienced)
within :data:`OVERLOAD_P99_MULT` x the clean base p99 and its queue
bounded, while no-control under the same overdrive does not; it also
reruns the full-brownout chaos point and asserts the shed/abort/
brownout event stream is byte-identical.

The **sharing rows** drive the *overlap* mix — two partitioned tenants
issuing the same pr/wcc repeats — at a fixed QPS under four I/O-sharing
levels (``off``, ``dedup``, ``dedup+rcache``, ``full``; see
``docs/io_sharing.md``), clean and under chaos.  Each row records
``bytes_read``, the page-accounting quadruple, and a digest of every
completed query's output vector.  ``--check`` gates: dedup fires
(``pages_deduped > 0``) on every sharing level, the conservation law
``pages_requested == pages_fetched + pages_deduped + cache_hits``
holds exactly on every row, sharing strictly reduces clean
``bytes_read`` vs ``off``, outputs are digest-identical across clean
levels (sharing never changes answers), and a same-seed rerun of the
``full`` chaos point reproduces its row byte for byte.
``--sharing-smoke`` runs only the sharing rows at half duration (the CI
``io-sharing-smoke`` job).
"""

import argparse
import hashlib
import json
import sys
from pathlib import Path

import numpy as np

from repro.bench.datasets import load_dataset
from repro.obs import registry
from repro.serve import (
    GraphService,
    OverloadConfig,
    ServiceConfig,
    TenantSpec,
    TenantTraffic,
    generate_trace,
)
from repro.sim.faults import (
    DeviceFailure,
    FaultPlan,
    FaultPolicy,
    StuckQueue,
    TransientErrors,
)

_REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_FILE = _REPO_ROOT / "BENCH_serving.json"

TRAFFIC_SEED = 11
DURATION_S = 0.2
QPS_GRID = (40.0, 120.0, 360.0)

#: The composed recoverable chaos profile the test suite uses.
CHAOS_PLAN = FaultPlan(
    [
        TransientErrors(device=3, start=0.0, end=10.0, probability=0.15),
        StuckQueue(device=7, start=0.0005, end=0.012),
        DeviceFailure(device=11, at=0.002),
    ],
    seed=42,
)
CHAOS_POLICY = FaultPolicy(
    max_retries=12, retry_backoff=200e-6, request_timeout=0.002
)


def _interactive_mix(total_qps):
    tenants = [
        TenantSpec(name="acme", weight=2.0, max_concurrent=3),
        TenantSpec(name="globex", max_concurrent=2),
    ]
    traffics = [
        TenantTraffic(
            tenant="acme",
            rate_qps=total_qps * 2.0 / 3.0,
            apps=("pr", "bfs", "wcc"),
            burst_factor=4.0,
            burst_fraction=0.2,
        ),
        TenantTraffic(
            tenant="globex", rate_qps=total_qps / 3.0, apps=("bfs", "wcc")
        ),
    ]
    return tenants, traffics


def _uniform_mix(total_qps):
    tenants = [
        TenantSpec(name="north", max_concurrent=2),
        TenantSpec(name="south", max_concurrent=2),
    ]
    traffics = [
        TenantTraffic(tenant="north", rate_qps=total_qps / 2.0),
        TenantTraffic(tenant="south", rate_qps=total_qps / 2.0),
    ]
    return tenants, traffics


MIXES = {"interactive": _interactive_mix, "uniform": _uniform_mix}

#: Overdrive: 2x the top of the sweep — deliberately infeasible load.
OVERDRIVE_QPS = QPS_GRID[-1] * 2.0

#: --check: full-brownout chaos *served* p99 must stay within this
#: multiple of the lowest-QPS clean interactive p99, and no-control
#: chaos must exceed it (measured ~4x vs ~2500x; the margin absorbs
#: timing noise without ever letting the two regimes overlap).
OVERLOAD_P99_MULT = 12.0

_OVERLOAD_CAPS = dict(
    tenant_queue_cap=6, global_queue_cap=10, shed_policy="by-priority"
)

#: The four control levels of the overload rows, weakest to strongest.
OVERLOAD_CONTROLS = {
    "no-control": None,
    "shed-only": OverloadConfig(**_OVERLOAD_CAPS),
    "shed+deadline": OverloadConfig(**_OVERLOAD_CAPS, enforce_deadlines=True),
    "full-brownout": OverloadConfig(
        **_OVERLOAD_CAPS,
        enforce_deadlines=True,
        brownout=True,
        window_s=0.02,
        sample_period_s=0.001,
        wait_budget_s=0.01,
    ),
}


def _overload_mix(total_qps):
    """The interactive shape, hardened for overload control: both
    tenants carry deadlines and queue caps, and globex pays for full
    fidelity (never degraded — it is shed or aborted instead)."""
    tenants = [
        TenantSpec(
            name="acme",
            weight=2.0,
            max_concurrent=3,
            deadline_s=0.05,
            queue_cap=6,
        ),
        TenantSpec(
            name="globex",
            max_concurrent=2,
            deadline_s=0.03,
            queue_cap=4,
            degradable=False,
        ),
    ]
    traffics = [
        TenantTraffic(
            tenant="acme",
            rate_qps=total_qps * 2.0 / 3.0,
            apps=("pr", "bfs", "wcc"),
            burst_factor=4.0,
            burst_fraction=0.2,
        ),
        TenantTraffic(
            tenant="globex", rate_qps=total_qps / 3.0, apps=("bfs", "wcc")
        ),
    ]
    return tenants, traffics


#: Fixed offered QPS of the sharing rows: comfortably inside the sweep,
#: high enough that pr/wcc repeats overlap in flight.
SHARING_QPS = 120.0

#: The four I/O-sharing levels of the overlap rows, weakest to
#: strongest (ServiceConfig knobs; ``off`` is the PR-9 baseline).
SHARING_LEVELS = {
    "off": {},
    "dedup": dict(share_reads=True),
    "dedup+rcache": dict(share_reads=True, result_cache=True),
    "full": dict(
        share_reads=True, result_cache=True, cache_rebalance=True
    ),
}


def _overlap_mix(total_qps):
    """Two partitioned tenants (256 KiB each — dedup only fires across
    partitions) issuing the *same* pr/wcc repeats: the overlapping-read
    shape the I/O-sharing tentpole exists for."""
    tenants = [
        TenantSpec(name="ridge", max_concurrent=2, cache_bytes=1 << 18),
        TenantSpec(name="vale", max_concurrent=2, cache_bytes=1 << 18),
    ]
    traffics = [
        TenantTraffic(
            tenant="ridge", rate_qps=total_qps / 2.0, apps=("pr", "wcc")
        ),
        TenantTraffic(
            tenant="vale", rate_qps=total_qps / 2.0, apps=("pr", "wcc")
        ),
    ]
    return tenants, traffics


def _results_digest(report):
    """SHA-256 over every completed query's output vector, in trace
    order — the witness that a sharing level never changed an answer."""
    digest = hashlib.sha256()
    for record in sorted(report.records, key=lambda r: r.index):
        if not record.ok or record.values is None:
            continue
        digest.update(f"{record.index}|{record.tenant}|{record.app}|".encode())
        digest.update(np.asarray(record.values, dtype=np.float64).tobytes())
    return digest.hexdigest()


def run_sharing_point(image, level, chaos, duration_s=DURATION_S):
    """One overlap-mix run at ``level`` (a SHARING_LEVELS key)."""
    tenants, traffics = _overlap_mix(SHARING_QPS)
    trace = generate_trace(traffics, duration_s, seed=TRAFFIC_SEED)
    service = GraphService(
        image,
        tenants,
        ServiceConfig(policy="fair", **SHARING_LEVELS[level]),
        fault_plan=CHAOS_PLAN if chaos else None,
        fault_policy=CHAOS_POLICY if chaos else None,
    )
    report = service.serve(trace)
    quota_ok = all(
        service.admission.peak[t.name] <= t.max_concurrent for t in tenants
    )
    stats = service.stats
    requested = stats.get(registry.IO_PAGES_REQUESTED)
    fetched = stats.get(registry.IO_PAGES_FETCHED)
    deduped = stats.get(registry.SAFS_DEDUP_PAGES)
    cache_hits = stats.get(registry.CACHE_HITS)
    sharing = report.sharing or {}
    result_cache = sharing.get("result_cache") or {}
    rebalancer = sharing.get("rebalancer") or {}
    return {
        "mix": "overlap",
        "variant": "chaos" if chaos else "clean",
        "sharing": level,
        "duration_s": duration_s,
        "offered_qps": SHARING_QPS,
        "offered": report.offered,
        "completed": report.completed,
        "aborted": report.aborted,
        "quota_waits": report.quota_waits,
        "quota_ok": quota_ok,
        "sustained_qps": round(report.sustained_qps, 2),
        "p50_ms": round(report.latency_quantile(0.50) * 1e3, 4),
        "p99_ms": round(report.latency_quantile(0.99) * 1e3, 4),
        "bytes_read": stats.get(registry.ARRAY_BYTES_READ),
        "pages_requested": requested,
        "pages_fetched": fetched,
        "pages_deduped": deduped,
        "cache_hits": cache_hits,
        "dedup_waits": stats.get(registry.SAFS_DEDUP_WAITS),
        "result_cache_hits": result_cache.get("hits", 0),
        "rebalance_moves": rebalancer.get("moves", 0),
        # The page-accounting conservation law: every requested page is
        # served by exactly one of cache hit / fresh fetch / dedup
        # attach.  Exact float equality — these are integer-valued
        # counters.
        "conservation_ok": requested == fetched + deduped + cache_hits,
        # Chaos comparisons normalize per completed query: sharing lets
        # more queries survive the fault plan, so absolute bytes can
        # rise even as each answer costs less I/O.
        "bytes_per_completed": (
            round(stats.get(registry.ARRAY_BYTES_READ) / report.completed, 2)
            if report.completed
            else 0.0
        ),
        "results_digest": _results_digest(report),
    }


def run_point(image, mix, offered_qps, chaos, duration_s=DURATION_S):
    tenants, traffics = MIXES[mix](offered_qps)
    trace = generate_trace(traffics, duration_s, seed=TRAFFIC_SEED)
    service = GraphService(
        image,
        tenants,
        ServiceConfig(policy="fair"),
        fault_plan=CHAOS_PLAN if chaos else None,
        fault_policy=CHAOS_POLICY if chaos else None,
    )
    report = service.serve(trace)
    quota_ok = all(
        service.admission.peak[t.name] <= t.max_concurrent for t in tenants
    )
    return {
        "mix": mix,
        "variant": "chaos" if chaos else "clean",
        "offered_qps": offered_qps,
        "offered": report.offered,
        "completed": report.completed,
        "aborted": report.aborted,
        "quota_waits": report.quota_waits,
        "quota_ok": quota_ok,
        "sustained_qps": round(report.sustained_qps, 2),
        "p50_ms": round(report.latency_quantile(0.50) * 1e3, 4),
        "p99_ms": round(report.latency_quantile(0.99) * 1e3, 4),
        "tenant_p99_ms": {
            name: round(tr.latency_quantile(0.99) * 1e3, 4)
            for name, tr in sorted(report.tenants.items())
        },
    }


def _served_quantile(report, q):
    """Latency quantile over successfully completed queries only."""
    import math

    served = sorted(r.latency for r in report.records if r.ok)
    if not served:
        return 0.0
    rank = max(1, math.ceil(q * len(served)))
    return served[min(rank, len(served)) - 1]


def run_overload_point(image, control, chaos, duration_s=DURATION_S):
    """One overdriven run under ``control`` (an OVERLOAD_CONTROLS key)."""
    tenants, traffics = _overload_mix(OVERDRIVE_QPS)
    trace = generate_trace(traffics, duration_s, seed=TRAFFIC_SEED)
    service = GraphService(
        image,
        tenants,
        ServiceConfig(policy="fair", overload=OVERLOAD_CONTROLS[control]),
        fault_plan=CHAOS_PLAN if chaos else None,
        fault_policy=CHAOS_POLICY if chaos else None,
    )
    report = service.serve(trace)
    quota_ok = all(
        service.admission.peak[t.name] <= t.max_concurrent for t in tenants
    )
    summary = report.overload or {}
    events = summary.get("events", [])
    row = {
        "mix": "overload",
        "variant": "chaos" if chaos else "clean",
        "control": control,
        "duration_s": duration_s,
        "offered_qps": OVERDRIVE_QPS,
        "offered": report.offered,
        "completed": report.completed,
        "aborted": report.aborted,
        "shed": report.shed,
        "deadline_aborts": report.deadline_aborts,
        "quota_waits": report.quota_waits,
        "quota_ok": quota_ok,
        "shed_rate": round(report.shed / report.offered, 4),
        "goodput_qps": round(report.sustained_qps, 2),
        "sustained_qps": round(report.sustained_qps, 2),
        "p50_ms": round(report.latency_quantile(0.50) * 1e3, 4),
        "p99_ms": round(report.latency_quantile(0.99) * 1e3, 4),
        # Served latency: quantile over successfully completed queries
        # only (the SLO metric).  The all-admitted p99 above still
        # counts deadline-aborted partials, whose latency is the cancel
        # time — useful for seeing how late aborts land, but not what a
        # client who got an answer experienced.
        "p99_served_ms": round(_served_quantile(report, 0.99) * 1e3, 4),
        "peak_queue_depth": summary.get("peak_queue_depth"),
        "brownout_transitions": summary.get("transitions", 0),
        "brownout_ms": round(summary.get("brownout_seconds", 0.0) * 1e3, 4),
        "degraded": sum(summary.get("degraded_jobs", {}).values()),
        # Digest of the shed/abort/brownout decision stream: same seed
        # must reproduce it byte for byte (--check reruns and compares).
        "events_digest": hashlib.sha256(
            json.dumps(events, sort_keys=True).encode()
        ).hexdigest(),
    }
    return row


def run_all(smoke=False, sharing_only=False):
    image = load_dataset("twitter-sim")
    if sharing_only:
        rows = []
        for level in SHARING_LEVELS:
            for chaos in (False, True):
                rows.append(
                    run_sharing_point(image, level, chaos, DURATION_S / 2)
                )
        return rows
    if smoke:
        points = [("interactive", qps) for qps in QPS_GRID[:2]]
        duration = DURATION_S / 2
        overload_points = [
            (control, True) for control in OVERLOAD_CONTROLS
        ]
    else:
        points = [(mix, qps) for mix in MIXES for qps in QPS_GRID]
        duration = DURATION_S
        overload_points = [
            (control, chaos)
            for control in OVERLOAD_CONTROLS
            for chaos in (False, True)
        ]
    rows = []
    for mix, qps in points:
        for chaos in (False, True):
            rows.append(run_point(image, mix, qps, chaos, duration))
    for control, chaos in overload_points:
        rows.append(run_overload_point(image, control, chaos, duration))
    for level in SHARING_LEVELS:
        for chaos in (False, True):
            rows.append(run_sharing_point(image, level, chaos, duration))
    return rows


def format_markdown(rows):
    lines = [
        "| mix | variant | control | offered QPS | sustained QPS | completed "
        "| aborted | shed | quota waits | p50 ms | p99 ms |",
        "|---|---|---|---|---|---|---|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row['mix']} | {row['variant']} "
            f"| {row.get('control', row.get('sharing', '-'))} "
            f"| {row['offered_qps']:g} "
            f"| {row['sustained_qps']:g} | {row['completed']} "
            f"| {row['aborted']} | {row.get('shed', 0)} "
            f"| {row['quota_waits']} "
            f"| {row['p50_ms']:.3f} | {row['p99_ms']:.3f} |"
        )
    return "\n".join(lines) + "\n"


def _row_label(row):
    label = f"{row['mix']}/{row['variant']}@{row['offered_qps']:g}qps"
    if "control" in row:
        label += f"/{row['control']}"
    if "sharing" in row:
        label += f"/{row['sharing']}"
    return label


def _check_sharing(rows):
    """The sharing-row gates (see the module docstring)."""
    failed = False
    sharing = [r for r in rows if r["mix"] == "overlap"]
    if not sharing:
        return False
    for row in sharing:
        label = _row_label(row)
        if not row["conservation_ok"]:
            print(
                f"FAIL {label}: page conservation broken "
                f"(requested {row['pages_requested']:g} != fetched "
                f"{row['pages_fetched']:g} + deduped "
                f"{row['pages_deduped']:g} + cache hits "
                f"{row['cache_hits']:g})",
                file=sys.stderr,
            )
            failed = True
        if row["sharing"] == "off" and row["pages_deduped"] != 0:
            print(
                f"FAIL {label}: dedup fired with sharing off",
                file=sys.stderr,
            )
            failed = True
        # The dedup-only level must attach on the overlapping mix.  The
        # rcache levels answer the repeats at admission, so their
        # residual I/O may legitimately never overlap in flight — they
        # are gated on result-cache hits instead.
        if row["sharing"] == "dedup" and row["pages_deduped"] <= 0:
            print(
                f"FAIL {label}: overlapping mix deduplicated nothing",
                file=sys.stderr,
            )
            failed = True
        if (
            row["sharing"] in ("dedup+rcache", "full")
            and row["result_cache_hits"] <= 0
        ):
            print(
                f"FAIL {label}: repeat queries never hit the result cache",
                file=sys.stderr,
            )
            failed = True
    # Sharing must strictly reduce bytes read off the array, and must
    # never change a single answer byte: every clean level serves the
    # same output vectors as the clean baseline.
    by_key = {(r["variant"], r["sharing"]): r for r in sharing}
    for variant in ("clean", "chaos"):
        base = by_key.get((variant, "off"))
        if base is None:
            continue
        for level in SHARING_LEVELS:
            row = by_key.get((variant, level))
            if row is None or level == "off":
                continue
            label = _row_label(row)
            metric = "bytes_read" if variant == "clean" else "bytes_per_completed"
            if row[metric] >= base[metric]:
                print(
                    f"FAIL {label}: {metric} {row[metric]:g} not "
                    f"below the off baseline {base[metric]:g}",
                    file=sys.stderr,
                )
                failed = True
            if (
                variant == "clean"
                and row["results_digest"] != base["results_digest"]
            ):
                print(
                    f"FAIL {label}: results digest differs from the off "
                    "baseline — sharing changed an answer",
                    file=sys.stderr,
                )
                failed = True
    # Byte-identical replay: rerun the strongest chaos point and compare
    # the whole row (digest, byte counts, page accounting, tails).
    recorded = by_key.get(("chaos", "full"))
    if recorded is not None:
        image = load_dataset("twitter-sim")
        rerun = run_sharing_point(
            image, "full", True, recorded["duration_s"]
        )
        if rerun != recorded:
            diff = sorted(
                k for k in recorded if rerun.get(k) != recorded[k]
            )
            print(
                "FAIL sharing determinism: same-seed rerun of "
                f"{_row_label(recorded)} differs in {', '.join(diff)}",
                file=sys.stderr,
            )
            failed = True
    return failed


def _check_overload(rows, base_p99_ms):
    """The overload-row gates (see the module docstring)."""
    failed = False
    overload = [r for r in rows if r["mix"] == "overload"]
    if not overload:
        return False
    for row in overload:
        label = _row_label(row)
        served = row["completed"] + row["aborted"] + row["shed"]
        if served != row["offered"]:
            print(
                f"FAIL {label}: {row['offered'] - served} arrivals "
                "unaccounted (completed + aborted + shed != offered)",
                file=sys.stderr,
            )
            failed = True
        if row["control"] == "no-control":
            continue
        cap = _OVERLOAD_CAPS["global_queue_cap"]
        if row["peak_queue_depth"] > cap:
            print(
                f"FAIL {label}: peak queue depth {row['peak_queue_depth']} "
                f"burst the global cap of {cap}",
                file=sys.stderr,
            )
            failed = True
        if row["shed"] <= 0:
            print(
                f"FAIL {label}: overdrive shed nothing (shed-rate 0)",
                file=sys.stderr,
            )
            failed = True
    # The headline gate compares *served* p99 (completed queries): with
    # full control a client who got an answer got it within a bounded
    # multiple of the uncontended p99 even under chaos at 2x overdrive,
    # while without control even successful answers take seconds.
    bound = OVERLOAD_P99_MULT * base_p99_ms
    for row in overload:
        if row["variant"] != "chaos":
            continue
        label = _row_label(row)
        if row["control"] == "full-brownout" and row["p99_served_ms"] > bound:
            print(
                f"FAIL {label}: served p99 {row['p99_served_ms']:.3f}ms "
                f"burst the {OVERLOAD_P99_MULT:g}x-base bound of "
                f"{bound:.3f}ms",
                file=sys.stderr,
            )
            failed = True
        if row["control"] == "no-control" and row["p99_served_ms"] <= bound:
            print(
                f"FAIL {label}: served p99 {row['p99_served_ms']:.3f}ms "
                f"within the {bound:.3f}ms bound — overload control "
                "shows no advantage over no control",
                file=sys.stderr,
            )
            failed = True
    # Byte-identical replay: rerun the strongest chaos point and compare
    # its decision stream digest against the recorded one.
    recorded = next(
        (
            r
            for r in overload
            if r["control"] == "full-brownout" and r["variant"] == "chaos"
        ),
        None,
    )
    if recorded is not None:
        image = load_dataset("twitter-sim")
        rerun = run_overload_point(
            image, "full-brownout", True, recorded["duration_s"]
        )
        for key in ("events_digest", "completed", "aborted", "shed"):
            if rerun[key] != recorded[key]:
                print(
                    f"FAIL overload determinism: {key} differs across "
                    f"same-seed reruns ({recorded[key]!r} != {rerun[key]!r})",
                    file=sys.stderr,
                )
                failed = True
    return failed


def check(rows, p99_budget_ms):
    failed = False
    for row in rows:
        label = _row_label(row)
        if not row["quota_ok"]:
            print(f"FAIL {label}: tenant quota exceeded", file=sys.stderr)
            failed = True
        if row["mix"] == "overload":
            continue  # overload rows get their own conservation law below
        if row["completed"] + row["aborted"] != row["offered"]:
            print(f"FAIL {label}: arrivals went unserved", file=sys.stderr)
            failed = True
        if row["variant"] == "clean" and row["aborted"]:
            print(f"FAIL {label}: clean run aborted queries", file=sys.stderr)
            failed = True
    # The clean p99 base comes from the sweep mixes only — the overlap
    # rows run a fixed-QPS shape whose tails answer a different
    # question (byte savings, not sweep headroom).
    clean = [
        r
        for r in rows
        if r["variant"] == "clean" and r["mix"] not in ("overload", "overlap")
    ]
    if clean:
        base = min(clean, key=lambda r: r["offered_qps"])
        if base["p99_ms"] > p99_budget_ms:
            print(
                f"FAIL baseline p99 {base['p99_ms']:.3f}ms exceeds the "
                f"{p99_budget_ms:g}ms budget",
                file=sys.stderr,
            )
            failed = True
        failed = _check_overload(rows, base["p99_ms"]) or failed
    failed = _check_sharing(rows) or failed
    print("serving check:", "FAILED" if failed else "ok")
    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--record", action="store_true",
                        help="write the sweep to BENCH_serving.json")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on quota/SLO violations")
    parser.add_argument("--smoke", action="store_true",
                        help="CI subset: one mix, two QPS points, half duration")
    parser.add_argument("--sharing-smoke", action="store_true",
                        help="CI subset: only the I/O-sharing overlap rows "
                        "at half duration")
    parser.add_argument("--p99-budget-ms", type=float, default=25.0,
                        help="--check: p99 budget for the lowest-QPS clean "
                        "run (default 25)")
    parser.add_argument("--markdown", metavar="PATH",
                        help="also write the sweep as a Markdown table")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the raw sweep rows as JSON")
    args = parser.parse_args()

    rows = run_all(smoke=args.smoke, sharing_only=args.sharing_smoke)
    print(format_markdown(rows))
    if args.record:
        RESULTS_FILE.write_text(json.dumps(rows, indent=2, sort_keys=True) + "\n")
        print(f"recorded {len(rows)} runs in {RESULTS_FILE.name}")
    if args.markdown:
        Path(args.markdown).write_text(format_markdown(rows))
        print(f"wrote Markdown table -> {args.markdown}")
    if args.json:
        Path(args.json).write_text(
            json.dumps(rows, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote raw rows -> {args.json}")
    if args.check:
        return check(rows, args.p99_budget_ms)
    return 0


if __name__ == "__main__":
    sys.exit(main())
