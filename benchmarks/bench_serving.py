#!/usr/bin/env python
"""Sustained QPS vs tail latency for the multi-tenant serving layer.

Serves seeded open-loop traffic (``repro.serve``) against the shared
SAFS stack on twitter-sim across an offered-QPS sweep, for two tenant
mixes, each run clean and under the composed chaos plan (flaky device +
stuck queue + one SSD death).  Records sustained-QPS-vs-p50/p99 curves
in ``BENCH_serving.json``:

- **interactive**: a bursty heavy tenant (weight 2, quota 3, Zipf over
  pr/bfs/wcc) sharing with a steady light tenant (quota 2, bfs/wcc) —
  the fair-share stress shape.
- **uniform**: two identical steady tenants — the baseline shape.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py            # print table
    PYTHONPATH=src python benchmarks/bench_serving.py --record   # + BENCH_serving.json
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke --check  # CI gate
    PYTHONPATH=src python benchmarks/bench_serving.py --markdown out.md

``--check`` exits non-zero if any run violated a tenant quota, if a
clean run aborted a query, or if the lowest-QPS clean p99 exceeds
``--p99-budget-ms`` (default 25).  ``--smoke`` shrinks the sweep to the
interactive mix at the two lower QPS points for CI.
"""

import argparse
import json
import sys
from pathlib import Path

from repro.bench.datasets import load_dataset
from repro.serve import (
    GraphService,
    ServiceConfig,
    TenantSpec,
    TenantTraffic,
    generate_trace,
)
from repro.sim.faults import (
    DeviceFailure,
    FaultPlan,
    FaultPolicy,
    StuckQueue,
    TransientErrors,
)

_REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_FILE = _REPO_ROOT / "BENCH_serving.json"

TRAFFIC_SEED = 11
DURATION_S = 0.2
QPS_GRID = (40.0, 120.0, 360.0)

#: The composed recoverable chaos profile the test suite uses.
CHAOS_PLAN = FaultPlan(
    [
        TransientErrors(device=3, start=0.0, end=10.0, probability=0.15),
        StuckQueue(device=7, start=0.0005, end=0.012),
        DeviceFailure(device=11, at=0.002),
    ],
    seed=42,
)
CHAOS_POLICY = FaultPolicy(
    max_retries=12, retry_backoff=200e-6, request_timeout=0.002
)


def _interactive_mix(total_qps):
    tenants = [
        TenantSpec(name="acme", weight=2.0, max_concurrent=3),
        TenantSpec(name="globex", max_concurrent=2),
    ]
    traffics = [
        TenantTraffic(
            tenant="acme",
            rate_qps=total_qps * 2.0 / 3.0,
            apps=("pr", "bfs", "wcc"),
            burst_factor=4.0,
            burst_fraction=0.2,
        ),
        TenantTraffic(
            tenant="globex", rate_qps=total_qps / 3.0, apps=("bfs", "wcc")
        ),
    ]
    return tenants, traffics


def _uniform_mix(total_qps):
    tenants = [
        TenantSpec(name="north", max_concurrent=2),
        TenantSpec(name="south", max_concurrent=2),
    ]
    traffics = [
        TenantTraffic(tenant="north", rate_qps=total_qps / 2.0),
        TenantTraffic(tenant="south", rate_qps=total_qps / 2.0),
    ]
    return tenants, traffics


MIXES = {"interactive": _interactive_mix, "uniform": _uniform_mix}


def run_point(image, mix, offered_qps, chaos, duration_s=DURATION_S):
    tenants, traffics = MIXES[mix](offered_qps)
    trace = generate_trace(traffics, duration_s, seed=TRAFFIC_SEED)
    service = GraphService(
        image,
        tenants,
        ServiceConfig(policy="fair"),
        fault_plan=CHAOS_PLAN if chaos else None,
        fault_policy=CHAOS_POLICY if chaos else None,
    )
    report = service.serve(trace)
    quota_ok = all(
        service.admission.peak[t.name] <= t.max_concurrent for t in tenants
    )
    return {
        "mix": mix,
        "variant": "chaos" if chaos else "clean",
        "offered_qps": offered_qps,
        "offered": report.offered,
        "completed": report.completed,
        "aborted": report.aborted,
        "quota_waits": report.quota_waits,
        "quota_ok": quota_ok,
        "sustained_qps": round(report.sustained_qps, 2),
        "p50_ms": round(report.latency_quantile(0.50) * 1e3, 4),
        "p99_ms": round(report.latency_quantile(0.99) * 1e3, 4),
        "tenant_p99_ms": {
            name: round(tr.latency_quantile(0.99) * 1e3, 4)
            for name, tr in sorted(report.tenants.items())
        },
    }


def run_all(smoke=False):
    image = load_dataset("twitter-sim")
    if smoke:
        points = [("interactive", qps) for qps in QPS_GRID[:2]]
        duration = DURATION_S / 2
    else:
        points = [(mix, qps) for mix in MIXES for qps in QPS_GRID]
        duration = DURATION_S
    rows = []
    for mix, qps in points:
        for chaos in (False, True):
            rows.append(run_point(image, mix, qps, chaos, duration))
    return rows


def format_markdown(rows):
    lines = [
        "| mix | variant | offered QPS | sustained QPS | completed | aborted "
        "| quota waits | p50 ms | p99 ms |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row['mix']} | {row['variant']} | {row['offered_qps']:g} "
            f"| {row['sustained_qps']:g} | {row['completed']} "
            f"| {row['aborted']} | {row['quota_waits']} "
            f"| {row['p50_ms']:.3f} | {row['p99_ms']:.3f} |"
        )
    return "\n".join(lines) + "\n"


def check(rows, p99_budget_ms):
    failed = False
    for row in rows:
        label = f"{row['mix']}/{row['variant']}@{row['offered_qps']:g}qps"
        if not row["quota_ok"]:
            print(f"FAIL {label}: tenant quota exceeded", file=sys.stderr)
            failed = True
        if row["completed"] + row["aborted"] != row["offered"]:
            print(f"FAIL {label}: arrivals went unserved", file=sys.stderr)
            failed = True
        if row["variant"] == "clean" and row["aborted"]:
            print(f"FAIL {label}: clean run aborted queries", file=sys.stderr)
            failed = True
    clean = [r for r in rows if r["variant"] == "clean"]
    base = min(clean, key=lambda r: r["offered_qps"])
    if base["p99_ms"] > p99_budget_ms:
        print(
            f"FAIL baseline p99 {base['p99_ms']:.3f}ms exceeds the "
            f"{p99_budget_ms:g}ms budget",
            file=sys.stderr,
        )
        failed = True
    print("serving check:", "FAILED" if failed else "ok")
    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--record", action="store_true",
                        help="write the sweep to BENCH_serving.json")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on quota/SLO violations")
    parser.add_argument("--smoke", action="store_true",
                        help="CI subset: one mix, two QPS points, half duration")
    parser.add_argument("--p99-budget-ms", type=float, default=25.0,
                        help="--check: p99 budget for the lowest-QPS clean "
                        "run (default 25)")
    parser.add_argument("--markdown", metavar="PATH",
                        help="also write the sweep as a Markdown table")
    args = parser.parse_args()

    rows = run_all(smoke=args.smoke)
    print(format_markdown(rows))
    if args.record:
        RESULTS_FILE.write_text(json.dumps(rows, indent=2, sort_keys=True) + "\n")
        print(f"recorded {len(rows)} runs in {RESULTS_FILE.name}")
    if args.markdown:
        Path(args.markdown).write_text(format_markdown(rows))
        print(f"wrote Markdown table -> {args.markdown}")
    if args.check:
        return check(rows, args.p99_budget_ms)
    return 0


if __name__ == "__main__":
    sys.exit(main())
