"""Figure 14: the impact of the page cache size."""

from repro.bench.experiments import fig14
from repro.bench.reporting import format_table, print_experiment


def test_fig14_cache_size(bench_once):
    rows = bench_once(fig14)
    print_experiment(
        "Figure 14 - Page cache size sweep (1GB - 32GB equivalents)",
        [format_table(rows)],
    )
    for app in {r["app"] for r in rows}:
        by_cache = {r["cache_GB"]: r for r in rows if r["app"] == app}
        # Paper: with a 1GB cache every application keeps >=65% of its
        # 32GB-cache performance; our scaled caches reproduce the graceful
        # degradation with a slightly lower floor (see EXPERIMENTS.md).
        assert by_cache[1.0]["relative_to_32G"] >= 0.45, (app, by_cache[1.0])
        # More cache never hurts.
        assert by_cache[32.0]["runtime_s"] <= by_cache[1.0]["runtime_s"] * 1.01
