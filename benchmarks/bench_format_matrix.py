#!/usr/bin/env python
"""Format matrix: every app under edge-list format v1 vs v2.

Runs pr, wcc and bfs on twitter-sim in semi-external mode under both
on-SSD edge-list formats and checks the compressed format's contract:

- **identical algorithm outputs** — the per-vertex result arrays must be
  bit-identical between formats (compression may only change bytes moved,
  never values computed);
- **fewer bytes read** — v2 must lower ``array.bytes_read`` for every
  app, and by at least 25% for PageRank (the every-iteration full-scan
  workload the tentpole targets).

Usage::

    PYTHONPATH=src python benchmarks/bench_format_matrix.py
    PYTHONPATH=src python benchmarks/bench_format_matrix.py --out BENCH_format_matrix.md

``--out`` writes the comparison table as a Markdown artifact (the CI
format-matrix job uploads it).
"""

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.algorithms.bfs import bfs
from repro.algorithms.pagerank import pagerank
from repro.algorithms.wcc import wcc
from repro.bench.datasets import load_dataset, scaled_cache_bytes
from repro.bench.harness import default_source, make_engine
from repro.bench.reporting import format_table
from repro.core.config import ExecutionMode
from repro.graph.format import FORMATS
from repro.obs import registry as reg
from repro.safs.page import SAFSFile

GRAPH = "twitter-sim"

#: PageRank reads every edge list every iteration — the workload where
#: compression pays most directly; the tentpole's floor applies to it.
PR_MIN_REDUCTION = 0.25


def run_app(app: str, fmt: str):
    """One (app, fmt) cell: returns (values, RunResult)."""
    image = load_dataset(GRAPH, fmt)
    SAFSFile._next_id = 0
    engine = make_engine(
        image,
        mode=ExecutionMode.SEMI_EXTERNAL,
        cache_bytes=scaled_cache_bytes(1.0),
    )
    if app == "pr":
        return pagerank(engine)
    if app == "wcc":
        return wcc(engine)
    if app == "bfs":
        return bfs(engine, default_source(image))
    raise ValueError(f"unknown app {app!r}")


def run_matrix(apps=("pr", "wcc", "bfs")):
    """Run the full matrix; returns (table rows, failure messages)."""
    rows = []
    failures = []
    for app in apps:
        cells = {fmt: run_app(app, fmt) for fmt in FORMATS}
        (v1_vals, v1), (v2_vals, v2) = cells["v1"], cells["v2"]
        identical = np.array_equal(v1_vals, v2_vals)
        reduction = 1.0 - v2.bytes_read / v1.bytes_read
        if not identical:
            failures.append(f"{app}: v1 and v2 algorithm outputs differ")
        if v2.bytes_read >= v1.bytes_read:
            failures.append(
                f"{app}: v2 read {v2.bytes_read} bytes, not below v1's "
                f"{v1.bytes_read}"
            )
        if app == "pr" and reduction < PR_MIN_REDUCTION:
            failures.append(
                f"pr: v2 bytes_read reduction {reduction:.1%} is below the "
                f"{PR_MIN_REDUCTION:.0%} floor"
            )
        rows.append(
            {
                "app": app,
                "v1_read_MB": v1.bytes_read / 1e6,
                "v2_read_MB": v2.bytes_read / 1e6,
                "reduction": f"{reduction:.1%}",
                "v1_hit": v1.cache_hit_rate,
                "v2_hit": v2.cache_hit_rate,
                "compression": v2.counters.get(reg.GRAPH_COMPRESSION_RATIO, 1.0),
                "decode_MB": v2.counters.get(reg.GRAPH_DECODE_BYTES, 0.0) / 1e6,
                "outputs": "identical" if identical else "DIFFER",
            }
        )
    return rows, failures


def to_markdown(rows) -> str:
    """The matrix as a GitHub-flavoured Markdown table."""
    columns = list(rows[0].keys())
    lines = [
        f"# Edge-list format matrix ({GRAPH}, semi-external)",
        "",
        "| " + " | ".join(columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        cells = [
            f"{v:.3f}" if isinstance(v, float) else str(v) for v in row.values()
        ]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", metavar="PATH", help="write the table as a Markdown artifact"
    )
    args = parser.parse_args()
    rows, failures = run_matrix()
    print(format_table(rows, title=f"Format matrix on {GRAPH} (sem)"))
    if args.out:
        Path(args.out).write_text(to_markdown(rows))
        print(f"wrote {args.out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
