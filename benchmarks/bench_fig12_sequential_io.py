"""Figure 12: the impact of preserving sequential I/O."""

from repro.bench.experiments import fig12
from repro.bench.reporting import format_table, print_experiment


def test_fig12_sequential_io(bench_once):
    rows = bench_once(fig12)
    print_experiment(
        "Figure 12 - Preserving sequential I/O (relative to merging in "
        "FlashGraph)",
        [format_table(rows)],
    )
    for app in ("bfs", "wcc"):
        by_variant = {
            r["variant"]: r["runtime_s"] for r in rows if r["app"] == app
        }
        # Paper's ordering: random execution is the worst; sequential
        # execution helps; merging in FlashGraph beats merging in SAFS.
        assert by_variant["random-exec"] > by_variant["seq-exec-no-merge"]
        assert by_variant["merge-in-SAFS"] > by_variant["merge-in-FlashGraph"]
        assert by_variant["seq-exec-no-merge"] >= by_variant["merge-in-FlashGraph"]
