"""§5.6 made quantitative: one SEM machine vs cluster systems."""

from repro.bench.extra_experiments import sec56_clusters
from repro.bench.reporting import format_table, print_experiment


def test_sec56_clusters(bench_once):
    rows = bench_once(sec56_clusters)
    print_experiment(
        "Section 5.6 - One semi-external-memory machine vs cluster systems "
        "(page graph stand-in)",
        [format_table(rows)],
    )
    for row in rows:
        # The paper's claim: FlashGraph on one machine meets or beats
        # published cluster results on workloads of this shape.
        assert row["FG-4G_s"] < row["pregel_s"], row
        assert row["FG-4G_s"] < row["trinity_s"], row
        # MapReduce-based engines are not even close.
        assert row["pegasus_s"] > 100 * row["FG-4G_s"], row
