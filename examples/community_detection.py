#!/usr/bin/env python
"""Community detection: label propagation vs multi-level Louvain.

§3.4 of the paper argues FlashGraph's interface is flexible enough for
Louvain clustering, "in which changes to the topology of the graph occur
during computation".  This example runs both community detectors the
library ships on a planted-partition graph:

- label propagation — one engine run, plurality labels;
- multi-level Louvain — local moving, then the graph *coarsens* (every
  community becomes a weighted super-vertex: the topology change) and the
  engine reruns on the new, smaller graph.

Both are scored with Newman modularity and checked against the planted
ground truth.

Run:  python examples/community_detection.py
"""

import numpy as np

from repro.algorithms import label_propagation, louvain, modularity
from repro.core import EngineConfig, GraphEngine
from repro.graph import build_undirected


def planted_partition(
    num_communities=12, size=24, p_in=0.4, p_out=0.01, seed=0
):
    """A stochastic block model graph with known communities."""
    rng = np.random.default_rng(seed)
    n = num_communities * size
    truth = np.arange(n) // size
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            p = p_in if truth[u] == truth[v] else p_out
            if rng.random() < p:
                edges.append([u, v])
    return np.asarray(edges), n, truth


def agreement(labels, truth):
    """Fraction of same-community vertex pairs labelled consistently
    (pairwise Rand-style agreement on a sample)."""
    rng = np.random.default_rng(1)
    n = len(labels)
    pairs = rng.integers(0, n, size=(4000, 2))
    same_truth = truth[pairs[:, 0]] == truth[pairs[:, 1]]
    same_label = labels[pairs[:, 0]] == labels[pairs[:, 1]]
    return float(np.mean(same_truth == same_label))


def main() -> None:
    edges, n, truth = planted_partition()
    image = build_undirected(edges, n, name="sbm")
    print(f"planted-partition graph: {n} vertices, {image.num_edges} edges, "
          f"{len(set(truth.tolist()))} true communities")

    def engine_factory(im):
        return GraphEngine(im, config=EngineConfig(num_threads=16, range_shift=5))

    lp_labels, lp_result = label_propagation(engine_factory(image))
    lp_q = modularity(image, lp_labels)
    print(f"\nlabel propagation: {len(set(lp_labels.tolist()))} communities, "
          f"Q={lp_q:.3f}, agreement {agreement(lp_labels, truth):.0%}, "
          f"{lp_result.runtime * 1e3:.1f} ms simulated")

    lv = louvain(engine_factory, image)
    print(f"louvain: {len(set(lv.communities.tolist()))} communities over "
          f"{lv.levels} levels (sizes {lv.level_sizes}), Q={lv.modularity:.3f}, "
          f"agreement {agreement(lv.communities, truth):.0%}, "
          f"{lv.run.runtime * 1e3:.1f} ms simulated")

    print("\nlouvain's coarsening is the §3.4 flexibility claim in action: "
          "after each level the engine runs on a *different* graph whose "
          "vertices are the previous level's communities.")


if __name__ == "__main__":
    main()
