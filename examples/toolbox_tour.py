#!/usr/bin/env python
"""A tour of the supporting toolbox around the engine.

Production storage systems ship with their instruments.  This example
exercises the ones this library provides:

1. device-model calibration (fio-style: measure the simulated array's
   IOPS/bandwidth curve and check it against the paper's numbers),
2. graph construction with external-sort accounting and SSD wear,
3. image integrity checking (fsck for the on-SSD format),
4. dataset statistics (degree skew, ID locality) for the generators,
5. per-iteration tracing of an engine run, exported to CSV.

Run:  python examples/toolbox_tour.py
"""

import numpy as np

from repro.algorithms import bfs
from repro.core import EngineConfig, GraphEngine
from repro.core.tracing import IterationTracer
from repro.graph import degree_stats, id_locality, validate_image
from repro.graph.construction import GraphConstructor
from repro.graph.generators import twitter_sim
from repro.sim import measured_envelope, profile_random_reads


def main() -> None:
    # 1. Calibrate the simulated array.
    profile = profile_random_reads(requests_per_point=1000)
    envelope = measured_envelope(profile)
    print("simulated SSD array (15 devices):")
    print(f"  random 4KB: {envelope['random_4k_iops']:,.0f} IOPS "
          f"(paper: ~900,000)")
    print(f"  sequential: {envelope['sequential_bandwidth'] / 1e9:.1f} GB/s; "
          f"seq:random ratio {envelope['seq_to_random_ratio']:.1f} "
          f"(paper: 2-3x)")

    # 2. Construct a graph image through the external-sort pipeline.
    edges, n = twitter_sim(scale=12, seed=42)
    report = GraphConstructor().build(edges, n, name="tour")
    image = report.image
    print(f"\nconstruction: {image.num_edges:,} edges in "
          f"{report.seconds * 1e3:.1f} ms simulated "
          f"({report.num_runs} sort runs, "
          f"{report.flash_pages_programmed:,} flash pages programmed)")

    # 3. fsck the image.
    check = validate_image(image)
    print(f"integrity: {'CLEAN' if check.ok else check.errors[:2]} "
          f"({check.vertices_checked:,} vertex records, "
          f"{check.edges_checked:,} edges verified)")

    # 4. Dataset statistics.
    stats = degree_stats(image)
    print(f"\ndegree distribution: mean {stats.mean:.1f}, max {stats.maximum}, "
          f"gini {stats.gini:.2f}, "
          f"top-1% of vertices own {stats.top1pct_edge_share:.0%} of edges")
    print(f"ID locality (64-window): {id_locality(image):.0%} "
          f"(R-MAT scrambles IDs; page-sim would be >60%)")

    # 5. Trace an engine run.
    engine = GraphEngine(image, config=EngineConfig(num_threads=16, range_shift=6))
    source = int(np.argmax(image.out_csr.degrees()))
    tracer = IterationTracer(engine)
    with tracer:
        levels, result = bfs(engine, source)
    print(f"\nBFS trace ({result.iterations} iterations):")
    print("  iter  frontier  pages_fetched  cache_hits")
    for record in tracer.records:
        print(f"  {record.iteration:>4}  {record.active_vertices:>8,}  "
              f"{record.pages_fetched:>13,}  {record.cache_hits:>10,}")
    tracer.write_csv("/tmp/bfs_trace.csv")
    print("  full trace -> /tmp/bfs_trace.csv")


if __name__ == "__main__":
    main()
