#!/usr/bin/env python
"""Web-graph analysis on a billion-node-profile graph with a small cache.

The paper's headline demonstration (§5.6) is processing a 3.4B-vertex web
page graph on one machine with a tiny memory footprint.  This example runs
the same pipeline on the scaled page-graph stand-in (domain-clustered,
high diameter):

- weakly connected components to find the crawl's reachable mass,
- PageRank to rank pages,
- BFS from the top-ranked page to measure reachability depth,

and then prints the memory breakdown that makes semi-external memory
interesting: vertex state + compact index + page cache, versus the graph
size an in-memory engine would need to hold.

Run:  python examples/web_analysis.py
"""

import numpy as np

from repro.algorithms import bfs, pagerank, wcc
from repro.core import EngineConfig, GraphEngine
from repro.graph import build_directed, page_sim
from repro.safs import SAFS, SAFSConfig


def main() -> None:
    edges, num_vertices = page_sim(num_vertices=1 << 15, seed=3)
    image = build_directed(edges, num_vertices, name="pages")
    graph_mb = image.storage_bytes() / 1e6
    print(f"page graph stand-in: {num_vertices:,} pages, "
          f"{image.num_edges:,} links, {graph_mb:.1f} MB on SSDs")

    # A deliberately small cache: the paper used 4GB against a 1.1TB graph.
    cache_bytes = 1 << 20
    safs = SAFS(config=SAFSConfig(cache_bytes=cache_bytes))
    engine = GraphEngine(
        image,
        safs=safs,
        config=EngineConfig(num_threads=32, range_shift=8),
    )

    labels, wcc_result = wcc(engine)
    components, sizes = np.unique(labels, return_counts=True)
    print(f"\nWCC: {components.size} components; largest holds "
          f"{sizes.max() / num_vertices:.0%} of all pages "
          f"({wcc_result.iterations} iterations, "
          f"{wcc_result.runtime:.3f} s simulated)")

    ranks, pr_result = pagerank(engine, max_iterations=30)
    top_page = int(np.argmax(ranks))
    print(f"PageRank: top page is {top_page} "
          f"(domain {top_page // 64}); "
          f"{pr_result.runtime:.3f} s simulated, "
          f"cache hit rate {pr_result.cache_hit_rate:.0%} — the page graph's "
          f"domain clustering keeps hit rates high")

    levels, bfs_result = bfs(engine, top_page)
    print(f"BFS from the top page: depth {levels.max()} "
          f"(the web graph is stringy — the paper's page graph has "
          f"diameter 650), {bfs_result.iterations} iterations, "
          f"{bfs_result.runtime:.3f} s simulated")

    memory = pr_result.memory
    total_mb = pr_result.memory_bytes / 1e6
    print("\nsemi-external memory footprint:")
    for component, amount in sorted(memory.items()):
        print(f"  {component:>12}: {amount / 1e6:8.2f} MB")
    print(f"  {'total':>12}: {total_mb:8.2f} MB "
          f"— {total_mb / graph_mb:.0%} of the graph's on-SSD size")


if __name__ == "__main__":
    main()
