#!/usr/bin/env python
"""Weighted shortest paths over detached edge attributes.

FlashGraph stores edge attributes in their own on-SSD files (§3.5.2), the
column-store trick: algorithms that do not need weights never read them.
This example builds a weighted road-network-like graph (a grid with local
shortcuts), runs SSSP — which asks SAFS for the weight block next to each
edge list (``with_attrs=True``) — and shows the I/O difference against
BFS, which reads edge lists only.

Run:  python examples/road_network_sssp.py
"""

import numpy as np

from repro.algorithms import bfs, sssp
from repro.core import EngineConfig, GraphEngine
from repro.graph import build_directed
from repro.safs import SAFS, SAFSConfig


def grid_road_network(side: int, seed: int = 0):
    """A directed grid with random travel times plus a few highways."""
    rng = np.random.default_rng(seed)
    ids = np.arange(side * side).reshape(side, side)
    edges = []
    right = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1)
    down = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1)
    edges = np.concatenate([right, right[:, ::-1], down, down[:, ::-1]])
    # Highways: long-range fast links between random junctions.
    highways = rng.integers(0, side * side, size=(side, 2), dtype=np.int64)
    edges = np.concatenate([edges, highways])
    weights = rng.uniform(1.0, 5.0, size=len(edges)).astype(np.float32)
    weights[-len(highways):] = 0.5  # highways are fast
    return edges, side * side, weights


def main() -> None:
    edges, num_vertices, weights = grid_road_network(side=48)
    image = build_directed(edges, num_vertices, name="roads", weights=weights)
    print(f"road network: {num_vertices:,} junctions, "
          f"{image.num_edges:,} road segments "
          f"(+ {image.storage_bytes() / 1e6:.1f} MB on SSDs incl. the "
          f"detached weight file)")

    def fresh_engine():
        safs = SAFS(config=SAFSConfig(cache_bytes=1 << 18))
        return GraphEngine(
            image,
            safs=safs,
            config=EngineConfig(num_threads=16, range_shift=6),
        )

    source = 0
    hops, bfs_result = bfs(fresh_engine(), source)
    dist, sssp_result = sssp(fresh_engine(), source)

    corner = num_vertices - 1
    print(f"\nfrom junction {source} to junction {corner}:")
    print(f"  BFS hops: {hops[corner]}, "
          f"weighted travel time: {dist[corner]:.1f}")
    reachable = np.isfinite(dist).sum()
    print(f"  {reachable:,}/{num_vertices:,} junctions reachable")

    print("\nthe detached-attribute effect:")
    print(f"  BFS  read {bfs_result.bytes_read / 1e3:8.0f} KB "
          f"(edge lists only)")
    print(f"  SSSP read {sssp_result.bytes_read / 1e3:8.0f} KB "
          f"(edge lists + weight blocks)")
    print("  algorithms that skip attributes never pay for them — the "
          "reason FlashGraph separates the files (§3.5.2)")


if __name__ == "__main__":
    main()
