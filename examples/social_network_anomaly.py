#!/usr/bin/env python
"""Social-network structure: triangles and scan-statistics anomalies.

The paper motivates FlashGraph with network analysis workloads; scan
statistics (§4, [26]) is the tool its authors use for anomaly detection —
a vertex whose neighborhood is abnormally dense is a candidate anomaly
(a coordinated cluster, a spam ring).

This example:

1. generates a Twitter-profile graph and plants an anomaly — a small
   clique wired into existing vertices,
2. runs triangle counting to measure local clustering,
3. runs scan statistics with the paper's largest-degree-first custom
   scheduler and shows the pruning at work,
4. checks the planted clique tops the scan ranking.

Run:  python examples/social_network_anomaly.py
"""

import numpy as np

from repro.algorithms import scan_statistics, triangle_count
from repro.algorithms.scan_statistics import ScanStatisticsProgram
from repro.core import EngineConfig, GraphEngine
from repro.core.config import ScheduleOrder
from repro.graph import build_directed, twitter_sim


def plant_clique(edges: np.ndarray, members: np.ndarray) -> np.ndarray:
    """Wire ``members`` into a directed clique (both directions)."""
    pairs = [
        (u, v)
        for u in members
        for v in members
        if u != v
    ]
    return np.concatenate([edges, np.asarray(pairs, dtype=np.int64)])


def main() -> None:
    edges, num_vertices = twitter_sim(scale=12, seed=11)
    rng = np.random.default_rng(0)
    clique = rng.choice(num_vertices, size=14, replace=False)
    edges = plant_clique(edges, clique)
    image = build_directed(edges, num_vertices, name="social")
    print(f"social graph: {num_vertices:,} users, {image.num_edges:,} follows; "
          f"planted a {clique.size}-user clique")

    engine = GraphEngine(
        image,
        config=EngineConfig(
            num_threads=32,
            range_shift=7,
            # Hubs request thousands of neighbor lists: split them into
            # vertex parts so the load balancer can spread the work (§3.8).
            vertical_part_threshold=256,
            vertical_part_size=128,
        ),
    )

    triangles, tc_result = triangle_count(engine)
    print(f"\ntriangle counting: {triangles.sum() // 3:,} triangles, "
          f"{tc_result.runtime:.3f} s simulated, "
          f"read {tc_result.bytes_read / 1e6:.0f} MB "
          f"(TC reads many other vertices' edge lists — the paper's most "
          f"I/O-hungry application)")
    clique_rate = triangles[clique].mean()
    print(f"  planted clique members average {clique_rate:.0f} triangles "
          f"vs {np.median(triangles):.0f} for the median user")

    max_scan, argmax, ss_result = scan_statistics(engine)
    program_pruned = None
    # Re-run transparently to expose the pruning counter.
    probe = GraphEngine(
        image,
        config=EngineConfig(
            num_threads=32, range_shift=7, schedule_order=ScheduleOrder.CUSTOM
        ),
    )
    program = ScanStatisticsProgram(image.num_vertices, image.directed)
    degrees = (image.out_csr.degrees() + image.in_csr.degrees()).astype(np.int64)
    program.attach_degrees(degrees)
    probe.run(program)
    program_pruned = program.pruned

    print(f"\nscan statistics: max locality statistic {max_scan} at user "
          f"{argmax}, {ss_result.runtime:.3f} s simulated")
    print(f"  degree-descending scheduler pruned {program_pruned:,} of "
          f"{image.num_vertices:,} users without any I/O")
    dense_users = set(int(v) for v in clique)
    if int(argmax) in dense_users:
        print(f"  -> the anomaly IS the planted clique (user {argmax})")
    else:
        print(f"  -> densest neighborhood belongs to organic hub {argmax}; "
              f"clique members rank high in raw scan values")


if __name__ == "__main__":
    main()
