#!/usr/bin/env python
"""Quickstart: build a graph, run BFS and PageRank in semi-external memory.

This walks the whole FlashGraph pipeline in ~40 lines of user code:

1. generate a power-law graph (a scaled Twitter stand-in),
2. build its on-SSD image (edge-list files + compact in-memory index),
3. run BFS and PageRank on the semi-external-memory engine over the
   simulated 15-SSD array,
4. compare against the in-memory build of the same engine.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.algorithms import bfs, pagerank
from repro.core import EngineConfig, ExecutionMode, GraphEngine
from repro.graph import build_directed, twitter_sim


def main() -> None:
    # 1. A scaled Twitter-profile graph: 8K vertices, ~230K edges.
    edges, num_vertices = twitter_sim(scale=13, seed=7)
    image = build_directed(edges, num_vertices, name="quickstart")
    print(f"built {image}: {image.storage_bytes() / 1e6:.1f} MB on simulated SSDs,")
    print(f"  graph index: {image.index_memory_bytes() / 1e3:.1f} KB in memory "
          f"(~{image.index_memory_bytes() / num_vertices:.2f} B/vertex, both directions)")

    # 2. A semi-external-memory engine: vertex state in RAM, edge lists on
    #    the simulated SSD array behind SAFS.
    engine = GraphEngine(image, config=EngineConfig(num_threads=32, range_shift=8))

    # 3. BFS from the largest hub.
    source = int(np.argmax(image.out_csr.degrees()))
    levels, result = bfs(engine, source)
    reached = int((levels >= 0).sum())
    print(f"\nBFS from hub {source}: reached {reached}/{num_vertices} vertices "
          f"in {result.iterations} iterations")
    print(f"  simulated runtime {result.runtime * 1e3:.2f} ms, "
          f"read {result.bytes_read / 1e6:.1f} MB from SSDs, "
          f"cache hit rate {result.cache_hit_rate:.0%}")

    # 4. PageRank (the paper's delta formulation, 30 iterations max).
    ranks, result = pagerank(engine, max_iterations=30)
    top = np.argsort(ranks)[::-1][:5]
    print(f"\nPageRank: {result.iterations} iterations, "
          f"simulated runtime {result.runtime * 1e3:.2f} ms")
    print("  top vertices:", ", ".join(f"{v} ({ranks[v]:.2f})" for v in top))

    # 5. The same algorithms on the in-memory build (FG-mem).
    mem_engine = GraphEngine(
        image,
        config=EngineConfig(
            mode=ExecutionMode.IN_MEMORY, num_threads=32, range_shift=8
        ),
    )
    _, mem_result = bfs(mem_engine, source)
    _, sem_result = bfs(engine, source)  # warm cache this time
    print(f"\nBFS in-memory: {mem_result.runtime * 1e3:.2f} ms; "
          f"semi-external (warm cache): {sem_result.runtime * 1e3:.2f} ms — "
          f"{mem_result.runtime / sem_result.runtime:.0%} of in-memory "
          f"performance with a fraction of the RAM")


if __name__ == "__main__":
    main()
