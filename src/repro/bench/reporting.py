"""Plain-text table formatting for benchmark output."""

from typing import Iterable, List, Mapping, Optional, Sequence


def format_value(value) -> str:
    """Human formatting: seconds/bytes/ratios pick sensible precision."""
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 100:
            return f"{value:,.0f}"
        if magnitude >= 1:
            return f"{value:.2f}"
        if magnitude >= 1e-3:
            return f"{value:.4f}"
        return f"{value:.3e}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict-rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        rendered.append([format_value(row.get(c, "")) for c in columns])
    widths = [max(len(r[i]) for r in rendered) for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    header, *body = rendered
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def human_bytes(num: float) -> str:
    """1536 → '1.5KiB'."""
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(num) < 1024.0 or unit == "TiB":
            return f"{num:.1f}{unit}" if unit != "B" else f"{num:.0f}B"
        num /= 1024.0
    return f"{num:.1f}TiB"


#: Environment variable naming the mirror file for benchmark tables.
RESULTS_ENV = "REPRO_BENCH_RESULTS"
#: Default mirror file, relative to the working directory.
DEFAULT_RESULTS_FILE = "bench_results.txt"


def results_path() -> str:
    """Where :func:`print_experiment` mirrors its tables."""
    import os

    return os.environ.get(RESULTS_ENV, DEFAULT_RESULTS_FILE)


def print_experiment(name: str, tables: Iterable[str]) -> None:
    """Emit one experiment's tables with a banner.

    The tables are the actual deliverable of a benchmark run, but pytest
    captures stdout at the file-descriptor level; so besides printing,
    every experiment is mirrored (appended) to :func:`results_path` —
    ``bench_results.txt`` by default, truncated once per pytest session
    by the benchmarks conftest.
    """
    banner = "=" * 72
    block_lines = [f"\n{banner}\n{name}\n{banner}"]
    for table in tables:
        block_lines.append(table)
        block_lines.append("")
    block = "\n".join(block_lines)
    print(block)
    with open(results_path(), "a") as mirror:
        mirror.write(block + "\n")
