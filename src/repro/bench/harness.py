"""Run any algorithm on any engine configuration and collect a row.

The single entry points :func:`run_algorithm` (FlashGraph, either mode)
and :func:`run_baseline` (comparator engines) normalise everything the
experiments need: runtime, bytes read, memory, cache hit rate, CPU/IO
utilisation.  :func:`collect_metrics` / :func:`write_metrics_json` emit
the machine-readable metrics snapshot (counters, histograms, gauge
series) that rides next to ``BENCH_wallclock.json`` as
``BENCH_metrics.json``.
"""

import json
from typing import Dict, Optional

import numpy as np

from repro.algorithms.bc import betweenness_centrality
from repro.algorithms.bfs import bfs
from repro.algorithms.pagerank import pagerank
from repro.algorithms.scan_statistics import scan_statistics
from repro.algorithms.triangle_count import triangle_count
from repro.algorithms.wcc import wcc
from repro.baselines import (
    GaloisEngine,
    GraphChiEngine,
    PowerGraphEngine,
    XStreamEngine,
)
from repro.core.config import EngineConfig, ExecutionMode, ScheduleOrder
from repro.core.engine import GraphEngine, RunResult
from repro.obs import registry as reg
from repro.graph.builder import GraphImage
from repro.safs.filesystem import SAFS, SAFSConfig
from repro.sim.cost_model import CostModel
from repro.sim.faults import FaultPlan, FaultPolicy
from repro.sim.health import HealthPolicy
from repro.sim.parity import ParityConfig
from repro.sim.ssd_array import SSDArray, SSDArrayConfig

#: The six applications of §4, in the paper's order.
PAPER_APPS = ("bfs", "bc", "tc", "wcc", "pr", "ss")

#: Long names used by the baseline engines.
BASELINE_NAMES = {
    "bfs": "bfs",
    "bc": "bc",
    "pr": "pagerank",
    "wcc": "wcc",
    "tc": "triangle_count",
    "ss": "scan_statistics",
}

BASELINE_ENGINES = {
    "graphchi": GraphChiEngine,
    "xstream": XStreamEngine,
    "powergraph": PowerGraphEngine,
    "galois": GaloisEngine,
}


def default_source(image: GraphImage) -> int:
    """The traversal source every experiment uses: the largest out-hub,
    so BFS reaches most of the graph (as the paper's sources do)."""
    return int(np.argmax(image.out_csr.degrees()))


def make_engine(
    image: GraphImage,
    mode: ExecutionMode = ExecutionMode.SEMI_EXTERNAL,
    cache_bytes: int = 1 << 20,
    page_size: int = 4096,
    num_threads: int = 32,
    range_shift: int = 8,
    cost_model: Optional[CostModel] = None,
    array_config: Optional[SSDArrayConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
    fault_policy: Optional[FaultPolicy] = None,
    health_policy: Optional[HealthPolicy] = None,
    parity: Optional[ParityConfig] = None,
    **config_overrides,
) -> GraphEngine:
    """A fully-wired engine over a fresh SAFS instance.

    The robustness knobs (``fault_plan``/``fault_policy``/
    ``health_policy``/``parity``) only apply in semi-external mode; all
    default to off, which keeps the array on the exact legacy fast path.
    """
    config = EngineConfig(
        mode=mode,
        num_threads=num_threads,
        range_shift=range_shift,
        **config_overrides,
    )
    safs = None
    if mode is ExecutionMode.SEMI_EXTERNAL:
        array = SSDArray(
            array_config or SSDArrayConfig(), fault_plan=fault_plan, parity=parity
        )
        safs = SAFS(
            array,
            SAFSConfig(page_size=page_size, cache_bytes=cache_bytes),
            stats=array.stats,
            fault_policy=fault_policy,
            health_policy=health_policy,
        )
    return GraphEngine(image, safs=safs, config=config, cost_model=cost_model)


def run_algorithm(
    engine: GraphEngine,
    app: str,
    source: Optional[int] = None,
    max_iterations: int = 30,
) -> RunResult:
    """Run one of the paper's six applications on a FlashGraph engine."""
    if source is None:
        source = default_source(engine.image)
    if app == "bfs":
        _, result = bfs(engine, source)
    elif app == "bc":
        _, result = betweenness_centrality(engine, source)
    elif app == "pr":
        _, result = pagerank(engine, max_iterations=max_iterations)
    elif app == "wcc":
        _, result = wcc(engine)
    elif app == "tc":
        _, result = triangle_count(engine)
    elif app == "ss":
        engine.config = engine.config.with_overrides(
            schedule_order=ScheduleOrder.CUSTOM
        )
        _, _, result = scan_statistics(engine)
    else:
        raise ValueError(f"unknown app {app!r}; pick from {PAPER_APPS}")
    return result


def run_baseline(
    system: str,
    image: GraphImage,
    app: str,
    source: Optional[int] = None,
    max_iterations: int = 30,
    **engine_kwargs,
):
    """Run one app on one comparator engine; returns a BaselineReport."""
    if source is None:
        source = default_source(image)
    try:
        engine_cls = BASELINE_ENGINES[system]
    except KeyError:
        raise ValueError(
            f"unknown system {system!r}; pick from {sorted(BASELINE_ENGINES)}"
        ) from None
    engine = engine_cls(image, **engine_kwargs)
    return engine.run(BASELINE_NAMES[app], source=source, max_iterations=max_iterations)


def collect_metrics(engine: GraphEngine, label: str = "") -> Dict[str, object]:
    """The engine's full metrics snapshot, tagged with a suite label.

    Counters are always present; histogram and gauge-series sections fill
    in when the run was traced with an armed observer (see
    :mod:`repro.obs`).  The shape is the stable
    ``repro.metrics/v1`` schema from
    :meth:`~repro.sim.stats.StatsCollector.metrics_snapshot`.
    """
    metrics = engine.stats.metrics_snapshot()
    metrics["label"] = label
    return metrics


def write_metrics_json(path, sections: Dict[str, Dict[str, object]]) -> None:
    """Write ``{suite name -> metrics snapshot}`` as deterministic JSON."""
    with open(path, "w") as f:
        json.dump(sections, f, indent=2, sort_keys=True)
        f.write("\n")


def result_row(
    label: str, app: str, result: RunResult, fmt: Optional[str] = None
) -> Dict[str, object]:
    """A uniform dict row from a FlashGraph RunResult.

    Passing ``fmt`` appends the on-SSD edge-list format plus the run's
    compression ratio (v1-equivalent bytes over stored bytes; v1 runs
    report 1.0), so format comparisons read straight off the table.
    """
    row = {
        "system": label,
        "app": app,
        "runtime_s": result.runtime,
        "iterations": result.iterations,
        "read_MB": result.bytes_read / 1e6,
        "cache_hit": result.cache_hit_rate,
        "cpu_util": result.cpu_utilization,
        "io_util": result.io_utilization,
        "memory_MB": result.memory_bytes / 1e6,
    }
    if fmt is not None:
        row["format"] = fmt
        row["compression"] = result.counters.get(reg.GRAPH_COMPRESSION_RATIO, 1.0)
        row["decode_MB"] = result.counters.get(reg.GRAPH_DECODE_BYTES, 0.0) / 1e6
    return row
