"""One experiment per table/figure of the paper's evaluation (§5).

Each function runs the full experiment on the scaled datasets and returns
printable rows; the matching file under ``benchmarks/`` regenerates it via
``pytest benchmarks/ --benchmark-only``.  Absolute numbers are simulated
seconds on the modelled 15-SSD machine; EXPERIMENTS.md records how each
shape compares with the paper.
"""

from typing import Dict, List

from repro.algorithms.diameter import estimate_diameter
from repro.bench.datasets import DATASETS, load_dataset, scaled_cache_bytes
from repro.bench.harness import (
    default_source,
    make_engine,
    run_algorithm,
    run_baseline,
)
from repro.core.config import ExecutionMode, ScheduleOrder

Row = Dict[str, object]

#: Apps of Figure 8/9/14, in paper order.
FIG8_APPS = ("bfs", "bc", "tc", "wcc", "pr", "ss")
#: Apps of Figure 10 (no scan statistics).
FIG10_APPS = ("bfs", "bc", "tc", "wcc", "pr")
#: Apps of Figure 11 (GraphChi has no BFS; SS is FlashGraph-specific).
FIG11_APPS = ("bfs", "pr", "wcc", "tc")


def table1() -> List[Row]:
    """Table 1: dataset properties, paper vs scaled stand-in."""
    rows: List[Row] = []
    for dataset in DATASETS.values():
        image = load_dataset(dataset.name)
        rows.append(
            {
                "dataset": dataset.name,
                "paper_graph": dataset.paper_name,
                "paper_V": dataset.paper_vertices,
                "paper_E": dataset.paper_edges,
                "paper_size": dataset.paper_size,
                "paper_diam": dataset.paper_diameter,
                "sim_V": image.num_vertices,
                "sim_E": image.num_edges,
                "sim_size_MB": image.storage_bytes() / 1e6,
                "sim_diam": estimate_diameter(image, num_sweeps=6, seed=0),
                "edges_per_vertex": image.num_edges / image.num_vertices,
            }
        )
    return rows


def fig8() -> List[Row]:
    """Figure 8: SEM (1GB cache) performance relative to in-memory."""
    rows: List[Row] = []
    cache = scaled_cache_bytes(1.0)
    for graph in ("twitter-sim", "subdomain-sim"):
        image = load_dataset(graph)
        for app in FIG8_APPS:
            mem = run_algorithm(
                make_engine(image, mode=ExecutionMode.IN_MEMORY), app
            )
            sem = run_algorithm(make_engine(image, cache_bytes=cache), app)
            rows.append(
                {
                    "graph": graph,
                    "app": app,
                    "mem_s": mem.runtime,
                    "sem_s": sem.runtime,
                    "relative_perf": mem.runtime / sem.runtime,
                    "sem_cache_hit": sem.cache_hit_rate,
                }
            )
    return rows


def fig9() -> List[Row]:
    """Figure 9: CPU and I/O utilisation on the subdomain graph (SEM)."""
    image = load_dataset("subdomain-sim")
    cache = scaled_cache_bytes(1.0)
    rows: List[Row] = []
    for app in FIG8_APPS:
        result = run_algorithm(make_engine(image, cache_bytes=cache), app)
        rows.append(
            {
                "app": app,
                "cpu_util": result.cpu_utilization,
                "io_util": result.io_utilization,
                "io_MBps": result.io_throughput / 1e6,
                "runtime_s": result.runtime,
            }
        )
    return rows


def fig10() -> List[Row]:
    """Figure 10: FG-mem / FG-1G vs PowerGraph and Galois."""
    rows: List[Row] = []
    cache = scaled_cache_bytes(1.0)
    for graph in ("twitter-sim", "subdomain-sim"):
        image = load_dataset(graph)
        source = default_source(image)
        for app in FIG10_APPS:
            mem = run_algorithm(
                make_engine(image, mode=ExecutionMode.IN_MEMORY), app, source
            )
            sem = run_algorithm(make_engine(image, cache_bytes=cache), app, source)
            entry: Row = {
                "graph": graph,
                "app": app,
                "FG-mem_s": mem.runtime,
                "FG-1G_s": sem.runtime,
            }
            for system in ("powergraph", "galois"):
                report = run_baseline(system, image, app, source)
                entry[f"{system}_s"] = report.runtime
            rows.append(entry)
    return rows


def fig11() -> List[Row]:
    """Figure 11: runtime and memory vs GraphChi and X-Stream (Twitter)."""
    image = load_dataset("twitter-sim")
    source = default_source(image)
    cache = scaled_cache_bytes(1.0)
    rows: List[Row] = []
    for app in FIG11_APPS:
        sem = run_algorithm(make_engine(image, cache_bytes=cache), app, source)
        entry: Row = {
            "app": app,
            "FG-1G_s": sem.runtime,
            "FG-1G_mem_MB": sem.memory_bytes / 1e6,
        }
        for system in ("graphchi", "xstream"):
            if system == "graphchi" and app == "bfs":
                entry["graphchi_s"] = float("nan")
                entry["graphchi_mem_MB"] = float("nan")
                continue
            report = run_baseline(system, image, app, source)
            entry[f"{system}_s"] = report.runtime
            entry[f"{system}_mem_MB"] = report.memory_bytes / 1e6
        rows.append(entry)
    return rows


def fig12() -> List[Row]:
    """Figure 12: the value of preserving sequential I/O (BFS + WCC).

    Four configurations, performance relative to merging in FlashGraph:
    random execution order, sequential order without merging, merging in
    SAFS (bounded queue window, kernel-path CPU), merging in FlashGraph.
    """
    image = load_dataset("subdomain-sim")
    cache = scaled_cache_bytes(1.0)
    variants = {
        "random-exec": dict(
            schedule_order=ScheduleOrder.RANDOM,
            merge_in_engine=False,
            merge_in_fs=False,
        ),
        "seq-exec-no-merge": dict(merge_in_engine=False, merge_in_fs=False),
        "merge-in-SAFS": dict(merge_in_engine=False, merge_in_fs=True),
        "merge-in-FlashGraph": dict(),
    }
    rows: List[Row] = []
    for app in ("bfs", "wcc"):
        runtimes = {}
        for label, overrides in variants.items():
            engine = make_engine(
                image,
                cache_bytes=cache,
                max_running_vertices=512,
                **overrides,
            )
            runtimes[label] = run_algorithm(engine, app).runtime
        best = runtimes["merge-in-FlashGraph"]
        for label, runtime in runtimes.items():
            rows.append(
                {
                    "app": app,
                    "variant": label,
                    "runtime_s": runtime,
                    "relative_perf": best / runtime,
                }
            )
    return rows


def fig13() -> List[Row]:
    """Figure 13: the impact of the SAFS page size (4KB → 1MB)."""
    image = load_dataset("subdomain-sim")
    cache = scaled_cache_bytes(1.0)
    page_sizes = (4096, 16384, 65536, 262144, 1048576)
    rows: List[Row] = []
    for app in ("bfs", "tc", "wcc"):
        runtimes = {}
        for page_size in page_sizes:
            engine = make_engine(image, cache_bytes=cache, page_size=page_size)
            runtimes[page_size] = run_algorithm(engine, app).runtime
        best = min(runtimes.values())
        for page_size, runtime in runtimes.items():
            rows.append(
                {
                    "app": app,
                    "page_size": page_size,
                    "runtime_s": runtime,
                    "relative_perf": best / runtime,
                }
            )
    return rows


def fig14() -> List[Row]:
    """Figure 14: the impact of the page cache size (1GB → 32GB)."""
    image = load_dataset("subdomain-sim")
    sizes_gib = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
    rows: List[Row] = []
    for app in FIG8_APPS:
        runtimes = {}
        for gib in sizes_gib:
            engine = make_engine(image, cache_bytes=scaled_cache_bytes(gib))
            runtimes[gib] = run_algorithm(engine, app).runtime
        best = runtimes[32.0]
        for gib, runtime in runtimes.items():
            rows.append(
                {
                    "app": app,
                    "cache_GB": gib,
                    "runtime_s": runtime,
                    "relative_to_32G": best / runtime,
                }
            )
    return rows


def table2() -> List[Row]:
    """Table 2: the six applications on the billion-node page graph
    stand-in, 4GB-equivalent cache."""
    image = load_dataset("page-sim")
    cache = scaled_cache_bytes(4.0)
    rows: List[Row] = []
    for app in FIG8_APPS:
        engine = make_engine(image, cache_bytes=cache)
        init = engine.simulate_init_time()
        result = run_algorithm(engine, app)
        rows.append(
            {
                "app": app,
                "runtime_s": result.runtime,
                "init_s": init,
                "memory_MB": result.memory_bytes / 1e6,
                "cache_hit": result.cache_hit_rate,
                "iterations": result.iterations,
            }
        )
    return rows


def ablations() -> List[Row]:
    """Ablations beyond the paper's figures, for DESIGN.md's design
    decisions: engine merging, vertical partitioning for TC, scan-direction
    alternation, the 4000-running-vertices claim, and array width."""
    image = load_dataset("subdomain-sim")
    cache = scaled_cache_bytes(1.0)
    rows: List[Row] = []

    # (a) Engine-level merging on/off (WCC).
    for merge in (True, False):
        result = run_algorithm(
            make_engine(image, cache_bytes=cache, merge_in_engine=merge,
                        merge_in_fs=merge),
            "wcc",
        )
        rows.append(
            {"ablation": "engine-merge", "setting": str(merge),
             "app": "wcc", "runtime_s": result.runtime}
        )

    # (b) Vertical partitioning for triangle counting: split only real
    # hubs, in SSD-order chunks big enough to keep merging intact.
    for threshold in (0, 512):
        result = run_algorithm(
            make_engine(
                image,
                cache_bytes=cache,
                vertical_part_threshold=threshold,
                vertical_part_size=256,
            ),
            "tc",
        )
        rows.append(
            {"ablation": "vertical-partitioning",
             "setting": f"threshold={threshold}", "app": "tc",
             "runtime_s": result.runtime}
        )

    # (c) Alternating scan direction (WCC, small cache to expose reuse).
    for alternate in (True, False):
        result = run_algorithm(
            make_engine(
                image,
                cache_bytes=cache // 4,
                alternate_scan_direction=alternate,
            ),
            "wcc",
        )
        rows.append(
            {"ablation": "alternate-scan", "setting": str(alternate),
             "app": "wcc", "runtime_s": result.runtime}
        )

    # (d) Max running vertices per thread (§3.7: gains plateau once the
    # merge window is large enough).  Fewer threads give each one a queue
    # big enough for the window to be the binding constraint; the paper's
    # absolute 4000 corresponds to a smaller plateau point at this scale.
    for max_running in (100, 400, 1000, 4000):
        result = run_algorithm(
            make_engine(
                image,
                cache_bytes=cache,
                num_threads=4,
                max_running_vertices=max_running,
            ),
            "wcc",
        )
        rows.append(
            {"ablation": "max-running-vertices", "setting": str(max_running),
             "app": "wcc", "runtime_s": result.runtime}
        )

    # (e) SSD array width (scalability of the I/O substrate).
    from repro.sim.ssd_array import SSDArrayConfig

    for num_ssds in (1, 4, 8, 15):
        result = run_algorithm(
            make_engine(
                image,
                cache_bytes=cache,
                array_config=SSDArrayConfig(num_ssds=num_ssds),
            ),
            "bfs",
        )
        rows.append(
            {"ablation": "ssd-count", "setting": str(num_ssds),
             "app": "bfs", "runtime_s": result.runtime}
        )
    return rows
