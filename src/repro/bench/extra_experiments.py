"""Experiments beyond the paper's figures.

- :func:`sec56_clusters` — the §5.6 discussion made quantitative: the
  SEM single machine vs Pregel-profile (300 machines) and Trinity-profile
  (14 machines) clusters, plus a PEGASUS-style MapReduce engine, on the
  page-graph stand-in.
- :func:`turbograph_comparison` — the §5.4.2 TurboGraph argument made
  direct: selective access with 4KB pages vs multi-megabyte blocks.
- :func:`cache_policy_ablation` — LRU vs gclock eviction and an
  associativity sweep for the SAFS page cache.
- :func:`straggler_experiment` — one degraded SSD in the array: per-SSD
  queues confine the damage to the stripes that device owns.
- :func:`partitioning_ablation` — §3.8's range partitioning vs a
  locality-destroying hash partitioner.
"""

from typing import Dict, List

from repro.baselines import (
    PegasusEngine,
    PregelEngine,
    TrinityEngine,
    TurboGraphEngine,
)
from repro.bench.datasets import load_dataset, scaled_cache_bytes
from repro.bench.harness import default_source, make_engine, run_algorithm
from repro.safs.filesystem import SAFS, SAFSConfig
from repro.sim.ssd import SSDConfig
from repro.sim.ssd_array import SSDArray, SSDArrayConfig

Row = Dict[str, object]


def sec56_clusters() -> List[Row]:
    """FlashGraph vs cluster systems on the page graph stand-in (§5.6)."""
    image = load_dataset("page-sim")
    source = default_source(image)
    cache = scaled_cache_bytes(4.0)
    rows: List[Row] = []
    for app in ("bfs", "pagerank", "wcc"):
        short = {"bfs": "bfs", "pagerank": "pr", "wcc": "wcc"}[app]
        fg = run_algorithm(make_engine(image, cache_bytes=cache), short, source)
        entry: Row = {
            "app": app,
            "FG-4G_s": fg.runtime,
            "FG_machines": 1,
        }
        for engine in (PregelEngine(image), TrinityEngine(image), PegasusEngine(image)):
            report = engine.run(app, source=source)
            entry[f"{engine.name}_s"] = report.runtime
        rows.append(entry)
    return rows


def turbograph_comparison() -> List[Row]:
    """Selective access at 4KB vs TurboGraph's multi-megabyte blocks."""
    image = load_dataset("subdomain-sim")
    source = default_source(image)
    rows: List[Row] = []
    for app in ("bfs", "pagerank", "wcc"):
        short = {"bfs": "bfs", "pagerank": "pr", "wcc": "wcc"}[app]
        fg = run_algorithm(
            make_engine(image, cache_bytes=scaled_cache_bytes(1.0)), short, source
        )
        turbo = TurboGraphEngine(image).run(app, source=source)
        rows.append(
            {
                "app": app,
                "flashgraph_s": fg.runtime,
                "turbograph_s": turbo.runtime,
                "fg_read_MB": fg.bytes_read / 1e6,
                "turbo_read_MB": turbo.bytes_read / 1e6,
            }
        )
    return rows


def cache_policy_ablation() -> List[Row]:
    """LRU vs gclock and associativity for the SAFS page cache (WCC)."""
    image = load_dataset("subdomain-sim")
    cache = scaled_cache_bytes(1.0)
    rows: List[Row] = []
    for eviction in ("lru", "gclock"):
        for associativity in (2, 8, 32):
            array = SSDArray(SSDArrayConfig())
            safs = SAFS(
                array,
                SAFSConfig(
                    cache_bytes=cache,
                    cache_associativity=associativity,
                    cache_eviction=eviction,
                ),
                stats=array.stats,
            )
            from repro.core.config import EngineConfig
            from repro.core.engine import GraphEngine

            engine = GraphEngine(
                image,
                safs=safs,
                config=EngineConfig(num_threads=32, range_shift=8),
            )
            result = run_algorithm(engine, "wcc")
            rows.append(
                {
                    "eviction": eviction,
                    "associativity": associativity,
                    "runtime_s": result.runtime,
                    "cache_hit": result.cache_hit_rate,
                }
            )
    return rows


def straggler_experiment() -> List[Row]:
    """BFS with one degraded device (4x slower) in the 15-SSD array."""
    image = load_dataset("subdomain-sim")
    source = default_source(image)
    cache = scaled_cache_bytes(1.0)
    healthy = SSDConfig()
    degraded = SSDConfig(
        max_iops=healthy.max_iops / 4,
        seq_bandwidth=healthy.seq_bandwidth / 4,
        read_latency=healthy.read_latency * 4,
    )
    rows: List[Row] = []
    for num_stragglers in (0, 1, 4):
        configs = [healthy] * 15
        for i in range(num_stragglers):
            configs[i] = degraded
        array = SSDArray(SSDArrayConfig(), device_configs=configs)
        safs = SAFS(array, SAFSConfig(cache_bytes=cache), stats=array.stats)
        from repro.core.config import EngineConfig
        from repro.core.engine import GraphEngine

        engine = GraphEngine(
            image, safs=safs, config=EngineConfig(num_threads=32, range_shift=8)
        )
        result = run_algorithm(engine, "bfs", source)
        rows.append(
            {
                "stragglers": num_stragglers,
                "runtime_s": result.runtime,
                "io_util": result.io_utilization,
            }
        )
    return rows


def partitioning_ablation() -> List[Row]:
    """Range vs hash horizontal partitioning (§3.8's design argument)."""
    from repro.core.config import PartitionStrategy

    image = load_dataset("subdomain-sim")
    cache = scaled_cache_bytes(1.0)
    rows: List[Row] = []
    for strategy in (PartitionStrategy.RANGE, PartitionStrategy.HASH):
        for app in ("bfs", "wcc"):
            result = run_algorithm(
                make_engine(
                    image,
                    cache_bytes=cache,
                    partition_strategy=strategy,
                    max_running_vertices=512,
                ),
                app,
            )
            rows.append(
                {
                    "strategy": strategy.value,
                    "app": app,
                    "runtime_s": result.runtime,
                    "pages_fetched": result.counters.get("io.pages_fetched", 0),
                    "cache_hit": result.cache_hit_rate,
                }
            )
    return rows
