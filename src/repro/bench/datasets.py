"""The scaled dataset registry (Table 1 stand-ins).

Every benchmark runs on synthetic graphs that preserve the paper datasets'
edges/vertex ratio, degree skew and ID locality at roughly 1/4096 the byte
size.  Cache sizes quoted in paper units ("1GB", "4GB", …) are divided by
the same :data:`CACHE_SCALE`, preserving the cache:graph ratio that drives
hit rates.
"""

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Tuple

import numpy as np

from repro.graph.builder import GraphImage, build_directed
from repro.graph.format import FORMAT_V1
from repro.graph.generators import page_sim, subdomain_sim, twitter_sim

#: Paper byte sizes divide by this to get simulated sizes ("1GB" → 256KiB).
CACHE_SCALE = 4096


def scaled_cache_bytes(paper_gib: float) -> int:
    """Simulated cache size for a paper-units cache (e.g. ``1.0`` = 1GB)."""
    if paper_gib <= 0:
        raise ValueError("cache size must be positive")
    return max(1 << 14, int(paper_gib * (1 << 30) / CACHE_SCALE))


@dataclass(frozen=True)
class Dataset:
    """One Table 1 dataset and its scaled stand-in."""

    name: str
    paper_name: str
    paper_vertices: str
    paper_edges: str
    paper_size: str
    paper_diameter: int
    builder: Callable[[], Tuple[np.ndarray, int]]

    def build(self, fmt: str = FORMAT_V1) -> GraphImage:
        edges, num_vertices = self.builder()
        return build_directed(edges, num_vertices, name=self.name, fmt=fmt)


DATASETS: Dict[str, Dataset] = {
    "twitter-sim": Dataset(
        name="twitter-sim",
        paper_name="Twitter",
        paper_vertices="42M",
        paper_edges="1.5B",
        paper_size="13GB",
        paper_diameter=23,
        builder=lambda: twitter_sim(scale=13, seed=1),
    ),
    "subdomain-sim": Dataset(
        name="subdomain-sim",
        paper_name="Subdomain",
        paper_vertices="89M",
        paper_edges="2B",
        paper_size="18GB",
        paper_diameter=30,
        builder=lambda: subdomain_sim(scale=14, seed=2),
    ),
    "page-sim": Dataset(
        name="page-sim",
        paper_name="Page",
        paper_vertices="3.4B",
        paper_edges="129B",
        paper_size="1.1TB",
        paper_diameter=650,
        builder=lambda: page_sim(num_vertices=1 << 15, seed=3),
    ),
}


@lru_cache(maxsize=None)
def load_dataset(name: str, fmt: str = FORMAT_V1) -> GraphImage:
    """Build (and memoise) one registered dataset's graph image.

    ``fmt`` picks the on-SSD edge-list layout; each (name, fmt) pair is
    memoised separately since the serialized files differ.
    """
    try:
        dataset = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; registered: {sorted(DATASETS)}"
        ) from None
    return dataset.build(fmt)
