"""Command-line tools for the FlashGraph reproduction.

Four subcommands mirror a downstream user's workflow::

    python -m repro.cli generate --dataset twitter-sim --out tw.npz
    python -m repro.cli run --algorithm bfs --dataset twitter-sim \
        --mode semi-external --cache-mb 1 --trace bfs.csv
    python -m repro.cli bench --experiment fig8
    python -m repro.cli profile --algorithm pr --dataset twitter-sim \
        --out BENCH_profile.json

``generate`` persists a scaled dataset's edge list; ``run`` executes one
algorithm on a registered dataset or an edge-list file and prints the
result row; ``bench`` regenerates one paper table/figure by name;
``profile`` runs one algorithm with the observer armed and writes a
validated per-iteration per-layer time breakdown (see
:mod:`repro.obs.report`); ``slo`` serves a multi-tenant trace with the
timeline sampler armed and writes a validated burn-rate report
(``repro.slo/v1``, see :mod:`repro.obs.slo`).
"""

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from repro.bench import experiments
from repro.bench import extra_experiments
from repro.bench.datasets import DATASETS, load_dataset
from repro.bench.harness import PAPER_APPS, make_engine, result_row, run_algorithm
from repro.bench.reporting import format_table
from repro.core.checkpoint import CheckpointManager
from repro.core.config import ExecutionKind, ExecutionMode
from repro.core.engine import IterationAborted
from repro.core.tracing import IterationTracer
from repro.obs import (
    Observer,
    TimelineConfig,
    TimelineSampler,
    arm,
    build_profile,
    build_slo_report,
    format_profile,
    format_slo_report,
    validate_profile,
    validate_slo_report,
    write_chrome,
    write_jsonl,
)
from repro.safs.page import SAFSFile
from repro.serve import (
    GraphService,
    OverloadConfig,
    ServiceConfig,
    TenantSpec,
    TenantTraffic,
    generate_trace,
)
from repro.serve.overload import SHED_POLICIES
from repro.serve.service import SCHEDULING_POLICIES
from repro.sim.faults import default_chaos_plan
from repro.sim.health import HealthPolicy
from repro.sim.parity import ParityConfig
from repro.graph.builder import build_directed
from repro.graph.format import FORMAT_V1, FORMATS
from repro.graph.io_edge_list import (
    load_edges_npz,
    load_edges_text,
    save_edges_npz,
    stored_graph_format,
)
from repro.graph.stats import degree_percentiles, degree_stats, format_size_report
from repro.graph.types import EdgeType

EXPERIMENTS = {
    "table1": experiments.table1,
    "fig8": experiments.fig8,
    "fig9": experiments.fig9,
    "fig10": experiments.fig10,
    "fig11": experiments.fig11,
    "fig12": experiments.fig12,
    "fig13": experiments.fig13,
    "fig14": experiments.fig14,
    "table2": experiments.table2,
    "ablations": experiments.ablations,
    "sec56": extra_experiments.sec56_clusters,
    "turbograph": extra_experiments.turbograph_comparison,
    "cache-policy": extra_experiments.cache_policy_ablation,
    "stragglers": extra_experiments.straggler_experiment,
    "partitioning": extra_experiments.partitioning_ablation,
}


def _add_serve_arguments(p) -> None:
    """The serving-run flags shared by ``serve`` and ``slo``."""
    p.add_argument("--dataset", choices=sorted(DATASETS), required=True)
    p.add_argument(
        "--tenant", action="append", required=True, metavar="SPEC",
        help="one tenant, repeatable: name=acme,rate=120[,weight=2]"
        "[,quota=3][,apps=pr+bfs+wcc][,burst=4x0.2][,deadline=0.05]"
        "[,cache-kb=256][,slo-latency=0.02][,slo-target=0.99]"
        "[,slo-availability=0.95][,share=0][,result-cache=private] "
        "(rate in queries per simulated "
        "second; burst=FACTORxFRACTION of each 50ms window; "
        "slo-latency/slo-availability declare burn-rate objectives; "
        "share= opts a tenant out of --share-reads dedup; "
        "result-cache= is shared, private or off)",
    )
    p.add_argument(
        "--duration", type=float, default=0.2,
        help="trace length in simulated seconds (default: %(default)s)",
    )
    p.add_argument("--seed", type=int, default=0, help="traffic seed")
    p.add_argument(
        "--policy", choices=list(SCHEDULING_POLICIES), default="fair",
        help="admission scheduling policy (default: %(default)s)",
    )
    p.add_argument("--cache-mb", type=float, default=1.0)
    p.add_argument("--threads", type=int, default=32)
    p.add_argument(
        "--pr-iterations", type=int, default=5,
        help="iteration cap for 'pr' queries (default: %(default)s)",
    )
    p.add_argument(
        "--fault-seed", type=int, default=None,
        help="inject the default chaos plan, seeded",
    )
    p.add_argument(
        "--overload", action="store_true",
        help="arm overload control: bounded queues with shedding, plus "
        "deadline enforcement and brownout when their flags are set "
        "(see docs/overload.md)",
    )
    p.add_argument(
        "--queue-cap", type=int, default=8,
        help="per-tenant waiting-queue cap under --overload "
        "(default: %(default)s; per-tenant queue-cap= overrides)",
    )
    p.add_argument(
        "--global-queue-cap", type=int, default=24,
        help="global waiting-queue cap under --overload "
        "(default: %(default)s)",
    )
    p.add_argument(
        "--shed-policy", choices=list(SHED_POLICIES),
        default="reject-newest",
        help="which query a full queue sheds (default: %(default)s)",
    )
    p.add_argument(
        "--enforce-deadlines", action="store_true",
        help="drop queued queries past their deadline and cancel "
        "running jobs once the deadline is unreachable",
    )
    p.add_argument(
        "--brownout", action="store_true",
        help="arm the overload detector + brownout state machine",
    )
    p.add_argument(
        "--brownout-pr-iterations", type=int, default=2,
        help="iteration cap for pr queries admitted during brownout "
        "(default: %(default)s)",
    )
    p.add_argument(
        "--share-reads", action="store_true",
        help="cross-query in-flight read dedup: overlapping dispatches "
        "attach to outstanding device fetches instead of re-issuing "
        "them (see docs/io_sharing.md)",
    )
    p.add_argument(
        "--result-cache", action="store_true",
        help="answer repeat queries (same algorithm, params and graph "
        "image) from a cached output vector at admission time",
    )
    p.add_argument(
        "--result-cache-ttl", type=float, default=None, metavar="SECONDS",
        help="result-cache entry lifetime on the simulated clock "
        "(default: never expires)",
    )
    p.add_argument(
        "--cache-rebalance", action="store_true",
        help="adaptively move page-cache capacity between tenant "
        "cache-kb partitions toward the best marginal hit rate "
        "(needs at least two tenants with cache-kb=)",
    )
    p.add_argument(
        "--cache-rebalance-interval", type=float, default=0.01,
        metavar="SECONDS",
        help="rebalance decision interval in simulated seconds "
        "(default: %(default)s)",
    )
    p.add_argument(
        "--timeline", metavar="PATH",
        help="arm the timeline sampler and write its windowed snapshot "
        "table as Markdown here",
    )
    p.add_argument(
        "--timeline-interval", type=float, default=0.005,
        help="timeline window length in simulated seconds "
        "(default: %(default)s)",
    )
    p.add_argument(
        "--trace-spans",
        help="write the shared observer's span trace as JSONL here "
        "(includes per-query lifecycle events)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FlashGraph reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate and persist a dataset")
    gen.add_argument("--dataset", choices=sorted(DATASETS), required=True)
    gen.add_argument("--out", required=True, help="output .npz path")
    gen.add_argument(
        "--graph-format", choices=list(FORMATS), default=FORMAT_V1,
        help="on-SSD edge-list format recorded in the .npz; `run` builds "
        "the image in this format unless overridden (default: %(default)s)",
    )

    run = sub.add_parser("run", help="run one algorithm")
    run.add_argument("--algorithm", choices=PAPER_APPS, required=True)
    run.add_argument("--dataset", choices=sorted(DATASETS))
    run.add_argument("--edges", help="edge-list file (.npz or text)")
    run.add_argument(
        "--graph-format", choices=list(FORMATS), default=None,
        help="on-SSD edge-list format (default: the format recorded in the "
        ".npz, else v1)",
    )
    run.add_argument(
        "--mode",
        choices=[m.value for m in ExecutionMode],
        default=ExecutionMode.SEMI_EXTERNAL.value,
    )
    run.add_argument(
        "--execution",
        choices=[k.value for k in ExecutionKind],
        default=ExecutionKind.SYNC.value,
        help="run-loop policy: 'sync' BSP supersteps (the default) or "
        "'async' priority rounds for residual-capable algorithms "
        "(pr, wcc; see docs/execution_modes.md)",
    )
    run.add_argument(
        "--async-threshold", type=float, default=0.0,
        help="async: stop once the global residual sum falls to this "
        "value (0 runs to quiescence)",
    )
    run.add_argument(
        "--async-staleness", type=int, default=4,
        help="async: rounds a vertex may be deferred by the priority "
        "selector before it is force-scheduled",
    )
    run.add_argument("--cache-mb", type=float, default=1.0)
    run.add_argument("--threads", type=int, default=32)
    run.add_argument(
        "--source", type=int, default=None,
        help="traversal source (default: the largest out-degree hub)",
    )
    run.add_argument("--max-iterations", type=int, default=30)
    run.add_argument("--trace", help="write per-iteration CSV here")
    run.add_argument(
        "--trace-spans",
        help="write the armed observer's span trace as JSONL here",
    )
    run.add_argument(
        "--trace-chrome",
        help="write a Chrome trace_event JSON (chrome://tracing, Perfetto)",
    )
    run.add_argument(
        "--fault-seed", type=int, default=None,
        help="inject the default chaos plan, seeded (semi-external only)",
    )
    run.add_argument(
        "--parity", action="store_true",
        help="stripe a rotating parity page per stripe; single-device "
        "loss and silent corruption reconstruct from survivors",
    )
    run.add_argument(
        "--checkpoint-dir", default=None,
        help="directory for iteration-barrier checkpoints",
    )
    run.add_argument(
        "--checkpoint-every", type=int, default=1,
        help="barriers between checkpoints (with --checkpoint-dir)",
    )
    run.add_argument(
        "--resume", action="store_true",
        help="resume from the latest checkpoint in --checkpoint-dir; "
        "the finished run is bit-identical to an uninterrupted one",
    )

    bench = sub.add_parser("bench", help="regenerate one paper experiment")
    bench.add_argument("--experiment", choices=sorted(EXPERIMENTS), required=True)

    serve = sub.add_parser(
        "serve",
        help="serve a seeded multi-tenant query trace over one shared "
        "SAFS stack and print per-tenant SLO stats",
    )
    _add_serve_arguments(serve)
    serve.add_argument("--out", help="write the service report as JSON here")

    slo = sub.add_parser(
        "slo",
        help="serve a trace with the timeline sampler armed and write a "
        "validated burn-rate report (repro.slo/v1); tenants declare "
        "objectives via slo-latency=/slo-target=/slo-availability=",
    )
    _add_serve_arguments(slo)
    slo.add_argument(
        "--out", default="slo_report.json",
        help="burn-rate report JSON output path (default: %(default)s)",
    )

    graph = sub.add_parser("graph", help="inspect a graph without running anything")
    gsub = graph.add_subparsers(dest="graph_command", required=True)
    gstats = gsub.add_parser(
        "stats",
        help="vertices, edges, degree percentiles and on-SSD bytes "
        "under format v1 vs v2",
    )
    gstats.add_argument("--dataset", choices=sorted(DATASETS))
    gstats.add_argument("--edges", help="edge-list file (.npz or text)")

    prof = sub.add_parser(
        "profile",
        help="run one algorithm with tracing armed and write a "
        "per-iteration per-layer time breakdown",
    )
    prof.add_argument("--algorithm", choices=PAPER_APPS, required=True)
    prof.add_argument("--dataset", choices=sorted(DATASETS), required=True)
    prof.add_argument("--cache-mb", type=float, default=1.0)
    prof.add_argument("--threads", type=int, default=32)
    prof.add_argument("--source", type=int, default=None)
    prof.add_argument("--max-iterations", type=int, default=30)
    prof.add_argument(
        "--out", default="BENCH_profile.json",
        help="profile JSON output path (default: %(default)s)",
    )
    prof.add_argument(
        "--trace-spans", help="also write the span trace as JSONL here"
    )
    prof.add_argument(
        "--trace-chrome", help="also write a Chrome trace_event JSON here"
    )
    return parser


def _resolve_format(args) -> str:
    """The on-SSD format for this invocation: the explicit flag, else the
    format recorded in the ``.npz`` being loaded, else v1."""
    fmt = getattr(args, "graph_format", None)
    if fmt is None and args.edges and args.edges.endswith(".npz"):
        fmt = stored_graph_format(args.edges)
    return fmt or FORMAT_V1


def _load_image(args, fmt: str = FORMAT_V1):
    if args.dataset:
        return load_dataset(args.dataset, fmt)
    if args.edges:
        if args.edges.endswith(".npz"):
            edges, num_vertices = load_edges_npz(args.edges)
        else:
            edges, num_vertices = load_edges_text(args.edges)
        return build_directed(edges, num_vertices, name="cli-graph", fmt=fmt)
    raise SystemExit(f"{args.command} needs --dataset or --edges")


def cmd_generate(args) -> int:
    dataset = DATASETS[args.dataset]
    edges, num_vertices = dataset.builder()
    save_edges_npz(args.out, edges, num_vertices, fmt=args.graph_format)
    print(
        f"wrote {args.dataset}: {num_vertices:,} vertices, "
        f"{len(edges):,} edges ({args.graph_format}) -> {args.out}"
    )
    return 0


def cmd_run(args) -> int:
    fmt = _resolve_format(args)
    image = _load_image(args, fmt)
    mode = ExecutionMode(args.mode)
    if mode is not ExecutionMode.SEMI_EXTERNAL:
        if args.fault_seed is not None:
            raise SystemExit("--fault-seed needs --mode semi-external")
        if args.parity:
            raise SystemExit("--parity needs --mode semi-external")
        if args.trace_spans or args.trace_chrome:
            raise SystemExit(
                "--trace-spans/--trace-chrome need --mode semi-external"
            )
    execution = ExecutionKind(args.execution)
    if execution is ExecutionKind.ASYNC and args.algorithm not in ("pr", "wcc"):
        raise SystemExit(
            "--execution async needs a residual-capable algorithm "
            "(pr, wcc); see docs/execution_modes.md"
        )
    fault_plan = None
    if args.fault_seed is not None:
        fault_plan = default_chaos_plan(args.fault_seed)
    # Pin the file-id counter so every `run` invocation lays files out
    # identically (cache set hashing keys on ids): a checkpoint written
    # by one process must restore in another.
    SAFSFile._next_id = 0
    engine = make_engine(
        image,
        mode=mode,
        cache_bytes=int(args.cache_mb * (1 << 20)),
        num_threads=args.threads,
        execution=execution,
        async_threshold=args.async_threshold,
        async_staleness=args.async_staleness,
        fault_plan=fault_plan,
        health_policy=HealthPolicy() if fault_plan is not None else None,
        parity=ParityConfig() if args.parity else None,
    )
    manager = None
    if args.checkpoint_dir:
        manager = CheckpointManager(args.checkpoint_dir)
        engine.enable_checkpoints(manager, every=args.checkpoint_every)
    if args.resume:
        if manager is None:
            raise SystemExit("--resume needs --checkpoint-dir")
        iteration = engine.resume_from(manager)
        print(f"resuming from the iteration-{iteration} checkpoint")
    observer = None
    if args.trace_spans or args.trace_chrome:
        observer = arm(engine)
    tracer = IterationTracer(engine) if args.trace else None

    def write_span_traces() -> None:
        if observer is None:
            return
        if args.trace_spans:
            write_jsonl(observer, args.trace_spans)
            print(f"wrote span trace -> {args.trace_spans}")
        if args.trace_chrome:
            write_chrome(observer, args.trace_chrome)
            print(f"wrote Chrome trace -> {args.trace_chrome}")

    try:
        if tracer:
            with tracer:
                result = run_algorithm(
                    engine, args.algorithm, source=args.source,
                    max_iterations=args.max_iterations,
                )
            tracer.write_csv(args.trace)
            print(f"wrote {tracer.num_iterations}-iteration trace -> {args.trace}")
        else:
            result = run_algorithm(
                engine, args.algorithm, source=args.source,
                max_iterations=args.max_iterations,
            )
    except IterationAborted as aborted:
        print(
            f"run aborted at iteration {aborted.iteration}: {aborted.cause}",
            file=sys.stderr,
        )
        if tracer is not None and tracer.num_iterations:
            # The tracer's __exit__ already ran (the `with` block above
            # propagates the abort), so its hook is gone but its records
            # survive: salvage what completed before the abort.
            tracer.write_csv(args.trace)
            print(
                f"wrote partial {tracer.num_iterations}-iteration trace "
                f"-> {args.trace}",
                file=sys.stderr,
            )
        write_span_traces()
        if manager is not None and manager.latest() is not None:
            print(
                f"latest checkpoint: {manager.latest()} (re-run with --resume)",
                file=sys.stderr,
            )
        return 1
    write_span_traces()
    label = mode.value
    if execution is not ExecutionKind.SYNC:
        label = f"{mode.value}+{execution.value}"
    row = result_row(label, args.algorithm, result, fmt=fmt)
    print(format_table([row], title=f"{args.algorithm} on {image.name}"))
    return 0


def _parse_tenant(spec: str):
    """``name=acme,rate=120[,weight=2][,quota=3][,apps=pr+bfs+wcc]
    [,burst=4x0.2][,deadline=0.05][,cache-kb=256][,queue-cap=4]
    [,degradable=0][,slo-latency=0.02][,slo-target=0.99]
    [,slo-availability=0.95]`` → (TenantSpec, TenantTraffic)."""
    fields = {}
    for part in spec.split(","):
        if "=" not in part:
            raise SystemExit(f"bad tenant field {part!r} (expected key=value)")
        key, value = part.split("=", 1)
        fields[key.strip()] = value.strip()
    name = fields.pop("name", None)
    rate = fields.pop("rate", None)
    if not name or rate is None:
        raise SystemExit("each --tenant needs at least name= and rate=")
    weight = float(fields.pop("weight", 1.0))
    quota = int(fields.pop("quota", 2))
    apps = tuple(fields.pop("apps", "pr+bfs+wcc").split("+"))
    deadline = fields.pop("deadline", None)
    cache_kb = fields.pop("cache-kb", None)
    queue_cap = fields.pop("queue-cap", None)
    degradable = fields.pop("degradable", "1") not in ("0", "false", "no")
    slo_latency = fields.pop("slo-latency", None)
    slo_target = float(fields.pop("slo-target", 0.99))
    slo_availability = fields.pop("slo-availability", None)
    share_reads = fields.pop("share", "1") not in ("0", "false", "no")
    result_cache = fields.pop("result-cache", "shared")
    burst = fields.pop("burst", None)
    if fields:
        raise SystemExit(f"unknown tenant fields: {', '.join(sorted(fields))}")
    burst_factor, burst_fraction = 1.0, 0.0
    if burst:
        try:
            factor_s, fraction_s = burst.split("x", 1)
            burst_factor, burst_fraction = float(factor_s), float(fraction_s)
        except ValueError:
            raise SystemExit(
                f"bad burst {burst!r} (expected FACTORxFRACTION, e.g. 4x0.2)"
            ) from None
    try:
        tenant = TenantSpec(
            name=name,
            weight=weight,
            max_concurrent=quota,
            deadline_s=float(deadline) if deadline else None,
            cache_bytes=int(float(cache_kb) * 1024) if cache_kb else None,
            queue_cap=int(queue_cap) if queue_cap else None,
            degradable=degradable,
            slo_latency_s=float(slo_latency) if slo_latency else None,
            slo_target=slo_target,
            slo_availability=(
                float(slo_availability) if slo_availability else None
            ),
            share_reads=share_reads,
            result_cache=result_cache,
        )
        traffic = TenantTraffic(
            tenant=name,
            rate_qps=float(rate),
            apps=apps,
            burst_factor=burst_factor,
            burst_fraction=burst_fraction,
        )
    except ValueError as exc:
        raise SystemExit(f"bad tenant {name!r}: {exc}") from None
    return tenant, traffic


def _make_service(args, observer=None, timeline=None):
    """A :class:`GraphService` plus its trace, from the shared flags."""
    image = load_dataset(args.dataset)
    parsed = [_parse_tenant(spec) for spec in args.tenant]
    tenants = [tenant for tenant, _ in parsed]
    traffics = [traffic for _, traffic in parsed]
    trace = generate_trace(traffics, args.duration, args.seed)
    fault_plan = None
    if args.fault_seed is not None:
        fault_plan = default_chaos_plan(args.fault_seed)
    overload = None
    if args.overload:
        overload = OverloadConfig(
            tenant_queue_cap=args.queue_cap,
            global_queue_cap=args.global_queue_cap,
            shed_policy=args.shed_policy,
            enforce_deadlines=args.enforce_deadlines,
            brownout=args.brownout,
            brownout_pr_iterations=args.brownout_pr_iterations,
        )
    elif args.enforce_deadlines or args.brownout:
        raise SystemExit(
            "--enforce-deadlines/--brownout need --overload to arm "
            "overload control"
        )
    if args.cache_rebalance:
        partitioned = sum(1 for t in tenants if t.cache_bytes is not None)
        if partitioned < 2:
            raise SystemExit(
                "--cache-rebalance needs at least two tenants with "
                "cache-kb= partitions to move capacity between"
            )
    config = ServiceConfig(
        cache_bytes=int(args.cache_mb * (1 << 20)),
        num_threads=args.threads,
        policy=args.policy,
        pr_iterations=args.pr_iterations,
        overload=overload,
        share_reads=args.share_reads,
        result_cache=args.result_cache,
        result_cache_ttl_s=args.result_cache_ttl,
        cache_rebalance=args.cache_rebalance,
        cache_rebalance_interval_s=args.cache_rebalance_interval,
    )
    service = GraphService(
        image,
        tenants,
        config,
        fault_plan=fault_plan,
        health_policy=HealthPolicy() if fault_plan is not None else None,
        observer=observer,
        timeline=timeline,
    )
    return service, trace


def cmd_serve(args) -> int:
    observer = Observer() if args.trace_spans else None
    timeline = (
        TimelineSampler(TimelineConfig(interval_s=args.timeline_interval))
        if args.timeline
        else None
    )
    service, trace = _make_service(args, observer=observer, timeline=timeline)
    report = service.serve(trace)
    print(
        f"served {report.completed}/{report.offered} queries "
        f"({report.aborted} aborted, {report.shed} shed, "
        f"{report.quota_waits} quota waits) "
        f"in {report.duration_s * 1e3:.3f} simulated ms "
        f"under the '{report.policy}' policy"
    )
    if report.overload is not None:
        summary = report.overload
        print(
            f"overload control: state={summary['state']} "
            f"transitions={summary['transitions']} "
            f"brownout={summary['brownout_seconds'] * 1e3:.3f}ms "
            f"peak queue={summary['peak_queue_depth']} "
            f"degraded={sum(summary['degraded_jobs'].values())} "
            f"deadline aborts={sum(summary['deadline_aborts'].values())}"
        )
    if report.sharing is not None:
        sharing = report.sharing
        parts = [
            f"dedup pages={sharing['dedup_pages']:.0f}",
            f"waits={sharing['dedup_waits']:.0f}",
        ]
        if sharing["result_cache"] is not None:
            rc = sharing["result_cache"]
            parts.append(
                f"result-cache hits={rc['hits']}/{rc['hits'] + rc['misses']}"
            )
        if sharing["rebalancer"] is not None:
            rb = sharing["rebalancer"]
            parts.append(
                f"rebalance moves={rb['moves']} pages={rb['pages_moved']}"
            )
        print(f"io sharing: {' '.join(parts)}")
    header = (
        f"{'tenant':<12} {'jobs':>5} {'aborts':>6} {'shed':>5} {'p50 ms':>9} "
        f"{'p99 ms':>9} {'max wait ms':>12} {'busy ms':>9}"
    )
    print(header)
    for name, tenant_report in sorted(report.tenants.items()):
        row = tenant_report.to_dict()
        print(
            f"{name:<12} {row['jobs']:>5} {row['aborts']:>6} "
            f"{row['shed']:>5} "
            f"{row['latency_p50_s'] * 1e3:>9.3f} "
            f"{row['latency_p99_s'] * 1e3:>9.3f} "
            f"{row['max_queue_wait_s'] * 1e3:>12.3f} "
            f"{row['busy_seconds'] * 1e3:>9.3f}"
        )
    if args.trace_spans:
        write_jsonl(observer, args.trace_spans)
        print(f"wrote span trace -> {args.trace_spans}")
    if args.timeline:
        with open(args.timeline, "w") as f:
            f.write(timeline.to_markdown())
            f.write("\n")
        print(f"wrote timeline -> {args.timeline}")
    if args.out:
        with open(args.out, "w") as f:
            json.dump(report.to_dict(), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote report -> {args.out}")
    return 0


def cmd_slo(args) -> int:
    """A serve run with the SLO observability plane fully armed: the
    timeline sampler streams windowed snapshots, tenants' declared
    objectives feed the burn-rate tracker, and the validated
    ``repro.slo/v1`` report lands in ``--out``."""
    observer = Observer() if args.trace_spans else None
    timeline = TimelineSampler(
        TimelineConfig(interval_s=args.timeline_interval)
    )
    service, trace = _make_service(args, observer=observer, timeline=timeline)
    if service.slo is None:
        raise SystemExit(
            "repro slo needs at least one tenant declaring an objective "
            "(slo-latency= or slo-availability= in --tenant)"
        )
    report = service.serve(trace)
    label = f"{args.dataset} policy={args.policy} seed={args.seed}"
    doc = build_slo_report(report, service.slo, timeline, label=label)
    problems = validate_slo_report(doc)
    if problems:
        for problem in problems:
            print(f"slo report invalid: {problem}", file=sys.stderr)
        return 1
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    if args.timeline:
        with open(args.timeline, "w") as f:
            f.write(timeline.to_markdown())
            f.write("\n")
    if args.trace_spans:
        write_jsonl(observer, args.trace_spans)
    print(format_slo_report(doc))
    print(timeline.to_markdown())
    print(f"wrote slo report -> {args.out}")
    return 0


def cmd_bench(args) -> int:
    rows = EXPERIMENTS[args.experiment]()
    print(format_table(rows, title=args.experiment))
    return 0


def cmd_graph_stats(args) -> int:
    image = _load_image(args)
    sizes = format_size_report(image)
    rows = []
    directions = [EdgeType.OUT] + ([EdgeType.IN] if image.directed else [])
    for direction in directions:
        stats = degree_stats(image, direction)
        row = {
            "direction": direction.value,
            "mean_deg": stats.mean,
            "max_deg": stats.maximum,
        }
        row.update(degree_percentiles(image, direction))
        rows.append(row)
    print(format_table(rows, title=f"{image.name} degree distribution"))
    print(
        format_table(
            [
                {
                    "vertices": image.num_vertices,
                    "edges": image.num_edges,
                    "v1_MB": sizes["v1_bytes"] / 1e6,
                    "v2_MB": sizes["v2_bytes"] / 1e6,
                    "compression": sizes["compression_ratio"],
                    "built_format": sizes["built_format"],
                }
            ],
            title=f"{image.name} on-SSD edge-file bytes",
        )
    )
    return 0


def cmd_profile(args) -> int:
    image = load_dataset(args.dataset)
    SAFSFile._next_id = 0
    engine = make_engine(
        image,
        mode=ExecutionMode.SEMI_EXTERNAL,
        cache_bytes=int(args.cache_mb * (1 << 20)),
        num_threads=args.threads,
    )
    observer = arm(engine)
    run_algorithm(
        engine, args.algorithm, source=args.source,
        max_iterations=args.max_iterations,
    )
    label = f"{args.algorithm}@{args.dataset}"
    profile = build_profile(observer, label=label)
    problems = validate_profile(profile)
    if problems:
        for problem in problems:
            print(f"profile invalid: {problem}", file=sys.stderr)
        return 1
    with open(args.out, "w") as f:
        json.dump(profile, f, indent=2, sort_keys=True)
        f.write("\n")
    if args.trace_spans:
        write_jsonl(observer, args.trace_spans)
    if args.trace_chrome:
        write_chrome(observer, args.trace_chrome)
    print(format_profile(profile))
    print(f"wrote profile -> {args.out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "generate":
        return cmd_generate(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "slo":
        return cmd_slo(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "graph":
        return cmd_graph_stats(args)
    if args.command == "profile":
        return cmd_profile(args)
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
