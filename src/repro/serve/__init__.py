"""The multi-tenant graph-query service layer.

Many concurrent algorithm jobs — PageRank, BFS, WCC, k-core mixes —
share one SAFS page cache and SSD array on the shared DES clock, the
concurrency SAFS's asynchronous user-task interface was designed for
(paper §3).  The package provides:

- :mod:`repro.serve.tenants` — tenant specs, quotas and the busy-time
  accountant that tiles device time across tenants exactly,
- :mod:`repro.serve.admission` — the per-tenant admission controller,
- :mod:`repro.serve.traffic` — the seeded, replayable open-loop traffic
  generator (bursty Poisson arrivals, Zipf-weighted app mixes),
- :mod:`repro.serve.queries` — per-app query construction,
- :mod:`repro.serve.overload` — overload control: bounded admission
  queues with deterministic shedding, deadline enforcement, and the
  brownout state machine (see ``docs/overload.md``),
- :mod:`repro.serve.results` — the cross-query result cache answering
  repeat queries at admission time (see ``docs/io_sharing.md``),
- :mod:`repro.serve.cache_sizing` — the ghost-LRU driven rebalancer
  adaptively sizing tenant cache partitions,
- :mod:`repro.serve.service` — :class:`GraphService`, the event loop
  interleaving jobs by smallest virtual clock under fair-share, FIFO or
  deadline (EDF) scheduling.

See ``docs/serving.md`` for the architecture.
"""

from repro.serve.admission import AdmissionController, QuotaExceeded
from repro.serve.cache_sizing import CacheRebalanceConfig, CacheRebalancer
from repro.serve.overload import (
    OverloadConfig,
    OverloadController,
    OverloadEvent,
    ShedRecord,
)
from repro.serve.queries import Query, QueryFactory
from repro.serve.results import (
    CachedResult,
    ResultCache,
    ResultCacheConfig,
    image_digest,
)
from repro.serve.service import (
    GraphService,
    ServeTelemetry,
    ServiceConfig,
    ServiceReport,
    TenantReport,
)
from repro.serve.tenants import TenantAccountant, TenantSpec
from repro.serve.traffic import Arrival, TenantTraffic, generate_trace

__all__ = [
    "AdmissionController",
    "Arrival",
    "CacheRebalanceConfig",
    "CacheRebalancer",
    "CachedResult",
    "GraphService",
    "OverloadConfig",
    "OverloadController",
    "OverloadEvent",
    "Query",
    "QueryFactory",
    "QuotaExceeded",
    "ResultCache",
    "ResultCacheConfig",
    "ServeTelemetry",
    "ServiceConfig",
    "ServiceReport",
    "ShedRecord",
    "TenantAccountant",
    "TenantReport",
    "TenantSpec",
    "TenantTraffic",
    "generate_trace",
    "image_digest",
]
