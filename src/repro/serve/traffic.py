"""Seeded, replayable open-loop traffic generation.

Arrivals are *open-loop*: the full trace is drawn up front from the
seed, so the load never adapts to how slowly the service runs — the
property that makes sustained-QPS-vs-p99 curves honest (an overloaded
service keeps receiving arrivals it cannot absorb).

Each tenant draws an independent Poisson process (its own
``default_rng([seed, tenant_index])`` stream), optionally modulated by
deterministic ON/OFF burst windows: within an ON window the rate is
``burst_factor`` times the base, and the OFF rate is scaled down so the
long-run mean stays ``rate_qps``.  Window crossings re-draw the
exponential gap, which is exact for a Poisson process (memorylessness).
App choice per arrival is an independent weighted draw; the default
weights are Zipf (``1/(rank+1)``), the classic skew of a shared query
service.  Same seed → byte-identical trace, always.
"""

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Arrival:
    """One query arrival in the merged trace."""

    #: Arrival time in simulated seconds.
    time: float
    #: Tenant the query belongs to.
    tenant: str
    #: Algorithm to run ("pr", "bfs", "wcc", "kcore", ...).
    app: str
    #: Global index in the merged trace (ties broken deterministically).
    index: int


@dataclass(frozen=True)
class TenantTraffic:
    """One tenant's arrival process."""

    tenant: str
    #: Long-run mean arrival rate in queries per simulated second.
    rate_qps: float
    #: Apps this tenant issues, most-popular first.
    apps: Tuple[str, ...] = ("pr", "bfs", "wcc")
    #: Per-app probabilities; ``None`` = Zipf over ``apps``.
    app_weights: Optional[Tuple[float, ...]] = None
    #: ON-window rate multiplier (1.0 = no bursts).
    burst_factor: float = 1.0
    #: Fraction of each period spent in the ON window.
    burst_fraction: float = 0.0
    #: Burst period in simulated seconds.
    burst_period_s: float = 0.05

    def __post_init__(self) -> None:
        if self.rate_qps <= 0.0:
            raise ValueError("rate_qps must be positive")
        if not self.apps:
            raise ValueError("a tenant must issue at least one app")
        if self.app_weights is not None and len(self.app_weights) != len(self.apps):
            raise ValueError("app_weights must match apps")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1.0")
        if not 0.0 <= self.burst_fraction < 1.0:
            raise ValueError("burst_fraction must lie in [0, 1)")
        if self.burst_factor > 1.0 and self.burst_fraction > 0.0:
            # The OFF rate must stay non-negative for the mean to hold.
            if self.burst_factor * self.burst_fraction > 1.0:
                raise ValueError(
                    "burst_factor * burst_fraction must be <= 1 (the OFF "
                    "windows cannot have negative rate)"
                )
        if self.burst_period_s <= 0.0:
            raise ValueError("burst_period_s must be positive")

    @property
    def bursty(self) -> bool:
        return self.burst_factor > 1.0 and self.burst_fraction > 0.0

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t``."""
        if not self.bursty:
            return self.rate_qps
        phase = t % self.burst_period_s
        if phase < self.burst_fraction * self.burst_period_s:
            return self.rate_qps * self.burst_factor
        off_share = 1.0 - self.burst_factor * self.burst_fraction
        return self.rate_qps * off_share / (1.0 - self.burst_fraction)

    def next_boundary(self, t: float) -> float:
        """The next ON/OFF window edge strictly after ``t``.

        Walks candidate edges in ascending order and returns the first
        one strictly past ``t``: ``k * period`` can round to exactly
        ``t`` in floats (e.g. ``43 * 0.1 == 4.3``), and returning ``t``
        itself would wedge the arrival walk.
        """
        if not self.bursty:
            return float("inf")
        period = self.burst_period_s
        cycle = int(t / period)
        for k in (cycle - 1, cycle, cycle + 1, cycle + 2):
            for edge in (
                k * period + self.burst_fraction * period,
                (k + 1) * period,
            ):
                if edge > t:
                    return edge
        return t + period  # pragma: no cover - float backstop

    def normalized_weights(self) -> np.ndarray:
        if self.app_weights is not None:
            weights = np.asarray(self.app_weights, dtype=np.float64)
        else:
            weights = 1.0 / (np.arange(len(self.apps)) + 1.0)
        total = weights.sum()
        if total <= 0.0 or np.any(weights < 0.0):
            raise ValueError("app weights must be non-negative with a positive sum")
        return weights / total


def _arrival_times(
    traffic: TenantTraffic, duration_s: float, rng: np.random.Generator
) -> List[float]:
    """One tenant's Poisson arrivals over ``[0, duration_s)``.

    The bursty walk tracks the current window with an integer period
    index and an ON/OFF flag rather than deriving them from ``t`` with
    ``%`` — the pointwise form misclassifies windows whenever a period
    edge rounds onto ``t`` (e.g. ``43 * 0.1 == 4.3``).
    """
    times: List[float] = []
    t = 0.0
    if not traffic.bursty:
        scale = 1.0 / traffic.rate_qps
        while True:
            t += rng.exponential(scale)
            if t >= duration_s:
                return times
            times.append(t)
    period = traffic.burst_period_s
    on_rate = traffic.rate_qps * traffic.burst_factor
    off_share = 1.0 - traffic.burst_factor * traffic.burst_fraction
    off_rate = traffic.rate_qps * off_share / (1.0 - traffic.burst_fraction)
    cycle = 0
    on = True
    while t < duration_s:
        if on:
            window_end = cycle * period + traffic.burst_fraction * period
            rate = on_rate
        else:
            window_end = (cycle + 1) * period
            rate = off_rate
        if rate <= 0.0 or window_end <= t:
            if not on:
                cycle += 1
            on = not on
            continue
        gap = rng.exponential(1.0 / rate)
        if t + gap >= window_end:
            # Crossed into the next window: the process is memoryless,
            # so restarting the draw at the window edge is exact.
            t = window_end
            if not on:
                cycle += 1
            on = not on
            continue
        t += gap
        if t < duration_s:
            times.append(t)
    return times


def generate_trace(
    traffics: Sequence[TenantTraffic], duration_s: float, seed: int
) -> List[Arrival]:
    """The merged, time-sorted arrival trace for all tenants.

    Every tenant gets an independent ``default_rng([seed, index])``
    stream, so adding or reordering *other* tenants never perturbs a
    tenant's own arrivals.  Ties sort by tenant position then per-tenant
    sequence, so the trace is a pure function of ``(traffics, duration,
    seed)``.
    """
    if duration_s <= 0.0:
        raise ValueError("duration_s must be positive")
    names = [tr.tenant for tr in traffics]
    if len(set(names)) != len(names):
        raise ValueError("tenant names must be unique")
    raw: List[Tuple[float, int, int, str, str]] = []
    for ti, traffic in enumerate(traffics):
        rng = np.random.default_rng([seed, ti])
        times = _arrival_times(traffic, duration_s, rng)
        if times:
            apps = rng.choice(
                len(traffic.apps), size=len(times), p=traffic.normalized_weights()
            )
        else:
            apps = []
        for seq, (t, app_i) in enumerate(zip(times, apps)):
            raw.append((t, ti, seq, traffic.tenant, traffic.apps[int(app_i)]))
    raw.sort(key=lambda r: (r[0], r[1], r[2]))
    return [
        Arrival(time=t, tenant=tenant, app=app, index=i)
        for i, (t, _, _, tenant, app) in enumerate(raw)
    ]
