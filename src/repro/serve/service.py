"""The long-lived multi-tenant graph-query service.

:class:`GraphService` owns one SAFS stack — page cache, I/O scheduler,
SSD array — and runs many algorithm jobs against it concurrently on the
shared DES clock.  Each admitted query becomes an
:class:`~repro.core.engine.EngineJob` (its own engine object, sharing
the service's SAFS and stats); the event loop always advances the job
with the smallest virtual clock, so jobs contend for device queues and
the cache exactly the way the engine's own worker threads already do.

Scheduling policies (``ServiceConfig.policy``):

- ``fifo`` — arrival order;
- ``fair`` — weighted fair share: admit the tenant with the least
  attributed device-busy time per unit weight, with starvation aging
  (a query waiting longer than ``starvation_bound_s`` jumps the queue);
- ``deadline`` — earliest deadline first over each tenant's
  ``deadline_s``.

A single-job service run replays the batch engine's code path operation
for operation, so its simulated counters are bit-identical to the
equivalent ``repro run`` — the serving tests pin this.

Overload control (``ServiceConfig.overload``, see ``docs/overload.md``)
bounds the admission queues, sheds or deadline-aborts infeasible work,
and brownouts the service under sustained pressure.  With the knob left
``None`` the event loop runs the exact pre-overload code path, so the
bit-identity guarantees above are untouched.
"""

import math
from collections import deque

import numpy as np
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import EngineConfig, ExecutionMode
from repro.core.engine import EngineJob, GraphEngine, IterationAborted, RunResult
from repro.graph.builder import GraphImage
from repro.obs import registry as reg
from repro.obs.slo import SLOConfig, SLOTracker
from repro.safs.filesystem import SAFS, SAFSConfig
from repro.safs.io_scheduler import InflightReadRegistry
from repro.safs.page import SAFSFile
from repro.safs.page_cache import PageCache, PageCacheConfig
from repro.serve.admission import AdmissionController
from repro.serve.cache_sizing import CacheRebalanceConfig, CacheRebalancer
from repro.serve.overload import OverloadConfig, OverloadController, ShedRecord
from repro.serve.queries import Query, QueryFactory
from repro.serve.results import (
    RESULT_SCOPE_SHARED,
    ResultCache,
    ResultCacheConfig,
)
from repro.serve.tenants import TenantAccountant, TenantSpec
from repro.serve.traffic import Arrival
from repro.sim.cost_model import CostModel
from repro.sim.stats import Histogram
from repro.sim.faults import FaultPlan, FaultPolicy
from repro.sim.health import HealthPolicy
from repro.sim.parity import ParityConfig
from repro.sim.ssd_array import SSDArray, SSDArrayConfig

SCHEDULING_POLICIES = ("fifo", "fair", "deadline")


@dataclass(frozen=True)
class ServiceConfig:
    """Service-wide knobs (engine knobs mirror the bench harness)."""

    cache_bytes: int = 1 << 20
    page_size: int = 4096
    num_threads: int = 32
    range_shift: int = 8
    #: Admission scheduling policy: "fifo", "fair" or "deadline".
    policy: str = "fair"
    #: Fair mode: a query waiting this long (simulated seconds) is
    #: admitted ahead of any share comparison — the no-starvation bound.
    starvation_bound_s: float = 0.05
    #: Iteration cap for "pr" queries ("pr30" always runs the paper's 30).
    pr_iterations: int = 5
    #: k for "kcore" queries.
    kcore_k: int = 4
    #: Overload control (bounded queues, shedding, deadline enforcement,
    #: brownout); ``None`` keeps the exact pre-overload event loop.
    overload: Optional[OverloadConfig] = None
    #: Cross-query I/O sharing (see docs/io_sharing.md).  All three
    #: default off, which keeps the exact legacy event loop and the
    #: single-tenant batch bit-identity contract.
    #: In-flight read dedup: overlapping dispatches from sharing tenants
    #: attach to outstanding device fetches instead of re-issuing them.
    share_reads: bool = False
    #: Result caching: repeat queries (same canonical fingerprint) are
    #: answered from a completed query's output at admission time.
    result_cache: bool = False
    #: Result-cache entry lifetime on the simulated clock; ``None``
    #: never expires.
    result_cache_ttl_s: Optional[float] = None
    #: Simulated cost a result-cache hit charges the tenant.
    result_cache_cost_s: float = 5e-5
    #: Adaptive tenant cache sizing: periodically move set capacity
    #: between tenant cache partitions toward the best marginal hit
    #: rate (requires at least two tenants with ``cache_bytes``).
    cache_rebalance: bool = False
    #: Rebalance decision interval (simulated seconds).
    cache_rebalance_interval_s: float = 0.01
    #: Per-partition capacity floor, as a fraction of initial capacity.
    cache_rebalance_floor: float = 0.5

    def __post_init__(self) -> None:
        if self.policy not in SCHEDULING_POLICIES:
            raise ValueError(
                f"unknown scheduling policy {self.policy!r} "
                f"(one of {', '.join(SCHEDULING_POLICIES)})"
            )
        if self.starvation_bound_s <= 0.0:
            raise ValueError("starvation_bound_s must be positive")
        if self.pr_iterations < 1:
            raise ValueError("pr_iterations must be at least 1")
        if self.kcore_k < 1:
            raise ValueError("kcore_k must be at least 1")
        if self.result_cache_ttl_s is not None and self.result_cache_ttl_s <= 0.0:
            raise ValueError("result_cache_ttl_s must be positive")
        if self.result_cache_cost_s < 0.0:
            raise ValueError("result_cache_cost_s must be non-negative")
        if self.cache_rebalance_interval_s <= 0.0:
            raise ValueError("cache_rebalance_interval_s must be positive")
        if not 0.0 < self.cache_rebalance_floor <= 1.0:
            raise ValueError("cache_rebalance_floor must lie in (0, 1]")


@dataclass
class JobRecord:
    """One query's lifecycle, for reports and assertions."""

    tenant: str
    app: str
    arrival_time: float
    start_time: float
    finish_time: float
    ok: bool
    iterations: int
    result: RunResult
    #: The algorithm's output vector (program state at completion).
    values: object = None
    abort_reason: Optional[str] = None
    #: Whether brownout admitted this job at reduced fidelity.
    degraded: bool = False
    #: Trace-global query id (``Arrival.index``) — the join key between
    #: this record and every span the query produced (``query_path``).
    index: int = -1
    #: Simulated bytes this query read from the SSD array — per-step
    #: attribution (deltas around each of the job's own barriers), so
    #: concurrent jobs never bleed into each other's totals.
    bytes_read: float = 0.0
    #: Pages / attach events this query served by joining another
    #: query's in-flight fetch (``safs.dedup_*``, same attribution).
    dedup_pages: float = 0.0
    dedup_waits: float = 0.0
    #: Whether the query was answered from the result cache (it never
    #: ran an engine; ``result`` is a synthesized near-zero-cost stub).
    result_cached: bool = False

    @property
    def latency(self) -> float:
        return self.finish_time - self.arrival_time

    @property
    def queue_wait(self) -> float:
        return self.start_time - self.arrival_time


def _query_context(arrival: Arrival) -> dict:
    """The span context joining all of one query's trace records: the
    trace-global query id plus its tenant/app labels."""
    return {
        "query": arrival.index,
        "tenant": arrival.tenant,
        "app": arrival.app,
    }


def _latency_histogram(values) -> Histogram:
    """The serving layer's canonical latency histogram over ``values``.

    Every quantile the serving layer reports — per-tenant, whole-run
    and windowed (``repro.obs.timeline``) — goes through the same
    fixed ``serve.query_seconds`` bucket layout and the interpolation
    semantics documented on :meth:`~repro.sim.stats.Histogram.quantile`,
    so no two call sites can disagree on what "p99" means.
    """
    hist = Histogram(reg.histogram_bounds(reg.HIST_SERVE_QUERY_SECONDS))
    for value in values:
        hist.observe(value)
    return hist


@dataclass
class TenantReport:
    """One tenant's service-level outcome."""

    tenant: str
    jobs: int = 0
    aborts: int = 0
    quota_waits: int = 0
    busy_seconds: float = 0.0
    #: Overload control: queries shed at the queue caps, queries killed
    #: by deadline enforcement, jobs admitted degraded during brownout.
    shed: int = 0
    deadline_aborts: int = 0
    degraded: int = 0
    #: Queries answered from the result cache (a subset of ``jobs``).
    result_cache_hits: int = 0
    latencies: List[float] = field(default_factory=list)
    queue_waits: List[float] = field(default_factory=list)

    def latency_quantile(self, q: float) -> float:
        return _latency_histogram(self.latencies).quantile(q)

    def to_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "aborts": self.aborts,
            "quota_waits": self.quota_waits,
            "busy_seconds": self.busy_seconds,
            "shed": self.shed,
            "deadline_aborts": self.deadline_aborts,
            "degraded": self.degraded,
            "result_cache_hits": self.result_cache_hits,
            "latency_p50_s": self.latency_quantile(0.50),
            "latency_p95_s": self.latency_quantile(0.95),
            "latency_p99_s": self.latency_quantile(0.99),
            "max_queue_wait_s": max(self.queue_waits, default=0.0),
        }


@dataclass
class ServiceReport:
    """Everything one :meth:`GraphService.serve` call reports."""

    policy: str
    offered: int
    completed: int
    aborted: int
    quota_waits: int
    #: Makespan: the last job's finish time (simulated seconds).
    duration_s: float
    tenants: Dict[str, TenantReport]
    records: List[JobRecord]
    #: Overload control: queries refused without ever running (queue-cap
    #: sheds and queued-deadline drops), in decision order.
    sheds: List[ShedRecord] = field(default_factory=list)
    #: Running jobs cancelled by deadline enforcement (a subset of
    #: ``aborted``; the queued drops above are *not* aborts).
    deadline_aborts: int = 0
    #: The overload controller's summary (state machine outcome and the
    #: deterministic event log); ``None`` when overload control is off.
    overload: Optional[dict] = None
    #: The SLO tracker's summary — per-objective compliance plus the
    #: burn-rate threshold-crossing event log, time-ordered alongside
    #: the overload events above; ``None`` when no tenant declares
    #: objectives (see ``repro.obs.slo``).
    slo: Optional[dict] = None
    #: Cross-query I/O sharing outcome — dedup totals plus the result
    #: cache's and rebalancer's summaries; ``None`` when every sharing
    #: feature was off (see docs/io_sharing.md).
    sharing: Optional[dict] = None

    @property
    def shed(self) -> int:
        return len(self.sheds)

    @property
    def sustained_qps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    def latency_quantile(self, q: float) -> float:
        return _latency_histogram(r.latency for r in self.records).quantile(q)

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "offered": self.offered,
            "completed": self.completed,
            "aborted": self.aborted,
            "shed": self.shed,
            "deadline_aborts": self.deadline_aborts,
            "quota_waits": self.quota_waits,
            "duration_s": self.duration_s,
            "sustained_qps": self.sustained_qps,
            "latency_p50_s": self.latency_quantile(0.50),
            "latency_p99_s": self.latency_quantile(0.99),
            "tenants": {
                name: report.to_dict()
                for name, report in sorted(self.tenants.items())
            },
            "overload": self.overload,
            "slo": self.slo,
            "sharing": self.sharing,
        }


@dataclass
class _Waiting:
    arrival: Arrival
    blocked_noted: bool = False


@dataclass
class _Running:
    arrival: Arrival
    start: float
    query: Query
    engine: GraphEngine
    job: EngineJob
    aborted: Optional[IterationAborted] = None
    degraded: bool = False
    deadline_aborted: bool = False
    #: Result-cache deposit key for this query's output (``None`` when
    #: the cache is off or the tenant opted out).
    fingerprint: Optional[str] = None
    scope_key: str = RESULT_SCOPE_SHARED
    #: Per-step counter-delta accumulators (see ``_step``): this job's
    #: own array bytes and dedup activity, exact under concurrency.
    bytes_read: float = 0.0
    dedup_pages: float = 0.0
    dedup_waits: float = 0.0


@dataclass
class ServeTelemetry:
    """The event loop's live accumulators, readable mid-run.

    :meth:`GraphService.serve` keeps its working state here (published
    as ``service.telemetry``) instead of in loop locals, so the
    timeline sampler can read queue depths and completion counts at any
    window boundary.  The ``serve.*`` counters are still flushed from
    these accumulators exactly once, after the last job —
    ``_write_serve_counters`` reads this object at the end — so
    observing mid-run cannot perturb the bit-identical final snapshot
    (the armed-vs-disarmed identity tests pin this).
    """

    #: Per-tenant outcome reports, updated as each job finalizes.
    reports: Dict[str, TenantReport]
    #: Revealed-but-unadmitted queries, in reveal order.
    waiting: List["_Waiting"] = field(default_factory=list)
    #: Admitted, unfinished jobs.
    running: List["_Running"] = field(default_factory=list)
    #: Finished-query records in finish order (result-cache answers are
    #: appended here directly, without ever entering ``running``).
    records: List[JobRecord] = field(default_factory=list)
    completed: int = 0
    aborted: int = 0
    deadline_aborted: int = 0


class GraphService:
    """Serves a query trace over one shared SAFS stack.

    The stack is wired exactly like the bench harness wires a batch
    engine (array → SAFS → engine, one shared :class:`StatsCollector`),
    so a single-tenant serve run and the equivalent batch run produce
    bit-identical simulated counters.  ``observer`` (an
    :class:`~repro.obs.spans.Observer`) is armed on every job engine,
    giving one cross-job span trace and per-tenant histograms.
    """

    def __init__(
        self,
        image: GraphImage,
        tenants: Sequence[TenantSpec],
        config: Optional[ServiceConfig] = None,
        undirected_image: Optional[GraphImage] = None,
        array_config: Optional[SSDArrayConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        fault_policy: Optional[FaultPolicy] = None,
        health_policy: Optional[HealthPolicy] = None,
        parity: Optional[ParityConfig] = None,
        cost_model: Optional[CostModel] = None,
        observer=None,
        timeline=None,
        slo_config: Optional[SLOConfig] = None,
        source: Optional[int] = None,
    ) -> None:
        if not tenants:
            raise ValueError("a service needs at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError("tenant names must be unique")
        self.config = config or ServiceConfig()
        self.tenants: Dict[str, TenantSpec] = {t.name: t for t in tenants}
        # Pin the file-id counter (page-cache set hashing keys on file
        # ids), the same idiom the CLI and benches use per run.
        SAFSFile._next_id = 0
        array = SSDArray(
            array_config or SSDArrayConfig(),
            fault_plan=fault_plan,
            parity=parity,
        )
        self.safs = SAFS(
            array,
            SAFSConfig(
                page_size=self.config.page_size,
                cache_bytes=self.config.cache_bytes,
            ),
            stats=array.stats,
            fault_policy=fault_policy,
            health_policy=health_policy,
        )
        self.stats = self.safs.stats
        self.cost_model = cost_model
        self._engine_config = EngineConfig(
            mode=ExecutionMode.SEMI_EXTERNAL,
            num_threads=self.config.num_threads,
            range_shift=self.config.range_shift,
        )
        self.queries = QueryFactory(
            image,
            undirected_image=undirected_image,
            pr_iterations=self.config.pr_iterations,
            kcore_k=self.config.kcore_k,
            source=source,
        )
        self.admission = AdmissionController(self.tenants)
        #: Overload controller; ``None`` = the pre-overload event loop.
        self.overload: Optional[OverloadController] = (
            OverloadController(self.config.overload, self.tenants)
            if self.config.overload is not None
            else None
        )
        self.accountant = TenantAccountant(names)
        self.accountant.install(array)
        self.observer = observer
        #: Timeline sampler (``repro.obs.timeline``); ``None`` disarmed.
        self.timeline = timeline
        if timeline is not None:
            timeline.bind(self)
        #: SLO burn-rate tracker, armed automatically when any tenant
        #: declares objectives (pure bookkeeping outside the shared
        #: counters, so arming never perturbs counter bit-identity).
        self.slo: Optional[SLOTracker] = (
            SLOTracker(self.tenants, slo_config)
            if any(spec.slo_objectives for spec in tenants)
            else None
        )
        #: Live event-loop accumulators; set by :meth:`serve`.
        self.telemetry: Optional[ServeTelemetry] = None
        #: Per-tenant cache partitions (only tenants that asked for one).
        self.cache_partitions: Dict[str, PageCache] = {}
        for spec in tenants:
            if spec.cache_bytes is not None:
                self.cache_partitions[spec.name] = PageCache(
                    PageCacheConfig(
                        capacity_bytes=spec.cache_bytes,
                        page_size=self.config.page_size,
                        associativity=self.safs.config.cache_associativity,
                        eviction=self.safs.config.cache_eviction,
                    ),
                    self.stats,
                )
        if self.cache_partitions:
            self.safs.scheduler.tenant_caches = self.cache_partitions
        # Cross-query I/O sharing (docs/io_sharing.md); every handle is
        # None when its feature is off, keeping the legacy event loop.
        self.inflight: Optional[InflightReadRegistry] = (
            InflightReadRegistry() if self.config.share_reads else None
        )
        self.result_cache: Optional[ResultCache] = (
            ResultCache(
                ResultCacheConfig(
                    ttl_s=self.config.result_cache_ttl_s,
                    hit_cost_s=self.config.result_cache_cost_s,
                )
            )
            if self.config.result_cache
            else None
        )
        self.rebalancer: Optional[CacheRebalancer] = None
        if self.config.cache_rebalance:
            if len(self.cache_partitions) < 2:
                raise ValueError(
                    "cache_rebalance needs at least two tenants with "
                    "cache_bytes partitions to move capacity between"
                )
            self.rebalancer = CacheRebalancer(
                self.cache_partitions,
                CacheRebalanceConfig(
                    interval_s=self.config.cache_rebalance_interval_s,
                    floor_fraction=self.config.cache_rebalance_floor,
                ),
                stats=self.stats,
            )

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------

    def serve(self, trace: Sequence[Arrival]) -> ServiceReport:
        """Run ``trace`` to completion and report.

        One call per service instance: the report's counters are written
        into the shared stats at the end (never mid-run, so per-job
        counter diffs stay unperturbed).
        """
        for earlier, later in zip(trace, trace[1:]):
            if later.time < earlier.time:
                raise ValueError("the trace must be sorted by arrival time")
        pending = deque(trace)
        telemetry = ServeTelemetry(
            reports={name: TenantReport(tenant=name) for name in self.tenants}
        )
        self.telemetry = telemetry
        waiting = telemetry.waiting
        running = telemetry.running
        reports = telemetry.reports
        records = telemetry.records
        sheds: List[ShedRecord] = []
        free_at: Dict[str, float] = {name: 0.0 for name in self.tenants}
        overload = self.overload
        observer = self.observer
        timeline = self.timeline
        rebalancer = self.rebalancer

        while pending or waiting or running:
            if running:
                frontier = min(r.job.clock for r in running)
            elif waiting:
                # Every waiter is admissible (a blocked waiter implies a
                # running job of its tenant), so admission below starts
                # at least one job.
                frontier = -math.inf
            else:
                frontier = pending[0].time
            while pending and pending[0].time <= frontier:
                arrival = pending.popleft()
                if observer is not None:
                    observer.note_query_event(
                        "queued", arrival.time, _query_context(arrival)
                    )
                if overload is None:
                    waiting.append(_Waiting(arrival))
                else:
                    self._reveal(arrival, waiting, sheds)
            if overload is not None and math.isfinite(frontier):
                if overload.config.enforce_deadlines:
                    self._expire_waiting(waiting, frontier, sheds)
                if overload.sample_due(frontier):
                    self._observe_pressure(frontier, waiting)
            # The boundary compare keeps the hot loop at one float test
            # per pass; the sampler call only happens when a window
            # actually closes (plus once per completion, in _finalize).
            if (
                timeline is not None
                and frontier >= timeline.next_boundary_s
                and math.isfinite(frontier)
            ):
                timeline.note_time(frontier)
            # Same hot-loop discipline for the cache rebalancer: one
            # float compare per pass, a decision only at its boundary.
            if (
                rebalancer is not None
                and frontier >= rebalancer.next_boundary_s
                and math.isfinite(frontier)
            ):
                rebalancer.note_time(frontier)
            self._admit(waiting, running, free_at, frontier, sheds)
            if not running:
                continue
            current = min(running, key=lambda r: (r.job.clock, r.arrival.index))
            alive = self._step(current)
            if alive and overload is not None:
                alive = not self._maybe_deadline_abort(current)
            if not alive:
                running.remove(current)
                record = self._finalize(current, free_at, reports)
                records.append(record)
                if record.ok:
                    telemetry.completed += 1
                else:
                    telemetry.aborted += 1
                    if current.deadline_aborted:
                        telemetry.deadline_aborted += 1

        for name, report in reports.items():
            report.quota_waits = self.admission.quota_waits[name]
        for name, busy in self.accountant.busy_by_tenant().items():
            if name in reports:
                reports[name].busy_seconds = busy
        duration = max((r.finish_time for r in records), default=0.0)
        summary = None
        end = duration
        if overload is not None:
            if overload.events:
                end = max(end, overload.events[-1].time)
            overload.finish(end)
            summary = overload.summary()
            for name, report in reports.items():
                report.shed = overload.sheds.get(name, 0)
                report.deadline_aborts = overload.deadline_aborts.get(name, 0)
                report.degraded = overload.degraded_jobs.get(name, 0)
        if self.slo is not None:
            self.slo.finish(end)
        if timeline is not None:
            timeline.finish(end)
        self._write_serve_counters(telemetry)
        return ServiceReport(
            policy=self.config.policy,
            offered=len(trace),
            completed=telemetry.completed,
            aborted=telemetry.aborted,
            quota_waits=self.admission.total_quota_waits(),
            duration_s=duration,
            tenants=reports,
            records=records,
            sheds=sheds,
            deadline_aborts=telemetry.deadline_aborted,
            overload=summary,
            slo=self.slo.summary() if self.slo is not None else None,
            sharing=self._sharing_summary(),
        )

    def _sharing_summary(self) -> Optional[dict]:
        """The cross-query sharing outcome, ``None`` when all off.

        Reads the (already flushed) dedup counters and the result
        cache's / rebalancer's local tallies; pure reads, so the
        bit-identical counter snapshot is untouched.
        """
        if (
            self.inflight is None
            and self.result_cache is None
            and self.rebalancer is None
        ):
            return None
        stats = self.stats
        return {
            "share_reads": self.inflight is not None,
            "dedup_pages": stats.get(reg.SAFS_DEDUP_PAGES),
            "dedup_waits": stats.get(reg.SAFS_DEDUP_WAITS),
            "dedup_wait_seconds": stats.get(reg.SAFS_DEDUP_WAIT_SECONDS),
            "result_cache": (
                self.result_cache.summary()
                if self.result_cache is not None
                else None
            ),
            "rebalancer": (
                self.rebalancer.summary()
                if self.rebalancer is not None
                else None
            ),
        }

    # ------------------------------------------------------------------
    # Overload control (every hook below requires self.overload)
    # ------------------------------------------------------------------

    def _reveal(
        self,
        arrival: Arrival,
        waiting: List[_Waiting],
        sheds: List[ShedRecord],
    ) -> None:
        """Queue one revealed arrival, shedding if a cap would burst.

        The tenant cap is checked first (a tenant may never crowd its
        own queue past its cap), then the global cap; the victim — the
        newcomer or a queued query, per the shed policy — is decided
        purely from the queue contents, so it replays bit-identically.
        """
        overload = self.overload
        newcomer = _Waiting(arrival)
        mine = [w for w in waiting if w.arrival.tenant == arrival.tenant]
        victim = None
        if len(mine) >= overload.tenant_cap(arrival.tenant):
            victim = overload.choose_victim(mine + [newcomer], self._order_key)
        elif len(waiting) >= overload.config.global_queue_cap:
            victim = overload.choose_victim(
                waiting + [newcomer], self._order_key
            )
        if victim is None:
            waiting.append(newcomer)
        elif victim is newcomer:
            sheds.append(self._shed(arrival, arrival.time, "queue-cap"))
        else:
            waiting.remove(victim)
            waiting.append(newcomer)
            sheds.append(self._shed(victim.arrival, arrival.time, "queue-cap"))
        depth = {name: 0 for name in self.tenants}
        for waiter in waiting:
            depth[waiter.arrival.tenant] += 1
        overload.note_depth(len(waiting), depth)

    def _expire_waiting(
        self, waiting: List[_Waiting], now: float, sheds: List[ShedRecord]
    ) -> None:
        """Drop queued queries whose deadline already passed at ``now``:
        admitting them can only burn array bandwidth on a guaranteed
        miss, the exact waste overload control exists to avoid."""
        expired = []
        for waiter in waiting:
            deadline_s = self.tenants[waiter.arrival.tenant].deadline_s
            if deadline_s is not None and now > waiter.arrival.time + deadline_s:
                expired.append(waiter)
        for waiter in expired:
            waiting.remove(waiter)
            sheds.append(self._shed(waiter.arrival, now, "deadline-expired"))

    def _shed(self, arrival: Arrival, shed_time: float, reason: str) -> ShedRecord:
        record = self.overload.record_shed(arrival, shed_time, reason)
        # Histograms live outside counter snapshots/diffs (see
        # _finalize), so observing mid-run is bit-identity safe.
        self.stats.observe(
            f"{reg.HIST_SERVE_SHED_AGE_SECONDS}.{arrival.tenant}",
            record.age,
            reg.histogram_bounds(reg.HIST_SERVE_SHED_AGE_SECONDS),
        )
        if self.slo is not None:
            self.slo.record(arrival.tenant, shed_time, "shed")
        if self.observer is not None:
            self.observer.note_query_event(
                "shed",
                shed_time,
                _query_context(arrival),
                reason=reason,
                age=record.age,
            )
        return record

    def _observe_pressure(self, now: float, waiting: List[_Waiting]) -> None:
        """Feed the overload detector one sample at simulated ``now``."""
        mean_wait = 0.0
        if waiting:
            mean_wait = sum(now - w.arrival.time for w in waiting) / len(waiting)
        self.overload.observe(
            now, len(waiting), mean_wait, self._unhealthy_fraction(now)
        )

    def _unhealthy_fraction(self, now: float) -> float:
        """Fraction of data devices dead, failed or quarantined at
        ``now`` — the detector's array-health signal.  Folds both the
        health monitor's view (when one is armed) and fault-plan deaths,
        so chaos benches without a health policy still sense deadness."""
        array = self.safs.array
        num = array.config.num_ssds
        health = self.safs.health
        plan = array.fault_plan
        bad = 0
        for device in range(num):
            if health is not None and health.avoid(device, now):
                bad += 1
            elif plan is not None and plan.is_dead(device, now):
                bad += 1
        return bad / num

    def _maybe_deadline_abort(self, run: _Running) -> bool:
        """Cancel ``run`` at this barrier if its deadline is hopeless.

        Returns ``True`` when the job was cancelled (the caller
        finalizes it like any abort, keeping the partial result).
        """
        overload = self.overload
        if not (
            overload.config.enforce_deadlines
            and overload.config.deadline_abort_running
        ):
            return False
        deadline_s = self.tenants[run.arrival.tenant].deadline_s
        if deadline_s is None:
            return False
        now = run.job.clock
        reason = overload.deadline_unreachable(
            now=now,
            start=run.start,
            deadline=run.arrival.time + deadline_s,
            iterations=run.job.iteration,
            max_iterations=run.query.max_iterations,
            frontier_size=run.job.frontier_size,
        )
        if reason is None:
            return False
        run.aborted = run.job.cancel(f"deadline unreachable: {reason}")
        run.deadline_aborted = True
        overload.record_deadline_abort(run.arrival, now, reason)
        if self.observer is not None:
            self.observer.note_query_event(
                "deadline-abort",
                now,
                _query_context(run.arrival),
                reason=reason,
                iteration=run.job.iteration,
            )
        return True

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def _order_key(self, waiter: _Waiting):
        arrival = waiter.arrival
        spec = self.tenants[arrival.tenant]
        if self.config.policy == "fifo":
            return (arrival.time, arrival.index)
        if self.config.policy == "deadline":
            deadline = (
                arrival.time + spec.deadline_s
                if spec.deadline_s is not None
                else math.inf
            )
            return (deadline, arrival.time, arrival.index)
        share = self.accountant.usage[arrival.tenant] / spec.weight
        return (share, arrival.time, arrival.index)

    def _admit(
        self,
        waiting: List[_Waiting],
        running: List[_Running],
        free_at: Dict[str, float],
        now: float,
        sheds: Optional[List[ShedRecord]] = None,
    ) -> None:
        while waiting:
            candidates = []
            for waiter in waiting:
                if self.admission.can_admit(waiter.arrival.tenant):
                    candidates.append(waiter)
                elif not waiter.blocked_noted:
                    waiter.blocked_noted = True
                    self.admission.note_quota_wait(waiter.arrival.tenant)
            if not candidates:
                return
            pick = None
            if self.config.policy == "fair" and math.isfinite(now):
                # Starvation aging: anyone past the bound is admitted
                # longest-waiting first, regardless of share.
                starved = [
                    w
                    for w in candidates
                    if now - w.arrival.time >= self.config.starvation_bound_s
                ]
                if starved:
                    pick = min(
                        starved, key=lambda w: (w.arrival.time, w.arrival.index)
                    )
            if pick is None:
                pick = min(candidates, key=self._order_key)
            waiting.remove(pick)
            if (
                self.overload is not None
                and self.overload.config.enforce_deadlines
            ):
                # A quota-blocked pick starts at free_at, which can sit
                # far past the frontier the expiry sweep sees (one slow
                # job can jump a tenant's free_at by whole seconds);
                # re-check the deadline against the actual start time so
                # a guaranteed miss is shed instead of started.
                arrival = pick.arrival
                deadline_s = self.tenants[arrival.tenant].deadline_s
                start = (
                    max(arrival.time, free_at[arrival.tenant])
                    if pick.blocked_noted
                    else arrival.time
                )
                if (
                    deadline_s is not None
                    and start > arrival.time + deadline_s
                ):
                    sheds.append(
                        self._shed(arrival, start, "deadline-expired")
                    )
                    continue
            self._start(pick, running, free_at)

    def _start(
        self,
        waiter: _Waiting,
        running: List[_Running],
        free_at: Dict[str, float],
    ) -> None:
        arrival = waiter.arrival
        tenant = arrival.tenant
        # A query that was ever blocked starts when its slot freed, not
        # at its (earlier) arrival; a never-blocked query starts on
        # arrival.
        if waiter.blocked_noted:
            start = max(arrival.time, free_at[tenant])
        else:
            start = arrival.time
        self.admission.admit(tenant)
        degraded = False
        build_kwargs: dict = {}
        if self.overload is not None and self.overload.degrades(tenant):
            cfg = self.overload.config
            build_kwargs = {
                "pr_iterations": cfg.brownout_pr_iterations,
                "pr_tolerance_factor": cfg.brownout_tolerance_factor,
            }
            # Only PageRank has a fidelity dial today; traversals run
            # full-fidelity even in brownout (they are shed or aborted
            # instead), so only mark what actually changed.
            degraded = arrival.app in ("pr", "pr30")
        # Result cache: fingerprint the query the build would produce
        # (the *effective*, post-brownout parameters — a degraded run
        # can only ever be answered by an equally degraded deposit) and
        # answer a repeat at admission time without running an engine.
        fingerprint: Optional[str] = None
        scope_key = RESULT_SCOPE_SHARED
        if self.result_cache is not None:
            policy = self.tenants[tenant].result_cache
            if policy != "off":
                if policy == "private":
                    scope_key = tenant
                fingerprint = self.queries.fingerprint(
                    arrival.app, **build_kwargs
                )
                cached = self.result_cache.lookup(scope_key, fingerprint, start)
                if cached is not None:
                    if degraded:
                        self.overload.note_degraded(tenant)
                    self.admission.release(tenant)
                    self._finalize_cached(
                        arrival, start, cached, free_at, degraded
                    )
                    return
        query = self.queries.build(arrival.app, **build_kwargs)
        if degraded:
            self.overload.note_degraded(tenant)
        engine = GraphEngine(
            query.image,
            safs=self.safs,
            config=self._engine_config,
            cost_model=self.cost_model,
        )
        span_context = None
        if self.observer is not None:
            from repro.obs.spans import arm

            arm(engine, self.observer)
            span_context = _query_context(arrival)
            self.observer.note_query_event(
                "admitted",
                start,
                span_context,
                queue_wait=start - arrival.time,
                degraded=degraded,
            )
        job = engine.start_job(
            query.program,
            initial_active=query.initial_active,
            max_iterations=query.max_iterations,
            start_time=start,
            span_context=span_context,
        )
        running.append(
            _Running(
                arrival=arrival,
                start=start,
                query=query,
                engine=engine,
                job=job,
                degraded=degraded,
                fingerprint=fingerprint,
                scope_key=scope_key,
            )
        )

    def _finalize_cached(
        self,
        arrival: Arrival,
        start: float,
        cached,
        free_at: Dict[str, float],
        degraded: bool,
    ) -> None:
        """Book a result-cache answer: all of ``_finalize``'s telemetry,
        none of the engine.  The query holds its tenant slot only for
        the (near-zero) hit cost, reads zero bytes, and reuses the
        deposited output vector verbatim."""
        tenant = arrival.tenant
        finish = start + self.config.result_cache_cost_s
        free_at[tenant] = max(free_at[tenant], finish)
        result = RunResult(
            runtime=finish - start,
            iterations=cached.iterations,
            cpu_busy=0.0,
            cpu_utilization=0.0,
            bytes_read=0.0,
            io_throughput=0.0,
            io_utilization=0.0,
            cache_hit_rate=0.0,
            counters={},
        )
        record = JobRecord(
            tenant=tenant,
            app=arrival.app,
            arrival_time=arrival.time,
            start_time=start,
            finish_time=finish,
            ok=True,
            iterations=cached.iterations,
            result=result,
            values=cached.values,
            degraded=degraded,
            index=arrival.index,
            result_cached=True,
        )
        telemetry = self.telemetry
        telemetry.records.append(record)
        telemetry.completed += 1
        self.result_cache.hits_by_tenant[tenant] = (
            self.result_cache.hits_by_tenant.get(tenant, 0) + 1
        )
        report = telemetry.reports[tenant]
        report.jobs += 1
        report.result_cache_hits += 1
        report.latencies.append(record.latency)
        report.queue_waits.append(record.queue_wait)
        self.stats.observe(
            f"{reg.HIST_SERVE_QUERY_SECONDS}.{tenant}",
            record.latency,
            reg.histogram_bounds(reg.HIST_SERVE_QUERY_SECONDS),
        )
        self.stats.observe(
            f"{reg.HIST_SERVE_QUEUE_WAIT_SECONDS}.{tenant}",
            record.queue_wait,
            reg.histogram_bounds(reg.HIST_SERVE_QUEUE_WAIT_SECONDS),
        )
        if self.slo is not None:
            self.slo.record(tenant, finish, "completed", record.latency)
        if self.timeline is not None:
            self.timeline.note_completion(tenant, finish, record.latency, True)
        if self.observer is not None:
            context = _query_context(arrival)
            self.observer.note_query_event(
                "admitted",
                start,
                context,
                queue_wait=start - arrival.time,
                degraded=degraded,
                cached=True,
            )
            self.observer.note_query_event(
                "completed",
                finish,
                context,
                latency=record.latency,
                iterations=cached.iterations,
                cached=True,
            )

    # ------------------------------------------------------------------
    # Job stepping
    # ------------------------------------------------------------------

    def _step(self, run: _Running) -> bool:
        """One iteration of ``run``'s job, tagged with its tenant.

        When read sharing is on and the tenant participates, the shared
        :class:`InflightReadRegistry` is attached to the scheduler for
        exactly this step, so only sharing tenants' dispatches attach to
        (or publish) in-flight fetches.  Job steps are serialized on the
        wall clock, so counter deltas taken around the step attribute
        this job's own array bytes and dedup activity exactly — plain
        reads, never a counter write, so bit-identity is untouched.
        """
        scheduler = self.safs.scheduler
        tenant = run.arrival.tenant
        scheduler.tenant = tenant
        self.accountant.current = tenant
        stats = self.stats
        if self.inflight is not None and self.tenants[tenant].share_reads:
            scheduler.inflight = self.inflight
        base_bytes = stats.get(reg.ARRAY_BYTES_READ)
        base_dedup_pages = stats.get(reg.SAFS_DEDUP_PAGES)
        base_dedup_waits = stats.get(reg.SAFS_DEDUP_WAITS)
        try:
            return run.job.step()
        except IterationAborted as exc:
            run.aborted = exc
            return False
        finally:
            run.bytes_read += stats.get(reg.ARRAY_BYTES_READ) - base_bytes
            run.dedup_pages += (
                stats.get(reg.SAFS_DEDUP_PAGES) - base_dedup_pages
            )
            run.dedup_waits += (
                stats.get(reg.SAFS_DEDUP_WAITS) - base_dedup_waits
            )
            scheduler.tenant = None
            scheduler.inflight = None
            self.accountant.current = None

    def _finalize(
        self,
        run: _Running,
        free_at: Dict[str, float],
        reports: Dict[str, TenantReport],
    ) -> JobRecord:
        tenant = run.arrival.tenant
        self.admission.release(tenant)
        if run.aborted is None:
            result = run.job.result()
            ok = True
            reason = None
        else:
            result = run.aborted.partial
            ok = False
            reason = run.aborted.cause.reason
        finish = run.start + result.runtime
        free_at[tenant] = max(free_at[tenant], finish)
        record = JobRecord(
            tenant=tenant,
            app=run.arrival.app,
            arrival_time=run.arrival.time,
            start_time=run.start,
            finish_time=finish,
            ok=ok,
            iterations=result.iterations,
            result=result,
            values=run.query.values() if ok else None,
            abort_reason=reason,
            degraded=run.degraded,
            index=run.arrival.index,
            bytes_read=run.bytes_read,
            dedup_pages=run.dedup_pages,
            dedup_waits=run.dedup_waits,
        )
        if ok and self.result_cache is not None and run.fingerprint is not None:
            # Deposit a copy: the program's arrays stay mutable, the
            # cached vector must not.
            self.result_cache.insert(
                run.scope_key,
                run.fingerprint,
                values=np.array(record.values, copy=True),
                iterations=result.iterations,
                app=run.arrival.app,
                now=finish,
                source_index=run.arrival.index,
            )
        report = reports[tenant]
        report.jobs += 1
        if not ok:
            report.aborts += 1
        report.latencies.append(record.latency)
        report.queue_waits.append(record.queue_wait)
        # Histograms live outside counter snapshots/diffs, so recording
        # them mid-run never perturbs any job's counter bit-identity.
        self.stats.observe(
            f"{reg.HIST_SERVE_QUERY_SECONDS}.{tenant}",
            record.latency,
            reg.histogram_bounds(reg.HIST_SERVE_QUERY_SECONDS),
        )
        self.stats.observe(
            f"{reg.HIST_SERVE_QUEUE_WAIT_SECONDS}.{tenant}",
            record.queue_wait,
            reg.histogram_bounds(reg.HIST_SERVE_QUEUE_WAIT_SECONDS),
        )
        if self.slo is not None:
            self.slo.record(
                tenant,
                finish,
                "completed" if ok else "aborted",
                record.latency,
            )
        if self.timeline is not None:
            self.timeline.note_completion(tenant, finish, record.latency, ok)
        if self.observer is not None:
            fields = {"latency": record.latency, "iterations": result.iterations}
            if not ok:
                fields["reason"] = reason
            self.observer.note_query_event(
                "completed" if ok else "aborted",
                finish,
                _query_context(run.arrival),
                **fields,
            )
        return record

    def _write_serve_counters(self, telemetry: ServeTelemetry) -> None:
        """Tally the service's own counters, once, after the last job —
        a mid-run add would leak into concurrent jobs' counter diffs.
        Everything flushed here comes from the :class:`ServeTelemetry`
        accumulators the timeline sampler reads mid-run; reading them
        early never moves a counter, so an armed sampler's final
        ``serve.*`` snapshot is byte-identical to a disarmed run's."""
        stats = self.stats
        completed = telemetry.completed
        aborted = telemetry.aborted
        stats.add(reg.SERVE_JOBS_ADMITTED, completed + aborted)
        stats.add(reg.SERVE_JOBS_COMPLETED, completed)
        stats.add(reg.SERVE_JOBS_ABORTED, aborted)
        stats.add(reg.SERVE_QUOTA_WAITS, self.admission.total_quota_waits())
        busy = self.accountant.busy_by_tenant()
        for name, report in sorted(telemetry.reports.items()):
            stats.add(f"{reg.SERVE_TENANT_JOBS}.{name}", report.jobs)
            stats.add(f"{reg.SERVE_TENANT_ABORTS}.{name}", report.aborts)
            stats.add(
                f"{reg.SERVE_TENANT_BUSY_SECONDS}.{name}", busy.get(name, 0.0)
            )
            stats.add(
                f"{reg.SERVE_TENANT_QUOTA_WAITS}.{name}",
                self.admission.quota_waits[name],
            )
        if self.result_cache is not None:
            cache = self.result_cache
            stats.add(reg.SERVE_RESULT_CACHE_HITS_TOTAL, cache.hits)
            stats.add(reg.SERVE_RESULT_CACHE_MISSES_TOTAL, cache.misses)
            stats.add(reg.SERVE_RESULT_CACHE_INSERTIONS_TOTAL, cache.insertions)
            stats.add(
                reg.SERVE_RESULT_CACHE_EXPIRATIONS_TOTAL, cache.expirations
            )
            for name in sorted(self.tenants):
                stats.add(
                    f"{reg.SERVE_RESULT_CACHE_HITS}.{name}",
                    cache.hits_by_tenant.get(name, 0),
                )
        if self.rebalancer is not None:
            stats.add(reg.SERVE_CACHE_REBALANCES, self.rebalancer.moves)
            stats.add(reg.SERVE_CACHE_PAGES_MOVED, self.rebalancer.pages_moved)
            stats.add(
                reg.SERVE_CACHE_REBALANCE_EVICTIONS, self.rebalancer.evictions
            )
        if self.overload is not None:
            overload = self.overload
            stats.add(reg.SERVE_SHED_TOTAL, sum(overload.sheds.values()))
            stats.add(
                reg.SERVE_DEADLINE_ABORTS_TOTAL,
                sum(overload.deadline_aborts.values()),
            )
            stats.add(reg.SERVE_BROWNOUT_TRANSITIONS, overload.transitions)
            stats.add(reg.SERVE_BROWNOUT_SECONDS, overload.brownout_seconds)
            stats.add(
                reg.SERVE_OVERLOAD_PEAK_QUEUE_DEPTH, overload.peak_queue_depth
            )
            for name in sorted(self.tenants):
                stats.add(f"{reg.SERVE_SHED}.{name}", overload.sheds.get(name, 0))
                stats.add(
                    f"{reg.SERVE_DEADLINE_ABORTS}.{name}",
                    overload.deadline_aborts.get(name, 0),
                )
                stats.add(
                    f"{reg.SERVE_BROWNOUT_DEGRADED}.{name}",
                    overload.degraded_jobs.get(name, 0),
                )
