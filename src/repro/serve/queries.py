"""Query construction: one arrival's app name → a runnable program.

The factory owns the per-service invariants a query needs — the shared
graph image, the default BFS source (highest out-degree, the harness
convention), the optional undirected image k-core requires, and the
k-core degree vector (computed once, not per query) — so building a
query per arrival is cheap and deterministic.
"""

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.algorithms.bfs import BFSProgram
from repro.algorithms.kcore import KCoreProgram
from repro.algorithms.pagerank import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
    PageRankProgram,
)
from repro.algorithms.wcc import WCCProgram
from repro.core.vertex_program import VertexProgram
from repro.graph.builder import GraphImage
from repro.serve.results import image_digest


@dataclass
class Query:
    """One runnable query: the program plus its run() arguments."""

    app: str
    image: GraphImage
    program: VertexProgram
    initial_active: Optional[np.ndarray]
    max_iterations: Optional[int]
    #: Extracts the algorithm's output vector from ``program`` after the
    #: run (used by the chaos suite to check results).
    values: Callable[[], np.ndarray]


class QueryFactory:
    """Builds :class:`Query` objects for a service's app mix.

    Supported apps: ``pr`` (delta PageRank capped at ``pr_iterations``),
    ``pr30`` (the paper's 30-iteration run), ``bfs``, ``wcc``, and
    ``kcore`` when an undirected image is supplied (k-core peeling is
    undefined on a directed image, so without one the app is simply not
    offered).
    """

    def __init__(
        self,
        image: GraphImage,
        undirected_image: Optional[GraphImage] = None,
        pr_iterations: int = 5,
        kcore_k: int = 4,
        source: Optional[int] = None,
    ) -> None:
        if pr_iterations < 1:
            raise ValueError("pr_iterations must be at least 1")
        self.image = image
        self.undirected_image = undirected_image
        self.pr_iterations = pr_iterations
        self.kcore_k = kcore_k
        if source is None:
            source = int(np.argmax(image.out_csr.degrees()))
        self.source = source
        self._kcore_degrees: Optional[np.ndarray] = None
        self._builders: Dict[str, Callable[[], Query]] = {
            "pr": lambda: self._pagerank(self.pr_iterations),
            "pr30": lambda: self._pagerank(DEFAULT_MAX_ITERATIONS),
            "bfs": self._bfs,
            "wcc": self._wcc,
        }
        if undirected_image is not None:
            self._builders["kcore"] = self._kcore
        self._image_digests: Dict[int, str] = {}

    def supported_apps(self) -> Tuple[str, ...]:
        return tuple(self._builders)

    def _digest(self, image: GraphImage) -> str:
        key = id(image)
        digest = self._image_digests.get(key)
        if digest is None:
            digest = image_digest(image)
            self._image_digests[key] = digest
        return digest

    def fingerprint(
        self,
        app: str,
        pr_iterations: Optional[int] = None,
        pr_tolerance_factor: float = 1.0,
    ) -> str:
        """The canonical identity of the query :meth:`build` would make.

        Two arrivals with equal fingerprints produce byte-identical
        output vectors, which is what lets the result cache answer the
        second one without running it: the fingerprint folds in the
        algorithm, its *effective* parameters (the post-brownout
        iteration cap and tolerance for PageRank, the source for BFS,
        ``k`` for k-core), and the digest plus storage format of the
        graph image the app runs against — so a degraded build, a
        different source, or a rebuilt image never aliases.
        """
        if app not in self._builders:
            raise ValueError(
                f"unsupported app {app!r} (supported: "
                f"{', '.join(self._builders)})"
            )
        image = self.undirected_image if app == "kcore" else self.image
        parts = [app, f"fmt={image.fmt}", f"image={self._digest(image)}"]
        if app in ("pr", "pr30"):
            full = self.pr_iterations if app == "pr" else DEFAULT_MAX_ITERATIONS
            capped = full if pr_iterations is None else min(full, pr_iterations)
            tolerance = DEFAULT_TOLERANCE * pr_tolerance_factor
            parts.append(f"iters={capped}")
            parts.append(f"tol={tolerance!r}")
        elif app == "bfs":
            parts.append(f"source={self.source}")
        elif app == "kcore":
            parts.append(f"k={self.kcore_k}")
        return "|".join(parts)

    def build(
        self,
        app: str,
        pr_iterations: Optional[int] = None,
        pr_tolerance_factor: float = 1.0,
    ) -> Query:
        """Build ``app``, optionally at reduced fidelity.

        ``pr_iterations`` caps a PageRank query below its configured
        iteration budget and ``pr_tolerance_factor`` coarsens its
        convergence tolerance — the brownout degradation hooks.  Both
        are no-ops for non-PageRank apps: traversals have no fidelity
        dial, they are shed or aborted instead.
        """
        try:
            builder = self._builders[app]
        except KeyError:
            raise ValueError(
                f"unsupported app {app!r} (supported: "
                f"{', '.join(self._builders)})"
            ) from None
        if app in ("pr", "pr30") and (
            pr_iterations is not None or pr_tolerance_factor != 1.0
        ):
            full = self.pr_iterations if app == "pr" else DEFAULT_MAX_ITERATIONS
            capped = full if pr_iterations is None else min(full, pr_iterations)
            return self._pagerank(capped, tolerance_factor=pr_tolerance_factor)
        return builder()

    def _pagerank(
        self, max_iterations: int, tolerance_factor: float = 1.0
    ) -> Query:
        program = PageRankProgram(
            self.image.num_vertices,
            tolerance=DEFAULT_TOLERANCE * tolerance_factor,
        )
        return Query(
            app="pr",
            image=self.image,
            program=program,
            initial_active=None,
            max_iterations=max_iterations,
            values=lambda: program.rank + program.pending,
        )

    def _bfs(self) -> Query:
        program = BFSProgram(self.image.num_vertices)
        return Query(
            app="bfs",
            image=self.image,
            program=program,
            initial_active=np.asarray([self.source]),
            max_iterations=None,
            values=lambda: program.level,
        )

    def _wcc(self) -> Query:
        program = WCCProgram(self.image.num_vertices)
        return Query(
            app="wcc",
            image=self.image,
            program=program,
            initial_active=None,
            max_iterations=None,
            values=lambda: program.component,
        )

    def _kcore(self) -> Query:
        image = self.undirected_image
        if self._kcore_degrees is None:
            # Self-loops do not contribute to core degree (the same
            # correction repro.algorithms.kcore.kcore applies per run).
            degrees = image.out_csr.degrees().astype(np.int64)
            for vertex in range(image.num_vertices):
                neighbors = image.out_csr.neighbors(vertex)
                if neighbors.size and np.any(neighbors == vertex):
                    degrees[vertex] -= 1
            self._kcore_degrees = degrees
        program = KCoreProgram(
            image.num_vertices, self.kcore_k, self._kcore_degrees.copy()
        )
        return Query(
            app="kcore",
            image=image,
            program=program,
            initial_active=None,
            max_iterations=None,
            values=lambda: program.alive,
        )
