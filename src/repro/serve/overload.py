"""Overload control: bounded queues, shedding, deadlines, brownout.

PR 7's service queues arrivals without bound and never gives up on a
job, so once the array loses bandwidth (a dead device under chaos) every
tenant's tail latency collapses together — the open-loop traffic keeps
arriving and the backlog only grows.  This module is the control plane
that lets the service *degrade deliberately* instead:

- **Bounded admission queues** — a per-tenant and a global cap on how
  many revealed arrivals may wait for admission.  A full queue sheds a
  query under a deterministic policy (:data:`SHED_POLICIES`); the shed
  decision is a pure function of the queue contents, so the same trace
  sheds the same queries byte for byte.
- **Deadline enforcement** — queued queries whose deadline already
  passed are dropped (running them can only waste array bandwidth), and
  *running* jobs are cancelled at an iteration barrier once a
  progress-based estimate says their deadline is unreachable
  (:meth:`OverloadController.deadline_unreachable`), returning partial
  results exactly like an I/O abort does.
- **An overload detector driving a brownout state machine** — a
  sliding window over *simulated* time tracks queue depth, queue-wait
  level and trend, and the fraction of unhealthy devices; the combined
  pressure signal drives ``healthy → overloaded → brownout →
  recovering`` with hysteresis (consecutive-sample counts, not
  instantaneous flips).  In brownout, admitted work is deterministically
  downgraded per tenant policy — PageRank's iteration cap is lowered
  and its tolerance coarsened — and recovery restores full fidelity.

Everything is driven by the service's DES clock and the deterministic
queue state: no wall clock, no RNG.  The controller keeps an ordered
:attr:`OverloadController.events` log (sheds, deadline drops/aborts,
state transitions); two runs of the same seed produce byte-identical
logs, which the determinism tests pin.
"""

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

#: Deterministic shed policies for a full admission queue.
#:
#: - ``reject-newest`` — drop the arriving query (the queue keeps its
#:   accumulated waiting investment);
#: - ``reject-oldest`` — drop the longest-waiting query in the full
#:   scope (its deadline is the most at risk anyway);
#: - ``by-priority`` — drop the *worst-ranked* query under the
#:   service's own scheduling order (fair → highest share; deadline →
#:   latest deadline; fifo → newest), ties broken by trace index.
SHED_POLICIES = ("reject-newest", "reject-oldest", "by-priority")

#: Brownout state machine states, in escalation order.
STATE_HEALTHY = "healthy"
STATE_OVERLOADED = "overloaded"
STATE_BROWNOUT = "brownout"
STATE_RECOVERING = "recovering"
OVERLOAD_STATES = (
    STATE_HEALTHY,
    STATE_OVERLOADED,
    STATE_BROWNOUT,
    STATE_RECOVERING,
)


@dataclass(frozen=True)
class OverloadConfig:
    """Every overload-control knob (see ``docs/overload.md``).

    ``ServiceConfig.overload is None`` disables the whole subsystem; the
    event loop then runs the exact PR 7 code path.
    """

    #: Default waiting-queue cap per tenant (``TenantSpec.queue_cap``
    #: overrides per tenant); the count includes quota-blocked waiters.
    tenant_queue_cap: int = 8
    #: Cap on the total number of waiting queries across tenants.
    global_queue_cap: int = 24
    #: One of :data:`SHED_POLICIES`.
    shed_policy: str = "reject-newest"
    #: Drop queued queries whose deadline already expired, and (when
    #: :attr:`deadline_abort_running` also holds) cancel running jobs
    #: whose deadline the progress estimate says is unreachable.
    enforce_deadlines: bool = False
    #: Cancel *running* jobs at iteration barriers on a predicted miss.
    deadline_abort_running: bool = True
    #: Arm the overload detector + brownout state machine.
    brownout: bool = False
    #: Sliding signal window (simulated seconds).
    window_s: float = 0.02
    #: Minimum simulated time between detector samples.
    sample_period_s: float = 0.001
    #: Queue wait that counts as one full unit of pressure.
    wait_budget_s: float = 0.02
    #: Pressure at or above which healthy/recovering escalates.
    overload_enter: float = 0.75
    #: Pressure at or below which the service may start recovering.
    overload_exit: float = 0.35
    #: Sustained pressure at which overloaded escalates to brownout.
    brownout_enter: float = 1.25
    #: Consecutive samples over a threshold before escalating.
    enter_samples: int = 2
    #: Consecutive samples under ``overload_exit`` before de-escalating.
    exit_samples: int = 4
    #: Weight of the unhealthy-device fraction in the pressure signal.
    health_weight: float = 1.0
    #: Brownout: iteration cap applied to degraded ``pr``/``pr30``.
    brownout_pr_iterations: int = 2
    #: Brownout: factor coarsening degraded PageRank tolerance.
    brownout_tolerance_factor: float = 100.0

    def __post_init__(self) -> None:
        if self.tenant_queue_cap < 1:
            raise ValueError("tenant_queue_cap must be at least 1")
        if self.global_queue_cap < 1:
            raise ValueError("global_queue_cap must be at least 1")
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {self.shed_policy!r} "
                f"(one of {', '.join(SHED_POLICIES)})"
            )
        if self.window_s <= 0.0:
            raise ValueError("window_s must be positive")
        if self.sample_period_s <= 0.0:
            raise ValueError("sample_period_s must be positive")
        if self.wait_budget_s <= 0.0:
            raise ValueError("wait_budget_s must be positive")
        if not 0.0 <= self.overload_exit < self.overload_enter:
            raise ValueError(
                "thresholds must satisfy 0 <= overload_exit < overload_enter"
            )
        if self.brownout_enter < self.overload_enter:
            raise ValueError("brownout_enter must be >= overload_enter")
        if self.enter_samples < 1 or self.exit_samples < 1:
            raise ValueError("hysteresis sample counts must be at least 1")
        if self.brownout_pr_iterations < 1:
            raise ValueError("brownout_pr_iterations must be at least 1")
        if self.brownout_tolerance_factor < 1.0:
            raise ValueError("brownout_tolerance_factor must be >= 1.0")


@dataclass(frozen=True)
class OverloadEvent:
    """One overload-control decision, in decision order.

    ``kind`` is one of ``"shed"`` (queue-cap shed),
    ``"deadline-expired"`` (queued query dropped past its deadline),
    ``"deadline-abort"`` (running job cancelled at a barrier) or
    ``"state"`` (brownout state transition; ``detail`` holds
    ``old->new``).
    """

    time: float
    kind: str
    tenant: str
    app: str
    index: int
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "kind": self.kind,
            "tenant": self.tenant,
            "app": self.app,
            "index": self.index,
            "detail": self.detail,
        }


@dataclass
class ShedRecord:
    """One query the service refused to run (never became a job)."""

    tenant: str
    app: str
    arrival_time: float
    shed_time: float
    #: ``"queue-cap"`` or ``"deadline-expired"``.
    reason: str
    index: int

    @property
    def age(self) -> float:
        """How long the query waited before being shed."""
        return self.shed_time - self.arrival_time


class OverloadController:
    """The service's overload detector and brownout state machine.

    One controller per :class:`~repro.serve.service.GraphService` run.
    The service feeds it queue snapshots (:meth:`observe`) on the DES
    clock and consults it for shed victims, deadline verdicts and the
    current degradation level; the controller records every decision in
    :attr:`events`.
    """

    def __init__(self, config: OverloadConfig, tenants: Mapping[str, "object"]) -> None:
        self.config = config
        self._specs = dict(tenants)
        self.state = STATE_HEALTHY
        self.events: List[OverloadEvent] = []
        #: ``(time, pressure)`` samples inside the sliding window.
        self._samples: List[Tuple[float, float]] = []
        self._last_sample = -math.inf
        self._over_streak = 0
        self._brownout_streak = 0
        self._under_streak = 0
        self.transitions = 0
        #: Simulated seconds spent in brownout (state entry to exit).
        self.brownout_seconds = 0.0
        self._state_since = 0.0
        #: Peak waiting-queue depth ever seen, global and per tenant.
        self.peak_queue_depth = 0
        self.peak_tenant_depth: Dict[str, int] = {name: 0 for name in self._specs}
        self.sheds: Dict[str, int] = {name: 0 for name in self._specs}
        self.deadline_aborts: Dict[str, int] = {name: 0 for name in self._specs}
        self.degraded_jobs: Dict[str, int] = {name: 0 for name in self._specs}

    # -- queue caps -----------------------------------------------------

    def tenant_cap(self, tenant: str) -> int:
        spec = self._specs[tenant]
        cap = getattr(spec, "queue_cap", None)
        return cap if cap is not None else self.config.tenant_queue_cap

    def note_depth(self, total: int, per_tenant: Mapping[str, int]) -> None:
        """Track peak queue depth (global and per tenant)."""
        if total > self.peak_queue_depth:
            self.peak_queue_depth = total
        for name, depth in per_tenant.items():
            if depth > self.peak_tenant_depth.get(name, 0):
                self.peak_tenant_depth[name] = depth

    def choose_victim(self, candidates, order_key):
        """The queue entry to shed, per the configured policy.

        ``candidates`` are the waiting entries in the violated scope
        (one tenant's queue for a tenant-cap breach, the whole queue for
        a global breach) *plus* the arriving entry; ``order_key`` is the
        service's scheduling key (lower = served sooner).  Deterministic:
        ties always break on the arrival's trace index.
        """
        policy = self.config.shed_policy
        if policy == "reject-newest":
            return max(candidates, key=lambda w: (w.arrival.time, w.arrival.index))
        if policy == "reject-oldest":
            return min(candidates, key=lambda w: (w.arrival.time, w.arrival.index))
        # by-priority: shed the entry the scheduler would serve last.
        return max(candidates, key=lambda w: (order_key(w), w.arrival.index))

    def record_shed(self, arrival, shed_time: float, reason: str) -> ShedRecord:
        kind = "shed" if reason == "queue-cap" else "deadline-expired"
        self.events.append(
            OverloadEvent(
                time=shed_time,
                kind=kind,
                tenant=arrival.tenant,
                app=arrival.app,
                index=arrival.index,
                detail=reason,
            )
        )
        if reason == "queue-cap":
            self.sheds[arrival.tenant] = self.sheds.get(arrival.tenant, 0) + 1
        else:
            self.deadline_aborts[arrival.tenant] = (
                self.deadline_aborts.get(arrival.tenant, 0) + 1
            )
        return ShedRecord(
            tenant=arrival.tenant,
            app=arrival.app,
            arrival_time=arrival.time,
            shed_time=shed_time,
            reason=reason,
            index=arrival.index,
        )

    # -- deadline enforcement -------------------------------------------

    def deadline_unreachable(
        self,
        now: float,
        start: float,
        deadline: float,
        iterations: int,
        max_iterations: Optional[int],
        frontier_size: int,
    ) -> Optional[str]:
        """Why the running job cannot make its deadline (``None`` = it
        still can, as far as the progress trend shows).

        Three deterministic rules, in order:

        1. the deadline already passed — any further work is waste;
        2. the job has an iteration cap: extrapolating the observed
           per-iteration time over the remaining iterations overshoots;
        3. no cap, but the frontier is non-empty (at least one more
           iteration must run) and even one more average iteration
           overshoots.
        """
        if now >= deadline:
            return f"deadline passed at t={deadline:.6f}"
        if iterations < 1:
            return None  # no progress signal yet; never abort blind
        per_iteration = (now - start) / iterations
        if max_iterations is not None:
            remaining = max_iterations - iterations
            if remaining > 0 and now + per_iteration * remaining > deadline:
                return (
                    f"{remaining} iterations left at "
                    f"{per_iteration * 1e3:.3f}ms each overshoot "
                    f"t={deadline:.6f}"
                )
        elif frontier_size > 0 and now + per_iteration > deadline:
            return (
                f"frontier of {frontier_size} needs another "
                f"{per_iteration * 1e3:.3f}ms iteration past t={deadline:.6f}"
            )
        return None

    def record_deadline_abort(self, arrival, time: float, detail: str) -> None:
        self.events.append(
            OverloadEvent(
                time=time,
                kind="deadline-abort",
                tenant=arrival.tenant,
                app=arrival.app,
                index=arrival.index,
                detail=detail,
            )
        )
        self.deadline_aborts[arrival.tenant] = (
            self.deadline_aborts.get(arrival.tenant, 0) + 1
        )

    # -- the detector and state machine ---------------------------------

    def sample_due(self, now: float) -> bool:
        """Whether the detector wants a sample at simulated ``now``."""
        return (
            self.config.brownout
            and math.isfinite(now)
            and now - self._last_sample >= self.config.sample_period_s
        )

    def observe(
        self,
        now: float,
        queue_depth: int,
        mean_wait: float,
        health_fraction: float,
    ) -> None:
        """Feed one signal sample and run the state machine.

        ``queue_depth`` is the current waiting count, ``mean_wait`` the
        mean age of waiting queries at ``now``, ``health_fraction`` the
        fraction of devices dead/failed/quarantined.  Pressure combines
        the depth (relative to the global cap), the wait level and its
        trend across the window (relative to ``wait_budget_s``), and the
        weighted health fraction.
        """
        cfg = self.config
        self._last_sample = now
        horizon = now - cfg.window_s
        self._samples = [(t, p) for t, p in self._samples if t >= horizon]
        depth_term = queue_depth / cfg.global_queue_cap
        wait_term = mean_wait / cfg.wait_budget_s
        pressure = depth_term + wait_term + cfg.health_weight * health_fraction
        if self._samples:
            # Positive wait/depth slope across the window adds pressure:
            # a *growing* backlog is worse than a static one.
            oldest = self._samples[0][1]
            pressure += max(0.0, (pressure - oldest) / 2.0)
        self._samples.append((now, pressure))
        self._advance_state(now, pressure)

    def _advance_state(self, now: float, pressure: float) -> None:
        cfg = self.config
        self._over_streak = self._over_streak + 1 if pressure >= cfg.overload_enter else 0
        self._brownout_streak = (
            self._brownout_streak + 1 if pressure >= cfg.brownout_enter else 0
        )
        self._under_streak = self._under_streak + 1 if pressure <= cfg.overload_exit else 0
        state = self.state
        if state == STATE_HEALTHY:
            if self._over_streak >= cfg.enter_samples:
                self._transition(now, STATE_OVERLOADED)
        elif state == STATE_OVERLOADED:
            if self._brownout_streak >= cfg.enter_samples:
                self._transition(now, STATE_BROWNOUT)
            elif self._under_streak >= cfg.exit_samples:
                self._transition(now, STATE_RECOVERING)
        elif state == STATE_BROWNOUT:
            if self._under_streak >= cfg.exit_samples:
                self._transition(now, STATE_RECOVERING)
        elif state == STATE_RECOVERING:
            if self._over_streak >= cfg.enter_samples:
                self._transition(now, STATE_OVERLOADED)
            elif self._under_streak >= 2 * cfg.exit_samples:
                self._transition(now, STATE_HEALTHY)

    def _transition(self, now: float, new_state: str) -> None:
        if self.state == STATE_BROWNOUT:
            self.brownout_seconds += now - self._state_since
        detail = f"{self.state}->{new_state}"
        self.state = new_state
        self._state_since = now
        self.transitions += 1
        # Streaks reset on every transition so each state re-earns its
        # exit: that is the hysteresis.
        self._over_streak = 0
        self._brownout_streak = 0
        self._under_streak = 0
        self.events.append(
            OverloadEvent(
                time=now, kind="state", tenant="", app="", index=-1, detail=detail
            )
        )

    def finish(self, now: float) -> None:
        """Close time-in-state accounting at the end of the run."""
        if self.state == STATE_BROWNOUT:
            self.brownout_seconds += max(0.0, now - self._state_since)
            self._state_since = now

    # -- degradation ----------------------------------------------------

    def degrades(self, tenant: str) -> bool:
        """Whether work admitted for ``tenant`` right now is downgraded."""
        if self.state != STATE_BROWNOUT:
            return False
        spec = self._specs.get(tenant)
        return bool(getattr(spec, "degradable", True))

    def note_degraded(self, tenant: str) -> None:
        self.degraded_jobs[tenant] = self.degraded_jobs.get(tenant, 0) + 1

    # -- reporting ------------------------------------------------------

    def summary(self) -> dict:
        """JSON-ready controller outcome (the deterministic event log
        included — the byte-identity tests serialize this)."""
        return {
            "state": self.state,
            "transitions": self.transitions,
            "brownout_seconds": self.brownout_seconds,
            "peak_queue_depth": self.peak_queue_depth,
            "peak_tenant_depth": dict(sorted(self.peak_tenant_depth.items())),
            "shed": dict(sorted(self.sheds.items())),
            "deadline_aborts": dict(sorted(self.deadline_aborts.items())),
            "degraded_jobs": dict(sorted(self.degraded_jobs.items())),
            "events": [event.to_dict() for event in self.events],
        }
