"""Cross-query result caching: repeat queries answered at admission.

Graph-query serving traffic repeats itself — the app mixes are Zipf
weighted, the graph image is shared, and PageRank over the same image
with the same parameters produces the same output vector every time.
The :class:`ResultCache` exploits that determinism: completed queries
deposit their output under a canonical *fingerprint* (algorithm,
effective parameters, graph-image digest, storage format), and a later
query with the same fingerprint is answered straight from the cache at
near-zero simulated cost, never touching the admission quota, the page
cache or the SSD array.

Fingerprints are computed by
:meth:`~repro.serve.queries.QueryFactory.fingerprint` from the
*effective* parameters — a brownout-degraded PageRank (fewer
iterations, coarser tolerance) fingerprints differently from the
full-fidelity run, so degraded outputs can never masquerade as
full-fidelity answers.

Sharing policy is per tenant (``TenantSpec.result_cache``): ``shared``
tenants read and write one communal scope, ``private`` tenants get a
scope keyed by their own name, and ``off`` opts out entirely.
Freshness is a TTL on the simulated clock plus an explicit
:meth:`ResultCache.invalidate` hook for graph-image updates.

Determinism: the cache is keyed and timed purely on the DES clock and
never touches the shared stats collector mid-run — the service flushes
the tallies kept here into ``serve.result_cache_*`` counters once,
after the last job.
"""

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

#: Scope key for communally shared entries (tenant names are non-empty,
#: so the empty string can never collide with a private scope).
RESULT_SCOPE_SHARED = ""

#: Per-tenant sharing policies (``TenantSpec.result_cache``).
RESULT_CACHE_POLICIES = ("shared", "private", "off")


def image_digest(image) -> str:
    """A stable digest of a graph image's identity.

    Hashes the attributes that determine query outputs and I/O shape —
    name, vertex count, storage format, and the edge-file sizes — not
    the edge bytes themselves (hashing gigabytes per query would defeat
    the near-zero-cost contract; images are immutable within a serve
    run, and a rebuilt image changes ``out_bytes``/``in_bytes``).
    """
    h = hashlib.sha256()
    for part in (
        image.name,
        image.num_vertices,
        image.fmt,
        image.out_bytes,
        image.in_bytes,
    ):
        h.update(repr(part).encode())
        h.update(b"|")
    return h.hexdigest()[:16]


@dataclass
class CachedResult:
    """One deposited query output."""

    fingerprint: str
    #: The algorithm's output vector, as deposited (callers copy on
    #: insert so later program state cannot mutate it).
    values: object
    iterations: int
    app: str
    #: Simulated deposit time (TTL anchor).
    inserted_at: float
    #: ``Arrival.index`` of the producing query — the trace join key.
    source_index: int


@dataclass(frozen=True)
class ResultCacheConfig:
    """Result-cache knobs."""

    #: Entry lifetime on the simulated clock; ``None`` = never expires.
    ttl_s: Optional[float] = None
    #: Simulated seconds a cache hit costs the querying tenant
    #: (fingerprint lookup + handing back the vector).
    hit_cost_s: float = 5e-5

    def __post_init__(self) -> None:
        if self.ttl_s is not None and self.ttl_s <= 0.0:
            raise ValueError("ttl_s must be positive")
        if self.hit_cost_s < 0.0:
            raise ValueError("hit_cost_s must be non-negative")


class ResultCache:
    """Fingerprint-keyed store of completed query outputs.

    One instance per :class:`~repro.serve.service.GraphService`; scopes
    (shared vs. per-tenant) partition the key space, so a ``private``
    tenant never reads another tenant's deposits.
    """

    def __init__(self, config: Optional[ResultCacheConfig] = None) -> None:
        self.config = config or ResultCacheConfig()
        self._entries: Dict[Tuple[str, str], CachedResult] = {}
        # Local tallies, flushed to serve.result_cache_* by the service
        # after the last job (never mid-run).
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.expirations = 0
        self.invalidations = 0
        self.hits_by_tenant: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self, scope: str, fingerprint: str, now: float
    ) -> Optional[CachedResult]:
        """The live entry under ``(scope, fingerprint)``, or ``None``.

        An entry past its TTL at simulated ``now`` is expired on probe
        and reported as a miss.
        """
        key = (scope, fingerprint)
        entry = self._entries.get(key)
        ttl = self.config.ttl_s
        if (
            entry is not None
            and ttl is not None
            and now - entry.inserted_at > ttl
        ):
            del self._entries[key]
            self.expirations += 1
            entry = None
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def insert(
        self,
        scope: str,
        fingerprint: str,
        values,
        iterations: int,
        app: str,
        now: float,
        source_index: int,
    ) -> None:
        """Deposit one completed query's output (latest deposit wins)."""
        self._entries[(scope, fingerprint)] = CachedResult(
            fingerprint=fingerprint,
            values=values,
            iterations=iterations,
            app=app,
            inserted_at=now,
            source_index=source_index,
        )
        self.insertions += 1

    def invalidate(
        self, predicate: Optional[Callable[[CachedResult], bool]] = None
    ) -> int:
        """Drop entries matching ``predicate`` (all entries when
        ``None``) — the hook a graph-image update calls.  Returns the
        number of entries dropped."""
        if predicate is None:
            doomed = list(self._entries)
        else:
            doomed = [
                key
                for key, entry in self._entries.items()
                if predicate(entry)
            ]
        for key in doomed:
            del self._entries[key]
        self.invalidations += len(doomed)
        return len(doomed)

    def summary(self) -> dict:
        """Run-level outcome for :class:`ServiceReport`."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "entries": len(self._entries),
            "hits_by_tenant": dict(sorted(self.hits_by_tenant.items())),
        }
