"""Per-tenant admission control.

The controller is the single gate between a revealed arrival and a
running job: a tenant's concurrency quota is checked at admission and
released at completion, and the peak concurrency it ever granted is
recorded so tests can prove quotas were *never* exceeded — not just
that the final count looks right.
"""

from typing import Dict, Mapping

from repro.serve.tenants import TenantSpec


class QuotaExceeded(RuntimeError):
    """An admission was forced past a tenant's concurrency quota."""


class AdmissionController:
    """Tracks per-tenant running jobs against their quotas."""

    def __init__(self, specs: Mapping[str, TenantSpec]) -> None:
        self._specs = dict(specs)
        self.running: Dict[str, int] = {name: 0 for name in self._specs}
        #: Highest concurrency ever granted per tenant (quota audit).
        self.peak: Dict[str, int] = {name: 0 for name in self._specs}
        #: Arrivals that found their quota full at least once.
        self.quota_waits: Dict[str, int] = {name: 0 for name in self._specs}

    def _check_known(self, tenant: str) -> None:
        if tenant not in self._specs:
            known = ", ".join(sorted(self._specs)) or "none"
            raise ValueError(
                f"unknown tenant {tenant!r} (registered tenants: {known})"
            )

    def spec(self, tenant: str) -> TenantSpec:
        self._check_known(tenant)
        return self._specs[tenant]

    def can_admit(self, tenant: str) -> bool:
        self._check_known(tenant)
        return self.running[tenant] < self._specs[tenant].max_concurrent

    def admit(self, tenant: str) -> None:
        if not self.can_admit(tenant):
            raise QuotaExceeded(
                f"tenant {tenant!r} is at its quota of "
                f"{self._specs[tenant].max_concurrent} running jobs"
            )
        self.running[tenant] += 1
        if self.running[tenant] > self.peak[tenant]:
            self.peak[tenant] = self.running[tenant]

    def release(self, tenant: str) -> None:
        self._check_known(tenant)
        if self.running[tenant] <= 0:
            raise ValueError(f"tenant {tenant!r} has no running job to release")
        self.running[tenant] -= 1

    def note_quota_wait(self, tenant: str) -> None:
        self._check_known(tenant)
        self.quota_waits[tenant] += 1

    def total_quota_waits(self) -> int:
        return sum(self.quota_waits.values())
