"""Tenant specifications and exact busy-time attribution.

A tenant is a traffic class with a fair-share weight, a concurrency
quota and (optionally) a completion deadline and a private page-cache
partition.  The :class:`TenantAccountant` hooks every device's
``tenant_sink`` so each service charge is attributed to the tenant whose
job caused it — replaying a device's attributed charges in order
reproduces its ``busy_time`` bit for bit, which is what lets the
property tests assert that device time *tiles* across tenants exactly.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TenantSpec:
    """One traffic class and its service-level knobs."""

    #: Tenant name; used as a metric label suffix, so it must be
    #: non-empty and dot-free (``serve.query_seconds.<name>``).
    name: str
    #: Fair-share weight: admission favours the tenant with the lowest
    #: ``device_busy / weight`` so heavier tenants earn more device time.
    weight: float = 1.0
    #: Concurrency quota: jobs running at once (never exceeded).
    max_concurrent: int = 2
    #: Completion deadline relative to arrival (EDF scheduling); ``None``
    #: sorts last under the deadline policy.
    deadline_s: Optional[float] = None
    #: Private page-cache partition capacity; ``None`` shares the global
    #: cache with every other unpartitioned tenant.
    cache_bytes: Optional[int] = None
    #: Waiting-queue cap for this tenant under overload control; ``None``
    #: uses :attr:`~repro.serve.overload.OverloadConfig.tenant_queue_cap`.
    queue_cap: Optional[int] = None
    #: Whether brownout may downgrade this tenant's admitted work
    #: (lower PageRank iteration cap, coarser tolerance).  Tenants
    #: paying for full fidelity opt out and only ever see shed/abort.
    degradable: bool = True
    #: Latency objective: completed queries should finish within this
    #: many simulated seconds of arrival.  ``None`` declares no latency
    #: objective (the SLO tracker then ignores this tenant's latency).
    slo_latency_s: Optional[float] = None
    #: Fraction of queries that must meet :attr:`slo_latency_s` — the
    #: latency objective's target; ``1 - slo_target`` is its error
    #: budget (see ``repro.obs.slo``).
    slo_target: float = 0.99
    #: Availability objective: the fraction of offered queries that must
    #: be *served* (not shed, not aborted).  ``None`` declares none.
    slo_availability: Optional[float] = None
    #: Cross-query I/O sharing: whether this tenant's jobs participate
    #: in in-flight read dedup (attach to — and publish — outstanding
    #: device fetches).  Effective only when the service enables
    #: ``ServiceConfig.share_reads``; an isolation-sensitive tenant can
    #: opt out here even then (see docs/io_sharing.md).
    share_reads: bool = True
    #: Result-cache sharing policy: ``"shared"`` reads/writes the
    #: communal scope, ``"private"`` a tenant-local scope, ``"off"``
    #: opts out.  Effective only when ``ServiceConfig.result_cache`` is
    #: enabled.
    result_cache: str = "shared"

    def __post_init__(self) -> None:
        if not self.name or "." in self.name:
            raise ValueError(
                f"tenant name {self.name!r} must be non-empty and dot-free "
                "(it suffixes metric names)"
            )
        if self.weight <= 0.0:
            raise ValueError("tenant weight must be positive")
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be at least 1")
        if self.deadline_s is not None and self.deadline_s <= 0.0:
            raise ValueError("deadline_s must be positive")
        if self.cache_bytes is not None and self.cache_bytes <= 0:
            raise ValueError("cache_bytes must be positive")
        if self.queue_cap is not None and self.queue_cap < 1:
            raise ValueError("queue_cap must be at least 1")
        if self.slo_latency_s is not None and self.slo_latency_s <= 0.0:
            raise ValueError("slo_latency_s must be positive")
        if not 0.0 < self.slo_target < 1.0:
            raise ValueError("slo_target must lie in (0, 1)")
        if self.slo_availability is not None and not (
            0.0 < self.slo_availability < 1.0
        ):
            raise ValueError("slo_availability must lie in (0, 1)")
        if self.result_cache not in ("shared", "private", "off"):
            raise ValueError(
                f"unknown result_cache policy {self.result_cache!r} "
                "(one of shared, private, off)"
            )

    @property
    def slo_objectives(self) -> Dict[str, Tuple[float, float]]:
        """Declared objectives as ``{kind: (threshold, target)}``.

        ``"latency"`` maps ``(slo_latency_s, slo_target)``;
        ``"availability"`` maps ``(0.0, slo_availability)`` (it has no
        threshold — a query is good when it was served at all).  Empty
        when the tenant declares no objectives.
        """
        objectives: Dict[str, Tuple[float, float]] = {}
        if self.slo_latency_s is not None:
            objectives["latency"] = (self.slo_latency_s, self.slo_target)
        if self.slo_availability is not None:
            objectives["availability"] = (0.0, self.slo_availability)
        return objectives


class TenantAccountant:
    """Attributes every device service charge to a tenant.

    The service layer points :attr:`current` at the tenant whose job is
    stepping; :meth:`sink` — installed as each device's ``tenant_sink``
    — then records ``(tenant, service)`` per device in charge order.
    Accumulating a device's recorded charges with the same ``+=`` the
    device itself used reproduces ``SSD.busy_time`` bit-exactly
    (:meth:`replay_busy`), so the per-tenant split is a true partition
    of device time, not an approximation.
    """

    def __init__(self, names: Sequence[str]) -> None:
        #: Tenant currently on the (virtual) CPU; ``None`` = untagged.
        self.current: Optional[str] = None
        #: Running per-tenant device-busy totals (fair-share input).
        self.usage: Dict[str, float] = {name: 0.0 for name in names}
        #: Per-device attributed charges, in charge order.
        self.device_events: Dict[int, List[Tuple[Optional[str], float]]] = {}

    def sink(self, device: int, service: float) -> None:
        self.device_events.setdefault(device, []).append(
            (self.current, service)
        )
        if self.current is not None:
            self.usage[self.current] = (
                self.usage.get(self.current, 0.0) + service
            )

    def install(self, array) -> None:
        """Hook every device of ``array`` (data SSDs and hot spares)."""
        for ssd in array.ssds:
            ssd.tenant_sink = self.sink
        for ssd in array.spares:
            ssd.tenant_sink = self.sink

    def replay_busy(self, device: int) -> float:
        """``SSD.busy_time`` recomputed from the attributed charges."""
        busy = 0.0
        for _, service in self.device_events.get(device, []):
            busy += service
        return busy

    def busy_by_tenant(self) -> Dict[str, float]:
        """Total attributed device-busy seconds per tenant."""
        totals: Dict[str, float] = {name: 0.0 for name in self.usage}
        for events in self.device_events.values():
            for tenant, service in events:
                if tenant is not None:
                    totals[tenant] = totals.get(tenant, 0.0) + service
        return totals
