"""Adaptive tenant cache sizing: ghost-LRU driven capacity rebalancing.

Static per-tenant page-cache partitions (``TenantSpec.cache_bytes``)
protect tenants from each other but waste capacity whenever load is
uneven: an idle tenant's partition holds cold pages while a hot
tenant's partition thrashes.  The :class:`CacheRebalancer` closes that
gap with the classic shadow-cache policy: every partition keeps a ghost
LRU of recently evicted keys
(:meth:`~repro.safs.page_cache.PageCache.enable_ghost_tracking`), and a
miss whose key is still on the ghost list is evidence the partition
would have hit with more capacity.  At fixed DES-clock intervals the
rebalancer compares windowed *marginal benefit* — ghost hits per lookup
— across partitions and moves one per-set capacity unit from the
partition with the least benefit to the one with the most, never
shrinking anyone below a floor fraction of its initial capacity, so no
tenant is starved of the quota it paid for.

Determinism: decisions are pure functions of partition tallies on the
DES clock, ties break lexicographically by tenant name, and every
decision is appended to :attr:`log` — two same-seed runs replay the
same decision sequence bit for bit.  Counter tallies stay local until
the service flushes them (``serve.cache_rebalances`` etc.) after the
last job; only gauge *series* (``serve.cache_share.<tenant>``), which
live outside counter snapshots, are sampled as decisions happen.
"""

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs import registry as reg
from repro.safs.page_cache import PageCache


@dataclass(frozen=True)
class CacheRebalanceConfig:
    """Rebalancer knobs (simulated seconds)."""

    #: Rebalance interval.  The default matches the timeline sampler's
    #: window scale: a few queries' worth of lookups per decision.
    interval_s: float = 0.01
    #: No partition shrinks below this fraction of its *initial* per-set
    #: capacity (rounded up, never below one page per set).
    floor_fraction: float = 0.5
    #: Per-set pages moved per decision (small steps keep the policy
    #: stable; capacity moves at ``step_sets × num_sets`` pages a step).
    step_sets: int = 1

    def __post_init__(self) -> None:
        if self.interval_s <= 0.0:
            raise ValueError("interval_s must be positive")
        if not 0.0 < self.floor_fraction <= 1.0:
            raise ValueError("floor_fraction must lie in (0, 1]")
        if self.step_sets < 1:
            raise ValueError("step_sets must be at least 1")


class CacheRebalancer:
    """Periodically shifts set capacity between tenant partitions.

    Bound to the partitions of one
    :class:`~repro.serve.service.GraphService` run; the service's event
    loop calls :meth:`note_time` whenever its frontier crosses
    :attr:`next_boundary_s` (the same one-float-compare hot-loop
    discipline as the timeline sampler).
    """

    def __init__(
        self,
        partitions: Dict[str, PageCache],
        config: Optional[CacheRebalanceConfig] = None,
        stats=None,
    ) -> None:
        if len(partitions) < 2:
            raise ValueError(
                "cache rebalancing needs at least two tenant cache "
                "partitions to move capacity between"
            )
        self.config = config or CacheRebalanceConfig()
        self.partitions = partitions
        #: Stats collector for gauge sampling; ``None`` = no gauges.
        self.stats = stats
        self._tenants = sorted(partitions)
        self._floor: Dict[str, int] = {}
        for name in self._tenants:
            cache = partitions[name]
            cache.enable_ghost_tracking()
            self._floor[name] = max(
                1, math.ceil(cache._set_cap * self.config.floor_fraction)
            )
        # Windowed tallies: last-seen cumulative lookups/ghost hits.
        self._last: Dict[str, tuple] = {
            name: (0, 0) for name in self._tenants
        }
        self._window = 0
        #: End of the currently open interval (hot-loop compare bound).
        self.next_boundary_s = self.config.interval_s
        # Local counters, flushed by the service after the last job.
        self.moves = 0
        self.pages_moved = 0
        self.evictions = 0
        #: Deterministic decision log, one dict per interval that moved
        #: capacity.
        self.log: List[dict] = []

    def shares(self) -> Dict[str, float]:
        """Each partition's fraction of the total partitioned capacity."""
        total = sum(
            self.partitions[name].set_capacity_pages for name in self._tenants
        )
        if total == 0:
            return {name: 0.0 for name in self._tenants}
        return {
            name: self.partitions[name].set_capacity_pages / total
            for name in self._tenants
        }

    def note_time(self, now: float) -> None:
        """Close every rebalance interval the frontier crossed."""
        while now >= (self._window + 1) * self.config.interval_s:
            self._close_window()

    def _close_window(self) -> None:
        benefits: Dict[str, float] = {}
        for name in self._tenants:
            cache = self.partitions[name]
            last_lookups, last_ghost = self._last[name]
            lookups = cache.lookups - last_lookups
            ghost = cache.ghost_hits - last_ghost
            self._last[name] = (cache.lookups, cache.ghost_hits)
            benefits[name] = ghost / lookups if lookups else 0.0
        self._window += 1
        self.next_boundary_s = (self._window + 1) * self.config.interval_s
        # Receiver: best marginal benefit; donor: worst benefit still
        # above its floor.  Lexicographic tie-breaks keep same-seed runs
        # replaying the same decisions.
        receiver = min(
            self._tenants, key=lambda name: (-benefits[name], name)
        )
        if benefits[receiver] <= 0.0:
            return
        step = self.config.step_sets
        donors = [
            name
            for name in self._tenants
            if name != receiver
            and self.partitions[name]._set_cap - step >= self._floor[name]
            and benefits[name] < benefits[receiver]
        ]
        if not donors:
            return
        donor = min(donors, key=lambda name: (benefits[name], name))
        donor_cache = self.partitions[donor]
        receiver_cache = self.partitions[receiver]
        evicted = donor_cache.resize_set_capacity(donor_cache._set_cap - step)
        receiver_cache.resize_set_capacity(receiver_cache._set_cap + step)
        self.moves += 1
        self.pages_moved += step * donor_cache.config.num_sets
        self.evictions += evicted
        end = self._window * self.config.interval_s
        self.log.append(
            {
                "window": self._window - 1,
                "time_s": end,
                "donor": donor,
                "receiver": receiver,
                "benefits": {k: benefits[k] for k in self._tenants},
                "evicted": evicted,
            }
        )
        if self.stats is not None:
            for name, share in self.shares().items():
                self.stats.sample(
                    f"{reg.GAUGE_SERVE_CACHE_SHARE}.{name}", end, share
                )

    def summary(self) -> dict:
        """Run-level outcome for :class:`ServiceReport`."""
        return {
            "moves": self.moves,
            "pages_moved": self.pages_moved,
            "evictions": self.evictions,
            "shares": {k: v for k, v in sorted(self.shares().items())},
            "set_capacities": {
                name: self.partitions[name]._set_cap
                for name in self._tenants
            },
            "floors": dict(sorted(self._floor.items())),
        }
