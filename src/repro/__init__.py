"""FlashGraph reproduction: a semi-external-memory graph engine.

A comprehensive Python reproduction of *FlashGraph: Processing
Billion-Node Graphs on an Array of Commodity SSDs* (Zheng et al.,
FAST 2015) over a deterministic discrete-event simulation of the paper's
testbed.  Results (BFS levels, PageRank values, cache hits, bytes moved)
are computed exactly; service times come from calibrated device and CPU
models.

Package map:

- :mod:`repro.sim` — virtual clock, cost model, SSD array, NUMA topology
- :mod:`repro.safs` — the SAFS user-space filesystem (page cache, request
  merging, async user tasks, write path)
- :mod:`repro.graph` — on-SSD format, compact index, builders,
  generators, transforms, validation, statistics
- :mod:`repro.core` — the vertex-centric engine (SEM and in-memory modes)
- :mod:`repro.algorithms` — the paper's six applications plus extensions
- :mod:`repro.baselines` — GraphChi/X-Stream/PowerGraph/Galois/PEGASUS/
  TurboGraph/Pregel/Trinity comparators
- :mod:`repro.bench` — one experiment per paper table/figure
- :mod:`repro.cli` — ``generate`` / ``run`` / ``bench`` command line

Quickstart::

    from repro.graph import build_directed, twitter_sim
    from repro.core import GraphEngine, EngineConfig
    from repro.algorithms import bfs

    edges, n = twitter_sim(scale=13)
    engine = GraphEngine(build_directed(edges, n))
    levels, result = bfs(engine, source=0)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
