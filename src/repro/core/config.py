"""Engine configuration."""

import enum
from dataclasses import dataclass, replace


class ExecutionMode(enum.Enum):
    """Where edge lists live during execution."""

    #: Semi-external memory: vertex state in RAM, edge lists on SSDs (SAFS).
    SEMI_EXTERNAL = "semi-external"
    #: Everything in RAM (the paper's "FG-mem" comparison build).
    IN_MEMORY = "in-memory"


class PartitionStrategy(enum.Enum):
    """Horizontal partitioning function (§3.8)."""

    #: ``(vid >> r) % n`` — SSD-adjacent ranges per thread (the paper's).
    RANGE = "range"
    #: Multiplicative hash — the locality-destroying counterfactual.
    HASH = "hash"


class ScheduleOrder(enum.Enum):
    """Per-thread vertex execution order (§3.7, Figure 12)."""

    #: Ascending vertex ID — matches the on-SSD layout, maximises merging.
    BY_ID = "by-id"
    #: Random order — the Figure 12 counterfactual.
    RANDOM = "random"
    #: Algorithm-supplied ordering (e.g. scan statistics' degree-descending).
    CUSTOM = "custom"


@dataclass(frozen=True)
class EngineConfig:
    """All engine-level knobs, with the paper's defaults.

    Immutable; derive variants with :meth:`with_overrides`.
    """

    #: Execution mode (semi-external vs in-memory).
    mode: ExecutionMode = ExecutionMode.SEMI_EXTERNAL
    #: Worker threads (the paper uses 32 everywhere).
    num_threads: int = 32
    #: Vertices kept in the running state per thread; merging gains plateau
    #: above ~4000 (§3.7).
    max_running_vertices: int = 4000
    #: Right-shift of the range-partitioning function
    #: ``partition_id = (vid >> r) % n`` (§3.8; 12–18 works well at 100M+
    #: vertices — smaller graphs want smaller ranges).
    range_shift: int = 10
    #: Horizontal partitioning function (range vs hash ablation).
    partition_strategy: PartitionStrategy = PartitionStrategy.RANGE
    #: Merge I/O requests inside the engine before submitting to SAFS.
    merge_in_engine: bool = True
    #: When the engine does not merge, let SAFS merge within its bounded
    #: queue window (the Figure 12 middle bar).
    merge_in_fs: bool = True
    #: Vertex execution order.
    schedule_order: ScheduleOrder = ScheduleOrder.BY_ID
    #: Alternate the scan direction between iterations so pages touched at
    #: the end of one iteration are touched first in the next (§3.7).
    alternate_scan_direction: bool = True
    #: Work stealing between threads (§3.8.1).
    load_balance: bool = True
    #: Split a request for more than this many edge lists into vertex parts
    #: spread over all threads (vertical partitioning, §3.8); 0 disables.
    vertical_part_threshold: int = 0
    #: Edge lists per vertex part when vertical partitioning triggers.
    vertical_part_size: int = 512
    #: Buffered messages per thread before a flush is charged (§3.4.1).
    message_flush_threshold: int = 4096
    #: Processor sockets the workers are pinned across (§3.8 NUMA
    #: locality; the paper's machine has 4).
    num_sockets: int = 4

    def with_overrides(self, **overrides) -> "EngineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    def __post_init__(self) -> None:
        if self.num_threads <= 0:
            raise ValueError("num_threads must be positive")
        if self.max_running_vertices <= 0:
            raise ValueError("max_running_vertices must be positive")
        if self.range_shift < 0:
            raise ValueError("range_shift cannot be negative")
        if self.vertical_part_threshold < 0:
            raise ValueError("vertical_part_threshold cannot be negative")
        if self.vertical_part_size <= 0:
            raise ValueError("vertical_part_size must be positive")
        if self.message_flush_threshold <= 0:
            raise ValueError("message_flush_threshold must be positive")
        if self.num_sockets <= 0:
            raise ValueError("num_sockets must be positive")
