"""Engine configuration."""

import enum
from dataclasses import dataclass, replace


class ExecutionMode(enum.Enum):
    """Where edge lists live during execution."""

    #: Semi-external memory: vertex state in RAM, edge lists on SSDs (SAFS).
    SEMI_EXTERNAL = "semi-external"
    #: Everything in RAM (the paper's "FG-mem" comparison build).
    IN_MEMORY = "in-memory"


class ExecutionKind(enum.Enum):
    """How the engine drives vertex programs to convergence.

    ``SYNC`` is the classic BSP superstep loop: every active vertex runs
    once per iteration and messages buffer to the global barrier.  It is
    the default and stays bit-identical to the pre-policy engine.

    ``ASYNC`` is the priority-driven mode (ACGraph-style): each *round*
    schedules only the highest-residual vertices, messages deliver
    eagerly inside the round, and convergence is detected without a
    global barrier — quiescence of the above-floor active set plus an
    optional global residual threshold.  Requires a vertex program with
    a ``residuals`` hook (see :mod:`repro.core.execution`).
    """

    SYNC = "sync"
    ASYNC = "async"


class PartitionStrategy(enum.Enum):
    """Horizontal partitioning function (§3.8)."""

    #: ``(vid >> r) % n`` — SSD-adjacent ranges per thread (the paper's).
    RANGE = "range"
    #: Multiplicative hash — the locality-destroying counterfactual.
    HASH = "hash"


class ScheduleOrder(enum.Enum):
    """Per-thread vertex execution order (§3.7, Figure 12)."""

    #: Ascending vertex ID — matches the on-SSD layout, maximises merging.
    BY_ID = "by-id"
    #: Random order — the Figure 12 counterfactual.
    RANDOM = "random"
    #: Algorithm-supplied ordering (e.g. scan statistics' degree-descending).
    CUSTOM = "custom"


@dataclass(frozen=True)
class EngineConfig:
    """All engine-level knobs, with the paper's defaults.

    Immutable; derive variants with :meth:`with_overrides`.
    """

    #: Execution mode (semi-external vs in-memory).
    mode: ExecutionMode = ExecutionMode.SEMI_EXTERNAL
    #: Worker threads (the paper uses 32 everywhere).
    num_threads: int = 32
    #: Vertices kept in the running state per thread; merging gains plateau
    #: above ~4000 (§3.7).
    max_running_vertices: int = 4000
    #: Right-shift of the range-partitioning function
    #: ``partition_id = (vid >> r) % n`` (§3.8; 12–18 works well at 100M+
    #: vertices — smaller graphs want smaller ranges).
    range_shift: int = 10
    #: Horizontal partitioning function (range vs hash ablation).
    partition_strategy: PartitionStrategy = PartitionStrategy.RANGE
    #: Merge I/O requests inside the engine before submitting to SAFS.
    merge_in_engine: bool = True
    #: When the engine does not merge, let SAFS merge within its bounded
    #: queue window (the Figure 12 middle bar).
    merge_in_fs: bool = True
    #: Vertex execution order.
    schedule_order: ScheduleOrder = ScheduleOrder.BY_ID
    #: Alternate the scan direction between iterations so pages touched at
    #: the end of one iteration are touched first in the next (§3.7).
    alternate_scan_direction: bool = True
    #: Work stealing between threads (§3.8.1).
    load_balance: bool = True
    #: Split a request for more than this many edge lists into vertex parts
    #: spread over all threads (vertical partitioning, §3.8); 0 disables.
    vertical_part_threshold: int = 0
    #: Edge lists per vertex part when vertical partitioning triggers.
    vertical_part_size: int = 512
    #: Buffered messages per thread before a flush is charged (§3.4.1).
    message_flush_threshold: int = 4096
    #: Processor sockets the workers are pinned across (§3.8 NUMA
    #: locality; the paper's machine has 4).
    num_sockets: int = 4
    #: How the run loop is driven (sync BSP supersteps vs async
    #: priority rounds).
    execution: ExecutionKind = ExecutionKind.SYNC
    #: Async convergence: stop once the global residual sum falls to or
    #: below this value (0 relies on quiescence alone — the active set
    #: of above-floor vertices emptying out).
    async_threshold: float = 0.0
    #: Async staleness bound: an eligible vertex may be deferred by the
    #: priority selector for at most this many rounds before it is
    #: force-scheduled, so no state read is ever more than this many
    #: rounds stale.
    async_staleness: int = 4
    #: Fraction of the eligible set each async round schedules (the
    #: highest-residual slice; the rest accumulate more residual first).
    #: The default of 1.0 schedules every above-floor vertex — on graphs
    #: whose edge file dwarfs the page cache, one hot-blocks-first sweep
    #: per round is cheaper in bytes than extra partial sweeps (see
    #: ``BENCH_async.json``); lower it when residual mass is known to
    #: concentrate in a few regions.
    async_selectivity: float = 1.0
    #: Never schedule fewer than this many vertices per async round
    #: (keeps rounds on tiny graphs from degenerating to single-vertex
    #: I/O that cannot merge).
    async_min_round: int = 64

    def with_overrides(self, **overrides) -> "EngineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    def __post_init__(self) -> None:
        if self.num_threads <= 0:
            raise ValueError("num_threads must be positive")
        if self.max_running_vertices <= 0:
            raise ValueError("max_running_vertices must be positive")
        if self.range_shift < 0:
            raise ValueError("range_shift cannot be negative")
        if self.vertical_part_threshold < 0:
            raise ValueError("vertical_part_threshold cannot be negative")
        if self.vertical_part_size <= 0:
            raise ValueError("vertical_part_size must be positive")
        if self.message_flush_threshold <= 0:
            raise ValueError("message_flush_threshold must be positive")
        if self.num_sockets <= 0:
            raise ValueError("num_sockets must be positive")
        if self.async_threshold < 0:
            raise ValueError("async_threshold cannot be negative")
        if self.async_staleness < 1:
            raise ValueError("async_staleness must be at least 1")
        if not 0.0 < self.async_selectivity <= 1.0:
            raise ValueError("async_selectivity must lie in (0, 1]")
        if self.async_min_round <= 0:
            raise ValueError("async_min_round must be positive")
