"""The FlashGraph execution engine (§3.2–§3.8).

The engine executes real vertex programs while advancing virtual time:

- a graph is range-partitioned over virtual worker threads (§3.8); each
  thread runs its active vertices in scheduler order, in batches of at
  most ``max_running_vertices`` (§3.7);
- edge-list requests buffered by a batch are conservatively merged and
  submitted to SAFS asynchronously; the worker's clock then chases the
  completion stream, charging ``run_on_vertex`` CPU as data arrives — this
  is how computation/I/O overlap is modelled (§3.1, §3.6);
- requests issued *from* ``run_on_vertex`` (triangle counting's neighbor
  reads) feed follow-up waves within the same batch;
- vertical partitioning splits huge multi-list requests into vertex parts
  any thread may pick up (§3.8), and idle threads steal batches from
  loaded ones (§3.8.1);
- messages buffer per iteration and deliver at the barrier with a
  combiner; activations are data-free multicasts (§3.4.1).

The scheduling loop always advances the worker with the smallest virtual
clock, so device-queue contention between threads is simulated fairly.
"""

from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import EngineConfig, ExecutionMode, PartitionStrategy, ScheduleOrder
from repro.core.execution import make_execution_policy
from repro.core.memory_mode import InMemoryEdgeStore
from repro.core.messages import MessageBuffer
from repro.core.partition import HashPartitioner, RangePartitioner, split_into_parts
from repro.core.scheduler import make_scheduler
from repro.core.vertex_program import GraphContext, VertexProgram
from repro.obs import registry as reg
from repro.graph.builder import GraphImage
from repro.graph.format import EDGE_BYTES, FORMAT_V2, HEADER_BYTES, decode_lists_v2
from repro.graph.page_vertex import PageVertex, PageVertexBatch, gather_ranges, scatter_positions
from repro.graph.types import EdgeType
from repro.safs.filesystem import SAFS
from repro.safs.io_request import IORequest, merge_request_arrays, merge_requests
from repro.safs.user_task import UserTask
from repro.sim.cost_model import DEFAULT_COST_MODEL, CostModel
from repro.sim.faults import UnrecoverableIOError
from repro.sim.numa import NumaTopology
from repro.sim.stats import StatsCollector

#: Estimated bytes per buffered message (dest id + payload).
MESSAGE_BYTES = 16


class IterationAborted(RuntimeError):
    """A run hit an unrecoverable I/O error and stopped cleanly.

    The engine never hangs on a dead array and never returns wrong
    values: when SAFS exhausts its retry/reroute budget the iteration
    aborts, and this exception carries the partial-progress
    :class:`RunResult` (clocks, counters and utilisation up to the
    abort) plus the failed iteration and the root cause.
    """

    def __init__(
        self, iteration: int, cause: UnrecoverableIOError, partial: "RunResult"
    ) -> None:
        super().__init__(
            f"iteration {iteration} aborted after unrecoverable I/O: {cause}"
        )
        self.iteration = iteration
        self.cause = cause
        self.partial = partial


class JobCancelled(RuntimeError):
    """The cause recorded when a job is cancelled from outside.

    Mirrors the :class:`~repro.sim.faults.UnrecoverableIOError` surface
    the abort path reads (``reason`` and ``time``), so a cancellation
    flows through :class:`IterationAborted` exactly like an I/O abort
    does — same partial result, same reporting — and callers above the
    engine (the serving layer's deadline enforcement) need no second
    code path.
    """

    def __init__(self, reason: str, time: float) -> None:
        super().__init__(f"job cancelled at t={time:.6f}: {reason}")
        self.reason = reason
        self.time = time


@dataclass
class RunResult:
    """Everything one engine run reports."""

    #: Simulated wall-clock seconds.
    runtime: float
    #: Iterations executed.
    iterations: int
    #: Total CPU-busy seconds summed over workers.
    cpu_busy: float
    #: Fraction of machine CPU busy over the run.
    cpu_utilization: float
    #: Bytes read from the SSD array during the run.
    bytes_read: float
    #: Aggregate device read bandwidth achieved (bytes/second).
    io_throughput: float
    #: Fraction of aggregate device time busy.
    io_utilization: float
    #: SAFS cache hit rate over the run.
    cache_hit_rate: float
    #: Simulated resident memory, by component.
    memory: Dict[str, float] = field(default_factory=dict)
    #: Raw counter deltas for the run.
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def memory_bytes(self) -> float:
        """Total simulated resident memory."""
        return sum(self.memory.values())


class _Worker:
    """One virtual worker thread."""

    __slots__ = ("index", "time", "busy", "queue", "pos")

    def __init__(self, index: int) -> None:
        self.index = index
        self.time = 0.0
        self.busy = 0.0
        self.queue: np.ndarray = np.zeros(0, dtype=np.int64)
        self.pos = 0

    @property
    def remaining(self) -> int:
        return len(self.queue) - self.pos

    def take(self, count: int) -> np.ndarray:
        batch = self.queue[self.pos : self.pos + count]
        self.pos += len(batch)
        return batch

    def steal_from_tail(self, count: int) -> np.ndarray:
        count = min(count, self.remaining)
        if count <= 0:
            return np.zeros(0, dtype=np.int64)
        stolen = self.queue[len(self.queue) - count :]
        self.queue = self.queue[: len(self.queue) - count]
        return stolen


class EngineJob:
    """One in-flight engine run, advanced one barrier at a time.

    Produced by :meth:`GraphEngine.start_job`; a batch :meth:`GraphEngine.run`
    is exactly ``while job.step(): pass`` over one of these, so a
    single-job service run replays the batch code path operation for
    operation.  The service layer (``repro.serve``) interleaves many
    jobs by always stepping the one with the smallest :attr:`clock`.
    """

    def __init__(
        self, engine, steps, base, start_time: float, span_context=None
    ) -> None:
        self._engine = engine
        self._steps = steps
        self._base = base
        self.start_time = start_time
        #: Query span context (``{"query", "tenant", "app"}``) installed
        #: on the armed observer around every step, so all spans the
        #: step produces join into one per-query trace; ``None`` (every
        #: batch run) records exactly the pre-context spans.
        self.span_context = span_context
        self._result: Optional[RunResult] = None
        self._done = False

    @property
    def clock(self) -> float:
        """The job's current simulated time (max worker clock)."""
        if self._done and self._result is not None:
            return self.start_time + self._result.runtime
        return max(
            (w.time for w in self._engine._workers), default=self.start_time
        )

    @property
    def iteration(self) -> int:
        return self._engine.iteration

    @property
    def done(self) -> bool:
        return self._done

    @property
    def frontier_size(self) -> int:
        """Active-vertex count at the last iteration barrier.

        Updated by the execution policy before every barrier yield; the
        serving layer's deadline estimator uses it to decide whether an
        uncapped traversal still has work left.
        """
        return self._engine._barrier_frontier

    def cancel(self, reason: str) -> "IterationAborted":
        """Cancel the job at its current iteration barrier.

        The job is suspended at a barrier ``yield`` (between
        :meth:`step` calls), so its transient queues are empty and the
        worker clocks are consistent; closing the step generator there
        is a clean stop.  Returns the :class:`IterationAborted` carrying
        the partial :class:`RunResult` — the same shape an I/O abort
        produces — with a :class:`JobCancelled` cause holding
        ``reason``.  The engine object stays reusable.  Raises
        ``RuntimeError`` if the job already finished.
        """
        if self._done:
            raise RuntimeError("cannot cancel a finished job")
        engine = self._engine
        self._steps.close()
        cause = JobCancelled(reason, self.clock)
        self._done = True
        return engine._abort_run(
            cause,
            self._base,
            engine._peak_messages,
            self.start_time,
            record_fault=False,
        )

    def step(self) -> bool:
        """Advance one iteration/round; ``False`` once the job finished.

        Raises :class:`IterationAborted` (carrying the partial result)
        when the underlying run hits an unrecoverable I/O error; the
        job is finished afterwards.
        """
        if self._done:
            return False
        engine = self._engine
        obs = engine.obs if self.span_context is not None else None
        if obs is not None:
            obs.set_query_context(self.span_context)
        try:
            next(self._steps)
        except StopIteration:
            self._done = True
            barrier = max(
                (w.time for w in engine._workers), default=self.start_time
            )
            busy = sum(w.busy for w in engine._workers)
            self._result = engine._make_result(
                barrier - self.start_time, busy, self._base, engine._peak_messages
            )
            return False
        except UnrecoverableIOError as exc:
            self._done = True
            raise engine._abort_run(
                exc, self._base, engine._peak_messages, self.start_time
            ) from exc
        finally:
            if obs is not None:
                obs.clear_query_context()
        return True

    def result(self) -> RunResult:
        if self._result is None:
            raise RuntimeError(
                "the job has not finished cleanly (still running or aborted)"
            )
        return self._result


class GraphEngine:
    """Runs a :class:`VertexProgram` over a :class:`GraphImage`."""

    def __init__(
        self,
        image: GraphImage,
        safs: Optional[SAFS] = None,
        config: Optional[EngineConfig] = None,
        cost_model: Optional[CostModel] = None,
        stats: Optional[StatsCollector] = None,
    ) -> None:
        self.image = image
        self.config = config or EngineConfig()
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        if stats is None and safs is not None:
            # Share the filesystem's collector so one report covers both.
            stats = safs.stats
        self.stats = stats if stats is not None else StatsCollector()
        if self.config.mode is ExecutionMode.SEMI_EXTERNAL:
            if safs is None:
                safs = SAFS(stats=self.stats)
            elif safs.stats is not self.stats:
                raise ValueError(
                    "the engine and its SAFS must share one StatsCollector"
                )
            self.safs = safs
            self.memory_store = None
        else:
            self.safs = None
            self.memory_store = InMemoryEdgeStore(image)

        self.numa = NumaTopology(
            num_sockets=min(self.config.num_sockets, self.config.num_threads),
            num_threads=self.config.num_threads,
        )
        if self.config.partition_strategy is PartitionStrategy.HASH:
            self.partitioner = HashPartitioner(self.config.num_threads)
        else:
            self.partitioner = RangePartitioner(
                self.config.num_threads, self.config.range_shift
            )
        self.program: Optional[VertexProgram] = None
        self.iteration = 0
        self._ctx = GraphContext(self)
        self._workers: List[_Worker] = []
        self._current: Optional[_Worker] = None
        self._pending_requests: List[Tuple[int, np.ndarray, EdgeType, bool]] = []
        # Self-request waves buffered by ``run_batch`` programs; serviced
        # by the vectorized fast path (or expanded to per-vertex entries
        # when the fast path's preconditions do not hold).
        self._pending_batches: List[Tuple[np.ndarray, EdgeType]] = []
        self._part_queue: Deque[Tuple[int, np.ndarray, EdgeType, bool]] = deque()
        self._attr_waiting: set = set()
        # Per-delivery message counts reported by the last
        # ``send_message_batch`` call (the engine replays the per-list
        # send charges from these).
        self._batch_msg_counts: Optional[np.ndarray] = None
        # file_id -> the file's bytes viewed as little-endian u32 words
        # (zero-copy edge gathering in the semi-external fast path).
        self._file_words: Dict[int, np.ndarray] = {}
        # file_id -> the file's raw uint8 bytes (batched v2 decode).
        self._file_bytes: Dict[int, np.ndarray] = {}
        self._activations: List[np.ndarray] = []
        self._messages: Optional[MessageBuffer] = None
        self._iteration_end_requested = False
        self._extra_edge_charge = 0
        # Iteration-barrier checkpointing (see repro.core.checkpoint):
        # a manager plus interval arm capture; a pending resume state is
        # consumed by the next run() call.
        self._checkpoint_manager = None
        self._checkpoint_every = 0
        self._resume_state: Optional[dict] = None
        #: Largest message-buffer occupancy seen this run (memory
        #: accounting); maintained by the execution policy's loop.
        self._peak_messages = 0
        #: Active-set size at the last barrier; maintained by the
        #: execution policy, read through :attr:`EngineJob.frontier_size`.
        self._barrier_frontier = 0
        #: Armed observer (see :mod:`repro.obs`); ``None`` keeps every
        #: layer on the exact legacy path with zero tracing work.
        self.obs = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(
        self,
        program: VertexProgram,
        initial_active: Optional[np.ndarray] = None,
        max_iterations: Optional[int] = None,
    ) -> RunResult:
        """Execute ``program`` to quiescence (or ``max_iterations``).

        ``initial_active`` defaults to every vertex (PageRank/WCC style);
        traversals pass their start vertex.
        """
        job = self.start_job(program, initial_active, max_iterations)
        while job.step():
            pass
        return job.result()

    def start_job(
        self,
        program: VertexProgram,
        initial_active: Optional[np.ndarray] = None,
        max_iterations: Optional[int] = None,
        start_time: float = 0.0,
        span_context: Optional[dict] = None,
    ) -> "EngineJob":
        """Set up a run and return it as a steppable :class:`EngineJob`.

        Performs everything :meth:`run` does up to the loop (file
        attachment, program install, base counter snapshot, worker and
        scheduler construction, resume handling), then hands back a job
        whose :meth:`EngineJob.step` advances one iteration/round at a
        time.  ``start_time`` seeds every worker clock, so a service can
        start jobs mid-timeline on the shared DES clock; the returned
        result's ``runtime`` is still relative to the job's own start.
        ``span_context`` (a ``{"query", "tenant", "app"}`` dict) tags
        every span an armed observer records during the job's steps —
        the serving layer's end-to-end query tracing.
        One engine drives one job at a time — the job borrows the
        engine's mutable state until it finishes.
        """
        if self.config.mode is ExecutionMode.SEMI_EXTERNAL:
            self._ensure_files_attached()
        self.program = program
        self._messages = MessageBuffer(program.combiner)
        base = self.stats.snapshot()
        if (
            self.config.mode is ExecutionMode.SEMI_EXTERNAL
            and self.image.fmt == FORMAT_V2
        ):
            # Set-once, after the base snapshot, so the run's counter diff
            # reports the ratio; v1 runs never touch the name.
            self.stats.set(reg.GRAPH_COMPRESSION_RATIO, self.image.compression_ratio())
        self._workers = [_Worker(i) for i in range(self.config.num_threads)]
        if start_time:
            for worker in self._workers:
                worker.time = start_time
        custom = None
        if self.config.schedule_order is ScheduleOrder.CUSTOM:
            custom = program.custom_order
        scheduler = make_scheduler(self.config, custom)

        if initial_active is None:
            frontier = np.arange(self.image.num_vertices, dtype=np.int64)
        else:
            frontier = np.unique(np.atleast_1d(np.asarray(initial_active, dtype=np.int64)))
        self.iteration = 0
        self._peak_messages = 0
        policy = make_execution_policy(self.config)

        resume = self._resume_state
        self._resume_state = None
        if resume is not None:
            frontier, peak_messages, base = self._apply_checkpoint(
                resume, program, scheduler
            )
            self._peak_messages = peak_messages
            exec_state = resume.get("execution")
            if exec_state is not None or policy.export_state() is not None:
                # Sync checkpoints (including every pre-policy one) carry
                # no execution entry; async checkpoints must round-trip
                # their priority state for a bit-identical continuation.
                policy.restore_state(exec_state)

        self._barrier_frontier = int(frontier.size)
        steps = policy.steps(
            self, frontier, scheduler, max_iterations, base,
            self._checkpoint_manager, self._checkpoint_every,
        )
        return EngineJob(self, steps, base, start_time, span_context)

    def _abort_run(
        self,
        cause,
        base: Dict[str, float],
        peak_messages: int,
        start_time: float = 0.0,
        record_fault: bool = True,
    ) -> "IterationAborted":
        """Build the clean abort for an unrecoverable I/O error.

        Clocks stop where the failure was detected, in-flight state is
        dropped so the engine object stays reusable, and the partial
        result reports everything accumulated up to the abort — the
        caller gets progress stats, never a wrong answer.  ``cause`` is
        an :class:`~repro.sim.faults.UnrecoverableIOError` or a
        :class:`JobCancelled`; cancellations pass ``record_fault=False``
        because they are policy decisions, not faults, and the fault
        counter must not move.
        """
        self._pending_requests.clear()
        self._pending_batches.clear()
        self._part_queue.clear()
        self._attr_waiting.clear()
        self._activations.clear()
        self._batch_msg_counts = None
        if self._messages is not None:
            self._messages.clear()
        if record_fault:
            self.stats.add(reg.FAULTS_ABORTED_ITERATIONS)
        barrier = max((w.time for w in self._workers), default=start_time)
        barrier = max(barrier, cause.time)
        busy = sum(w.busy for w in self._workers)
        partial = self._make_result(barrier - start_time, busy, base, peak_messages)
        return IterationAborted(self.iteration, cause, partial)

    # ------------------------------------------------------------------
    # Checkpoint/restore (see repro.core.checkpoint)
    # ------------------------------------------------------------------

    def enable_checkpoints(self, manager, every: int = 1) -> None:
        """Save a checkpoint through ``manager`` every ``every`` barriers.

        Checkpointing is pure observation: it never touches the shared
        stats, device queues or worker clocks, so an armed run stays
        bit-identical to an unarmed one.
        """
        if every < 1:
            raise ValueError("the checkpoint interval must be at least 1")
        self._checkpoint_manager = manager
        self._checkpoint_every = every

    def resume_from(self, source) -> int:
        """Arm the next :meth:`run` call to resume from a checkpoint.

        ``source`` may be a loaded state dict, a path, or a
        :class:`~repro.core.checkpoint.CheckpointManager` (its latest
        checkpoint is used).  The resumed run must be configured exactly
        like the original (same graph, program construction, thread
        count and ``max_iterations``); validation failures raise before
        any state is mutated.  Returns the iteration the run will resume
        from.
        """
        from repro.core.checkpoint import CheckpointError, CheckpointManager

        if isinstance(source, CheckpointManager):
            latest = source.latest()
            if latest is None:
                raise CheckpointError(
                    f"no checkpoint to resume from in {source.directory}"
                )
            state = source.load(latest)
        elif isinstance(source, dict):
            state = source
        else:
            state = CheckpointManager(Path(source).parent).load(source)
        self._resume_state = state
        return int(state["iteration"])

    def _capture_checkpoint(
        self,
        frontier: np.ndarray,
        peak_messages: int,
        base: Dict[str, float],
        scheduler,
        execution: Optional[dict] = None,
    ) -> dict:
        """Serialize the engine at an iteration/round barrier.

        Every transient queue is empty here (requests, parts, batches,
        activations, messages), so the capture is the program state, the
        next frontier, the DES clocks and counters, and the SAFS stack's
        mutable state — everything :meth:`_apply_checkpoint` needs for a
        bit-identical continuation.  Async rounds additionally pass
        their ``execution`` state (residuals, deferral counters); sync
        captures omit the key entirely so sync checkpoints keep the
        pre-policy shape.
        """
        from repro.core.checkpoint import CHECKPOINT_VERSION

        state: dict = {
            "version": CHECKPOINT_VERSION,
            "image": {
                "name": self.image.name,
                "num_vertices": int(self.image.num_vertices),
            },
            "engine": {
                "num_threads": int(self.config.num_threads),
                "mode": self.config.mode.value,
            },
            "iteration": int(self.iteration),
            "frontier": np.asarray(frontier, dtype=np.int64).copy(),
            "peak_messages": int(peak_messages),
            "peak_pending": int(self._messages.peak_pending),
            "base": dict(base),
            "counters": self.stats.snapshot(),
            "worker_time": np.asarray([w.time for w in self._workers]),
            "worker_busy": np.asarray([w.busy for w in self._workers]),
            "scheduler_rng": scheduler._rng.bit_generator.state,
            "program": {
                "class": type(self.program).__name__,
                "state": self.program.snapshot_state(),
            },
        }
        if execution is not None:
            state["engine"]["execution"] = self.config.execution.value
            state["execution"] = execution
        if self.safs is not None:
            health = self.safs.health
            state["safs"] = {
                "files": {
                    name: self.safs.open_file(name).file_id
                    for name in self.safs.file_names()
                },
                "array": self.safs.array.export_state(),
                "health": None if health is None else health.export_state(),
                "cache": self.safs.cache.export_state(),
            }
        else:
            state["safs"] = None
        return state

    def _apply_checkpoint(self, state: dict, program: VertexProgram, scheduler):
        """Reinstate a captured barrier state onto this engine.

        Returns ``(frontier, peak_messages, base)`` for the run loop.
        The engine must have been built exactly like the checkpointed
        one; mismatches raise :class:`CheckpointError` before mutation.
        """
        from repro.core.checkpoint import CheckpointError

        image = state["image"]
        if (
            image["name"] != self.image.name
            or image["num_vertices"] != self.image.num_vertices
        ):
            raise CheckpointError(
                f"checkpoint is for graph {image['name']!r} "
                f"({image['num_vertices']} vertices), not "
                f"{self.image.name!r} ({self.image.num_vertices})"
            )
        meta = state["engine"]
        if meta["num_threads"] != self.config.num_threads:
            raise CheckpointError(
                f"checkpoint ran {meta['num_threads']} threads, "
                f"this engine has {self.config.num_threads}"
            )
        if meta["mode"] != self.config.mode.value:
            raise CheckpointError(
                f"checkpoint ran in {meta['mode']} mode, this engine "
                f"is {self.config.mode.value}"
            )
        # Sync checkpoints (including pre-policy ones) omit the key.
        if meta.get("execution", "sync") != self.config.execution.value:
            raise CheckpointError(
                f"checkpoint ran under {meta.get('execution', 'sync')} "
                f"execution, this engine is {self.config.execution.value}"
            )
        prog_meta = state["program"]
        if prog_meta["class"] != type(program).__name__:
            raise CheckpointError(
                f"checkpoint holds {prog_meta['class']} state, the run "
                f"was given {type(program).__name__}"
            )
        safs_state = state["safs"]
        if (safs_state is None) != (self.safs is None):
            raise CheckpointError(
                "checkpoint and engine disagree about semi-external mode"
            )
        if safs_state is not None:
            files = {
                name: self.safs.open_file(name).file_id
                for name in self.safs.file_names()
            }
            if files != safs_state["files"]:
                raise CheckpointError(
                    "the SAFS file table does not match the checkpoint "
                    "(file names or ids differ; rebuild the stack the "
                    "same way as the checkpointed run)"
                )
            if (safs_state["health"] is None) != (self.safs.health is None):
                raise CheckpointError(
                    "checkpoint and engine disagree about health monitoring"
                )

        # Validation passed — reinstate, counters first.
        self.stats.reset()
        self.stats.merge(state["counters"])
        base = dict(state["base"])
        self.iteration = int(state["iteration"])
        frontier = np.asarray(state["frontier"], dtype=np.int64).copy()
        for worker, time, busy in zip(
            self._workers, state["worker_time"], state["worker_busy"]
        ):
            worker.time = float(time)
            worker.busy = float(busy)
        scheduler._rng.bit_generator.state = state["scheduler_rng"]
        program.restore_state(prog_meta["state"])
        self._messages.restore_peak(state["peak_pending"])
        if safs_state is not None:
            self.safs.array.restore_state(safs_state["array"])
            if safs_state["health"] is not None:
                self.safs.health.restore_state(safs_state["health"])
            by_id = {
                self.safs.open_file(name).file_id: self.safs.open_file(name)
                for name in self.safs.file_names()
            }
            self.safs.cache.restore_state(
                safs_state["cache"],
                lambda file_id, page_no: by_id[file_id].read_page(
                    page_no, self.safs.page_size
                ),
            )
        return frontier, int(state["peak_messages"]), base

    def simulate_init_time(self) -> float:
        """Seconds to load the graph and set up execution (the "Init
        time" column of Table 2): one sequential scan of the image to
        distill the compact index, plus per-thread setup."""
        from repro.graph.construction import init_time

        array = self.safs.array if self.safs is not None else None
        return init_time(self.image, array) + 0.002 * self.config.num_threads

    # ------------------------------------------------------------------
    # Iteration machinery
    # ------------------------------------------------------------------

    def _run_iteration(self, frontier: np.ndarray, scheduler) -> None:
        config = self.config
        start = max((w.time for w in self._workers), default=0.0)
        for worker in self._workers:
            worker.time = start
        queues = self.partitioner.split(frontier)
        for worker, queue in zip(self._workers, queues):
            worker.queue = scheduler.schedule(queue, self.iteration)
            worker.pos = 0
        self.stats.add(reg.ENGINE_ACTIVE_VERTICES, frontier.size)
        obs = self.obs
        if obs is not None:
            obs.begin_iteration(
                self.iteration, int(frontier.size), start, self._workers
            )

        # A batch is atomic in the simulation, so cap it at a quarter of
        # the thread's queue: real FlashGraph steals at vertex granularity
        # from a still-running thread (§3.8.1), which a whole-queue batch
        # would make impossible here.
        largest_queue = max((w.remaining for w in self._workers), default=0)
        batch_size = min(
            config.max_running_vertices, max(1, largest_queue // 4)
        )
        while True:
            worker = self._pick_worker()
            if worker is None:
                break
            if worker.remaining:
                self._process_batch(worker, worker.take(batch_size), stolen=False)
            elif self._part_queue:
                requester, targets, direction, with_attrs = self._part_queue.popleft()
                self._process_part(worker, requester, targets, direction, with_attrs)
            else:
                victim = max(self._workers, key=lambda w: w.remaining)
                stolen = victim.steal_from_tail(
                    min(batch_size, max(1, victim.remaining // 2))
                )
                if stolen.size == 0:
                    break
                self.stats.add(reg.ENGINE_STOLEN_VERTICES, stolen.size)
                if self.numa.is_remote(worker.index, victim.index):
                    self.stats.add(reg.NUMA_REMOTE_STEALS, stolen.size)
                self._process_batch(
                    worker, stolen, stolen=True, victim=victim.index
                )

        self._deliver_messages()
        if self._iteration_end_requested:
            self._iteration_end_requested = False
            self._current = self._workers[0]
            self.program.run_on_iteration_end(self._ctx)
            self._charge(self.cost_model.cpu_per_vertex_run)
        barrier = max(w.time for w in self._workers) + self.cost_model.iteration_barrier
        for worker in self._workers:
            worker.time = barrier
        if obs is not None:
            obs.end_iteration(barrier, self._workers, self)

    def _run_round(
        self, frontier: np.ndarray, scheduler, priorities: np.ndarray
    ) -> None:
        """One async priority round — the barrier-free twin of
        :meth:`_run_iteration`.

        Differences from the sync superstep: worker queues are ordered by
        the priority-aware scheduler (``priorities`` indexes by vertex
        ID), and messages deliver *eagerly* — the buffer drains whenever
        occupancy reaches §3.4.1's per-thread flush threshold (the first
        thread to fill its buffer flushes) instead of waiting for the
        barrier, so receivers fold fresh state in mid-round and each
        round propagates further than a BSP superstep would.
        Only async runs enter here; the sync path is untouched.
        """
        config = self.config
        start = max((w.time for w in self._workers), default=0.0)
        for worker in self._workers:
            worker.time = start
        queues = self.partitioner.split(frontier)
        for worker, queue in zip(self._workers, queues):
            worker.queue = scheduler.schedule(
                queue, self.iteration, priorities=priorities[queue]
            )
            worker.pos = 0
        self.stats.add(reg.ENGINE_ACTIVE_VERTICES, frontier.size)
        obs = self.obs
        if obs is not None:
            obs.begin_iteration(
                self.iteration, int(frontier.size), start, self._workers
            )

        largest_queue = max((w.remaining for w in self._workers), default=0)
        batch_size = min(
            config.max_running_vertices, max(1, largest_queue // 4)
        )
        flush_at = config.message_flush_threshold
        while True:
            worker = self._pick_worker()
            if worker is None:
                break
            if worker.remaining:
                self._process_batch(worker, worker.take(batch_size), stolen=False)
            elif self._part_queue:
                requester, targets, direction, with_attrs = self._part_queue.popleft()
                self._process_part(worker, requester, targets, direction, with_attrs)
            else:
                victim = max(self._workers, key=lambda w: w.remaining)
                stolen = victim.steal_from_tail(
                    min(batch_size, max(1, victim.remaining // 2))
                )
                if stolen.size == 0:
                    break
                self.stats.add(reg.ENGINE_STOLEN_VERTICES, stolen.size)
                if self.numa.is_remote(worker.index, victim.index):
                    self.stats.add(reg.NUMA_REMOTE_STEALS, stolen.size)
                self._process_batch(
                    worker, stolen, stolen=True, victim=victim.index
                )
            if self._messages.flush_due(flush_at):
                self.stats.add(reg.ENGINE_EAGER_FLUSHES)
                self._deliver_messages()

        self._deliver_messages()
        if self._iteration_end_requested:
            self._iteration_end_requested = False
            self._current = self._workers[0]
            self.program.run_on_iteration_end(self._ctx)
            self._charge(self.cost_model.cpu_per_vertex_run)
        barrier = max(w.time for w in self._workers) + self.cost_model.iteration_barrier
        for worker in self._workers:
            worker.time = barrier
        if obs is not None:
            obs.end_iteration(barrier, self._workers, self)

    def _pick_worker(self) -> Optional[_Worker]:
        work_exists = any(w.remaining for w in self._workers) or self._part_queue
        if not work_exists:
            return None
        best: Optional[_Worker] = None
        for worker in self._workers:
            eligible = (
                worker.remaining
                or self._part_queue
                or (self.config.load_balance and work_exists)
            )
            if eligible and (best is None or worker.time < best.time):
                best = worker
        return best

    def _process_batch(
        self,
        worker: _Worker,
        batch: np.ndarray,
        stolen: bool,
        victim: Optional[int] = None,
    ) -> None:
        self._current = worker
        cm = self.cost_model
        steal_cost = 0.0
        if stolen:
            # Stolen vertex state lives on the victim's socket (§3.8.1):
            # the NUMA hop scales the base steal penalty.
            factor = (
                self.numa.remote_factor(worker.index, victim)
                if victim is not None
                else 1.0
            )
            steal_cost = cm.cpu_steal_penalty * factor
        run_cost = cm.cpu_per_vertex_run + steal_cost
        run_batch = self.program.run_batch
        if run_batch is not None:
            # The scalar path charges run_cost per vertex before each
            # ``run`` call; the batch program performs no charged context
            # calls inside ``run_batch``, so replaying the same sequence
            # of float adds up front keeps the clocks bit-identical.
            t = worker.time
            b = worker.busy
            for _ in range(batch.size):
                t += run_cost
                b += run_cost
            worker.time = t
            worker.busy = b
            run_batch(self._ctx, batch)
        else:
            for vertex in batch:
                self._charge(run_cost)
                self.program.run(self._ctx, int(vertex))
        self._service_request_waves(worker)

    def _process_part(
        self,
        worker: _Worker,
        requester: int,
        targets: np.ndarray,
        direction: EdgeType,
        with_attrs: bool = False,
    ) -> None:
        self._current = worker
        self._pending_requests.append((requester, targets, direction, with_attrs))
        self.stats.add(reg.ENGINE_VERTEX_PARTS)
        self._service_request_waves(worker)

    def _service_request_waves(self, worker: _Worker) -> None:
        while self._pending_requests or self._pending_batches:
            if self._pending_batches:
                batches = self._pending_batches
                self._pending_batches = []
                for vertices, edge_type in batches:
                    self._service_batch_entry(worker, vertices, edge_type)
            if not self._pending_requests:
                continue
            wave = self._pending_requests
            self._pending_requests = []
            if self.config.mode is ExecutionMode.IN_MEMORY:
                self._service_in_memory(worker, wave)
            else:
                self._service_semi_external(worker, wave)

    def _service_batch_entry(
        self, worker: _Worker, vertices: np.ndarray, edge_type: EdgeType
    ) -> None:
        """Route one batched self-request wave.

        The vectorized fast path requires a ``run_on_vertices`` hook and,
        in semi-external mode, engine-level merging (the global stable
        sort is what makes the array merge order-equivalent to the
        per-request path; the bounded-window disciplines are served by
        expansion instead).
        """
        if vertices.size == 0:
            return
        if self.program.run_on_vertices is None:
            self._expand_batch_entries(vertices, edge_type)
        elif self.config.mode is ExecutionMode.IN_MEMORY:
            self._service_in_memory_batch(worker, vertices, edge_type)
        elif self.config.merge_in_engine:
            self._service_semi_external_batch(worker, vertices, edge_type)
        else:
            self._expand_batch_entries(vertices, edge_type)

    def _expand_batch_entries(self, vertices: np.ndarray, edge_type: EdgeType) -> None:
        """Fall back to the per-vertex path: emit exactly the wave entries
        per-vertex ``request_self`` calls would have buffered, including
        the per-vertex direction interleaving of ``BOTH`` requests."""
        directions = edge_type.directions()
        for v in vertices.tolist():
            targets = np.asarray([v], dtype=np.int64)
            for direction in directions:
                self._buffer_request(int(v), targets, direction, False)

    def _service_in_memory(self, worker: _Worker, wave) -> None:
        for requester, targets, direction, with_attrs in wave:
            for target in targets:
                view = self.memory_store.fetch(int(target), direction, with_attrs)
                self._deliver_edge_list(worker, requester, view)

    def _service_semi_external(self, worker: _Worker, wave) -> None:
        requests: List[IORequest] = []
        for requester, targets, direction, with_attrs in wave:
            index = self.image.index(direction)
            file = self.safs.open_file(self.image.file_name(direction))
            offsets, sizes = index.locate_many(targets)
            for target, offset, size in zip(targets, offsets, sizes):
                requests.append(
                    IORequest(
                        file,
                        int(offset),
                        int(size),
                        UserTask(context=(requester, direction, "edges", int(target))),
                    )
                )
            if with_attrs:
                requests.extend(self._attr_requests(requester, targets, direction))
        if not requests:
            return
        if self.config.merge_in_engine:
            merged = merge_requests(requests, self.safs.page_size)
            completions, cpu = self.safs.submit_merged(merged, worker.time)
        else:
            completions, cpu = self.safs.submit(
                requests, worker.time, fs_merge=self.config.merge_in_fs
            )
        self._charge(cpu)
        self.stats.add(reg.ENGINE_IO_REQUESTS, len(requests))
        fmt = self.image.fmt
        compressed = fmt == FORMAT_V2
        pending_pairs: Dict[Tuple[int, EdgeType, int], Dict[str, memoryview]] = {}
        for done in completions:
            if done.completion_time > worker.time:
                # The worker waits for data; waiting is not busy time.
                worker.time = done.completion_time
            requester, direction, kind, target = done.request.task.context
            key = (requester, direction, target)
            if key in self._attr_waiting:
                # This target needs edges AND attrs paired before delivery.
                parts = pending_pairs.setdefault(key, {})
                parts[kind] = done.data
                if len(parts) == 2:
                    attrs = np.frombuffer(parts["attrs"], dtype="<f4")
                    view = PageVertex(parts["edges"], direction, attrs=attrs, fmt=fmt)
                    del pending_pairs[key]
                    self._attr_waiting.discard(key)
                    self._deliver_edge_list(
                        worker, requester, view,
                        decode_bytes=len(parts["edges"]) if compressed else 0,
                    )
            else:
                view = PageVertex(done.data, direction, fmt=fmt)
                self._deliver_edge_list(
                    worker, requester, view,
                    decode_bytes=done.num_bytes if compressed else 0,
                )

    def _service_in_memory_batch(
        self, worker: _Worker, vertices: np.ndarray, edge_type: EdgeType
    ) -> None:
        """Vectorized in-memory service of one batched self-request wave.

        Delivery order matches the per-vertex path: per requesting vertex,
        one list per direction in ``directions()`` order.
        """
        directions = edge_type.directions()
        nd = len(directions)
        num_lists = vertices.size * nd
        verts = np.repeat(vertices, nd)
        degrees = np.empty(num_lists, dtype=np.int64)
        starts_by_dir: List[np.ndarray] = []
        indices_by_dir: List[np.ndarray] = []
        for di, direction in enumerate(directions):
            csr = self.image.csr(direction)
            starts = csr.indptr[vertices]
            degrees[di::nd] = csr.indptr[vertices + 1] - starts
            starts_by_dir.append(starts)
            indices_by_dir.append(csr.indices)
        total_edges = int(degrees.sum())
        flat_starts = np.zeros(num_lists, dtype=np.int64)
        np.cumsum(degrees[:-1], out=flat_starts[1:])
        edges = np.empty(total_edges, dtype=np.uint32)
        for di in range(nd):
            lane = slice(di, None, nd)
            lane_degrees = degrees[lane]
            positions = scatter_positions(flat_starts[lane], lane_degrees)
            edges[positions] = gather_ranges(
                indices_by_dir[di], starts_by_dir[di], lane_degrees
            )
        batch = PageVertexBatch(verts, degrees, edges)
        self._deliver_batch(worker, batch, None, self.cost_model.cpu_per_edge_mem)

    def _service_semi_external_batch(
        self, worker: _Worker, vertices: np.ndarray, edge_type: EdgeType
    ) -> None:
        """Vectorized SAFS service of one batched self-request wave.

        Mirrors ``_service_semi_external`` with engine merging: the
        request elements are laid out in the exact order the per-vertex
        path would build its request list (per vertex, one element per
        direction), array-merged, issued span by span, and delivered in
        completion order with every per-list charge replayed.
        """
        cm = self.cost_model
        compressed = self.image.fmt == FORMAT_V2
        directions = edge_type.directions()
        nd = len(directions)
        num_elems = vertices.size * nd
        file_ids = np.empty(num_elems, dtype=np.int64)
        offsets = np.empty(num_elems, dtype=np.int64)
        sizes = np.empty(num_elems, dtype=np.int64)
        dir_code = np.empty(num_elems, dtype=np.int64)
        # Under v2 the record size no longer encodes the degree, so the
        # degrees ride along as their own lane-filled array.
        elem_degrees = np.empty(num_elems, dtype=np.int64) if compressed else None
        files: Dict[int, "SAFSFile"] = {}
        dir_files: List = []
        for di, direction in enumerate(directions):
            file = self.safs.open_file(self.image.file_name(direction))
            files[file.file_id] = file
            dir_files.append(file)
            index = self.image.index(direction)
            offs, szs = index.locate_many(vertices)
            lane = slice(di, None, nd)
            file_ids[lane] = file.file_id
            offsets[lane] = offs
            sizes[lane] = szs
            dir_code[lane] = di
            if compressed:
                elem_degrees[lane] = index.degrees_of(vertices)
        elem_vertex = np.repeat(vertices, nd)

        spans = merge_request_arrays(file_ids, offsets, sizes, self.safs.page_size)
        issued_at = worker.time
        span_done, cpu = self.safs.submit_spans(spans, files, worker.time)
        self._charge(cpu)
        self.stats.add(reg.ENGINE_IO_REQUESTS, num_elems)

        # Stable completion-time sort of the constituent elements — the
        # array form of ``completions.sort`` over the per-part tasks.
        part_done = span_done[spans.span_of_part]
        by_completion = np.argsort(part_done, kind="stable")
        deliver = spans.order[by_completion]
        times = part_done[by_completion]

        obs = self.obs
        if obs is not None and obs.last_io_ids is not None:
            # Link each delivered element to the merged span that served
            # it — the fast-path twin of the per-part request events.
            io_ids = np.asarray(obs.last_io_ids, dtype=np.int64)[
                spans.span_of_part
            ][by_completion]
            codes_delivered = dir_code[deliver]
            obs.request_events_batch(
                elem_vertex[deliver].tolist(),
                [directions[c] for c in codes_delivered.tolist()],
                io_ids.tolist(),
                issued_at,
                times.tolist(),
            )
            obs.last_io_ids = None

        if compressed:
            degrees = elem_degrees[deliver]
        else:
            degrees = (sizes[deliver] - HEADER_BYTES) // EDGE_BYTES
        codes = dir_code[deliver]
        elem_offsets = offsets[deliver]
        total_edges = int(degrees.sum())
        flat_starts = np.zeros(num_elems, dtype=np.int64)
        np.cumsum(degrees[:-1], out=flat_starts[1:])
        edges = np.empty(total_edges, dtype=np.uint32)
        for di in range(nd):
            mask = codes == di
            if not np.any(mask):
                continue
            lane_degrees = degrees[mask]
            positions = scatter_positions(flat_starts[mask], lane_degrees)
            if compressed:
                # One batched varint+delta decode per direction lane.
                edges[positions] = decode_lists_v2(
                    self._bytes_of(dir_files[di]), elem_offsets[mask], lane_degrees
                )
            else:
                words = self._words_of(dir_files[di])
                word_starts = elem_offsets[mask] // 4 + HEADER_BYTES // 4
                edges[positions] = gather_ranges(words, word_starts, lane_degrees)
        batch = PageVertexBatch(elem_vertex[deliver], degrees, edges)
        self._deliver_batch(
            worker, batch, times, cm.cpu_per_edge_sem,
            decode_sizes=sizes[deliver] if compressed else None,
        )

    def _deliver_batch(
        self,
        worker: _Worker,
        batch: PageVertexBatch,
        times: Optional[np.ndarray],
        edge_rate: float,
        decode_sizes: Optional[np.ndarray] = None,
    ) -> None:
        """Run ``run_on_vertices`` once, then replay the per-list clock
        updates of the scalar delivery loop: the wait clamp to each list's
        completion time, the send charge its messages would have incurred,
        the ``run_on_vertex`` charge and (under format v2) the per-byte
        decode charge — same values, same order, so worker clocks land on
        identical bits."""
        num_lists = batch.num_lists
        if num_lists == 0:
            return
        cm = self.cost_model
        self._batch_msg_counts = None
        self.program.run_on_vertices(self._ctx, batch)
        counts = self._batch_msg_counts
        self._batch_msg_counts = None
        if counts is None:
            count_list = [0] * num_lists
        else:
            if counts.size != num_lists:
                raise ValueError(
                    "send_message_batch counts must have one entry per "
                    f"delivered list ({counts.size} != {num_lists})"
                )
            count_list = counts.tolist()
        degree_list = batch.degrees.tolist()
        time_list = times.tolist() if times is not None else None
        size_list = decode_sizes.tolist() if decode_sizes is not None else None
        rate = cm.cpu_per_multicast_recipient
        base = cm.cpu_per_vertex_run
        decode_rate = cm.cpu_per_decode_byte
        send_charges: Dict[int, float] = {}
        run_charges: Dict[int, float] = {}
        decode_charges: Dict[int, float] = {}
        t = worker.time
        b = worker.busy
        for i in range(num_lists):
            if time_list is not None:
                done = time_list[i]
                if done > t:
                    t = done
            count = count_list[i]
            charge = send_charges.get(count)
            if charge is None:
                charge = count * rate
                send_charges[count] = charge
            t += charge
            b += charge
            degree = degree_list[i]
            charge = run_charges.get(degree)
            if charge is None:
                charge = base + degree * edge_rate
                run_charges[degree] = charge
            t += charge
            b += charge
            if size_list is not None:
                size = size_list[i]
                charge = decode_charges.get(size)
                if charge is None:
                    charge = size * decode_rate
                    decode_charges[size] = charge
                t += charge
                b += charge
        worker.time = t
        worker.busy = b
        if size_list is not None:
            self.stats.add(reg.GRAPH_DECODE_BYTES, int(decode_sizes.sum()))
        self.stats.add(reg.ENGINE_EDGES_DELIVERED, batch.total_edges)

    def _words_of(self, file) -> np.ndarray:
        words = self._file_words.get(file.file_id)
        if words is None:
            words = np.frombuffer(file.read(0, file.size), dtype="<u4")
            self._file_words[file.file_id] = words
        return words

    def _bytes_of(self, file) -> np.ndarray:
        """The file's raw bytes as a cached uint8 view (v2 decode path)."""
        raw = self._file_bytes.get(file.file_id)
        if raw is None:
            raw = np.frombuffer(file.read(0, file.size), dtype=np.uint8)
            self._file_bytes[file.file_id] = raw
        return raw

    def _attr_requests(
        self, requester: int, targets: np.ndarray, direction: EdgeType
    ) -> List[IORequest]:
        if direction not in self.image.attr_offsets:
            raise ValueError(f"the graph has no {direction.value}-edge attributes")
        attr_file = self.safs.open_file(f"{self.image.name}.{direction.value}-attrs")
        offsets = self.image.attr_offsets[direction]
        requests = []
        for target in targets:
            target = int(target)
            start = int(offsets[target])
            size = int(offsets[target + 1]) - start
            if size == 0:
                continue
            self._attr_waiting.add((requester, direction, target))
            requests.append(
                IORequest(
                    attr_file,
                    start,
                    size,
                    UserTask(context=(requester, direction, "attrs", target)),
                )
            )
        return requests

    def _deliver_edge_list(
        self,
        worker: _Worker,
        requester: int,
        view: PageVertex,
        decode_bytes: int = 0,
    ) -> None:
        cm = self.cost_model
        if self.config.mode is ExecutionMode.IN_MEMORY:
            edge_rate = cm.cpu_per_edge_mem
        else:
            edge_rate = cm.cpu_per_edge_sem
        self._extra_edge_charge = 0
        self.program.run_on_vertex(self._ctx, int(requester), view)
        edges = view.num_edges + self._extra_edge_charge
        self._charge(cm.cpu_per_vertex_run + edges * edge_rate)
        if decode_bytes:
            # Compressed (v2) lists pay per-byte decode CPU; v1 delivery
            # takes this branch never, keeping its charges bit-identical.
            self._charge(decode_bytes * cm.cpu_per_decode_byte)
            self.stats.add(reg.GRAPH_DECODE_BYTES, decode_bytes)
        self.stats.add(reg.ENGINE_EDGES_DELIVERED, view.num_edges)

    def _deliver_messages(self) -> None:
        dests, values, counts = self._messages.deliver()
        if dests.size == 0:
            return
        cm = self.cost_model
        parts = self.partitioner.partition_many(dests)
        # The batched receive hook needs unique destinations to update
        # state with one vectorized scatter; only combiner programs
        # guarantee that.
        run_on_messages = (
            self.program.run_on_messages if self.program.combiner is not None else None
        )
        for p in np.unique(parts):
            worker = self._workers[int(p)]
            self._current = worker
            mask = parts == p
            # Message *processing* is local by design: buffers are copied
            # once per thread (multicast, §3.4.1) and consumed on the
            # owner's socket.  Only the bundled copy crosses sockets, so
            # the NUMA penalty applies to the per-copy transfer cost, not
            # to per-message processing — this is exactly the localisation
            # the paper's message passing buys.
            remote_share = 1.0 - 1.0 / self.numa.num_sockets
            per_message = cm.cpu_per_message + (
                cm.cpu_per_multicast_recipient
                * self.numa.remote_penalty
                * remote_share
            )
            if run_on_messages is not None:
                self._deliver_messages_batch(
                    worker, dests[mask], values[mask], counts[mask], per_message
                )
                continue
            for dest, value, count in zip(dests[mask], values[mask], counts[mask]):
                # Receive cost is per *logical* message: the combiner saves
                # buffer space, not the per-message processing (§3.4.1).
                self._charge(count * per_message)
                self.program.run_on_message(self._ctx, int(dest), float(value))
        self.stats.add(reg.MSG_DELIVERED, int(counts.sum()))
        self.stats.add(
            reg.NUMA_REMOTE_MESSAGE_SHARE,
            0.0 if self.numa.num_sockets == 1 else counts.sum() * (1.0 - 1.0 / self.numa.num_sockets),
        )

    def _deliver_messages_batch(
        self,
        worker: _Worker,
        dests: np.ndarray,
        values: np.ndarray,
        counts: np.ndarray,
        per_message: float,
    ) -> None:
        """One partition's message round through ``run_on_messages``.

        The hook updates state vectorized and returns the activation mask;
        the engine then replays, per destination, the receive charge and —
        when that destination activated — the scalar path's activation
        charge, in the same interleaved order ``run_on_message`` +
        ``g.activate`` would have produced."""
        act = np.asarray(
            self.program.run_on_messages(self._ctx, dests, values), dtype=bool
        )
        if act.shape != dests.shape:
            raise ValueError("run_on_messages must return one flag per destination")
        activated = dests[act]
        if activated.size:
            self._activations.append(activated)
            self.stats.add(reg.MSG_ACTIVATIONS, activated.size)
        rate = self.cost_model.cpu_per_multicast_recipient
        charges: Dict[int, float] = {}
        act_list = act.tolist()
        t = worker.time
        b = worker.busy
        for i, count in enumerate(counts.tolist()):
            charge = charges.get(count)
            if charge is None:
                charge = count * per_message
                charges[count] = charge
            t += charge
            b += charge
            if act_list[i]:
                t += rate
                b += rate
        worker.time = t
        worker.busy = b

    def _drain_activations(self) -> np.ndarray:
        if not self._activations:
            return np.zeros(0, dtype=np.int64)
        frontier = np.unique(np.concatenate(self._activations))
        self._activations.clear()
        return frontier

    # ------------------------------------------------------------------
    # Context plumbing (called via GraphContext)
    # ------------------------------------------------------------------

    def _buffer_request(
        self,
        requester: int,
        targets: np.ndarray,
        direction: EdgeType,
        with_attrs: bool = False,
    ) -> None:
        threshold = self.config.vertical_part_threshold
        if threshold and targets.size > threshold:
            parts = split_into_parts(requester, targets, self.config.vertical_part_size)
            self._pending_requests.append(
                (requester, parts[0].targets, direction, with_attrs)
            )
            for part in parts[1:]:
                self._part_queue.append(
                    (requester, part.targets, direction, with_attrs)
                )
        else:
            self._pending_requests.append((requester, targets, direction, with_attrs))

    def _buffer_batch_request(self, vertices: np.ndarray, edge_type: EdgeType) -> None:
        """Buffer a whole wave of self-requests from ``run_batch``.

        Kept as one array entry so the service layer can merge and locate
        the wave vectorized; semantically the wave equals per-vertex
        ``request_self`` calls in ``vertices`` order (which is what
        ``_expand_batch_entries`` reconstructs when the fast path cannot
        run)."""
        self._pending_batches.append((vertices, edge_type))

    def _buffer_message_batch(
        self, dests: np.ndarray, values: np.ndarray, counts: np.ndarray
    ) -> None:
        """Buffer one delivered wave's messages in a single chunk.

        ``counts[i]`` is the number of messages list ``i`` sent; the
        engine replays the per-list send charges from it, so no CPU is
        charged here.  Buffer content at the barrier is identical to the
        per-list ``send_message`` calls (chunk granularity never changes
        the concatenation)."""
        counts = np.asarray(counts, dtype=np.int64)
        self._batch_msg_counts = counts
        total = self._messages.send(dests, values)
        if total:
            self.stats.add(reg.MSG_SENT, total)

    def _buffer_activation(self, vertices: np.ndarray) -> None:
        self._activations.append(vertices)
        self._charge(vertices.size * self.cost_model.cpu_per_multicast_recipient)
        self.stats.add(reg.MSG_ACTIVATIONS, vertices.size)

    def _buffer_message(self, dests: np.ndarray, values) -> None:
        count = self._messages.send(dests, values)
        self._charge(count * self.cost_model.cpu_per_multicast_recipient)
        self.stats.add(reg.MSG_SENT, count)

    def _request_iteration_end(self) -> None:
        self._iteration_end_requested = True

    def _charge_edges(self, count: int) -> None:
        self._extra_edge_charge += count

    def _charge(self, seconds: float) -> None:
        worker = self._current
        worker.time += seconds
        worker.busy += seconds

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _make_result(
        self, runtime: float, busy: float, base: Dict[str, float], peak_messages: int
    ) -> RunResult:
        counters = self.stats.diff(base)
        bytes_read = counters.get("ssd.bytes_read", 0.0)
        hits = counters.get("cache.hits", 0.0)
        misses = counters.get("cache.misses", 0.0)
        hit_rate = hits / (hits + misses) if hits + misses else 0.0
        if self.safs is not None and runtime > 0:
            io_util = self.safs.array.utilization(runtime)
        else:
            io_util = 0.0
        cpu_util = (
            busy / (runtime * self.cost_model.num_cores) if runtime > 0 else 0.0
        )
        # Real FlashGraph flushes message buffers once a thread accumulates
        # message_flush_threshold messages (§3.4.1); the simulation delivers
        # at the barrier, so cap the modelled footprint at the flush level.
        buffered = min(
            peak_messages,
            self.config.num_threads * self.config.message_flush_threshold,
        )
        memory = {
            "vertex_state": self.image.num_vertices
            * self.program.state_bytes_per_vertex,
            "messages": buffered * MESSAGE_BYTES,
        }
        if self.config.mode is ExecutionMode.IN_MEMORY:
            memory["edge_lists"] = self.memory_store.memory_bytes()
            memory["graph_index"] = 0
            memory["page_cache"] = 0
        else:
            memory["graph_index"] = self.image.index_memory_bytes()
            memory["page_cache"] = self.safs.cache.config.capacity_bytes
        return RunResult(
            runtime=runtime,
            iterations=self.iteration,
            cpu_busy=busy,
            cpu_utilization=min(1.0, cpu_util),
            bytes_read=bytes_read,
            io_throughput=bytes_read / runtime if runtime > 0 else 0.0,
            io_utilization=io_util,
            cache_hit_rate=hit_rate,
            memory=memory,
            counters=counters,
        )

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------

    def _ensure_files_attached(self) -> None:
        name = self.image.file_name(EdgeType.OUT)
        if name not in self.safs.file_names():
            self.image.attach_to_safs(self.safs)
        elif self.safs.file_format(name) != self.image.fmt:
            # A same-named file written under the other layout would parse
            # as garbage; fail fast instead.
            raise ValueError(
                f"SAFS file {name!r} was created as format "
                f"{self.safs.file_format(name)!r} but the image expects "
                f"{self.image.fmt!r}"
            )
