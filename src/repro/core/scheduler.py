"""Per-thread vertex scheduling (§3.7).

The default scheduler orders active vertices by ID — the order edge lists
are laid out on SSDs — so requests from one batch merge into large
sequential reads.  For algorithms insensitive to ordering it alternates the
scan direction each iteration, re-touching the pages cached at the end of
the previous iteration first.  Algorithms may install a custom order
(scan statistics runs largest-degree-first).
"""

from typing import Callable, Optional

import numpy as np

from repro.core.config import ScheduleOrder

#: A custom ordering: ``(active_ids, iteration) -> ordered_ids``.
OrderFn = Callable[[np.ndarray, int], np.ndarray]


class VertexScheduler:
    """Orders one thread's active vertices for an iteration."""

    def __init__(
        self,
        order: ScheduleOrder = ScheduleOrder.BY_ID,
        alternate: bool = True,
        custom_order: Optional[OrderFn] = None,
        seed: int = 0,
    ) -> None:
        if order is ScheduleOrder.CUSTOM and custom_order is None:
            raise ValueError("CUSTOM order needs a custom_order function")
        self.order = order
        self.alternate = alternate
        self.custom_order = custom_order
        self._rng = np.random.default_rng(seed)

    def schedule(self, active: np.ndarray, iteration: int) -> np.ndarray:
        """The execution order for ``active`` in ``iteration``."""
        active = np.asarray(active, dtype=np.int64)
        if active.size == 0:
            return active
        if self.order is ScheduleOrder.CUSTOM:
            ordered = np.asarray(self.custom_order(active, iteration), dtype=np.int64)
            if ordered.size != active.size:
                raise ValueError("custom order must be a permutation of the input")
            return ordered
        if self.order is ScheduleOrder.RANDOM:
            return self._rng.permutation(active)
        ordered = np.sort(active)
        if self.alternate and iteration % 2 == 1:
            ordered = ordered[::-1]
        return ordered


def make_scheduler(config, custom_order: Optional[OrderFn] = None) -> VertexScheduler:
    """Build the scheduler an :class:`~repro.core.config.EngineConfig` asks for."""
    return VertexScheduler(
        order=config.schedule_order,
        alternate=config.alternate_scan_direction,
        custom_order=custom_order,
    )
