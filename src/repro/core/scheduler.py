"""Per-thread vertex scheduling (§3.7).

The default scheduler orders active vertices by ID — the order edge lists
are laid out on SSDs — so requests from one batch merge into large
sequential reads.  For algorithms insensitive to ordering it alternates the
scan direction each iteration, re-touching the pages cached at the end of
the previous iteration first.  Algorithms may install a custom order
(scan statistics runs largest-degree-first).

The async execution mode (see :mod:`repro.core.execution`) additionally
passes per-vertex *priorities* (accumulated residuals): the scheduler then
orders contiguous ID *blocks* by their hottest resident's priority bucket
— so high-residual regions are batched first — and keeps ascending-ID
order within and across same-bucket blocks.  Ordering blocks rather than
individual vertices is deliberate: a vertex-granular priority sort
interleaves the ID space into one partial scan per bucket, and with a
cache smaller than the edge file every extra scan re-reads the same pages
from SSD (measured: ~2-3x the bytes of a single sweep on twitter-sim).
Block granularity matches the engine's range partitioning
(``config.range_shift``), the unit requests merge at (§3.6).
"""

from typing import Callable, Optional

import numpy as np

from repro.core.config import ScheduleOrder

#: A custom ordering: ``(active_ids, iteration) -> ordered_ids``.
OrderFn = Callable[[np.ndarray, int], np.ndarray]


class VertexScheduler:
    """Orders one thread's active vertices for an iteration."""

    def __init__(
        self,
        order: ScheduleOrder = ScheduleOrder.BY_ID,
        alternate: bool = True,
        custom_order: Optional[OrderFn] = None,
        seed: int = 0,
        block_shift: int = 8,
    ) -> None:
        if order is ScheduleOrder.CUSTOM and custom_order is None:
            raise ValueError("CUSTOM order needs a custom_order function")
        if block_shift < 0:
            raise ValueError("block_shift must be non-negative")
        self.order = order
        self.alternate = alternate
        self.custom_order = custom_order
        self.block_shift = block_shift
        self._rng = np.random.default_rng(seed)

    def schedule(
        self,
        active: np.ndarray,
        iteration: int,
        priorities: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """The execution order for ``active`` in ``iteration``.

        ``priorities``, when given (async mode), must align with
        ``active``; it overrides the configured order with the bucketed
        priority order described in the module docstring.
        """
        active = np.asarray(active, dtype=np.int64)
        if active.size == 0:
            return active
        if priorities is not None:
            return self._schedule_by_priority(active, priorities)
        if self.order is ScheduleOrder.CUSTOM:
            ordered = np.asarray(self.custom_order(active, iteration), dtype=np.int64)
            if ordered.size != active.size or not np.array_equal(
                np.sort(ordered), np.sort(active)
            ):
                # A custom order returning duplicates, dropped entries or
                # foreign vertex IDs would silently corrupt the run (some
                # vertices executed twice, others never); require a true
                # permutation of the input.
                raise ValueError("custom order must be a permutation of the input")
            return ordered
        if self.order is ScheduleOrder.RANDOM:
            return self._rng.permutation(active)
        ordered = np.sort(active)
        if self.alternate and iteration % 2 == 1:
            ordered = ordered[::-1]
        return ordered

    def _schedule_by_priority(
        self, active: np.ndarray, priorities: np.ndarray
    ) -> np.ndarray:
        """Descending block-priority buckets, ascending IDs otherwise.

        Each contiguous ``1 << block_shift`` ID block inherits its
        hottest resident's priority, bucketed by binary exponent
        (priorities within a factor of two tie).  Blocks run hottest
        bucket first; same-bucket blocks and the vertices inside a block
        stay in ascending-ID order, so each block's edge lists still
        merge into one large sequential read (§3.6) and every page is
        fetched at most once per round.
        """
        priorities = np.asarray(priorities, dtype=np.float64)
        if priorities.shape != active.shape:
            raise ValueError("priorities must align with the active set")
        # frexp is undefined for non-finite values; clamp first (the
        # execution policies only hand finite, non-negative residuals).
        bucket = np.frexp(np.clip(priorities, 0.0, np.finfo(np.float64).max))[1]
        blocks, inverse = np.unique(active >> self.block_shift, return_inverse=True)
        block_bucket = np.full(blocks.size, np.iinfo(np.int64).min)
        np.maximum.at(block_bucket, inverse, bucket)
        order = np.lexsort((active, -block_bucket[inverse]))
        return active[order]


def make_scheduler(config, custom_order: Optional[OrderFn] = None) -> VertexScheduler:
    """Build the scheduler an :class:`~repro.core.config.EngineConfig` asks for."""
    return VertexScheduler(
        order=config.schedule_order,
        alternate=config.alternate_scan_direction,
        custom_order=custom_order,
        block_shift=config.range_shift,
    )
