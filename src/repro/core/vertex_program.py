"""The vertex-centric programming interface (§3.4, Figure 3).

A :class:`VertexProgram` expresses one algorithm.  FlashGraph's C++ API
instantiates one object per vertex; in Python that costs too much memory
and call overhead, so the program here is a *flyweight*: one object whose
methods receive the vertex ID, with per-vertex state kept in numpy arrays
owned by the program.  The four entry points and their contracts are the
paper's:

- ``run(g, vertex)`` — entry point for an active vertex each iteration.
  May only touch the vertex's own state; edge lists must be requested
  explicitly (``g.request_vertices``) because activation without
  computation is common and a default read would waste I/O bandwidth.
- ``run_on_vertex(g, vertex, page_vertex)`` — fires when a requested edge
  list arrives, executing against the SAFS page cache.
- ``run_on_message(g, vertex, value)`` — fires on message delivery, even
  for inactive vertices.
- ``run_on_iteration_end(g)`` — fires at the iteration barrier when the
  program asked for the notification (``g.notify_iteration_end()``).

Data-parallel algorithms may additionally implement the **batched fast
path** (``run_batch`` / ``run_on_vertices`` / ``run_on_messages``): the
engine then hands whole scheduler batches, delivered waves and message
rounds to the program as numpy arrays instead of making one Python call
per vertex.  The fast path is a wall-clock optimisation only — the engine
replays every per-vertex CPU charge in the original order, so simulated
results are bit-identical to the per-vertex path (see
``docs/architecture.md``, "Hot paths and vectorization invariants").

Programs that also want the **async priority mode** declare a
``residuals`` hook (how much unpropagated work each vertex holds) and,
optionally, an ``async_floor`` below which a residual is not worth
scheduling — see ``docs/execution_modes.md``.
"""

from typing import Dict, Optional, Tuple

import numpy as np

from repro.graph.page_vertex import PageVertex
from repro.graph.types import EdgeType

#: Scalar types the default snapshot captures alongside numpy arrays.
_SNAPSHOT_SCALARS = (bool, int, float, str)


class VertexProgram:
    """Base class for all graph algorithms run by the engine."""

    #: Which edge lists ``request_self`` fetches by default.
    edge_type: EdgeType = EdgeType.OUT
    #: How concurrent messages to one vertex combine ("sum"/"min"/"max",
    #: or None to deliver individually).
    combiner: Optional[str] = "sum"
    #: Per-vertex algorithmic state footprint, for memory accounting
    #: (BFS needs 1 byte; most algorithms stay under 8).
    state_bytes_per_vertex: int = 8

    #: Batched fast-path hooks; ``None`` keeps the per-vertex path.  A
    #: program overriding one of these promises the vectorized form is
    #: observationally identical to its scalar twin, and that the scalar
    #: twin performs no *charged* context call the batch form hides
    #: (``run_batch`` may request I/O, which is free; ``run_on_vertices``
    #: must route messages through ``g.send_message_batch`` so the engine
    #: can replay per-list charges; ``run_on_messages`` must return the
    #: activation mask instead of calling ``g.activate``).
    run_batch = None  # run_batch(g, vertices: int64 array)
    run_on_vertices = None  # run_on_vertices(g, batch: PageVertexBatch)
    run_on_messages = None  # run_on_messages(g, dests, values) -> activation mask

    #: Async-mode hook (see :mod:`repro.core.execution`): ``None`` means
    #: the program only supports synchronous BSP execution.  A program
    #: overriding it returns, for each vertex, its current *residual* —
    #: a non-negative, finite measure of how much unpropagated work the
    #: vertex holds (PageRank's pending delta, WCC's label improvement
    #: since the last broadcast, SSSP's distance improvement).  The
    #: async policy schedules high-residual vertices first and declares
    #: convergence when every residual falls to :attr:`async_floor` (and
    #: the optional global threshold is met).  The program must drive
    #: its own residual to the floor when it runs (push the delta,
    #: broadcast the label), or the round loop will never quiesce.
    residuals = None  # residuals(vertices: int64 array) -> float64 array

    #: Residuals at or below this value are not worth scheduling: the
    #: async policy never runs such a vertex (PageRank mirrors its sync
    #: drop rule ``push <= tolerance`` here; monotone algorithms like
    #: WCC/SSSP keep 0.0 — any improvement must eventually propagate).
    async_floor: float = 0.0

    def run(self, g: "GraphContext", vertex: int) -> None:
        """Called once per iteration on each active vertex."""

    def run_on_vertex(self, g: "GraphContext", vertex: int, page_vertex: PageVertex) -> None:
        """Called when an edge list this vertex requested arrives."""

    def run_on_message(self, g: "GraphContext", vertex: int, value: float) -> None:
        """Called when (combined) messages for this vertex are delivered."""

    def run_on_iteration_end(self, g: "GraphContext") -> None:
        """Called at the barrier if ``g.notify_iteration_end()`` was set."""

    def custom_order(self, active: np.ndarray, iteration: int) -> np.ndarray:
        """Ordering for ``ScheduleOrder.CUSTOM`` (override to use)."""
        raise NotImplementedError

    # -- checkpoint hooks -------------------------------------------------

    #: Attributes the iteration-barrier checkpoint serializes.  ``None``
    #: auto-detects: every instance attribute that is a numpy array or a
    #: plain scalar (bool/int/float/str) is captured.  Programs holding
    #: state the default cannot see (nested objects, callables) declare
    #: their fields here or override the two hooks.
    checkpoint_fields: Optional[Tuple[str, ...]] = None

    def snapshot_state(self) -> Dict[str, object]:
        """Copy every per-vertex state field for a checkpoint.

        Arrays are copied (a resumed run must not alias a live one);
        scalars are stored as-is.  The default covers any program whose
        state is numpy arrays plus plain scalars — which is all of the
        paper's applications.
        """
        names = self.checkpoint_fields
        if names is None:
            names = tuple(
                name
                for name, value in vars(self).items()
                if isinstance(value, (np.ndarray,) + _SNAPSHOT_SCALARS)
            )
        state: Dict[str, object] = {}
        for name in names:
            value = getattr(self, name)
            state[name] = value.copy() if isinstance(value, np.ndarray) else value
        return state

    def restore_state(self, state: Dict[str, object]) -> None:
        """Reinstate a :meth:`snapshot_state` dict bit for bit."""
        for name, value in state.items():
            if not hasattr(self, name):
                raise ValueError(
                    f"checkpoint field {name!r} does not exist on "
                    f"{type(self).__name__}"
                )
            current = getattr(self, name)
            if isinstance(current, np.ndarray):
                value = np.asarray(value)
                if value.shape != current.shape or value.dtype != current.dtype:
                    raise ValueError(
                        f"checkpoint field {name!r} has shape/dtype "
                        f"{value.shape}/{value.dtype}, the program expects "
                        f"{current.shape}/{current.dtype}"
                    )
                setattr(self, name, value.copy())
            else:
                setattr(self, name, value)


class GraphContext:
    """The ``graph_engine &g`` handle passed to every vertex method.

    Thin facade over the engine: everything it does is buffered into the
    engine's current worker, so CPU cost lands on the right virtual thread.
    """

    def __init__(self, engine) -> None:
        self._engine = engine

    # -- graph metadata -------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self._engine.image.num_vertices

    @property
    def iteration(self) -> int:
        """The current iteration number, starting at 0."""
        return self._engine.iteration

    def degree(self, vertex: int, edge_type: Optional[EdgeType] = None) -> int:
        """Degree from the in-memory graph index (no I/O)."""
        edge_type = self._single(edge_type)
        return self._engine.image.index(edge_type).degree(vertex)

    def degrees_of(self, vertices: np.ndarray, edge_type: Optional[EdgeType] = None) -> np.ndarray:
        """Vectorised :meth:`degree`."""
        edge_type = self._single(edge_type)
        return self._engine.image.index(edge_type).degrees_of(vertices)

    # -- I/O ------------------------------------------------------------

    def request_vertices(
        self,
        requester: int,
        targets,
        edge_type: Optional[EdgeType] = None,
        with_attrs: bool = False,
    ) -> None:
        """Ask SAFS for the edge lists of ``targets``.

        Each arriving list triggers ``run_on_vertex(g, requester, view)``.
        ``targets`` may be the requester itself (the common case) or any
        other vertices (triangle counting, scan statistics).  With
        ``with_attrs`` the detached edge-attribute block is fetched and
        paired with each list (SSSP's weights).
        """
        edge_type = edge_type or self._program_edge_type()
        targets = np.atleast_1d(np.asarray(targets, dtype=np.int64))
        for direction in edge_type.directions():
            self._engine._buffer_request(requester, targets, direction, with_attrs)

    def request_self(self, vertex: int, edge_type: Optional[EdgeType] = None) -> None:
        """Shorthand for requesting the vertex's own edge list(s)."""
        self.request_vertices(vertex, np.asarray([vertex]), edge_type)

    def request_self_batch(self, vertices, edge_type: Optional[EdgeType] = None) -> None:
        """Batched :meth:`request_self`: every vertex of ``vertices``
        requests its own edge list(s).  The whole wave is located with one
        vectorized index lookup and merged as arrays (``run_batch`` fast
        path); semantics match per-vertex ``request_self`` calls in order.
        """
        edge_type = edge_type or self._program_edge_type()
        vertices = np.atleast_1d(np.asarray(vertices, dtype=np.int64))
        if vertices.size:
            self._engine._buffer_batch_request(vertices, edge_type)

    # -- communication ---------------------------------------------------

    def activate(self, vertices) -> None:
        """Activate ``vertices`` for the next iteration (multicast)."""
        vertices = np.atleast_1d(np.asarray(vertices, dtype=np.int64))
        self._engine._buffer_activation(vertices)

    def send_message(self, dests, values) -> None:
        """Send ``values`` to ``dests`` (scalar value = multicast)."""
        dests = np.atleast_1d(np.asarray(dests, dtype=np.int64))
        self._engine._buffer_message(dests, values)

    def send_message_batch(self, dests, values, counts) -> None:
        """Send one delivered wave's messages in a single call.

        Only valid inside ``run_on_vertices``: ``dests``/``values`` hold
        every message of the wave concatenated in delivery order, and
        ``counts[i]`` is the number of messages list ``i`` contributed
        (zero for lists that send nothing).  The engine replays the
        per-list send charges from ``counts``, so the worker clocks match
        per-list ``send_message`` calls bit for bit."""
        self._engine._buffer_message_batch(dests, values, counts)

    def notify_iteration_end(self) -> None:
        """Request a ``run_on_iteration_end`` callback at this barrier."""
        self._engine._request_iteration_end()

    # -- accounting -------------------------------------------------------

    def charge_edges(self, count: int) -> None:
        """Charge extra per-edge CPU work to the current worker (e.g.
        triangle counting's neighbor-list intersections)."""
        self._engine._charge_edges(count)

    # -- internals --------------------------------------------------------

    def _program_edge_type(self) -> EdgeType:
        return self._engine.program.edge_type

    def _single(self, edge_type: Optional[EdgeType]) -> EdgeType:
        edge_type = edge_type or self._program_edge_type()
        if edge_type is EdgeType.BOTH:
            return EdgeType.OUT
        return edge_type
