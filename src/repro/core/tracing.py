"""Per-iteration execution tracing.

Research users of a graph engine need more than end-to-end numbers: how
the frontier evolved, where the bytes went, when the cache warmed up.
An :class:`IterationTracer` hooks an engine run and records one row per
iteration, exportable as CSV for plotting.

Usage::

    tracer = IterationTracer(engine)
    with tracer:
        bfs(engine, source)
    tracer.write_csv("bfs_trace.csv")
"""

import csv
from dataclasses import dataclass
from typing import List, Optional

from repro.core.engine import GraphEngine


@dataclass(frozen=True)
class IterationRecord:
    """One iteration's observations."""

    iteration: int
    active_vertices: int
    edges_delivered: int
    io_requests: int
    pages_fetched: int
    cache_hits: int
    messages: int
    end_time: float


class IterationTracer:
    """Records per-iteration engine activity via a lightweight hook."""

    def __init__(self, engine: GraphEngine) -> None:
        self.engine = engine
        self.records: List[IterationRecord] = []
        self._original = None
        self._last_snapshot: Optional[dict] = None

    def __enter__(self) -> "IterationTracer":
        self.records.clear()
        self._original = self.engine._run_iteration
        tracer = self

        def traced(frontier, scheduler):
            before = tracer.engine.stats.snapshot()
            tracer._original(frontier, scheduler)
            delta = tracer.engine.stats.diff(before)
            end_time = max(
                (w.time for w in tracer.engine._workers), default=0.0
            )
            tracer.records.append(
                IterationRecord(
                    iteration=tracer.engine.iteration,
                    active_vertices=int(frontier.size),
                    edges_delivered=int(delta.get("engine.edges_delivered", 0)),
                    io_requests=int(delta.get("engine.io_requests", 0)),
                    pages_fetched=int(delta.get("io.pages_fetched", 0)),
                    cache_hits=int(delta.get("cache.hits", 0)),
                    messages=int(delta.get("msg.delivered", 0)),
                    end_time=end_time,
                )
            )

        self.engine._run_iteration = traced
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Remove the instance attribute so the class method shows through
        # again (assigning the bound method back would shadow it forever).
        # pop() instead of del: the hook must be restored no matter how
        # the traced run ended — an aborted run (IterationAborted under
        # faults), a double __exit__, or an __exit__ without __enter__
        # must never leave a stale hook or raise a masking AttributeError.
        self.engine.__dict__.pop("_run_iteration", None)
        self._original = None

    @property
    def num_iterations(self) -> int:
        return len(self.records)

    def frontier_sizes(self) -> List[int]:
        """Active-vertex counts per iteration (the frontier curve)."""
        return [r.active_vertices for r in self.records]

    def write_csv(self, path) -> None:
        """Dump the trace as CSV with a header row."""
        fields = [
            "iteration",
            "active_vertices",
            "edges_delivered",
            "io_requests",
            "pages_fetched",
            "cache_hits",
            "messages",
            "end_time",
        ]
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(fields)
            for record in self.records:
                writer.writerow([getattr(record, name) for name in fields])
