"""Iteration-barrier checkpoint/restore for the graph engine.

Long-running billion-node jobs need more than fault *detection*: when a
run dies past every recovery budget (or the process is killed), hours of
work should not vanish.  ACGraph's out-of-core recovery model shows the
right granularity is the iteration barrier — the one point where the
engine's transient state collapses to almost nothing:

- every pending request wave, vertex part and attribute pairing is empty,
- the message buffer has been delivered (only its peak gauge survives),
- every worker clock sits exactly on the barrier.

What remains is serialized here: the vertex-program state, the next
frontier, all DES counters (the shared :class:`StatsCollector` plus the
run's base snapshot), per-worker clocks, per-device SSD queue state
(including hot spares and in-flight rebuilds), the health monitor, the
full page-cache placement/recency state, and the vertex scheduler's RNG.
Restoring puts every float back bit for bit, so a resumed run finishes
**bit-identical** to an uninterrupted one — results and counters alike
(the crash-resume matrix test asserts exactly this).

Format: one pickle per checkpoint holding a versioned plain dict of
Python scalars and numpy arrays.  Pickle round-trips every float (and
``inf``) exactly and keeps numpy arrays in their native dtype, which is
the whole requirement; the files are internal state, not an interchange
format — treat them like any other pickle (do not load untrusted ones).
Writes go to a temp file in the same directory followed by an atomic
rename, so a crash mid-save never corrupts the latest good checkpoint.

Checkpoint I/O itself is free in *simulated* time: the paper's arrays
are read-only during computation (SEM never writes to the SSDs), so the
checkpoint is modelled as landing on separate durable storage outside
the simulated array — see ``docs/recovery.md``.
"""

import os
import pickle
import re
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Current checkpoint format version; bumped on incompatible changes.
CHECKPOINT_VERSION = 1

_CHECKPOINT_NAME = re.compile(r"^ckpt_iter_(\d{8})\.pkl$")


class CheckpointError(RuntimeError):
    """A checkpoint could not be saved, loaded or applied."""


class CheckpointManager:
    """Writes and locates iteration-barrier checkpoints in one directory.

    One manager owns one directory; checkpoints are named by the
    iteration they capture (``ckpt_iter_00000007.pkl``), so ``latest()``
    is a pure directory listing and a re-run with ``--resume`` needs no
    side-channel metadata.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, iteration: int) -> Path:
        """Where the checkpoint of ``iteration`` lives."""
        if iteration < 0:
            raise ValueError("iterations are non-negative")
        return self.directory / f"ckpt_iter_{iteration:08d}.pkl"

    def save(self, state: Dict) -> Path:
        """Persist one captured state dict atomically; returns its path.

        The write lands in a temp file in the same directory and is
        renamed into place, so readers only ever see complete
        checkpoints — a crash mid-save leaves the previous one intact.
        """
        if state.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"refusing to save a state dict of version "
                f"{state.get('version')!r} (expected {CHECKPOINT_VERSION})"
            )
        path = self.path_for(int(state["iteration"]))
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.directory), prefix=".ckpt_tmp_", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(state, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def load(self, source: Union[int, str, Path]) -> Dict:
        """Load one checkpoint by iteration number or path."""
        path = self.path_for(source) if isinstance(source, int) else Path(source)
        if not path.exists():
            raise CheckpointError(f"no checkpoint at {path}")
        with open(path, "rb") as fh:
            state = pickle.load(fh)
        if not isinstance(state, dict) or "version" not in state:
            raise CheckpointError(f"{path} is not a checkpoint")
        if state["version"] != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"{path} has format version {state['version']}, "
                f"this build reads {CHECKPOINT_VERSION}"
            )
        return state

    def iterations(self) -> List[int]:
        """Iterations with a checkpoint on disk, ascending."""
        found = []
        for entry in self.directory.iterdir():
            match = _CHECKPOINT_NAME.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def latest(self) -> Optional[Path]:
        """The newest checkpoint's path, or ``None`` when empty."""
        iterations = self.iterations()
        if not iterations:
            return None
        return self.path_for(iterations[-1])

    def __repr__(self) -> str:
        return f"CheckpointManager({str(self.directory)!r})"
