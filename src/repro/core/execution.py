"""Pluggable execution policies: synchronous BSP vs async priority rounds.

The engine's run loop used to be hard-wired to bulk-synchronous-parallel
supersteps: every active vertex runs once per iteration, messages buffer
to the global barrier, and the whole frontier waits for its slowest
member even when most of it has already converged.  SAFS's user-task
interface is inherently asynchronous (paper §3), so the loop itself is
the only thing standing between the engine and ACGraph-style asynchronous
execution — this module makes that loop a *policy*.

:class:`SyncExecution` is the extracted BSP loop, operation for
operation: a sync run's counters, clocks and results are bit-identical
to the pre-policy engine (the golden-result tests pin this).

:class:`AsyncExecution` replaces supersteps with **priority rounds**:

- every vertex carries a *residual* — how much unpropagated work it
  holds (PageRank's pending delta, WCC's label improvement since the
  last broadcast, SSSP's tentative-distance improvement) — reported by
  the program's ``residuals`` hook;
- each round schedules only the highest-residual slice of the eligible
  set (``async_selectivity``), ordered by the priority-aware
  :class:`~repro.core.scheduler.VertexScheduler` so hot vertices run
  first while batches still merge into large sequential reads;
- a vertex deferred by the selector for ``async_staleness`` rounds is
  force-scheduled, bounding how stale any state read can be;
- messages deliver *eagerly*: the round drains the buffer whenever
  occupancy reaches the flush threshold (§3.4.1) instead of waiting
  for a barrier, preserving the canonical ``(dest, value)``
  accumulation order so fault recovery stays deterministic;
- convergence needs no barrier: the run ends when the above-floor
  active set quiesces, or when the global residual sum drops to
  ``async_threshold``.

Deferring a vertex until its residual is large means each edge-list
read propagates more accumulated work, so the same fixpoint is reached
with fewer I/O bytes — the ACGraph observation this mode reproduces
(``benchmarks/bench_async_vs_sync.py`` records the win).
"""

from typing import Optional

import numpy as np

from repro.core.checkpoint import CheckpointError
from repro.core.config import EngineConfig, ExecutionKind
from repro.obs import registry as reg

#: Residuals are clamped here so priority bucketing (frexp) and the
#: global sum stay finite even for "never announced" sentinels like
#: SSSP's ``inf - dist``.
MAX_RESIDUAL = 1e18


class ExecutionPolicy:
    """Drives one :meth:`GraphEngine.run` call to convergence."""

    kind: ExecutionKind

    def steps(
        self, engine, frontier, scheduler, max_iterations, base, manager, every
    ):
        """Generator over iterations/rounds: one ``yield`` per barrier.

        Mutates ``engine`` (clocks, counters, ``iteration``,
        ``_peak_messages``) exactly as the pre-policy loop did; the
        engine turns the aftermath into a :class:`RunResult`.  Yielding
        at the barrier is what lets a service interleave many jobs on
        one DES clock — a batch run just drains the generator.
        """
        raise NotImplementedError

    def run_loop(
        self, engine, frontier, scheduler, max_iterations, base, manager, every
    ) -> None:
        """Drain :meth:`steps` to convergence or the cap."""
        for _ in self.steps(
            engine, frontier, scheduler, max_iterations, base, manager, every
        ):
            pass

    def export_state(self) -> Optional[dict]:
        """Policy state a checkpoint must carry (``None`` = stateless)."""
        return None

    def restore_state(self, state: Optional[dict]) -> None:
        """Reinstate :meth:`export_state` output on resume.

        Called with the checkpoint's ``execution`` entry (``None`` for
        checkpoints written by a sync run, including every pre-policy
        checkpoint).  Raises :class:`CheckpointError` on a policy
        mismatch before anything is mutated.
        """
        if state is not None:
            raise CheckpointError(
                f"checkpoint carries {state.get('policy')!r} execution "
                f"state, this engine runs {self.kind.value!r}"
            )


class SyncExecution(ExecutionPolicy):
    """The classic BSP superstep loop, bit-identical to the pre-policy
    engine: full-frontier iterations, barrier-buffered messages."""

    kind = ExecutionKind.SYNC

    def steps(
        self, engine, frontier, scheduler, max_iterations, base, manager, every
    ):
        while frontier.size or engine._messages.pending:
            if max_iterations is not None and engine.iteration >= max_iterations:
                break
            engine._run_iteration(frontier, scheduler)
            engine._peak_messages = max(
                engine._peak_messages, engine._messages.peak_pending
            )
            frontier = engine._drain_activations()
            # Published for EngineJob.frontier_size: the serving layer's
            # deadline estimator reads the upcoming frontier at the
            # barrier.  Observation only — no engine state depends on it.
            engine._barrier_frontier = int(frontier.size)
            engine.iteration += 1
            if manager is not None and every and engine.iteration % every == 0:
                # Saving never touches the shared stats: the counter
                # stream of a checkpointed run must stay bit-identical
                # to an unmonitored one.
                manager.save(
                    engine._capture_checkpoint(
                        frontier, engine._peak_messages, base, scheduler
                    )
                )
            obs = engine.obs
            if obs is not None:
                # Emits only under a query span context (serving runs),
                # so batch traces stay byte-identical.
                obs.job_barrier(
                    engine.iteration,
                    max(w.time for w in engine._workers),
                    engine._barrier_frontier,
                )
            yield engine.iteration


class AsyncExecution(ExecutionPolicy):
    """Barrier-free priority rounds over the program's residuals."""

    kind = ExecutionKind.ASYNC

    def __init__(self, config: EngineConfig) -> None:
        self.config = config
        #: Current residual per vertex (the priority).
        self._residual: Optional[np.ndarray] = None
        #: Rounds each vertex has been eligible but unscheduled.
        self._deferred: Optional[np.ndarray] = None
        self._resumed = False

    # -- the round loop -------------------------------------------------

    def steps(
        self, engine, frontier, scheduler, max_iterations, base, manager, every
    ):
        program = engine.program
        if program.residuals is None:
            raise ValueError(
                f"{type(program).__name__} does not support async "
                "execution: it declares no residuals hook (see "
                "docs/execution_modes.md)"
            )
        cfg = self.config
        floor = float(program.async_floor)
        stats = engine.stats
        if not self._resumed:
            n = engine.image.num_vertices
            self._residual = np.zeros(n)
            self._deferred = np.zeros(n, dtype=np.int64)
            if frontier.size:
                self._residual[frontier] = self._score(program, frontier)
                stats.add(reg.ENGINE_PRIORITY_UPDATES, frontier.size)

        while True:
            if max_iterations is not None and engine.iteration >= max_iterations:
                break
            active = np.nonzero(self._residual > floor)[0]
            total = float(self._residual.sum())
            stats.set(reg.ENGINE_RESIDUAL, total)
            if active.size == 0 and not engine._messages.pending:
                break  # quiescence: nothing above the floor, nothing in flight
            if cfg.async_threshold > 0.0 and total <= cfg.async_threshold:
                break  # global residual threshold reached
            chosen = self._select(active)
            engine._run_round(chosen, scheduler, self._residual)
            engine._peak_messages = max(
                engine._peak_messages, engine._messages.peak_pending
            )
            activated = engine._drain_activations()
            touched = np.union1d(chosen, activated)
            self._residual[touched] = self._score(program, touched)
            stats.add(reg.ENGINE_PRIORITY_UPDATES, touched.size)
            stats.add(reg.ENGINE_ASYNC_ROUNDS)
            # The async analogue of the sync frontier: vertices still
            # above the residual floor after this round (see
            # EngineJob.frontier_size).
            engine._barrier_frontier = int(
                np.count_nonzero(self._residual > floor)
            )
            engine.iteration += 1
            if manager is not None and every and engine.iteration % every == 0:
                manager.save(
                    engine._capture_checkpoint(
                        touched,
                        engine._peak_messages,
                        base,
                        scheduler,
                        execution=self.export_state(),
                    )
                )
            obs = engine.obs
            if obs is not None:
                # Same query-context-gated barrier event as the sync
                # loop: a round boundary is the async job's barrier.
                obs.job_barrier(
                    engine.iteration,
                    max(w.time for w in engine._workers),
                    engine._barrier_frontier,
                )
            yield engine.iteration

    def _select(self, active: np.ndarray) -> np.ndarray:
        """The round's vertices: the top-priority slice plus everyone
        whose deferral hit the staleness bound."""
        cfg = self.config
        k = int(np.ceil(active.size * cfg.async_selectivity))
        k = max(k, min(cfg.async_min_round, active.size))
        if k >= active.size:
            chosen = active
        else:
            # Deterministic top-k: residual descending, ID ascending.
            order = np.lexsort((active, -self._residual[active]))
            top = active[order[:k]]
            forced = active[self._deferred[active] >= cfg.async_staleness]
            chosen = np.union1d(top, forced)
        self._deferred[active] += 1
        self._deferred[chosen] = 0
        return chosen

    def _score(self, program, vertices: np.ndarray) -> np.ndarray:
        """Clamped, validated residuals for ``vertices``."""
        if vertices.size == 0:
            return np.zeros(0)
        residual = np.asarray(program.residuals(vertices), dtype=np.float64)
        if residual.shape != vertices.shape:
            raise ValueError(
                "residuals must return one value per vertex "
                f"({residual.shape} != {vertices.shape})"
            )
        return np.clip(residual, 0.0, MAX_RESIDUAL)

    # -- checkpoint plumbing --------------------------------------------

    def export_state(self) -> dict:
        return {
            "policy": self.kind.value,
            "residual": self._residual.copy(),
            "deferred": self._deferred.copy(),
        }

    def restore_state(self, state: Optional[dict]) -> None:
        if state is None or state.get("policy") != self.kind.value:
            have = None if state is None else state.get("policy")
            raise CheckpointError(
                f"checkpoint carries {have!r} execution state, this "
                f"engine runs {self.kind.value!r}"
            )
        self._residual = np.asarray(state["residual"], dtype=np.float64).copy()
        self._deferred = np.asarray(state["deferred"], dtype=np.int64).copy()
        self._resumed = True


def make_execution_policy(config: EngineConfig) -> ExecutionPolicy:
    """The policy :class:`~repro.core.config.EngineConfig` asks for."""
    if config.execution is ExecutionKind.ASYNC:
        return AsyncExecution(config)
    return SyncExecution()
