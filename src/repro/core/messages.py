"""Buffered message passing between vertices (§3.4.1).

Vertices never write each other's state — they send messages, which the
worker threads buffer and deliver in batches, avoiding both races on
vertex state and per-message synchronisation.  Multicast sends one copy of
a message per *thread* rather than per recipient; vertex activation is a
data-free multicast.

Most algorithms' messages are commutative aggregations, so the buffer
supports *combiners* (sum/min/max): logical messages are counted and
charged individually, but deliveries to the same destination are combined
before ``run_on_message`` fires — the same trick Pregel-style systems use
to keep buffers small.
"""

from typing import List, Optional, Tuple

import numpy as np

#: Supported combiners: how concurrent messages to one vertex collapse.
COMBINERS = ("sum", "min", "max")


class MessageBuffer:
    """Accumulates one iteration's messages until the barrier delivery."""

    def __init__(self, combiner: Optional[str] = None) -> None:
        if combiner is not None and combiner not in COMBINERS:
            raise ValueError(f"unknown combiner {combiner!r}; pick from {COMBINERS}")
        self.combiner = combiner
        self._dest_chunks: List[np.ndarray] = []
        self._value_chunks: List[np.ndarray] = []
        self._pending = 0
        self._peak_pending = 0

    def send(self, dests: np.ndarray, values) -> int:
        """Buffer messages ``values[i] -> dests[i]``; returns the count.

        ``values`` may be a scalar (multicast payload: one value to every
        destination) or an array aligned with ``dests``.
        """
        dests = np.atleast_1d(np.asarray(dests, dtype=np.int64))
        if dests.size == 0:
            return 0
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 0:
            values = np.broadcast_to(values, dests.shape)
        elif values.shape != dests.shape:
            raise ValueError("values must be scalar or match dests in shape")
        self._dest_chunks.append(dests)
        self._value_chunks.append(np.ascontiguousarray(values))
        self._pending += dests.size
        if self._pending > self._peak_pending:
            self._peak_pending = self._pending
        return int(dests.size)

    @property
    def pending(self) -> int:
        """Messages buffered and not yet delivered."""
        return self._pending

    def flush_due(self, threshold: int) -> bool:
        """Whether eager (in-iteration) delivery should fire.

        The async execution mode drains the buffer as soon as occupancy
        reaches ``threshold`` instead of waiting for the round barrier —
        the same per-thread flush rule real FlashGraph applies at
        ``message_flush_threshold`` messages (§3.4.1).  Delivery itself
        still goes through :meth:`deliver`, whose canonical
        ``(dest, value)`` sort keeps accumulation deterministic no
        matter how often the buffer is drained.
        """
        return self._pending >= threshold > 0

    @property
    def peak_pending(self) -> int:
        """The largest buffer occupancy seen (memory accounting)."""
        return self._peak_pending

    def deliver(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Drain the buffer, combining per destination.

        Returns ``(dests, values, counts)`` with ``dests`` unique and
        sorted and ``counts[i]`` the number of logical messages combined
        into delivery ``i`` (the receiver is charged per logical message).
        With no combiner, messages to the same destination stay separate
        (``dests`` may repeat, grouped and sorted; counts are all 1).
        """
        if not self._dest_chunks:
            empty = np.zeros(0, dtype=np.int64)
            return empty, np.zeros(0), empty
        dests = np.concatenate(self._dest_chunks)
        values = np.concatenate(self._value_chunks)
        self._dest_chunks.clear()
        self._value_chunks.clear()
        self._pending = 0
        # Canonical delivery order: sort by (destination, value) so the
        # combined result is a function of the message *multiset* only.
        # Buffered sends arrive in completion order, which device faults
        # (and their retries) legitimately perturb — without a canonical
        # accumulation order, float sums would differ in the last bits
        # between a fault-free run and a recovered one.
        order = np.lexsort((values, dests))
        dests = dests[order]
        values = values[order]
        if self.combiner is None:
            return dests, values, np.ones(dests.size, dtype=np.int64)
        unique, inverse, counts = np.unique(
            dests, return_inverse=True, return_counts=True
        )
        if self.combiner == "sum":
            out = np.zeros(unique.size)
            np.add.at(out, inverse, values)
        elif self.combiner == "min":
            out = np.full(unique.size, np.inf)
            np.minimum.at(out, inverse, values)
        else:  # max
            out = np.full(unique.size, -np.inf)
            np.maximum.at(out, inverse, values)
        return unique, out, counts

    def restore_peak(self, peak: int) -> None:
        """Reinstate the peak-occupancy gauge from a checkpoint.

        At an iteration barrier the buffer itself is empty (delivery
        happened inside the iteration), so the monotone peak is the only
        state a resume needs to carry over for memory accounting.
        """
        if self._pending:
            raise RuntimeError("cannot restore the peak of a non-empty buffer")
        self._peak_pending = int(peak)

    def clear(self) -> None:
        """Drop everything without delivering."""
        self._dest_chunks.clear()
        self._value_chunks.clear()
        self._pending = 0
