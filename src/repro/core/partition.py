"""2D graph partitioning (§3.8).

Horizontal: vertex ``v`` belongs to partition ``(v >> r) % n``.  The right
shift keeps *ranges* of consecutive IDs together, so the edge lists of one
partition's vertices sit adjacently on SSDs and the per-thread scheduler
can issue large merged reads.  The modulo spreads ranges round-robin so no
thread owns only the head of the ID space.

Vertical: a vertex that requests many edge lists can be split into *vertex
parts*, each requesting one ID range, schedulable on any thread — the load
balancer moves parts of a hub vertex across the machine.
"""

from dataclasses import dataclass
from typing import List

import numpy as np

#: Knuth's multiplicative constant, used by the hash partitioner.
_HASH_MULTIPLIER = 2654435761


class RangePartitioner:
    """The horizontal range-partitioning function."""

    def __init__(self, num_partitions: int, range_shift: int) -> None:
        if num_partitions <= 0:
            raise ValueError("need at least one partition")
        if range_shift < 0:
            raise ValueError("range_shift cannot be negative")
        self.num_partitions = num_partitions
        self.range_shift = range_shift

    def partition_of(self, vertex: int) -> int:
        """``partition_id = (vid >> r) % n``."""
        if vertex < 0:
            raise ValueError("vertex ids are non-negative")
        return (vertex >> self.range_shift) % self.num_partitions

    def partition_many(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`partition_of`."""
        vertices = np.asarray(vertices, dtype=np.int64)
        return (vertices >> self.range_shift) % self.num_partitions

    def split(self, vertices: np.ndarray) -> List[np.ndarray]:
        """Group ``vertices`` by partition; index ``p`` holds partition
        ``p``'s members in their input order."""
        vertices = np.asarray(vertices, dtype=np.int64)
        parts = self.partition_many(vertices)
        return [vertices[parts == p] for p in range(self.num_partitions)]

    @property
    def range_size(self) -> int:
        """Consecutive vertex IDs per range (``2**r``)."""
        return 1 << self.range_shift


class HashPartitioner(RangePartitioner):
    """The counterfactual to §3.8's range partitioning.

    Hashing scatters consecutive IDs across threads, destroying the
    SSD-adjacency of each thread's edge lists; the per-thread scheduler
    can no longer issue large merged reads.  Exists for the partitioning
    ablation — production FlashGraph uses range partitioning.
    """

    def __init__(self, num_partitions: int, range_shift: int = 0) -> None:
        super().__init__(num_partitions, range_shift)

    def partition_of(self, vertex: int) -> int:
        if vertex < 0:
            raise ValueError("vertex ids are non-negative")
        return ((vertex * _HASH_MULTIPLIER) & 0xFFFFFFFF) % self.num_partitions

    def partition_many(self, vertices: np.ndarray) -> np.ndarray:
        vertices = np.asarray(vertices, dtype=np.int64)
        return ((vertices * _HASH_MULTIPLIER) & 0xFFFFFFFF) % self.num_partitions


@dataclass(frozen=True)
class VertexPart:
    """One vertical slice of a large vertex's multi-edge-list request.

    ``targets`` is the slice of edge lists this part must fetch; parts of
    the same vertex share the (replicated) vertex state and communicate by
    message passing only, so the engine may run them on any thread.
    """

    vertex: int
    part_index: int
    num_parts: int
    targets: np.ndarray


def split_into_parts(
    vertex: int, targets: np.ndarray, part_size: int
) -> List[VertexPart]:
    """Split a request for ``targets`` edge lists into ID-sorted parts.

    Sorting by target ID before slicing means each part requests one
    contiguous-on-SSD range — the property that raises cache hit rates
    when multiple threads process parts concurrently (§3.8).
    """
    if part_size <= 0:
        raise ValueError("part_size must be positive")
    targets = np.sort(np.asarray(targets, dtype=np.int64))
    num_parts = max(1, (targets.size + part_size - 1) // part_size)
    return [
        VertexPart(
            vertex=vertex,
            part_index=i,
            num_parts=num_parts,
            targets=targets[i * part_size : (i + 1) * part_size],
        )
        for i in range(num_parts)
    ]
