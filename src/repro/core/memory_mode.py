"""In-memory edge storage (the paper's "FG-mem" build).

For the in-memory comparison the authors replace SAFS with in-memory data
structures holding the edge lists; everything else — the engine, the
programming interface, scheduling — is unchanged.  This store serves
edge-list requests straight from the CSR adjacency with zero latency; the
engine charges the (cheaper) in-memory per-edge CPU rate instead of the
page-parsing SEM rate.
"""

from typing import Optional

import numpy as np

from repro.graph.builder import GraphImage
from repro.graph.page_vertex import PageVertex
from repro.graph.types import EdgeType


class InMemoryEdgeStore:
    """Serves ``PageVertex`` views from RAM-resident adjacency arrays."""

    def __init__(self, image: GraphImage) -> None:
        self.image = image
        self._attrs: Optional[np.ndarray] = None

    def fetch(
        self, target: int, edge_type: EdgeType, with_attrs: bool = False
    ) -> PageVertex:
        """The edge list of ``target`` in one direction, zero-copy."""
        if edge_type is EdgeType.BOTH:
            raise ValueError("fetch one direction at a time")
        csr = self.image.csr(edge_type)
        attrs = self._attr_slice(target, edge_type) if with_attrs else None
        return PageVertex.from_arrays(
            target, csr.neighbors(target), edge_type, attrs=attrs
        )

    def _attr_slice(self, target: int, edge_type: EdgeType) -> np.ndarray:
        if edge_type not in self.image.attr_bytes:
            raise ValueError(
                f"the graph has no {edge_type.value}-edge attributes"
            )
        if self._attrs is None:
            self._attrs = np.frombuffer(
                self.image.attr_bytes[edge_type], dtype="<f4"
            )
        indptr = self.image.csr(edge_type).indptr
        return self._attrs[indptr[target] : indptr[target + 1]]

    def memory_bytes(self) -> int:
        """RAM held by the in-memory edge lists (both directions)."""
        total = self.image.out_csr.indptr.nbytes + self.image.out_csr.indices.nbytes
        if self.image.directed:
            total += self.image.in_csr.indptr.nbytes + self.image.in_csr.indices.nbytes
        return total
