"""The FlashGraph engine (§3).

A semi-external-memory, vertex-centric graph engine: algorithmic vertex
state stays in RAM, edge lists are read on demand from SAFS, computation
overlaps I/O through the asynchronous user-task interface, and I/O requests
are conservatively merged before they reach the device queues.

Public surface:

- :class:`~repro.core.engine.GraphEngine` — run a vertex program over a
  :class:`~repro.graph.builder.GraphImage`, in semi-external or in-memory
  mode.
- :class:`~repro.core.vertex_program.VertexProgram` — the user API:
  ``run`` / ``run_on_vertex`` / ``run_on_message`` /
  ``run_on_iteration_end`` (Figure 3 of the paper).
- :class:`~repro.core.config.EngineConfig` — threads, scheduling order,
  merging discipline, partitioning parameters.
- :class:`~repro.core.engine.RunResult` — simulated runtime, utilisation
  and memory accounting for one run.
- :class:`~repro.core.checkpoint.CheckpointManager` — iteration-barrier
  checkpoint/restore; a resumed run finishes bit-identical to an
  uninterrupted one (see ``docs/recovery.md``).
"""

from repro.core.checkpoint import CheckpointError, CheckpointManager
from repro.core.config import EngineConfig, ExecutionMode, PartitionStrategy
from repro.core.engine import GraphEngine, IterationAborted, RunResult
from repro.core.messages import MessageBuffer
from repro.core.partition import HashPartitioner, RangePartitioner
from repro.core.scheduler import VertexScheduler, make_scheduler
from repro.core.vertex_program import GraphContext, VertexProgram

__all__ = [
    "CheckpointError",
    "CheckpointManager",
    "EngineConfig",
    "ExecutionMode",
    "PartitionStrategy",
    "GraphEngine",
    "IterationAborted",
    "RunResult",
    "MessageBuffer",
    "RangePartitioner",
    "HashPartitioner",
    "VertexScheduler",
    "make_scheduler",
    "GraphContext",
    "VertexProgram",
]
