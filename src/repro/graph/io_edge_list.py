"""Loading and saving edge lists (text and ``.npz``), plus networkx bridges.

FlashGraph's inputs are plain edge lists; these helpers exist so the
examples can persist generated graphs and so tests can round-trip against
networkx reference implementations.
"""

from pathlib import Path
from typing import Optional, Tuple, Union

import networkx as nx
import numpy as np

from repro.graph.builder import GraphImage

PathLike = Union[str, Path]


def save_edges_text(path: PathLike, edges: np.ndarray, num_vertices: int) -> None:
    """Write one ``src dst`` pair per line, with a header comment."""
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    with open(path, "w") as f:
        f.write(f"# vertices: {num_vertices}\n")
        for u, v in edges:
            f.write(f"{u} {v}\n")


def load_edges_text(path: PathLike) -> Tuple[np.ndarray, int]:
    """Read an edge list written by :func:`save_edges_text`.

    Files without the header infer ``num_vertices`` as ``max id + 1``.
    """
    num_vertices: Optional[int] = None
    rows = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "vertices:" in line:
                    num_vertices = int(line.split("vertices:")[1])
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"malformed edge line: {line!r}")
            rows.append((int(parts[0]), int(parts[1])))
    edges = np.asarray(rows, dtype=np.int64).reshape(-1, 2)
    if num_vertices is None:
        num_vertices = int(edges.max()) + 1 if edges.size else 0
    return edges, num_vertices


def save_edges_npz(path: PathLike, edges: np.ndarray, num_vertices: int) -> None:
    """Persist an edge array compactly."""
    np.savez_compressed(
        path,
        edges=np.asarray(edges, dtype=np.int64).reshape(-1, 2),
        num_vertices=np.int64(num_vertices),
    )


def load_edges_npz(path: PathLike) -> Tuple[np.ndarray, int]:
    """Load an edge array written by :func:`save_edges_npz`."""
    with np.load(path) as data:
        return data["edges"], int(data["num_vertices"])


def edges_from_networkx(graph: nx.Graph) -> Tuple[np.ndarray, int]:
    """Convert a networkx (di)graph with integer nodes into our edge array."""
    nodes = sorted(graph.nodes())
    if nodes and (nodes[0] != 0 or nodes[-1] != len(nodes) - 1):
        relabel = {node: i for i, node in enumerate(nodes)}
        graph = nx.relabel_nodes(graph, relabel)
    edges = np.asarray(list(graph.edges()), dtype=np.int64).reshape(-1, 2)
    return edges, graph.number_of_nodes()


def image_to_networkx(image: GraphImage) -> nx.Graph:
    """Rebuild a networkx graph from a :class:`GraphImage` (for tests)."""
    graph = nx.DiGraph() if image.directed else nx.Graph()
    graph.add_nodes_from(range(image.num_vertices))
    indptr = image.out_csr.indptr
    indices = image.out_csr.indices
    for v in range(image.num_vertices):
        for u in indices[indptr[v] : indptr[v + 1]]:
            graph.add_edge(v, int(u))
    return graph
