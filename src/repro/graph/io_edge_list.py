"""Loading and saving edge lists (text and ``.npz``), plus networkx bridges.

FlashGraph's inputs are plain edge lists; these helpers exist so the
examples can persist generated graphs and so tests can round-trip against
networkx reference implementations.
"""

from pathlib import Path
from typing import Optional, Tuple, Union

import networkx as nx
import numpy as np

from repro.graph.builder import GraphImage

PathLike = Union[str, Path]


def save_edges_text(path: PathLike, edges: np.ndarray, num_vertices: int) -> None:
    """Write one ``src dst`` pair per line, with a header comment."""
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    with open(path, "w") as f:
        f.write(f"# vertices: {num_vertices}\n")
        for u, v in edges:
            f.write(f"{u} {v}\n")


def load_edges_text(path: PathLike) -> Tuple[np.ndarray, int]:
    """Read an edge list written by :func:`save_edges_text`.

    Files without the header infer ``num_vertices`` as ``max id + 1``.

    Parsing is chunked and vectorized: each ~1 MB block of lines becomes
    one numpy string array, tokens split in bulk with a sentinel marking
    line boundaries, and the ids cast with a single ``astype`` — no
    per-line Python loop.  The ``# vertices:`` header and the exact
    malformed-line errors of the scalar parser are preserved.
    """
    num_vertices: Optional[int] = None
    parts = []
    with open(path) as f:
        while True:
            lines = f.readlines(1 << 20)
            if not lines:
                break
            arr = np.char.strip(np.asarray(lines, dtype=str))
            comments = np.char.startswith(arr, "#")
            headers = comments & (np.char.find(arr, "vertices:") >= 0)
            for header in arr[headers]:
                num_vertices = int(header.split("vertices:")[1])
            data = arr[(arr != "") & ~comments]
            if data.size == 0:
                continue
            # A NUL sentinel between lines keeps per-line token counts
            # recoverable after one bulk split — a malformed line cannot
            # silently re-pair its tokens with a neighbour's.
            tokens = np.asarray(" \x00 ".join(data.tolist()).split())
            sep = tokens == "\x00"
            bounds = np.concatenate(([-1], np.flatnonzero(sep), [tokens.size]))
            counts = np.diff(bounds) - 1
            if np.any(counts != 2):
                bad = int(np.flatnonzero(counts != 2)[0])
                raise ValueError(f"malformed edge line: {str(data[bad])!r}")
            try:
                parts.append(tokens[~sep].astype(np.int64))
            except ValueError:
                # Re-raise with the scalar parser's per-token message.
                for line in data.tolist():
                    for token in line.split():
                        int(token)
                raise
    if parts:
        edges = np.concatenate(parts).reshape(-1, 2)
    else:
        edges = np.zeros((0, 2), dtype=np.int64)
    if num_vertices is None:
        num_vertices = int(edges.max()) + 1 if edges.size else 0
    return edges, num_vertices


def save_edges_npz(
    path: PathLike,
    edges: np.ndarray,
    num_vertices: int,
    fmt: Optional[str] = None,
) -> None:
    """Persist an edge array compactly.

    ``fmt``, when given, records the preferred on-SSD edge-list format
    (``repro generate --graph-format``); loaders that build images can
    honour it via :func:`stored_graph_format`.
    """
    payload = {
        "edges": np.asarray(edges, dtype=np.int64).reshape(-1, 2),
        "num_vertices": np.int64(num_vertices),
    }
    if fmt is not None:
        payload["graph_format"] = np.asarray(fmt)
    np.savez_compressed(path, **payload)


def load_edges_npz(path: PathLike) -> Tuple[np.ndarray, int]:
    """Load an edge array written by :func:`save_edges_npz`."""
    with np.load(path) as data:
        return data["edges"], int(data["num_vertices"])


def stored_graph_format(path: PathLike) -> Optional[str]:
    """The ``fmt`` recorded by :func:`save_edges_npz`, or ``None``."""
    with np.load(path) as data:
        if "graph_format" in data.files:
            return str(data["graph_format"])
    return None


def edges_from_networkx(graph: nx.Graph) -> Tuple[np.ndarray, int]:
    """Convert a networkx (di)graph with integer nodes into our edge array."""
    nodes = sorted(graph.nodes())
    if nodes and (nodes[0] != 0 or nodes[-1] != len(nodes) - 1):
        relabel = {node: i for i, node in enumerate(nodes)}
        graph = nx.relabel_nodes(graph, relabel)
    edges = np.asarray(list(graph.edges()), dtype=np.int64).reshape(-1, 2)
    return edges, graph.number_of_nodes()


def image_to_networkx(image: GraphImage) -> nx.Graph:
    """Rebuild a networkx graph from a :class:`GraphImage` (for tests)."""
    graph = nx.DiGraph() if image.directed else nx.Graph()
    graph.add_nodes_from(range(image.num_vertices))
    indptr = image.out_csr.indptr
    indices = image.out_csr.indices
    for v in range(image.num_vertices):
        for u in indices[indptr[v] : indptr[v + 1]]:
            graph.add_edge(v, int(u))
    return graph
