"""Graph data representations (§3.5).

FlashGraph keeps two representations of a graph:

- **on SSDs** (:mod:`repro.graph.format`): edge lists sorted by vertex ID,
  each with a small header, in-edge and out-edge lists stored in separate
  files, edge attributes detached into their own files.  Format ``v2``
  (opt-in) stores each list's sorted neighbors as delta + group-varint
  bytes — see ``docs/graph_format.md``;
- **in memory** (:mod:`repro.graph.index`): a compact graph index that
  stores one degree byte per vertex (large degrees spill to a hash table)
  plus one exact byte offset every 32 edge lists, so edge-list locations
  are *computed* rather than stored — slightly over 1.25 bytes per vertex
  per direction.

:mod:`repro.graph.builder` turns raw edge arrays into both representations,
:mod:`repro.graph.generators` fabricates the scaled-down stand-ins for the
paper's Twitter/subdomain/page datasets, and
:mod:`repro.graph.page_vertex` parses edge lists straight out of cached
SAFS pages.
"""

from repro.graph.builder import GraphImage, build_directed, build_undirected
from repro.graph.format import (
    EDGE_BYTES,
    FORMAT_V1,
    FORMAT_V2,
    FORMATS,
    HEADER_BYTES,
    decode_lists_v2,
    edge_list_size,
    parse_edge_list,
    parse_edge_list_v2,
    serialize_adjacency,
    serialize_adjacency_v2,
    v2_edge_list_sizes,
)
from repro.graph.generators import (
    erdos_renyi_graph,
    page_sim,
    rmat_graph,
    subdomain_sim,
    twitter_sim,
    web_graph,
)
from repro.graph.index import GraphIndex, GraphIndexV2, build_index_v2
from repro.graph.page_vertex import PageVertex
from repro.graph.stats import degree_stats, degree_histogram, id_locality
from repro.graph.transform import (
    edge_array,
    largest_wcc,
    reverse,
    subgraph,
    to_undirected,
)
from repro.graph.types import EdgeType, INVALID_VERTEX, VertexID
from repro.graph.validation import ValidationReport, validate_image

__all__ = [
    "GraphImage",
    "build_directed",
    "build_undirected",
    "EDGE_BYTES",
    "FORMAT_V1",
    "FORMAT_V2",
    "FORMATS",
    "HEADER_BYTES",
    "decode_lists_v2",
    "edge_list_size",
    "parse_edge_list",
    "parse_edge_list_v2",
    "serialize_adjacency",
    "serialize_adjacency_v2",
    "v2_edge_list_sizes",
    "erdos_renyi_graph",
    "page_sim",
    "rmat_graph",
    "subdomain_sim",
    "twitter_sim",
    "web_graph",
    "GraphIndex",
    "GraphIndexV2",
    "build_index_v2",
    "PageVertex",
    "degree_stats",
    "degree_histogram",
    "id_locality",
    "edge_array",
    "largest_wcc",
    "reverse",
    "subgraph",
    "to_undirected",
    "EdgeType",
    "INVALID_VERTEX",
    "VertexID",
    "ValidationReport",
    "validate_image",
]
