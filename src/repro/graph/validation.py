"""Graph-image integrity checking.

A storage system needs a fsck.  :func:`validate_image` cross-checks the
three representations a :class:`~repro.graph.builder.GraphImage` carries —
serialized edge-list files, compact index, CSR adjacency — against each
other and reports every inconsistency:

- every edge list parses at exactly the offset the index computes, with
  the vertex ID and degree the index promises;
- file sizes match the index's computed layout;
- for directed graphs, the in-edge file is the exact transpose of the
  out-edge file;
- neighbor IDs are in range and sorted (the on-SSD invariant merging and
  intersection algorithms rely on).
"""

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.graph.builder import GraphImage
from repro.graph.format import parse_edge_list
from repro.graph.types import EdgeType


@dataclass
class ValidationReport:
    """The outcome of one integrity check."""

    errors: List[str] = field(default_factory=list)
    vertices_checked: int = 0
    edges_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.errors

    def add(self, message: str) -> None:
        self.errors.append(message)

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.errors)} errors"
        return (
            f"ValidationReport({status}, vertices={self.vertices_checked}, "
            f"edges={self.edges_checked})"
        )


def _validate_direction(image: GraphImage, direction: EdgeType, report: ValidationReport) -> None:
    index = image.index(direction)
    data = memoryview(image.file_bytes(direction))
    csr = image.csr(direction)
    if index.file_size != len(data):
        report.add(
            f"{direction.value}: index says {index.file_size} bytes, "
            f"file holds {len(data)}"
        )
        return
    num_vertices = image.num_vertices
    offsets, sizes = index.locate_many(np.arange(num_vertices))
    for vertex in range(num_vertices):
        try:
            vid, neighbors = parse_edge_list(data, int(offsets[vertex]))
        except ValueError as exc:
            report.add(f"{direction.value}: vertex {vertex} unparseable: {exc}")
            continue
        if vid != vertex:
            report.add(
                f"{direction.value}: offset of vertex {vertex} holds header "
                f"of vertex {vid}"
            )
            continue
        expected_degree = index.degree(vertex)
        if neighbors.size != expected_degree:
            report.add(
                f"{direction.value}: vertex {vertex} degree {neighbors.size} "
                f"on disk vs {expected_degree} in index"
            )
        in_csr = csr.neighbors(vertex)
        if not np.array_equal(neighbors, in_csr):
            report.add(
                f"{direction.value}: vertex {vertex} neighbors differ "
                f"between file and CSR"
            )
        if neighbors.size:
            if int(neighbors.max()) >= num_vertices:
                report.add(
                    f"{direction.value}: vertex {vertex} has out-of-range "
                    f"neighbor {int(neighbors.max())}"
                )
            if np.any(np.diff(neighbors.astype(np.int64)) < 0):
                report.add(
                    f"{direction.value}: vertex {vertex} neighbors not sorted"
                )
        report.vertices_checked += 1
        report.edges_checked += int(neighbors.size)


def _validate_transpose(image: GraphImage, report: ValidationReport) -> None:
    out_edges = set()
    for vertex in range(image.num_vertices):
        for neighbor in image.out_csr.neighbors(vertex):
            out_edges.add((vertex, int(neighbor)))
    in_edges = set()
    for vertex in range(image.num_vertices):
        for neighbor in image.in_csr.neighbors(vertex):
            in_edges.add((int(neighbor), vertex))
    missing = out_edges - in_edges
    extra = in_edges - out_edges
    if missing:
        report.add(f"transpose: {len(missing)} out-edges absent from in-file")
    if extra:
        report.add(f"transpose: {len(extra)} in-edges absent from out-file")


def validate_image(image: GraphImage, check_transpose: bool = True) -> ValidationReport:
    """Full integrity check of a graph image.

    ``check_transpose`` compares the two directions edge-by-edge (O(E)
    memory); disable it for very large images.
    """
    report = ValidationReport()
    _validate_direction(image, EdgeType.OUT, report)
    if image.directed:
        _validate_direction(image, EdgeType.IN, report)
        if check_transpose:
            _validate_transpose(image, report)
    return report
