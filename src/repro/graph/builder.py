"""Building FlashGraph images from raw edge arrays.

A :class:`GraphImage` bundles everything one graph needs:

- the serialized on-SSD edge-list files (out-edges, and in-edges for a
  directed graph) plus optional detached attribute files,
- one compact :class:`~repro.graph.index.GraphIndex` per direction,
- the CSR adjacency kept for in-memory mode and for verification.

The paper amortises construction cost by using a single external-memory
structure for every algorithm; likewise one image serves BFS through scan
statistics unchanged.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.graph.format import (
    FORMAT_V1,
    FORMAT_V2,
    FORMATS,
    EDGE_BYTES,
    HEADER_BYTES,
    adjacency_from_edges,
    serialize_adjacency,
    serialize_adjacency_v2,
    serialize_attributes,
)
from repro.graph.index import GraphIndex, build_index, build_index_v2
from repro.graph.types import EdgeType


@dataclass
class CSR:
    """A compressed-sparse-row adjacency."""

    indptr: np.ndarray
    indices: np.ndarray

    def neighbors(self, vertex: int) -> np.ndarray:
        """Neighbor IDs of ``vertex`` (zero-copy slice)."""
        return self.indices[self.indptr[vertex] : self.indptr[vertex + 1]]

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    @property
    def num_edges(self) -> int:
        return int(self.indices.size)


@dataclass
class GraphImage:
    """One graph in both representations (in-memory and on-SSD)."""

    name: str
    num_vertices: int
    directed: bool
    out_csr: CSR
    in_csr: CSR
    out_bytes: bytes
    in_bytes: bytes
    out_index: GraphIndex
    in_index: GraphIndex
    attr_bytes: Dict[EdgeType, bytes] = field(default_factory=dict)
    attr_offsets: Dict[EdgeType, np.ndarray] = field(default_factory=dict)
    #: Logical edge count: each directed edge once; each undirected edge
    #: once even though it is stored in both endpoints' lists.
    edge_count: int = 0
    #: On-SSD edge-list format ("v1" fixed u32, "v2" delta+varint).
    fmt: str = FORMAT_V1

    @property
    def num_edges(self) -> int:
        """Logical edge count of the input graph."""
        return self.edge_count

    def csr(self, edge_type: EdgeType) -> CSR:
        """The adjacency for one direction."""
        if edge_type is EdgeType.IN:
            return self.in_csr
        if edge_type is EdgeType.OUT:
            return self.out_csr
        raise ValueError("BOTH must be expanded before picking a CSR")

    def index(self, edge_type: EdgeType) -> GraphIndex:
        """The compact index for one direction."""
        if edge_type is EdgeType.IN:
            return self.in_index
        if edge_type is EdgeType.OUT:
            return self.out_index
        raise ValueError("BOTH must be expanded before picking an index")

    def file_bytes(self, edge_type: EdgeType) -> bytes:
        """The serialized edge-list file for one direction."""
        if edge_type is EdgeType.IN:
            return self.in_bytes
        if edge_type is EdgeType.OUT:
            return self.out_bytes
        raise ValueError("BOTH must be expanded before picking a file")

    def file_name(self, edge_type: EdgeType) -> str:
        """The SAFS name of one direction's edge-list file."""
        return f"{self.name}.{edge_type.value}-edges"

    def storage_bytes(self) -> int:
        """Total on-SSD footprint of the image."""
        total = len(self.out_bytes)
        if self.directed:
            total += len(self.in_bytes)
        total += sum(len(b) for b in self.attr_bytes.values())
        return total

    def index_memory_bytes(self) -> int:
        """RAM held by the compact indexes (in+out for directed graphs)."""
        total = self.out_index.memory_bytes()
        if self.directed:
            total += self.in_index.memory_bytes()
        return total

    def uncompressed_bytes(self) -> int:
        """The edge files' sizes had they been laid out as format v1 —
        the denominator of :meth:`compression_ratio`."""
        total = HEADER_BYTES * self.num_vertices + EDGE_BYTES * int(
            self.out_csr.num_edges
        )
        if self.directed:
            total += HEADER_BYTES * self.num_vertices + EDGE_BYTES * int(
                self.in_csr.num_edges
            )
        return total

    def compression_ratio(self) -> float:
        """v1-equivalent bytes over actual edge-file bytes (1.0 for v1)."""
        actual = len(self.out_bytes) + (len(self.in_bytes) if self.directed else 0)
        return self.uncompressed_bytes() / actual if actual else 1.0

    def attach_to_safs(self, safs) -> None:
        """Create this image's files inside a SAFS instance."""
        safs.create_file(self.file_name(EdgeType.OUT), self.out_bytes, fmt=self.fmt)
        if self.directed:
            safs.create_file(self.file_name(EdgeType.IN), self.in_bytes, fmt=self.fmt)
        for edge_type, data in self.attr_bytes.items():
            safs.create_file(f"{self.name}.{edge_type.value}-attrs", data)

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"GraphImage(name={self.name!r}, {kind}, "
            f"V={self.num_vertices}, E={self.num_edges})"
        )


def _build_direction(
    edges: np.ndarray, num_vertices: int, fmt: str = FORMAT_V1
) -> Tuple[CSR, bytes, GraphIndex]:
    indptr, indices = adjacency_from_edges(edges, num_vertices)
    if fmt == FORMAT_V2:
        data, offsets = serialize_adjacency_v2(indptr, indices)
        index = build_index_v2(np.diff(indptr), offsets)
    else:
        data, offsets = serialize_adjacency(indptr, indices)
        index = build_index(np.diff(indptr), offsets)
    return CSR(indptr, indices), data, index


def _check_fmt(fmt: str) -> None:
    if fmt not in FORMATS:
        raise ValueError(f"unknown graph format {fmt!r}; pick from {FORMATS}")


def build_directed(
    edges: np.ndarray,
    num_vertices: int,
    name: str = "graph",
    weights: Optional[np.ndarray] = None,
    fmt: str = FORMAT_V1,
) -> GraphImage:
    """Build a directed image from an ``(m, 2)`` src→dst edge array.

    Duplicate edges are dropped (FlashGraph's input graphs are simple).
    ``weights``, when given, become detached out-edge attributes.
    ``fmt`` picks the on-SSD edge-list layout (v1 default, v2 compressed).
    """
    _check_fmt(fmt)
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    edges, weights = _dedup(edges, weights)
    out_csr, out_bytes, out_index = _build_direction(edges, num_vertices, fmt)
    reversed_edges = edges[:, ::-1]
    in_csr, in_bytes, in_index = _build_direction(reversed_edges, num_vertices, fmt)
    image = GraphImage(
        name=name,
        num_vertices=num_vertices,
        directed=True,
        out_csr=out_csr,
        in_csr=in_csr,
        out_bytes=out_bytes,
        in_bytes=in_bytes,
        out_index=out_index,
        in_index=in_index,
        edge_count=int(edges.shape[0]),
        fmt=fmt,
    )
    if weights is not None:
        _attach_weights(image, edges, weights, num_vertices)
    return image


def build_undirected(
    edges: np.ndarray,
    num_vertices: int,
    name: str = "graph",
    weights: Optional[np.ndarray] = None,
    fmt: str = FORMAT_V1,
) -> GraphImage:
    """Build an undirected image: each edge is stored in both endpoints'
    lists, self-loops once.  A single edge-list file serves both
    directions (``in_*`` aliases ``out_*``)."""
    _check_fmt(fmt)
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    # Canonicalise (u <= v) then deduplicate.
    lo = edges.min(axis=1)
    hi = edges.max(axis=1)
    edges = np.stack([lo, hi], axis=1)
    edges, weights = _dedup(edges, weights)
    loops = edges[:, 0] == edges[:, 1]
    sym = np.concatenate([edges, edges[~loops][:, ::-1]])
    sym_weights = None
    if weights is not None:
        sym_weights = np.concatenate([weights, weights[~loops]])
    csr, data, index = _build_direction(sym, num_vertices, fmt)
    image = GraphImage(
        name=name,
        num_vertices=num_vertices,
        directed=False,
        out_csr=csr,
        in_csr=csr,
        out_bytes=data,
        in_bytes=data,
        out_index=index,
        in_index=index,
        edge_count=int(edges.shape[0]),
        fmt=fmt,
    )
    if sym_weights is not None:
        _attach_weights(image, sym, sym_weights, num_vertices)
    return image


def _dedup(
    edges: np.ndarray, weights: Optional[np.ndarray]
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    if edges.size == 0:
        return edges, weights
    keys = edges[:, 0] * (edges.max() + 1) + edges[:, 1]
    _, unique_idx = np.unique(keys, return_index=True)
    unique_idx.sort()
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float32)[unique_idx]
    return edges[unique_idx], weights


def _attach_weights(
    image: GraphImage, edges: np.ndarray, weights: np.ndarray, num_vertices: int
) -> None:
    # Attributes follow the CSR edge order: sort by (src, dst) like lexsort
    # inside adjacency_from_edges.
    order = np.lexsort((edges[:, 1], edges[:, 0]))
    ordered = np.asarray(weights, dtype=np.float32)[order]
    data, offsets = serialize_attributes(image.out_csr.indptr, ordered)
    image.attr_bytes[EdgeType.OUT] = data
    image.attr_offsets[EdgeType.OUT] = offsets
