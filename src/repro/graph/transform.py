"""Graph transformations.

Construction-time utilities a downstream user needs around the engine:
extracting subgraphs, reversing edge directions, projecting a directed
graph to its undirected form, and isolating the largest weakly-connected
component (the usual preprocessing step before running expensive
analytics on web crawls).

All functions return new :class:`~repro.graph.builder.GraphImage` objects
with densely renumbered vertex IDs plus the mapping back to the original
IDs — FlashGraph's on-SSD format requires dense IDs (§3.5).
"""

from typing import Tuple

import numpy as np

from repro.graph.builder import GraphImage, build_directed, build_undirected


def edge_array(image: GraphImage) -> np.ndarray:
    """The image's logical edges as an ``(m, 2)`` array.

    Directed images return each edge once; undirected images return each
    stored direction once with ``u <= v``.
    """
    indptr = image.out_csr.indptr
    indices = image.out_csr.indices.astype(np.int64)
    src = np.repeat(np.arange(image.num_vertices, dtype=np.int64), np.diff(indptr))
    edges = np.stack([src, indices], axis=1)
    if not image.directed:
        edges = edges[edges[:, 0] <= edges[:, 1]]
    return edges


def reverse(image: GraphImage) -> GraphImage:
    """The transpose graph: every edge ``u -> v`` becomes ``v -> u``."""
    if not image.directed:
        raise ValueError("reversing an undirected graph is a no-op")
    edges = edge_array(image)
    return build_directed(
        edges[:, ::-1], image.num_vertices, name=f"{image.name}-rev"
    )


def to_undirected(image: GraphImage) -> GraphImage:
    """The undirected projection of a directed image."""
    if not image.directed:
        return image
    return build_undirected(
        edge_array(image), image.num_vertices, name=f"{image.name}-und"
    )


def subgraph(image: GraphImage, vertices: np.ndarray) -> Tuple[GraphImage, np.ndarray]:
    """The induced subgraph on ``vertices``.

    Returns ``(sub_image, original_ids)`` where ``original_ids[new_id]``
    recovers the source vertex of each renumbered vertex.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    if vertices.size == 0:
        raise ValueError("a subgraph needs at least one vertex")
    if vertices.min() < 0 or vertices.max() >= image.num_vertices:
        raise ValueError("subgraph vertices out of range")
    keep = np.zeros(image.num_vertices, dtype=bool)
    keep[vertices] = True
    renumber = np.full(image.num_vertices, -1, dtype=np.int64)
    renumber[vertices] = np.arange(vertices.size)

    edges = edge_array(image)
    mask = keep[edges[:, 0]] & keep[edges[:, 1]]
    kept = renumber[edges[mask]]
    builder = build_directed if image.directed else build_undirected
    sub = builder(kept, int(vertices.size), name=f"{image.name}-sub")
    return sub, vertices


def largest_wcc(image: GraphImage) -> Tuple[GraphImage, np.ndarray]:
    """The induced subgraph on the largest weakly-connected component."""
    from repro.baselines.common import wcc_trace

    labels, _ = wcc_trace(image)
    values, counts = np.unique(labels, return_counts=True)
    biggest = values[np.argmax(counts)]
    members = np.nonzero(labels == biggest)[0]
    return subgraph(image, members)
