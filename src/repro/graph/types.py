"""Shared vertex/edge types."""

import enum

#: Vertex identifiers are dense 32-bit integers, as in FlashGraph's on-SSD
#: format (the paper's largest graph has 3.4B vertices, within u32 range).
VertexID = int

#: Sentinel for "no vertex" (the all-ones u32).
INVALID_VERTEX: VertexID = 0xFFFFFFFF


class EdgeType(enum.Enum):
    """Which edge lists of a directed vertex an algorithm requests.

    The on-SSD layout stores in-edges and out-edges in separate files so
    that algorithms needing only one direction read half the data (§3.5.2).
    """

    OUT = "out"
    IN = "in"
    BOTH = "both"

    def directions(self):
        """The single directions this request expands to."""
        if self is EdgeType.BOTH:
            return (EdgeType.OUT, EdgeType.IN)
        return (self,)
