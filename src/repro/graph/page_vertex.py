"""Zero-copy edge-list views handed to vertex programs.

When an I/O request completes, the SAFS user task runs against the page
cache and parses the vertex's edge list in place: this is the
``page_vertex`` argument of ``run_on_vertex`` in the paper's API
(Figure 3).  No edge data is ever copied into per-vertex buffers.
"""

from typing import Optional

import numpy as np

from repro.graph.format import (
    FORMAT_V1,
    FORMAT_V2,
    _ramp,
    gather_ranges,
    parse_edge_list,
    parse_edge_list_v2,
    scatter_positions,
)
from repro.graph.types import EdgeType

__all__ = [
    "PageVertex",
    "PageVertexBatch",
    "gather_ranges",
    "scatter_positions",
]


class PageVertex:
    """A vertex's edge list parsed out of cached SAFS pages."""

    __slots__ = ("_vertex_id", "_edges", "_edge_type", "_attrs")

    def __init__(
        self,
        data: memoryview,
        edge_type: EdgeType = EdgeType.OUT,
        attrs: Optional[np.ndarray] = None,
        fmt: str = FORMAT_V1,
    ) -> None:
        if fmt == FORMAT_V2:
            self._vertex_id, self._edges = parse_edge_list_v2(data)
        else:
            self._vertex_id, self._edges = parse_edge_list(data)
        self._edge_type = edge_type
        self._attrs = attrs

    @classmethod
    def from_arrays(
        cls,
        vertex_id: int,
        edges: np.ndarray,
        edge_type: EdgeType = EdgeType.OUT,
        attrs: Optional[np.ndarray] = None,
    ) -> "PageVertex":
        """Build a view directly from in-memory arrays (in-memory mode)."""
        view = cls.__new__(cls)
        view._vertex_id = int(vertex_id)
        view._edges = np.asarray(edges, dtype=np.uint32)
        view._edge_type = edge_type
        view._attrs = attrs
        return view

    @property
    def vertex_id(self) -> int:
        """The vertex this edge list belongs to."""
        return self._vertex_id

    @property
    def edge_type(self) -> EdgeType:
        """Which direction's list this is (IN or OUT)."""
        return self._edge_type

    @property
    def num_edges(self) -> int:
        """Degree in this direction."""
        return int(self._edges.size)

    def read_edges(self) -> np.ndarray:
        """The neighbor IDs, zero-copy (paper: ``v.read_edges(dest_buf)``)."""
        return self._edges

    def read_edge_attrs(self) -> np.ndarray:
        """Per-edge attributes, when the algorithm requested them."""
        if self._attrs is None:
            raise ValueError(
                f"vertex {self._vertex_id}: edge attributes were not requested"
            )
        return self._attrs

    @property
    def has_attrs(self) -> bool:
        return self._attrs is not None

    def __repr__(self) -> str:
        return (
            f"PageVertex(id={self._vertex_id}, degree={self.num_edges}, "
            f"type={self._edge_type.value})"
        )


# _ramp / gather_ranges / scatter_positions now live in
# repro.graph.format (the v2 codec needs them below PageVertex in the
# import graph); they are re-exported here for existing callers.


class PageVertexBatch:
    """Edge lists of a whole delivered wave, parsed as flat arrays.

    The batched twin of :class:`PageVertex`: ``vertices[i]`` received a
    list of ``degrees[i]`` neighbors, and every list sits concatenated in
    delivery order inside one array.  Handed to
    ``VertexProgram.run_on_vertices`` so data-parallel algorithms touch
    numpy arrays instead of one ``PageVertex`` object per list.
    """

    __slots__ = ("vertices", "degrees", "_edges")

    def __init__(self, vertices: np.ndarray, degrees: np.ndarray, edges: np.ndarray) -> None:
        self.vertices = vertices
        self.degrees = degrees
        self._edges = edges

    @property
    def num_lists(self) -> int:
        """Delivered edge lists (one per requesting vertex occurrence)."""
        return int(self.vertices.size)

    @property
    def total_edges(self) -> int:
        return int(self._edges.size)

    def read_edges_concat(self) -> np.ndarray:
        """All neighbor IDs, list after list in delivery order."""
        return self._edges

    def repeat(self, per_list_values: np.ndarray) -> np.ndarray:
        """Expand one value per list to one value per edge (the batched
        form of multicasting a scalar message payload to every neighbor)."""
        return np.repeat(np.asarray(per_list_values), self.degrees)
