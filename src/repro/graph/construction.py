"""External-memory graph construction (the "Init time" of Table 2).

FlashGraph amortises construction cost: the image is built once and one
external-memory structure serves every algorithm (§3.5.2).  Construction
of a graph bigger than RAM is an external merge-sort of the edge list:

1. **chunk**: stream the raw edge list from storage in RAM-sized chunks,
   sort each by source vertex, write sorted runs back;
2. **merge**: k-way merge the runs into the final vertex-ID-ordered
   edge-list files (out-edges, then the transpose pass for in-edges);
3. **index**: distill the degree array into the compact graph index.

This module performs the construction *for real* on the in-memory edge
arrays (numpy sorts standing in for the run sorts) while modelling the
time of every storage pass through the array's read bandwidth and the
SAFS write path — giving Table 2's init column a mechanical basis rather
than a guess.
"""

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.builder import GraphImage, build_directed
from repro.safs.write_path import GraphLoader, WriteModel
from repro.sim.ssd_array import SSDArray, SSDArrayConfig
from repro.sim.stats import StatsCollector

#: Bytes per raw input edge (two u32 endpoints).
RAW_EDGE_BYTES = 8


@dataclass(frozen=True)
class ConstructionConfig:
    """Knobs of the external sort."""

    #: RAM available for sorting, in bytes — determines run count.
    sort_memory_bytes: int = 1 << 20
    #: CPU cost per edge per sort/merge pass.
    cpu_per_edge: float = 20e-9
    #: Cores participating in the sort.
    num_cores: int = 32


@dataclass
class ConstructionReport:
    """What building one image cost."""

    image: GraphImage
    #: Simulated seconds for the whole construction.
    seconds: float
    #: External sort runs (1 = the edge list fit in memory).
    num_runs: int
    #: Bytes read from / written to the array across all passes.
    bytes_read: float
    bytes_written: float
    #: Flash pages programmed, including write amplification (wear).
    flash_pages_programmed: int


class GraphConstructor:
    """Builds images and accounts the external-sort passes."""

    def __init__(
        self,
        array: Optional[SSDArray] = None,
        config: Optional[ConstructionConfig] = None,
        write_model: Optional[WriteModel] = None,
        stats: Optional[StatsCollector] = None,
    ) -> None:
        self.stats = stats if stats is not None else StatsCollector()
        self.array = array or SSDArray(SSDArrayConfig(), self.stats)
        self.config = config or ConstructionConfig()
        if self.config.sort_memory_bytes <= 0:
            raise ValueError("sort memory must be positive")
        self.loader = GraphLoader(self.array, write_model, self.stats)

    def num_runs(self, num_edges: int) -> int:
        """Sorted runs the chunk phase produces."""
        run_edges = max(1, self.config.sort_memory_bytes // RAW_EDGE_BYTES)
        return max(1, (num_edges + run_edges - 1) // run_edges)

    def build(
        self, edges: np.ndarray, num_vertices: int, name: str = "graph"
    ) -> ConstructionReport:
        """Construct a directed image and report the simulated cost.

        The edge data really is sorted and serialized (via the builder);
        the report prices the equivalent external passes.
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        num_edges = int(edges.shape[0])
        raw_bytes = float(num_edges * RAW_EDGE_BYTES)
        runs = self.num_runs(num_edges)

        read_bw = self.array.config.max_bandwidth
        seconds = 0.0
        bytes_read = 0.0
        bytes_written = 0.0

        # Pass 1 — chunk: read raw edges, sort runs in RAM, write runs.
        seconds += raw_bytes / read_bw
        seconds += self.loader.write_time(int(raw_bytes))
        seconds += num_edges * self.config.cpu_per_edge / self.config.num_cores
        bytes_read += raw_bytes
        bytes_written += raw_bytes

        # Pass 2 — merge runs into the out-edge file (skipped if 1 run),
        # then pass 3 — the transpose sort for the in-edge file.
        transpose_passes = 1
        merge_passes = (1 if runs > 1 else 0) + transpose_passes
        for _ in range(merge_passes):
            seconds += raw_bytes / read_bw
            seconds += self.loader.write_time(int(raw_bytes))
            seconds += num_edges * self.config.cpu_per_edge / self.config.num_cores
            bytes_read += raw_bytes
            bytes_written += raw_bytes

        # The actual construction (exact bytes, exact index).
        image = build_directed(edges, num_vertices, name=name)

        # Final write of the serialized image files (and the wear bill).
        write_seconds, programmed = self.loader.load_image(image)
        seconds += write_seconds
        bytes_written += image.storage_bytes()

        return ConstructionReport(
            image=image,
            seconds=seconds,
            num_runs=runs,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            flash_pages_programmed=programmed,
        )


def init_time(
    image: GraphImage, array: Optional[SSDArray] = None
) -> float:
    """Table 2's init column: loading an already-constructed image.

    Init scans the on-SSD edge-list headers once to distill degrees into
    the compact index, then allocates engine state — a sequential read of
    the image plus per-vertex index work.
    """
    array = array or SSDArray(SSDArrayConfig())
    scan = image.storage_bytes() / array.config.max_bandwidth
    index_build = image.num_vertices * 25e-9
    return scan + index_build
