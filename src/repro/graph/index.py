"""The compact in-memory graph index (§3.5.1).

Storing the location *and* size of every edge list would cost 12 bytes per
undirected vertex (24 directed).  FlashGraph instead stores:

- one **degree byte** per vertex (degrees ≥ 255 spill to a hash table —
  power-law graphs have few such vertices),
- one exact byte offset for every 32nd edge list (a *checkpoint*),

and computes any edge list's location by walking degrees forward from the
nearest checkpoint — slightly over 1.25 bytes per vertex per direction.
"""

from typing import Dict, Optional, Tuple

import numpy as np

from repro.graph.format import EDGE_BYTES, HEADER_BYTES

#: Degrees at or above this value live in the large-vertex hash table.
LARGE_DEGREE = 255
#: An exact location is stored once per this many edge lists.
CHECKPOINT_INTERVAL = 32
#: v2 record sizes at or above this value spill to the hash table (the
#: compact per-vertex size slot is a u16).
LARGE_SIZE = 0xFFFF


class GraphIndex:
    """Maps a vertex ID to its degree and on-SSD edge-list location."""

    def __init__(
        self,
        degrees: np.ndarray,
        checkpoint_interval: int = CHECKPOINT_INTERVAL,
        header_bytes: int = HEADER_BYTES,
        edge_bytes: int = EDGE_BYTES,
    ) -> None:
        degrees = np.asarray(degrees, dtype=np.int64)
        if degrees.ndim != 1:
            raise ValueError("degrees must be a 1-D array")
        if degrees.size and degrees.min() < 0:
            raise ValueError("degrees cannot be negative")
        if checkpoint_interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        self._num_vertices = int(degrees.size)
        self._interval = checkpoint_interval
        self._header_bytes = header_bytes
        self._edge_bytes = edge_bytes

        # The degree-byte array with the hash-table spill for hubs.
        self._degree_bytes = np.minimum(degrees, LARGE_DEGREE).astype(np.uint8)
        large = np.nonzero(degrees >= LARGE_DEGREE)[0]
        self._large_degrees: Dict[int, int] = {
            int(v): int(degrees[v]) for v in large
        }

        # Checkpoints: exact offsets of vertices 0, interval, 2*interval, ...
        sizes = header_bytes + degrees * edge_bytes
        offsets = np.zeros(self._num_vertices + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        self._file_size = int(offsets[-1])
        self._checkpoints = offsets[:-1:checkpoint_interval].copy()
        self._total_edges = int(degrees.sum())

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Total stored edges (sum of degrees)."""
        return self._total_edges

    @property
    def file_size(self) -> int:
        """Size in bytes of the on-SSD edge-list file this index describes."""
        return self._file_size

    def degree(self, vertex: int) -> int:
        """The degree of ``vertex``."""
        self._check(vertex)
        small = int(self._degree_bytes[vertex])
        if small < LARGE_DEGREE:
            return small
        return self._large_degrees[vertex]

    def edge_list_size(self, vertex: int) -> int:
        """On-SSD bytes of ``vertex``'s edge list."""
        return self._header_bytes + self.degree(vertex) * self._edge_bytes

    def locate(self, vertex: int) -> Tuple[int, int]:
        """``(offset, size)`` of ``vertex``'s edge list, computed at runtime.

        Walks degrees forward from the nearest checkpoint — the
        computation/memory trade the paper tunes with the interval of 32.
        """
        self._check(vertex)
        checkpoint = vertex // self._interval
        offset = int(self._checkpoints[checkpoint])
        for v in range(checkpoint * self._interval, vertex):
            offset += self._header_bytes + self.degree(v) * self._edge_bytes
        return offset, self.edge_list_size(vertex)

    def locate_many(self, vertices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised ``locate`` for a batch of vertices.

        Semantically identical to calling :meth:`locate` per vertex (the
        tests assert this); implemented against a lazily materialised exact
        offset table purely as a CPython-speed shortcut.  The *modelled*
        memory cost in :meth:`memory_bytes` remains the compact index —
        the shortcut table is simulator overhead, not simulated RAM.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size and (vertices.min() < 0 or vertices.max() >= self._num_vertices):
            raise IndexError("vertex id out of range in locate_many")
        exact = self._exact_offsets()
        offsets = exact[vertices]
        sizes = (
            self._header_bytes
            + self.degrees_of(vertices) * self._edge_bytes
        )
        return offsets, sizes

    def degrees_of(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorised degree lookup.

        A whole wave's degrees resolve as one gather against a lazily
        materialised full-width degree table (hash-table spill folded in).
        Like the ``locate_many`` shortcut table, this is simulator speed
        only — the *modelled* RAM stays the compact 1.25B/vertex index.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        return self._full_degrees()[vertices]

    def _full_degrees(self) -> np.ndarray:
        cached = getattr(self, "_full_degrees_cache", None)
        if cached is None:
            cached = self.degrees_array()
            self._full_degrees_cache = cached
        return cached

    def _exact_offsets(self) -> np.ndarray:
        cached = getattr(self, "_exact_offsets_cache", None)
        if cached is None:
            sizes = self._header_bytes + self._full_degrees() * self._edge_bytes
            cached = np.zeros(self._num_vertices + 1, dtype=np.int64)
            np.cumsum(sizes, out=cached[1:])
            self._exact_offsets_cache = cached
        return cached

    def memory_bytes(self) -> int:
        """Estimated RAM held by this index.

        One byte per vertex, 8 bytes per checkpoint, and roughly 32 bytes
        per large-vertex hash entry — with the default interval this is the
        paper's "slightly larger than 1.25 bytes" per vertex.
        """
        return (
            self._num_vertices
            + 8 * len(self._checkpoints)
            + 32 * len(self._large_degrees)
        )

    def num_large_vertices(self) -> int:
        """Vertices whose degree lives in the hash table."""
        return len(self._large_degrees)

    def degrees_array(self) -> np.ndarray:
        """All degrees as an int64 array (materialised; test/debug helper)."""
        out = self._degree_bytes.astype(np.int64)
        for vertex, degree in self._large_degrees.items():
            out[vertex] = degree
        return out

    def _check(self, vertex: int) -> None:
        if not 0 <= vertex < self._num_vertices:
            raise IndexError(
                f"vertex {vertex} out of range [0, {self._num_vertices})"
            )

    def __repr__(self) -> str:
        return (
            f"GraphIndex(vertices={self._num_vertices}, "
            f"edges={self._total_edges}, "
            f"memory={self.memory_bytes()}B)"
        )


class GraphIndexV2(GraphIndex):
    """The index for compressed (format v2) edge files.

    v2 record sizes depend on the encoded bytes, not just the degree, so
    the index carries a compact per-vertex **size** table alongside the
    degree bytes: a u16 per vertex (sizes ≥ 64 KiB spill to the same kind
    of hash table the degree bytes use) plus the exact-offset checkpoints,
    now accumulated over the true compressed sizes.  Locations remain
    *computed* — walk sizes forward from the nearest checkpoint — and are
    exact for the compressed layout.
    """

    def __init__(
        self,
        degrees: np.ndarray,
        sizes: np.ndarray,
        checkpoint_interval: int = CHECKPOINT_INTERVAL,
    ) -> None:
        super().__init__(degrees, checkpoint_interval=checkpoint_interval)
        sizes = np.asarray(sizes, dtype=np.int64)
        if sizes.shape != (self._num_vertices,):
            raise ValueError("one size per vertex is required")
        if sizes.size and sizes.min() < HEADER_BYTES:
            raise ValueError("v2 record sizes cannot undercut the header")
        self._size_words = np.minimum(sizes, LARGE_SIZE).astype(np.uint16)
        large = np.nonzero(sizes >= LARGE_SIZE)[0]
        self._large_sizes: Dict[int, int] = {
            int(v): int(sizes[v]) for v in large
        }
        offsets = np.zeros(self._num_vertices + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        self._file_size = int(offsets[-1])
        self._checkpoints = offsets[:-1:checkpoint_interval].copy()
        self._exact_offsets_cache = offsets
        self._exact_sizes = sizes

    def edge_list_size(self, vertex: int) -> int:
        """On-SSD bytes of ``vertex``'s compressed edge list."""
        self._check(vertex)
        small = int(self._size_words[vertex])
        if small < LARGE_SIZE:
            return small
        return self._large_sizes[vertex]

    def locate(self, vertex: int) -> Tuple[int, int]:
        """``(offset, size)`` in the compressed file, walked from the
        nearest checkpoint over the per-vertex size table."""
        self._check(vertex)
        checkpoint = vertex // self._interval
        offset = int(self._checkpoints[checkpoint])
        for v in range(checkpoint * self._interval, vertex):
            offset += self.edge_list_size(v)
        return offset, self.edge_list_size(vertex)

    def locate_many(self, vertices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`locate` against the exact compressed offsets."""
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size and (
            vertices.min() < 0 or vertices.max() >= self._num_vertices
        ):
            raise IndexError("vertex id out of range in locate_many")
        return self._exact_offsets_cache[vertices], self._exact_sizes[vertices]

    def memory_bytes(self) -> int:
        """The compact v1 index plus two size bytes per vertex and the
        large-size hash entries."""
        return (
            super().memory_bytes()
            + 2 * self._num_vertices
            + 32 * len(self._large_sizes)
        )

    def sizes_array(self) -> np.ndarray:
        """All compressed record sizes as int64 (test/debug helper)."""
        out = self._size_words.astype(np.int64)
        for vertex, size in self._large_sizes.items():
            out[vertex] = size
        return out

    def __repr__(self) -> str:
        return (
            f"GraphIndexV2(vertices={self._num_vertices}, "
            f"edges={self._total_edges}, "
            f"file={self._file_size}B, "
            f"memory={self.memory_bytes()}B)"
        )


def build_index(degrees: np.ndarray, offsets: Optional[np.ndarray] = None) -> GraphIndex:
    """Build a :class:`GraphIndex` and, when given the serializer's exact
    ``offsets``, verify the computed layout matches them."""
    index = GraphIndex(degrees)
    if offsets is not None:
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets[-1] != index.file_size:
            raise ValueError(
                "index layout disagrees with the serialized file size: "
                f"{index.file_size} vs {offsets[-1]}"
            )
    return index


def build_index_v2(
    degrees: np.ndarray, offsets: np.ndarray
) -> GraphIndexV2:
    """Build a :class:`GraphIndexV2` from the v2 serializer's exact
    ``offsets`` (``n + 1`` entries; sizes are their differences)."""
    offsets = np.asarray(offsets, dtype=np.int64)
    index = GraphIndexV2(degrees, np.diff(offsets))
    if offsets[-1] != index.file_size:
        raise ValueError(
            "v2 index layout disagrees with the serialized file size: "
            f"{index.file_size} vs {offsets[-1]}"
        )
    return index
