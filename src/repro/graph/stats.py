"""Graph statistics utilities.

Used to validate that the generated dataset stand-ins carry the
structural properties the paper's results depend on: the power-law degree
skew (§1: "many real-world graphs exhibit a power-law distribution on the
degree of vertices") and vertex-ID locality (the page graph is clustered
by domain).
"""

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.graph.builder import GraphImage
from repro.graph.format import EDGE_BYTES, HEADER_BYTES, v2_edge_list_sizes
from repro.graph.types import EdgeType


@dataclass(frozen=True)
class DegreeStats:
    """Summary of one direction's degree distribution."""

    mean: float
    median: float
    maximum: int
    #: Fraction of edges owned by the top 1% of vertices (skew measure).
    top1pct_edge_share: float
    #: Gini coefficient of the degree distribution.
    gini: float
    #: MLE power-law exponent fit on the tail (``None`` if degenerate).
    powerlaw_alpha: Optional[float]


def degree_stats(
    image: GraphImage, edge_type: EdgeType = EdgeType.OUT, xmin: int = 2
) -> DegreeStats:
    """Degree-distribution summary for one direction."""
    degrees = image.csr(edge_type).degrees().astype(np.float64)
    if degrees.size == 0:
        raise ValueError("the graph has no vertices")
    total = degrees.sum()
    ordered = np.sort(degrees)[::-1]
    top = max(1, degrees.size // 100)
    top_share = float(ordered[:top].sum() / total) if total else 0.0
    return DegreeStats(
        mean=float(degrees.mean()),
        median=float(np.median(degrees)),
        maximum=int(degrees.max()),
        top1pct_edge_share=top_share,
        gini=_gini(degrees),
        powerlaw_alpha=_powerlaw_alpha(degrees, xmin),
    )


def _gini(values: np.ndarray) -> float:
    """Gini coefficient in [0, 1]; 0 = uniform, → 1 = concentrated."""
    if values.sum() == 0:
        return 0.0
    ordered = np.sort(values)
    n = ordered.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * ordered).sum()) / (n * ordered.sum()) - (n + 1) / n)


def _powerlaw_alpha(degrees: np.ndarray, xmin: int) -> Optional[float]:
    """Clauset-Shalizi-Newman MLE: alpha = 1 + n / sum(ln(d / (xmin - 1/2)))."""
    tail = degrees[degrees >= xmin]
    if tail.size < 10:
        return None
    return float(1.0 + tail.size / np.log(tail / (xmin - 0.5)).sum())


def id_locality(image: GraphImage, window: int = 64) -> float:
    """Fraction of edges whose endpoints are within ``window`` IDs.

    High locality (the page graph's domain clustering) is what makes
    FlashGraph's range partitioning and request merging effective.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    indptr = image.out_csr.indptr
    indices = image.out_csr.indices.astype(np.int64)
    if indices.size == 0:
        return 0.0
    src = np.repeat(np.arange(image.num_vertices, dtype=np.int64), np.diff(indptr))
    return float(np.mean(np.abs(src - indices) <= window))


def degree_histogram(
    image: GraphImage, edge_type: EdgeType = EdgeType.OUT
) -> Tuple[np.ndarray, np.ndarray]:
    """``(degree_values, vertex_counts)`` for log-log plotting."""
    degrees = image.csr(edge_type).degrees()
    values, counts = np.unique(degrees, return_counts=True)
    return values, counts


#: Percentiles ``repro graph stats`` reports.
DEFAULT_PERCENTILES = (50, 90, 99, 100)


def degree_percentiles(
    image: GraphImage,
    edge_type: EdgeType = EdgeType.OUT,
    percentiles: Sequence[int] = DEFAULT_PERCENTILES,
) -> Dict[str, float]:
    """Named degree percentiles (``{"p50": ..., ...}``) for one direction."""
    degrees = image.csr(edge_type).degrees().astype(np.float64)
    if degrees.size == 0:
        raise ValueError("the graph has no vertices")
    return {
        f"p{p}": float(np.percentile(degrees, p)) for p in percentiles
    }


def format_size_report(image: GraphImage) -> Dict[str, object]:
    """On-SSD edge-file bytes under format v1 vs v2 for ``image``.

    Sizes come from the CSR, so the report is exact regardless of which
    format the image was actually built with (the built format's number
    matches ``len(image.out_bytes)``); v2 sizes use the cheap sizing pass
    of :func:`~repro.graph.format.v2_edge_list_sizes` without encoding.
    """
    directions = [EdgeType.OUT] + ([EdgeType.IN] if image.directed else [])
    v1_bytes = 0
    v2_bytes = 0
    for direction in directions:
        csr = image.csr(direction)
        v1_bytes += HEADER_BYTES * image.num_vertices + EDGE_BYTES * csr.num_edges
        v2_bytes += int(v2_edge_list_sizes(csr.indptr, csr.indices).sum())
    return {
        "v1_bytes": v1_bytes,
        "v2_bytes": v2_bytes,
        "compression_ratio": v1_bytes / v2_bytes if v2_bytes else 1.0,
        "built_format": image.fmt,
        "built_bytes": len(image.out_bytes)
        + (len(image.in_bytes) if image.directed else 0),
    }
