"""Synthetic stand-ins for the paper's datasets (Table 1).

The paper evaluates on three real web/social graphs we cannot ship:

========== ============ ========= ====== ========
Graph      #Vertices    #Edges    Size   Diameter
========== ============ ========= ====== ========
Twitter    42M          1.5B      13GB   23
Subdomain  89M          2B        18GB   30
Page       3.4B         129B      1.1TB  650
========== ============ ========= ====== ========

What FlashGraph's behaviour actually depends on is (i) the power-law degree
distribution, (ii) the edges/vertex ratio, and (iii) vertex-ID locality
(the page graph is clustered by domain, which produces good cache hit
rates).  The generators below reproduce those properties at a configurable
scale; :func:`twitter_sim`, :func:`subdomain_sim` and :func:`page_sim`
bake in each dataset's ratio and locality profile.
"""

from typing import Tuple

import numpy as np


def rmat_graph(
    scale: int,
    edge_factor: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> Tuple[np.ndarray, int]:
    """Generate a directed R-MAT graph (Graph500 parameters by default).

    Returns ``(edges, num_vertices)`` with ``num_vertices = 2**scale`` and
    ``edge_factor * num_vertices`` sampled edges (duplicates included; the
    builder deduplicates).  R-MAT yields the skewed, power-law-ish degree
    distribution of social graphs like Twitter.
    """
    if scale <= 0 or scale > 30:
        raise ValueError("scale must be in (0, 30]")
    if edge_factor <= 0:
        raise ValueError("edge_factor must be positive")
    d = 1.0 - a - b - c
    if d < 0 or min(a, b, c) < 0:
        raise ValueError("quadrant probabilities must be a partition of 1")
    rng = np.random.default_rng(seed)
    num_vertices = 1 << scale
    num_edges = edge_factor * num_vertices
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(num_edges)
        # Quadrants in order a (0,0), b (0,1), c (1,0), d (1,1).
        right = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        down = r >= a + b
        src = (src << 1) | down
        dst = (dst << 1) | right
    # Permute IDs so vertex ID carries no structural information, as in
    # natural social graphs where crawl order is arbitrary.
    perm = rng.permutation(num_vertices)
    edges = np.stack([perm[src], perm[dst]], axis=1)
    return edges, num_vertices


def erdos_renyi_graph(
    num_vertices: int, num_edges: int, seed: int = 0
) -> Tuple[np.ndarray, int]:
    """A G(n, m) random digraph (no degree skew; used by tests/ablations)."""
    if num_vertices <= 0 or num_edges < 0:
        raise ValueError("need a positive vertex count and non-negative edges")
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, num_vertices, size=(num_edges, 2), dtype=np.int64)
    return edges, num_vertices


def web_graph(
    num_vertices: int,
    edge_factor: int,
    domain_size: int = 64,
    locality: float = 0.85,
    global_fraction: float = 0.0,
    seed: int = 0,
) -> Tuple[np.ndarray, int]:
    """A domain-clustered web-like digraph (the page graph's profile).

    Vertices are grouped into consecutive-ID *domains* of ``domain_size``
    pages.  A fraction ``locality`` of each page's links stays within its
    own domain (IDs adjacent on SSD → good merging and cache hits); the
    rest jump to a power-law-popular remote page.  Sparse long chains of
    domains give the large effective diameter the page graph exhibits.
    """
    if num_vertices <= domain_size:
        raise ValueError("need more vertices than one domain")
    if not 0.0 <= locality <= 1.0:
        raise ValueError("locality must lie in [0, 1]")
    if not 0.0 <= global_fraction <= 1.0:
        raise ValueError("global_fraction must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    num_edges = num_vertices * edge_factor
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    local = rng.random(num_edges) < locality
    # Local links: another page of the same domain.  A third of them point
    # at the domain's first page — real sites funnel links to their home
    # page — giving each domain a hub and dense within-domain overlap
    # (cache reuse, triangle structure) without adding any long-range
    # shortcut that would shrink the diameter.
    domain_base = (src // domain_size) * domain_size
    local_dst = domain_base + rng.integers(0, domain_size, size=num_edges)
    to_home = rng.random(num_edges) < 0.35
    local_dst = np.where(to_home, domain_base, local_dst)
    # Non-local links mostly hop to a *nearby* domain (sites link within
    # their topical neighborhood); a sliver are Zipf-popular global pages.
    # Keeping global shortcuts rare preserves the huge effective diameter
    # the paper reports for the page graph (650).
    hop = (rng.geometric(0.7, size=num_edges).astype(np.int64)) * domain_size
    sign = rng.choice((-1, 1), size=num_edges)
    near_dst = domain_base + sign * hop + rng.integers(0, domain_size, size=num_edges)
    near_dst = np.clip(near_dst, 0, num_vertices - 1)
    global_link = rng.random(num_edges) < global_fraction
    ranks = rng.zipf(1.6, size=num_edges) % num_vertices
    remote_dst = np.where(global_link, ranks.astype(np.int64), near_dst)
    dst = np.where(local, local_dst, remote_dst)
    dst = np.minimum(dst, num_vertices - 1)
    chain_src = np.arange(0, num_vertices - domain_size, domain_size, dtype=np.int64)
    chain = np.stack([chain_src, chain_src + domain_size], axis=1)
    edges = np.concatenate([np.stack([src, dst], axis=1), chain])
    return edges, num_vertices


def twitter_sim(scale: int = 14, seed: int = 1) -> Tuple[np.ndarray, int]:
    """Scaled Twitter stand-in: R-MAT, ~36 edges per vertex (1.5B/42M)."""
    return rmat_graph(scale, edge_factor=36, seed=seed)


def subdomain_sim(scale: int = 15, seed: int = 2) -> Tuple[np.ndarray, int]:
    """Scaled subdomain-web stand-in: R-MAT, ~22 edges/vertex (2B/89M),
    mildly flatter skew than Twitter."""
    return rmat_graph(scale, edge_factor=22, a=0.45, b=0.22, c=0.22, seed=seed)


def page_sim(num_vertices: int = 1 << 17, seed: int = 3) -> Tuple[np.ndarray, int]:
    """Scaled page-graph stand-in: domain-clustered web graph with
    per-domain home-page hubs, ~38 distinct edges/vertex (129B/3.4B) and
    high ID locality.  The raw edge factor over-samples because the
    home-page funnel produces many duplicate links that deduplicate away
    during construction."""
    return web_graph(num_vertices, edge_factor=52, domain_size=64, seed=seed)
