"""The external-memory edge-list format (§3.5.2).

One file holds the edge lists of every vertex, ordered by vertex ID.  Each
edge list is::

    +------------+------------+---------------------------+
    | vertex id  |   degree   |  neighbor ids (u32 each)  |
    |   (u32)    |   (u32)    |                           |
    +------------+------------+---------------------------+

Edge *attributes* are stored in a separate file with the same per-vertex
ordering (one fixed-width value per edge), so algorithms that do not need
attributes never read them — the column-store trick the paper borrows from
database systems.

Everything is little-endian and 4-byte aligned, so a
:class:`~repro.graph.page_vertex.PageVertex` can be parsed zero-copy from
cached SAFS pages with ``numpy.frombuffer``.

Format **v2** keeps the 8-byte header but stores the neighbors of each
vertex as sorted deltas under a stream-split group-varint codec::

    +-----------+--------+-----------------+------------------------+
    | vertex id | degree | tag bytes       | payload bytes          |
    |   (u32)   | (u32)  | ceil(degree/4)  | 1-4 per value, packed  |
    +-----------+--------+-----------------+------------------------+

The values are ``neighbors[0], neighbors[1] - neighbors[0], ...`` (the
lists are sorted, so every delta is non-negative).  Each tag byte packs
four 2-bit length codes (``code = bytes - 1``), value ``k``'s code living
at bits ``2*(k % 4)`` of tag byte ``k // 4``.  Splitting *all* tags ahead
of *all* payload bytes — rather than interleaving tag/group as classic
group varint does — makes every byte position computable from the degree
and a running sum, so both encode and decode vectorise with numpy and
never loop per edge.  See ``docs/graph_format.md`` for worked layouts.
"""

from typing import Tuple

import numpy as np

#: Bytes per edge-list header (vertex id + degree, u32 each).
HEADER_BYTES = 8
#: Bytes per stored edge (a u32 neighbor id).
EDGE_BYTES = 4
#: Bytes per stored edge attribute (a float32 weight by default).
ATTR_BYTES = 4

#: The uncompressed format of §3.5.2 (fixed u32 neighbors).  The default.
FORMAT_V1 = "v1"
#: Delta + stream-split group-varint neighbors (opt-in).
FORMAT_V2 = "v2"
#: All recognised edge-list file formats.
FORMATS = (FORMAT_V1, FORMAT_V2)

#: Neighbors packed per tag byte in v2 (2-bit length codes).
VALUES_PER_TAG = 4


def _ramp(lengths: np.ndarray, total: int) -> np.ndarray:
    """``[0..lengths[0]), [0..lengths[1]), ...`` as one flat array."""
    stops = np.cumsum(lengths)
    return np.arange(total, dtype=np.int64) - np.repeat(stops - lengths, lengths)


def gather_ranges(source: np.ndarray, starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``source[starts[i] : starts[i] + lengths[i]]`` for all
    ``i`` with a single fancy-index gather (no per-range slicing)."""
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=source.dtype)
    ramp = _ramp(lengths, total)
    return source[np.repeat(starts, lengths) + ramp]


def scatter_positions(out_starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Flat output indices placing range ``i`` at ``out_starts[i]`` — the
    scatter-side twin of :func:`gather_ranges`, used when ranges from
    several source arrays interleave into one concatenation."""
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    return np.repeat(out_starts, lengths) + _ramp(lengths, total)


def edge_list_size(degree: int) -> int:
    """On-SSD bytes of one edge list with ``degree`` edges."""
    if degree < 0:
        raise ValueError("degree cannot be negative")
    return HEADER_BYTES + degree * EDGE_BYTES


def serialize_adjacency(
    indptr: np.ndarray, indices: np.ndarray
) -> Tuple[bytes, np.ndarray]:
    """Serialise a CSR adjacency into the on-SSD edge-list file.

    ``indptr`` has ``n + 1`` entries; vertex ``v``'s neighbors are
    ``indices[indptr[v]:indptr[v + 1]]`` and must already be sorted by the
    caller if sortedness matters to the algorithm.

    Returns ``(file_bytes, offsets)`` where ``offsets[v]`` is the byte
    offset of vertex ``v``'s edge list and ``offsets[n]`` the file size.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.uint32)
    if indptr.ndim != 1 or indptr.size < 1:
        raise ValueError("indptr must be a 1-D array with at least one entry")
    if indptr[0] != 0 or indptr[-1] != indices.size:
        raise ValueError("indptr must start at 0 and end at len(indices)")
    if np.any(np.diff(indptr) < 0):
        raise ValueError("indptr must be non-decreasing")
    num_vertices = indptr.size - 1
    degrees = np.diff(indptr)
    sizes = HEADER_BYTES + degrees * EDGE_BYTES
    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])

    # Build the whole file as one u32 array: headers interleaved with edges.
    words = np.empty(offsets[-1] // 4, dtype="<u4")
    word_offsets = offsets[:-1] // 4
    words[word_offsets] = np.arange(num_vertices, dtype=np.uint32)
    words[word_offsets + 1] = degrees.astype(np.uint32)
    # Scatter the neighbor ids: target word index for each edge is its
    # vertex's data start plus its rank within the vertex.
    if indices.size:
        edge_vertex = np.repeat(np.arange(num_vertices), degrees)
        rank = np.arange(indices.size, dtype=np.int64) - indptr[edge_vertex]
        words[word_offsets[edge_vertex] + 2 + rank] = indices
    return words.tobytes(), offsets


def serialize_attributes(
    indptr: np.ndarray, attrs: np.ndarray
) -> Tuple[bytes, np.ndarray]:
    """Serialise per-edge attributes into the detached attribute file.

    ``attrs`` holds one float32 per edge in the same order as the CSR
    ``indices``.  Returns ``(file_bytes, offsets)`` with ``offsets[v]`` the
    byte offset of vertex ``v``'s attribute block.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    attrs = np.asarray(attrs, dtype="<f4")
    if attrs.size != indptr[-1]:
        raise ValueError("one attribute per edge is required")
    degrees = np.diff(indptr)
    offsets = np.zeros(indptr.size, dtype=np.int64)
    np.cumsum(degrees * ATTR_BYTES, out=offsets[1:])
    return attrs.tobytes(), offsets


def parse_edge_list(data: memoryview, offset: int = 0) -> Tuple[int, np.ndarray]:
    """Parse one edge list at ``offset`` of a file view, zero-copy.

    Returns ``(vertex_id, neighbors)``.  Raises :class:`ValueError` on a
    truncated buffer — a header promising more edges than the view holds.
    """
    if offset < 0 or offset + HEADER_BYTES > len(data):
        raise ValueError("buffer too small for an edge-list header")
    header = np.frombuffer(data, dtype="<u4", count=2, offset=offset)
    vertex_id = int(header[0])
    degree = int(header[1])
    end = offset + HEADER_BYTES + degree * EDGE_BYTES
    if end > len(data):
        raise ValueError(
            f"edge list of vertex {vertex_id} truncated: needs {end - offset} "
            f"bytes at offset {offset}, buffer has {len(data) - offset}"
        )
    neighbors = np.frombuffer(
        data, dtype="<u4", count=degree, offset=offset + HEADER_BYTES
    )
    return vertex_id, neighbors


def adjacency_from_edges(
    edges: np.ndarray, num_vertices: int, sort_neighbors: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Build CSR ``(indptr, indices)`` from an ``(m, 2)`` edge array.

    Parallel edges are kept (the generators may emit them deliberately);
    callers wanting simple graphs deduplicate first.
    """
    edges = np.asarray(edges)
    if edges.size == 0:
        return np.zeros(num_vertices + 1, dtype=np.int64), np.zeros(0, dtype=np.uint32)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError("edges must be an (m, 2) array")
    if edges.min() < 0 or edges.max() >= num_vertices:
        raise ValueError("edge endpoints must lie in [0, num_vertices)")
    src = edges[:, 0].astype(np.int64)
    dst = edges[:, 1].astype(np.uint32)
    if sort_neighbors:
        order = np.lexsort((dst, src))
    else:
        order = np.argsort(src, kind="stable")
    indices = dst[order]
    counts = np.bincount(src, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, indices


# ---------------------------------------------------------------------------
# Format v2: delta + stream-split group-varint neighbors.
# ---------------------------------------------------------------------------


def _delta_values(indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Per-vertex delta encoding of sorted neighbor lists, as int64.

    The first neighbor of each vertex is stored raw; every later one as
    the difference from its predecessor.  Raises :class:`ValueError` when
    any list is unsorted (a negative delta), since v2 cannot represent it.
    """
    values = indices.astype(np.int64)
    if values.size:
        deltas = np.empty_like(values)
        deltas[0] = values[0]
        deltas[1:] = values[1:] - values[:-1]
        # List-leading positions keep the raw neighbor id.
        starts = indptr[:-1][np.diff(indptr) > 0]
        deltas[starts] = values[starts]
        if deltas.min() < 0:
            raise ValueError(
                "format v2 requires per-vertex sorted neighbor lists"
            )
        values = deltas
    return values


def _value_byte_lengths(values: np.ndarray) -> np.ndarray:
    """Encoded byte length (1-4) of each value under group varint."""
    return (
        1
        + (values > 0xFF).astype(np.int64)
        + (values > 0xFFFF).astype(np.int64)
        + (values > 0xFFFFFF).astype(np.int64)
    )


def v2_edge_list_sizes(indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Per-vertex on-SSD byte sizes under format v2, without encoding.

    ``sizes[v] = 8 + ceil(degree/4) + sum(encoded value bytes)`` — the
    cheap sizing pass `repro graph stats` uses to report compression
    ratios for images that were built as v1.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    degrees = np.diff(indptr)
    tag_counts = (degrees + VALUES_PER_TAG - 1) // VALUES_PER_TAG
    val_len = _value_byte_lengths(_delta_values(indptr, np.asarray(indices)))
    payload_cum = np.concatenate(([0], np.cumsum(val_len)))
    return HEADER_BYTES + tag_counts + np.diff(payload_cum[indptr])


def serialize_adjacency_v2(
    indptr: np.ndarray, indices: np.ndarray
) -> Tuple[bytes, np.ndarray]:
    """Serialise a CSR adjacency into the compressed v2 edge-list file.

    Neighbor lists must be sorted per vertex (duplicates are fine — they
    encode as delta 0).  Returns ``(file_bytes, offsets)`` with
    ``offsets[v]`` the byte offset of vertex ``v``'s record and
    ``offsets[n]`` the file size.  Encode is pure numpy: byte planes are
    scattered with fancy indexing, tag bytes assembled with one bincount.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.uint32)
    if indptr.ndim != 1 or indptr.size < 1:
        raise ValueError("indptr must be a 1-D array with at least one entry")
    if indptr[0] != 0 or indptr[-1] != indices.size:
        raise ValueError("indptr must start at 0 and end at len(indices)")
    if np.any(np.diff(indptr) < 0):
        raise ValueError("indptr must be non-decreasing")
    num_vertices = indptr.size - 1
    degrees = np.diff(indptr)
    tag_counts = (degrees + VALUES_PER_TAG - 1) // VALUES_PER_TAG

    values = _delta_values(indptr, indices)
    val_len = _value_byte_lengths(values)
    payload_cum = np.concatenate(([0], np.cumsum(val_len)))
    payload_counts = np.diff(payload_cum[indptr])

    sizes = HEADER_BYTES + tag_counts + payload_counts
    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    out = np.zeros(int(offsets[-1]), dtype=np.uint8)

    # Headers: 8 little-endian byte planes scattered at each record start.
    vids = np.arange(num_vertices, dtype=np.int64)
    for k in range(4):
        out[offsets[:-1] + k] = (vids >> (8 * k)) & 0xFF
        out[offsets[:-1] + 4 + k] = (degrees >> (8 * k)) & 0xFF

    if values.size:
        # Tag bytes: each value contributes its 2-bit code at bits
        # 2*(rank % 4) of tag byte rank // 4 of its vertex.  All values of
        # one tag byte sum disjoint bit ranges, so one bincount builds the
        # whole tag stream exactly.
        rank = _ramp(degrees, values.size)
        vertex_of = np.repeat(vids, degrees)
        tag_cum = np.concatenate(([0], np.cumsum(tag_counts)))
        tag_idx = tag_cum[vertex_of] + rank // VALUES_PER_TAG
        codes = val_len - 1
        tags = np.bincount(
            tag_idx,
            weights=(codes << (2 * (rank % VALUES_PER_TAG))).astype(np.float64),
            minlength=int(tag_cum[-1]),
        ).astype(np.uint8)
        out[scatter_positions(offsets[:-1] + HEADER_BYTES, tag_counts)] = tags

        # Payload: values packed little-endian at 1-4 bytes each.  The
        # concatenated payload stream is in file order, so one scatter per
        # byte plane places every value.
        payload = np.zeros(int(payload_cum[-1]), dtype=np.uint8)
        for k in range(4):
            mask = val_len > k
            payload[payload_cum[:-1][mask] + k] = (values[mask] >> (8 * k)) & 0xFF
        out[
            scatter_positions(
                offsets[:-1] + HEADER_BYTES + tag_counts, payload_counts
            )
        ] = payload
    return out.tobytes(), offsets


def decode_lists_v2(
    file_bytes: np.ndarray, offsets: np.ndarray, degrees: np.ndarray
) -> np.ndarray:
    """Decode a batch of v2 edge lists straight out of the file's bytes.

    ``file_bytes`` is the whole edge file as a ``uint8`` array;
    ``offsets[i]``/``degrees[i]`` locate list ``i``.  Returns all neighbor
    ids concatenated in list order as ``uint32`` — the batched decode the
    engine's vectorized SEM path runs once per delivered wave.  No Python
    loop touches an edge.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    degrees = np.asarray(degrees, dtype=np.int64)
    total = int(degrees.sum())
    if total == 0:
        return np.empty(0, dtype=np.uint32)
    lv = np.repeat(np.arange(offsets.size, dtype=np.int64), degrees)
    rank = _ramp(degrees, total)
    tag_counts = (degrees + VALUES_PER_TAG - 1) // VALUES_PER_TAG

    tag_bytes = file_bytes[
        offsets[lv] + HEADER_BYTES + rank // VALUES_PER_TAG
    ].astype(np.int64)
    val_len = ((tag_bytes >> (2 * (rank % VALUES_PER_TAG))) & 3) + 1

    # Payload position of each value: list start + within-list running sum
    # of earlier value lengths.
    cum = np.cumsum(val_len)
    excl = cum - val_len
    list_starts = np.concatenate(([0], np.cumsum(degrees)))[:-1]
    safe_starts = np.minimum(list_starts, total - 1)
    within = excl - np.repeat(excl[safe_starts], degrees)
    payload_pos = offsets[lv] + HEADER_BYTES + tag_counts[lv] + within

    values = np.zeros(total, dtype=np.int64)
    for k in range(4):
        mask = val_len > k
        values[mask] |= file_bytes[payload_pos[mask] + k].astype(np.int64) << (8 * k)

    # Undo the delta encoding with one global prefix sum, re-based per list.
    csum = np.cumsum(values)
    base = np.repeat(csum[safe_starts] - values[safe_starts], degrees)
    neighbors = csum - base
    if neighbors.size and neighbors.max() > 0xFFFFFFFF:
        raise ValueError("corrupt v2 edge list: neighbor id overflows u32")
    return neighbors.astype(np.uint32)


def parse_edge_list_v2(data: memoryview, offset: int = 0) -> Tuple[int, np.ndarray]:
    """Parse one v2 edge list at ``offset`` of a file view.

    The v2 twin of :func:`parse_edge_list`: returns ``(vertex_id,
    neighbors)`` and raises :class:`ValueError` on truncation.  Unlike v1
    the neighbors are decoded (delta + varint), not a zero-copy view.
    """
    if offset < 0 or offset + HEADER_BYTES > len(data):
        raise ValueError("buffer too small for an edge-list header")
    buf = np.frombuffer(data, dtype=np.uint8)
    header = np.frombuffer(data, dtype="<u4", count=2, offset=offset)
    vertex_id = int(header[0])
    degree = int(header[1])
    tag_count = (degree + VALUES_PER_TAG - 1) // VALUES_PER_TAG
    if offset + HEADER_BYTES + tag_count > len(data):
        raise ValueError(
            f"edge list of vertex {vertex_id} truncated: tag bytes run past "
            f"the buffer at offset {offset}"
        )
    if degree == 0:
        return vertex_id, np.empty(0, dtype=np.uint32)
    rank = np.arange(degree, dtype=np.int64)
    tags = buf[
        offset + HEADER_BYTES + rank // VALUES_PER_TAG
    ].astype(np.int64)
    val_len = ((tags >> (2 * (rank % VALUES_PER_TAG))) & 3) + 1
    payload_len = int(val_len.sum())
    end = offset + HEADER_BYTES + tag_count + payload_len
    if end > len(data):
        raise ValueError(
            f"edge list of vertex {vertex_id} truncated: needs {end - offset} "
            f"bytes at offset {offset}, buffer has {len(data) - offset}"
        )
    pos = offset + HEADER_BYTES + tag_count + (np.cumsum(val_len) - val_len)
    values = np.zeros(degree, dtype=np.int64)
    for k in range(4):
        mask = val_len > k
        values[mask] |= buf[pos[mask] + k].astype(np.int64) << (8 * k)
    neighbors = np.cumsum(values)
    if neighbors[-1] > 0xFFFFFFFF:
        raise ValueError("corrupt v2 edge list: neighbor id overflows u32")
    return vertex_id, neighbors.astype(np.uint32)
